"""Unit tests for the simulated network."""

import pytest

from repro.net import ConstantLatencyModel, Network
from repro.net.network import Endpoint
from repro.sim import EventLoop


class Recorder(Endpoint):
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def make_net(n=3, delay=0.05):
    loop = EventLoop()
    net = Network(loop, ConstantLatencyModel(delay))
    nodes = [Recorder(i) for i in range(n)]
    for node in nodes:
        net.register(node)
    return loop, net, nodes


def test_delivery_after_latency():
    loop, net, nodes = make_net(delay=0.2)
    net.send(0, 1, "ping", "hello", wire_bytes=10)
    loop.run_until(0.1)
    assert nodes[1].received == []
    loop.run_until(0.3)
    assert len(nodes[1].received) == 1
    assert nodes[1].received[0].payload == "hello"


def test_duplicate_registration_rejected():
    loop, net, nodes = make_net()
    with pytest.raises(ValueError):
        net.register(Recorder(0))


def test_unknown_recipient_dropped():
    loop, net, nodes = make_net()
    net.send(0, 99, "ping", None, wire_bytes=1)
    loop.run_until(1.0)
    assert net.dropped_messages == 1


def test_crash_blocks_both_directions():
    loop, net, nodes = make_net()
    net.crash(1)
    net.send(0, 1, "a", None, wire_bytes=1)
    net.send(1, 0, "b", None, wire_bytes=1)
    loop.run_until(1.0)
    assert nodes[0].received == [] and nodes[1].received == []
    net.recover(1)
    net.send(0, 1, "c", None, wire_bytes=1)
    loop.run_until(2.0)
    assert len(nodes[1].received) == 1


def test_crash_during_flight_drops_delivery():
    loop, net, nodes = make_net(delay=0.5)
    net.send(0, 1, "a", None, wire_bytes=1)
    loop.run_until(0.1)
    net.crash(1)
    loop.run_until(1.0)
    assert nodes[1].received == []


def test_blocked_link_is_directional():
    loop, net, nodes = make_net()
    net.block_link(0, 1)
    net.send(0, 1, "a", None, wire_bytes=1)
    net.send(1, 0, "b", None, wire_bytes=1)
    loop.run_until(1.0)
    assert nodes[1].received == []
    assert len(nodes[0].received) == 1
    net.unblock_link(0, 1)
    net.send(0, 1, "c", None, wire_bytes=1)
    loop.run_until(2.0)
    assert len(nodes[1].received) == 1


def test_partition_and_heal():
    loop, net, nodes = make_net(n=4)
    net.partition([{0, 1}, {2, 3}])
    net.send(0, 2, "x", None, wire_bytes=1)
    net.send(0, 1, "y", None, wire_bytes=1)
    loop.run_until(1.0)
    assert nodes[2].received == []
    assert len(nodes[1].received) == 1
    net.heal_partition()
    net.send(0, 2, "z", None, wire_bytes=1)
    loop.run_until(2.0)
    assert len(nodes[2].received) == 1


def test_delivery_hook_can_drop():
    loop, net, nodes = make_net()
    net.add_delivery_hook(lambda m: m.msg_type != "spam")
    net.send(0, 1, "spam", None, wire_bytes=1)
    net.send(0, 1, "ham", None, wire_bytes=1)
    loop.run_until(1.0)
    assert [m.msg_type for m in nodes[1].received] == ["ham"]


def test_bandwidth_accounting_split():
    loop, net, nodes = make_net()
    net.send(0, 1, "ctl", None, wire_bytes=100, is_overhead=True)
    net.send(0, 1, "data", None, wire_bytes=250, is_overhead=False)
    loop.run_until(1.0)
    meter = net.meters[0]
    assert meter.sent_overhead == 100
    assert meter.sent_payload == 250
    assert net.meters[1].recv_overhead == 100
    assert net.meters[1].recv_payload == 250
    assert net.total_overhead_bytes() == 100
    assert net.total_payload_bytes() == 250
    assert net.overhead_by_type()["ctl"] == 100


def test_sender_metered_even_when_dropped():
    loop, net, nodes = make_net()
    net.crash(1)
    net.send(0, 1, "x", None, wire_bytes=50)
    loop.run_until(1.0)
    assert net.meters[0].sent_overhead == 50


def test_negative_wire_bytes_rejected():
    loop, net, nodes = make_net()
    with pytest.raises(ValueError):
        net.send(0, 1, "x", None, wire_bytes=-1)


def test_delivered_message_count():
    loop, net, nodes = make_net()
    for _ in range(3):
        net.send(0, 1, "x", None, wire_bytes=1)
    loop.run_until(1.0)
    assert net.delivered_messages == 3
    assert net.meters[1].recv_messages == 3


def test_drop_reason_breakdown():
    loop, net, nodes = make_net(n=4)
    net.crash(3)
    net.send(0, 3, "a", None, wire_bytes=1)          # crashed
    net.recover(3)
    net.block_link(0, 1)
    net.send(0, 1, "b", None, wire_bytes=1)          # blocked link
    net.unblock_link(0, 1)
    net.partition([{0}, {1, 2, 3}])
    net.send(0, 1, "c", None, wire_bytes=1)          # partition
    net.heal_partition()
    net.add_delivery_hook(lambda m: m.msg_type != "spam")
    net.send(0, 1, "spam", None, wire_bytes=1)       # hook
    net.send(0, 99, "d", None, wire_bytes=1)         # no endpoint
    loop.run_until(2.0)
    assert net.drop_breakdown() == {
        "crashed": 1,
        "blocked_link": 1,
        "partition": 1,
        "hook": 1,
        "no_endpoint": 1,
    }
    assert net.dropped_messages == 5


def test_unregister_clears_fault_state_for_reused_id():
    loop, net, nodes = make_net()
    net.crash(1)
    net.block_link(0, 1)
    net.block_link(1, 2)
    net.partition([{0, 1}, {2}])
    net.unregister(1)
    # A fresh node re-registered under the old id must not inherit faults.
    fresh = Recorder(1)
    net.register(fresh)
    net.partition([{0, 1, 2}])
    net.send(0, 1, "hello", None, wire_bytes=1)
    net.send(1, 2, "relay", None, wire_bytes=1)
    loop.run_until(1.0)
    assert len(fresh.received) == 1
    assert len(nodes[2].received) == 1
    assert not net.is_crashed(1)


def test_unregister_removes_id_from_live_partition():
    loop, net, nodes = make_net(n=3)
    net.partition([{0, 1}, {2}])
    net.send(2, 0, "before", None, wire_bytes=1)     # crosses: dropped
    net.unregister(2)
    replacement = Recorder(2)
    net.register(replacement)
    # Old group membership is gone: the reused id belongs to no partition
    # group any more, so its own sends are not partition-filtered.
    net.send(2, 0, "after", None, wire_bytes=1)
    loop.run_until(1.0)
    assert [m.msg_type for m in nodes[0].received] == ["after"]
