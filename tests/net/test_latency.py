"""Unit tests for latency models."""

import random

import pytest

from repro.net import CityLatencyModel, ConstantLatencyModel, UniformLatencyModel
from repro.net.latency import synthetic_city_table


def test_constant_model():
    model = ConstantLatencyModel(0.07)
    assert model.delay(0, 1) == 0.07
    assert model.delay(5, 9) == 0.07


def test_constant_model_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatencyModel(-0.1)


def test_uniform_model_fixed_per_pair():
    model = UniformLatencyModel(0.01, 0.1, random.Random(3))
    d1 = model.delay(0, 1)
    d2 = model.delay(0, 1)
    assert d1 == d2
    assert 0.01 <= d1 <= 0.1


def test_uniform_model_symmetric():
    model = UniformLatencyModel(0.01, 0.1, random.Random(3))
    assert model.delay(2, 7) == model.delay(7, 2)


def test_uniform_model_shares_one_draw_per_unordered_pair():
    # Regression: the docstring used to promise per-*ordered*-pair draws
    # while the cache keyed on the unordered pair.  The cache's behaviour
    # is the contract: both directions must consume exactly one RNG draw.
    class CountingRandom(random.Random):
        def __init__(self, seed):
            super().__init__(seed)
            self.uniform_calls = 0

        def uniform(self, a, b):
            self.uniform_calls += 1
            return super().uniform(a, b)

    rng = CountingRandom(3)
    model = UniformLatencyModel(0.01, 0.1, rng)
    forward = model.delay(4, 9)
    backward = model.delay(9, 4)
    assert forward == backward
    assert rng.uniform_calls == 1  # the reverse direction hit the cache
    model.delay(4, 9)
    assert rng.uniform_calls == 1  # and so do repeats


def test_bundled_models_declare_pair_stability():
    # Network._delay_cache keys off this flag; a model advertising
    # stability must return the same value on every call for a pair.
    models = (
        ConstantLatencyModel(0.05),
        UniformLatencyModel(0.01, 0.1, random.Random(5)),
        CityLatencyModel(48, random.Random(5)),
    )
    for model in models:
        assert model.PAIR_STABLE
        assert model.delay(1, 2) == model.delay(1, 2)
        assert model.delay(2, 1) == model.delay(2, 1)


def test_uniform_model_rejects_bad_range():
    with pytest.raises(ValueError):
        UniformLatencyModel(0.2, 0.1, random.Random(0))


def test_city_table_has_32_cities():
    table = synthetic_city_table(random.Random(1))
    assert len(table) == 32
    names = [name for name, _x, _y in table]
    assert len(set(names)) == 32


def test_city_model_round_robin_assignment():
    model = CityLatencyModel(70, random.Random(1))
    assert model.city_of(0) == model.city_of(32)
    assert model.city_of(1) != model.city_of(0)


def test_city_model_delay_properties():
    model = CityLatencyModel(64, random.Random(1))
    delays = [
        model.delay(a, b) for a in range(0, 64, 7) for b in range(0, 64, 5)
    ]
    assert all(d >= CityLatencyModel.BASE_DELAY_S for d in delays)
    # Realistic WonderNetwork-like spread: same-city ~ ms, antipodal
    # approaching a couple hundred ms one-way.
    assert min(delays) < 0.02
    assert max(delays) > 0.08
    assert max(delays) < 0.40


def test_city_model_symmetric():
    model = CityLatencyModel(64, random.Random(1))
    assert model.delay(3, 40) == model.delay(40, 3)


def test_city_model_same_city_is_cheapest():
    model = CityLatencyModel(64, random.Random(1))
    same_city = model.delay(0, 32)
    cross = model.delay(0, 16)
    assert same_city <= cross


def test_city_model_rejects_empty():
    with pytest.raises(ValueError):
        CityLatencyModel(0, random.Random(1))


def test_city_model_rejects_negative_ids():
    model = CityLatencyModel(64, random.Random(1))
    with pytest.raises(ValueError):
        model.city_of(-1)
    with pytest.raises(ValueError):
        model.delay(-1, 3)
    with pytest.raises(ValueError):
        model.delay(3, -1)
    with pytest.raises(ValueError):
        model.delays_batch(-1, [0, 1])
    with pytest.raises(ValueError):
        model.delays_batch(0, [1, -2, 3, 4, 5])


def test_city_model_out_of_range_ids_no_double_wrap():
    # Regression: city_of/delay used to apply a redundant `% num_nodes`
    # before the city modulus, silently collapsing overlay-external ids
    # (light clients start at 1,000,000) onto arbitrary miners' cities.
    # The contract is now plain round-robin on the id itself.
    model = CityLatencyModel(70, random.Random(1))
    assert model.city_of(1_000_000) == model.city_of(1_000_000 % 32)
    # Old behaviour: cities[(1_000_000 % 70) % 32] -- a different city.
    assert model.city_of(1_000_000) != model.city_of((1_000_000 % 70) % 32)
    assert model.delay(1_000_000, 5) == model.delay(1_000_000 % 32, 5)
    assert model.delay(5, 1_000_000) == model.delay(5, 1_000_000 % 32)


def test_delays_batch_matches_scalar_exactly():
    # The batched path must be byte-identical to per-pair delay() calls:
    # both the short pure-Python path and the vectorised one (>= 4
    # recipients when numpy is installed).
    models = (
        ConstantLatencyModel(0.017),
        UniformLatencyModel(0.01, 0.1, random.Random(5)),
        CityLatencyModel(48, random.Random(5)),
    )
    for model in models:
        for recipients in ([7], [1, 2], list(range(40)), [3, 1_000_000, 5, 9]):
            if model.__class__ is UniformLatencyModel:
                recipients = [r % 48 for r in recipients]
            batched = model.delays_batch(2, recipients)
            scalar = [model.delay(2, r) for r in recipients]
            assert batched == scalar, model


def test_cheap_delay_flags():
    # Pure-lookup models advertise CHEAP_DELAY so the network skips its
    # per-ordered-pair memo; the stateful uniform model must not (its
    # first call draws RNG, which the memo preserves).
    assert ConstantLatencyModel(0.05).CHEAP_DELAY
    assert CityLatencyModel(16, random.Random(0)).CHEAP_DELAY
    assert not UniformLatencyModel(0.01, 0.1, random.Random(0)).CHEAP_DELAY
