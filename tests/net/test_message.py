"""Unit tests for the message envelope."""

import pytest

from repro.net.message import ENVELOPE_BYTES, Message


def test_message_ids_are_unique_and_increasing():
    a = Message(0, 1, "t", None, 10)
    b = Message(0, 1, "t", None, 10)
    assert b.msg_id > a.msg_id


def test_negative_wire_bytes_rejected():
    with pytest.raises(ValueError):
        Message(0, 1, "t", None, -5)


def test_defaults():
    message = Message(0, 1, "t", {"k": 1}, 10)
    assert message.is_overhead
    assert message.payload == {"k": 1}


def test_envelope_constant_is_sane():
    # UDP/IP-ish header plus a type tag; must stay small relative to the
    # protocol payloads it frames.
    assert 16 <= ENVELOPE_BYTES <= 64
