"""Batched delivery engine: loop batches, envelope pooling, identity.

The batched fast path (``Network.send_many`` / ``send_fanout`` collapsing
same-delay deliveries into one heap entry, plus pooled ``Message``
envelopes) must be *observationally identical* to per-message scheduling:
same delivery order, same per-type byte meters, same processed-event
counts.  ``Network(batching_enabled=False)`` degrades every batched call
to a per-message ``send`` loop, which gives us the reference behaviour to
compare against -- including under Hypothesis-generated fan-out shapes.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import CityLatencyModel, ConstantLatencyModel, Network
from repro.net.message import Message
from repro.net.network import Endpoint
from repro.sim import EventLoop
from repro.sim.loop import _BATCH


# --------------------------------------------------------------- loop batches


def test_schedule_batch_runs_items_in_order():
    loop = EventLoop()
    seen = []
    loop.schedule_batch_at(1.0, lambda tag: seen.append(tag),
                           [("a",), ("b",), ("c",)])
    loop.run_until(2.0)
    assert seen == ["a", "b", "c"]


def test_batch_counts_each_item_as_one_event():
    # Identity with per-item scheduling extends to the processed-event
    # counter: a 3-item batch is 3 events, not 1.
    loop = EventLoop()
    loop.schedule_batch_later(0.5, lambda _i: None, [(0,), (1,), (2,)])
    loop.call_later(1.0, lambda: None)
    loop.run_until(2.0)
    assert loop.processed_events == 4
    # ...but it occupies a single heap entry while pending.
    loop2 = EventLoop()
    loop2.schedule_batch_later(0.5, lambda _i: None, [(0,), (1,), (2,)])
    assert loop2.pending_events == 1


def test_batch_interleaves_with_plain_events_by_seq():
    # A batch scheduled *before* a plain event at the same time fires
    # first (heap order is (time, seq)), and vice versa.
    loop = EventLoop()
    seen = []
    loop.schedule_batch_at(1.0, lambda t: seen.append(t), [("b1",), ("b2",)])
    loop.schedule_at(1.0, lambda: seen.append("plain"))
    loop.run_until(1.5)
    assert seen == ["b1", "b2", "plain"]

    loop = EventLoop()
    seen = []
    loop.schedule_at(1.0, lambda: seen.append("plain"))
    loop.schedule_batch_at(1.0, lambda t: seen.append(t), [("b1",), ("b2",)])
    loop.run_until(1.5)
    assert seen == ["plain", "b1", "b2"]


def test_step_runs_whole_batch_as_one_step():
    loop = EventLoop()
    seen = []
    loop.schedule_batch_later(0.25, lambda t: seen.append(t),
                              [("x",), ("y",)])
    event = loop.step()
    assert event is not None
    assert seen == ["x", "y"]
    assert loop.processed_events == 2
    assert loop.step() is None


def test_schedule_batch_rejects_past_and_negative():
    from repro.sim.loop import SimulationError

    loop = EventLoop()
    loop.run_until(1.0)
    with pytest.raises(SimulationError):
        loop.schedule_batch_at(0.5, lambda: None, [()])
    with pytest.raises(SimulationError):
        loop.schedule_batch_later(-0.1, lambda: None, [()])


def test_batch_sentinel_is_not_a_valid_user_callback():
    # _BATCH is an internal marker; it must never be callable so a stray
    # dispatch through the normal path fails loudly rather than silently.
    assert not callable(_BATCH)


# ------------------------------------------------------------ envelope pool


class _Sink(Endpoint):
    RETAINS_ENVELOPES = False

    def __init__(self, node_id):
        self.node_id = node_id
        self.seen = []

    def on_message(self, message):
        # Copy fields out; the envelope may be recycled after we return.
        self.seen.append((message.sender, message.msg_type, message.payload,
                          message.wire_bytes, message.msg_id))


class _Keeper(Endpoint):
    # RETAINS_ENVELOPES defaults to True: the safe contract for endpoints
    # that hold on to the Message object itself.
    def __init__(self, node_id):
        self.node_id = node_id
        self.kept = []

    def on_message(self, message):
        self.kept.append(message)


def test_pool_recycles_envelopes_for_releasing_endpoints():
    loop = EventLoop()
    net = Network(loop, ConstantLatencyModel(0.01))
    net.register(_Sink(0))
    net.register(_Sink(1))
    net.send(0, 1, "a", "p1", wire_bytes=8)
    loop.run_until(1.0)
    assert len(net._pool) == 1
    recycled = net._pool[0]
    assert recycled.payload is None  # payload dropped on release
    net.send(0, 1, "b", "p2", wire_bytes=8)
    loop.run_until(2.0)
    assert not any(
        isinstance(entry, Message) for entry in net._pool[1:]
    )  # pool did not grow: the envelope was reused
    envelope = net._pool[0]
    assert envelope is recycled


def test_pooled_msg_ids_stay_monotonic():
    loop = EventLoop()
    net = Network(loop, ConstantLatencyModel(0.01))
    sinks = [_Sink(0), _Sink(1)]
    for s in sinks:
        net.register(s)
    for i in range(5):
        net.send(0, 1, "t", i, wire_bytes=4)
        loop.run_until(loop.now + 1.0)
    ids = [msg_id for (_s, _t, _p, _w, msg_id) in sinks[1].seen]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5  # recycling never reuses an id


def test_retaining_endpoints_keep_their_envelopes():
    loop = EventLoop()
    net = Network(loop, ConstantLatencyModel(0.01))
    net.register(_Sink(0))
    keeper = _Keeper(1)
    net.register(keeper)
    net.send(0, 1, "a", "payload", wire_bytes=8)
    net.send(0, 1, "b", "payload", wire_bytes=8)
    loop.run_until(1.0)
    assert net._pool == []  # nothing recycled
    assert [m.msg_type for m in keeper.kept] == ["a", "b"]
    assert keeper.kept[0].payload == "payload"  # still intact


def test_pool_is_bounded():
    loop = EventLoop()
    net = Network(loop, ConstantLatencyModel(0.01))
    net.POOL_MAX = 2
    net.register(_Sink(0))
    net.register(_Sink(1))
    net.send_fanout(0, [1] * 8, "t", None, 4)
    loop.run_until(1.0)
    assert len(net._pool) <= 2


# ----------------------------------------------- batched vs unbatched runs


def _collect(num_nodes, script, batching):
    """Run ``script`` against a network and return all observables."""
    loop = EventLoop()
    net = Network(
        loop,
        CityLatencyModel(num_nodes, random.Random(99)),
        batching_enabled=batching,
    )
    sinks = [_Sink(i) for i in range(num_nodes)]
    for sink in sinks:
        net.register(sink)
    for op in script:
        kind = op[0]
        if kind == "fanout":
            _, sender, recipients, wire = op
            net.send_fanout(sender, recipients, "t/fanout", "shared", wire)
        elif kind == "many":
            _, sender, sends = op
            net.send_many(sender, sends)
        elif kind == "send":
            _, sender, recipient, wire = op
            net.send(sender, recipient, "t/one", "solo", wire)
        elif kind == "advance":
            loop.run_until(loop.now + op[1])
    loop.run_until(loop.now + 5.0)
    deliveries = [
        (sink.node_id, s, t, p, w)
        for sink in sinks
        for (s, t, p, w, _msg_id) in sink.seen
    ]
    meters = {
        node_id: {
            "by_type": dict(meter.by_type),
            "counts": (meter.sent_messages, meter.recv_messages),
            "bytes": (meter.sent_overhead, meter.sent_payload,
                      meter.recv_overhead, meter.recv_payload),
        }
        for node_id, meter in net.meters.items()
    }
    return deliveries, meters, loop.processed_events


_SHAPES = [
    # (name, script): hand-picked fan-out shapes covering the grouping
    # corners -- duplicate recipients, singleton groups, interleaved ops.
    ("single_fanout", [("fanout", 0, [1, 2, 3, 4, 5], 64)]),
    ("duplicate_recipients", [("fanout", 0, [1, 1, 2, 2, 1], 16)]),
    ("back_to_back", [
        ("fanout", 0, [1, 2, 3], 32),
        ("fanout", 1, [0, 2, 3], 32),
        ("advance", 0.05),
        ("fanout", 2, [0, 1], 32),
    ]),
    ("mixed_ops", [
        ("send", 0, 1, 8),
        ("many", 1, [(2, "t/m", "pa", 10, True), (3, "t/m", "pb", 12, False),
                     (0, "t/m", "pc", 14, True)]),
        ("advance", 0.2),
        ("fanout", 3, [0, 1, 2, 0, 1], 48),
    ]),
    ("wide_fanout", [("fanout", 0, list(range(1, 12)) * 2, 24)]),
]


@pytest.mark.parametrize("name,script", _SHAPES, ids=[s[0] for s in _SHAPES])
def test_batched_matches_unbatched_fixed_shapes(name, script):
    batched = _collect(12, script, batching=True)
    unbatched = _collect(12, script, batching=False)
    assert batched == unbatched


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(
                st.just("fanout"),
                st.integers(0, 9),
                st.lists(st.integers(0, 9), min_size=1, max_size=12),
                st.sampled_from([8, 64, 256]),
            ),
            st.tuples(
                st.just("send"),
                st.integers(0, 9),
                st.integers(0, 9),
                st.sampled_from([8, 64]),
            ),
            st.tuples(st.just("advance"),
                      st.sampled_from([0.0, 0.01, 0.13, 1.0])),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_batched_matches_unbatched_property(ops):
    # Property form of the same identity: arbitrary interleavings of
    # fan-outs (with self-sends and duplicates), unicasts, and time
    # advances produce byte-identical delivery streams, per-type meters,
    # and processed-event counts with batching on and off.
    batched = _collect(10, ops, batching=True)
    unbatched = _collect(10, ops, batching=False)
    assert batched == unbatched


def test_batched_fanout_uses_fewer_heap_entries():
    # The point of batching: k same-delay deliveries share one heap entry.
    loop = EventLoop()
    net = Network(loop, ConstantLatencyModel(0.05))
    for i in range(9):
        net.register(_Sink(i))
    net.send_fanout(0, list(range(1, 9)), "t", None, 16)
    assert loop.pending_events == 1
    loop.run_until(1.0)
    assert loop.processed_events == 8  # still one event per delivery
    assert all(net.meters[i].recv_messages == 1 for i in range(1, 9))
