"""Unit tests for topology construction."""

import random

import pytest

from repro.net import TopologyBuilder, TopologyError
from repro.net.topology import is_connected


def degrees(adjacency):
    return {node: len(peers) for node, peers in adjacency.items()}


def test_build_is_connected():
    builder = TopologyBuilder(50, random.Random(1))
    adjacency = builder.build()
    assert is_connected(adjacency, set(range(50)))


def test_build_no_self_loops_and_symmetric():
    adjacency = TopologyBuilder(30, random.Random(2)).build()
    for node, peers in adjacency.items():
        assert node not in peers
        for peer in peers:
            assert node in adjacency[peer]


def test_out_degree_respected():
    adjacency = TopologyBuilder(100, random.Random(3), out_degree=8).build()
    # Every node picked <= 8 outgoing; undirected degree is bounded by
    # out_degree + inbound, so minimum degree is at least the out-degree.
    assert min(degrees(adjacency).values()) >= 8


def test_small_network_clamps_degree():
    adjacency = TopologyBuilder(4, random.Random(4), out_degree=8).build()
    for node, peers in adjacency.items():
        assert len(peers) <= 3


def test_in_degree_cap():
    builder = TopologyBuilder(40, random.Random(5), out_degree=4,
                              max_in_degree=6)
    adjacency = builder.build()
    # Degree <= out_degree + max_in_degree (+ connectivity patch edges).
    assert max(degrees(adjacency).values()) <= 4 + 6 + 2


def test_too_few_nodes_rejected():
    with pytest.raises(TopologyError):
        TopologyBuilder(1, random.Random(0))


def test_adversarial_topology_keeps_correct_core_connected():
    builder = TopologyBuilder(60, random.Random(6))
    malicious = list(range(12))
    adjacency = builder.build_with_adversaries(malicious)
    correct = set(range(60)) - set(malicious)
    assert is_connected(adjacency, correct)


def test_adversaries_form_clique_when_small():
    builder = TopologyBuilder(30, random.Random(7))
    malicious = [0, 1, 2, 3]
    adjacency = builder.build_with_adversaries(malicious)
    for a in malicious:
        for b in malicious:
            if a != b:
                assert b in adjacency[a]


def test_many_adversaries_still_interconnected():
    builder = TopologyBuilder(80, random.Random(8))
    malicious = list(range(30))
    adjacency = builder.build_with_adversaries(malicious)
    assert is_connected(adjacency, set(malicious))


def test_adversary_ids_validated():
    builder = TopologyBuilder(10, random.Random(9))
    with pytest.raises(TopologyError):
        builder.build_with_adversaries([99])


def test_deterministic_given_seed():
    a = TopologyBuilder(25, random.Random(42)).build()
    b = TopologyBuilder(25, random.Random(42)).build()
    assert a == b
