"""Unit tests for the seeded chaos fault injector."""

import random

import pytest

from repro.net import ConstantLatencyModel, Network
from repro.net.chaos import (
    ChaosController,
    ChaosInjector,
    ChaosPlan,
    CrashWindow,
    corrupt_payload,
)
from repro.net.message import Message
from repro.net.network import Endpoint
from repro.sim import EventLoop


class Recorder(Endpoint):
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def make_net(n=3, delay=0.05, plan=None):
    loop = EventLoop()
    net = Network(loop, ConstantLatencyModel(delay))
    nodes = [Recorder(i) for i in range(n)]
    for node in nodes:
        net.register(node)
    if plan is not None:
        net.set_fault_injector(ChaosInjector(plan))
    return loop, net, nodes


def test_plan_validates_rates_and_windows():
    with pytest.raises(ValueError):
        ChaosPlan(drop_rate=1.5)
    with pytest.raises(ValueError):
        ChaosPlan(corrupt_rate=-0.1)
    with pytest.raises(ValueError):
        ChaosPlan(max_jitter_s=-1.0)
    with pytest.raises(ValueError):
        CrashWindow(node_id=1, crash_at=5.0, recover_at=5.0)
    plan = ChaosPlan(crash_windows=(
        CrashWindow(2, 1.0, 3.0), CrashWindow(1, 0.0, 2.0), CrashWindow(2, 5.0, 6.0),
    ))
    assert plan.crashed_ids() == (1, 2)


def test_drop_rate_one_drops_everything_under_chaos_reason():
    loop, net, nodes = make_net(plan=ChaosPlan(seed=1, drop_rate=1.0))
    for _ in range(10):
        net.send(0, 1, "x", None, wire_bytes=1)
    loop.run_until(1.0)
    assert nodes[1].received == []
    assert net.drop_breakdown() == {"chaos": 10}
    assert net.dropped_messages == 10


def test_duplicate_rate_one_delivers_twice():
    loop, net, nodes = make_net(plan=ChaosPlan(seed=1, duplicate_rate=1.0))
    net.send(0, 1, "x", "payload", wire_bytes=1)
    loop.run_until(2.0)
    assert len(nodes[1].received) == 2
    assert all(m.payload == "payload" for m in nodes[1].received)


def test_reorder_jitter_can_invert_delivery_order():
    plan = ChaosPlan(seed=3, reorder_rate=0.5, max_jitter_s=1.0)
    loop, net, nodes = make_net(delay=0.01, plan=plan)
    for i in range(40):
        net.send(0, 1, "seq", i, wire_bytes=1)
    loop.run_until(5.0)
    order = [m.payload for m in nodes[1].received]
    assert sorted(order) == list(range(40))
    assert order != list(range(40))  # at least one inversion happened


def test_corruption_replaces_payload_not_envelope():
    plan = ChaosPlan(seed=5, corrupt_rate=1.0)
    loop, net, nodes = make_net(plan=plan)
    net.send(0, 1, "typed", ("a", "b"), wire_bytes=7)
    loop.run_until(1.0)
    (message,) = nodes[1].received
    assert message.msg_type == "typed"
    assert message.wire_bytes == 7
    assert message.payload != ("a", "b")


def test_protected_types_never_corrupted():
    plan = ChaosPlan(seed=5, corrupt_rate=1.0, protected_types=("ctl",))
    loop, net, nodes = make_net(plan=plan)
    net.send(0, 1, "ctl", ("a", "b"), wire_bytes=1)
    loop.run_until(1.0)
    assert nodes[1].received[0].payload == ("a", "b")


def test_injector_decisions_deterministic_from_seed():
    def fingerprint(seed):
        plan = ChaosPlan(
            seed=seed, drop_rate=0.2, duplicate_rate=0.2,
            reorder_rate=0.4, max_jitter_s=0.3, corrupt_rate=0.2,
        )
        loop, net, nodes = make_net(plan=plan)
        for i in range(60):
            net.send(0, 1, "m", i, wire_bytes=1)
        loop.run_until(5.0)
        return (
            [repr(m.payload) for m in nodes[1].received],
            net.drop_breakdown(),
        )

    assert fingerprint(11) == fingerprint(11)
    assert fingerprint(11) != fingerprint(12)


def test_counters_account_for_every_examined_message():
    plan = ChaosPlan(seed=2, drop_rate=0.3, duplicate_rate=0.3)
    loop, net, nodes = make_net(plan=plan)
    injector = ChaosInjector(plan)
    net.set_fault_injector(injector)
    for i in range(100):
        net.send(0, 1, "m", i, wire_bytes=1)
    loop.run_until(5.0)
    counters = injector.counters
    assert counters.examined == 100
    assert counters.dropped == net.drop_breakdown()["chaos"]
    assert len(nodes[1].received) == 100 - counters.dropped + counters.duplicated


def test_controller_runs_crash_windows_and_restart_hook():
    plan = ChaosPlan(crash_windows=(CrashWindow(1, 1.0, 2.0),))
    loop, net, nodes = make_net()
    halted, restarted = [], []
    ChaosController(
        loop, net, plan, halt=halted.append, restart=restarted.append,
    ).install()
    net.send(0, 1, "before", None, wire_bytes=1)
    loop.run_until(0.5)
    loop.run_until(1.5)
    net.send(0, 1, "during", None, wire_bytes=1)
    loop.run_until(1.9)
    loop.run_until(2.5)
    net.send(0, 1, "after", None, wire_bytes=1)
    loop.run_until(3.0)
    assert [m.msg_type for m in nodes[1].received] == ["before", "after"]
    assert halted == [1] and restarted == [1]
    assert net.drop_breakdown()["crashed"] == 1


def test_corrupt_payload_mutates_dataclasses_and_tuples():
    rng = random.Random(0)
    base = ("x", "y", "z")
    assert any(corrupt_payload(base, rng) != base for _ in range(10))
    message = Message(0, 1, "t", None, wire_bytes=1)
    for _ in range(20):
        mutated = corrupt_payload(message, rng)
        assert mutated != message or not isinstance(mutated, Message)
