"""The CI perf-trend gate (``tools/check_bench_trend.py``).

Synthetic ``repro.bench/1`` payloads exercise the three behaviours the
gate promises: pass when fresh numbers hold, fail (exit 1) on a watched
metric regressing beyond the threshold, and skip (never false-fail) when
the workloads are not comparable.
"""

import importlib.util
import io
import json
import os

import pytest

_TOOL = os.path.join(os.path.dirname(__file__), os.pardir, "tools",
                     "check_bench_trend.py")
_spec = importlib.util.spec_from_file_location("check_bench_trend", _TOOL)
trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trend)


def _harness_payload(events_per_second=1000.0, wall_per_sim=0.5,
                     params=None):
    return {
        "schema": "repro.bench/1",
        "params": params or {"quick": False},
        "derived": {
            "events_per_second": events_per_second,
            "wall_seconds_per_sim_second": wall_per_sim,
        },
        "results": [],
    }


def _sketch_payload(decode_ops=500.0, params=None):
    return {
        "schema": "repro.bench/1",
        "params": params or {"quick": False},
        "derived": {},
        "results": [
            {"name": "decode/d=64", "ops_per_second": decode_ops},
            {"name": "encode/d=64", "ops_per_second": 1.0},  # not watched
        ],
    }


def _write(directory, suite, payload):
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{suite}.json")
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream)
    return path


def test_watched_metrics_inverts_lower_is_better():
    metrics = trend.watched_metrics("harness", _harness_payload(
        events_per_second=100.0, wall_per_sim=0.25))
    assert metrics["derived.events_per_second"] == 100.0
    assert metrics["derived.sim_seconds_per_wall_second"] == 4.0
    sketch = trend.watched_metrics("sketch", _sketch_payload(decode_ops=7.0))
    assert sketch == {"result.decode/d=64.ops_per_second": 7.0}


def test_clean_comparison_passes(tmp_path):
    base, fresh = str(tmp_path / "base"), str(tmp_path / "fresh")
    _write(base, "harness", _harness_payload())
    _write(fresh, "harness", _harness_payload(events_per_second=1050.0))
    _write(base, "sketch", _sketch_payload())
    _write(fresh, "sketch", _sketch_payload(decode_ops=490.0))  # -2%: fine
    out = io.StringIO()
    code = trend.check_dirs(base, fresh, ["harness", "sketch"],
                            threshold=0.20, out=out)
    assert code == 0
    assert "bench trend ok" in out.getvalue()


@pytest.mark.parametrize("suite,slow_payload", [
    ("harness", _harness_payload(events_per_second=500.0)),   # -50% events/s
    ("harness", _harness_payload(wall_per_sim=1.0)),          # 2x wall cost
    ("sketch", _sketch_payload(decode_ops=300.0)),            # -40% decode
])
def test_injected_regression_fails(tmp_path, suite, slow_payload):
    base, fresh = str(tmp_path / "base"), str(tmp_path / "fresh")
    baseline = (_harness_payload() if suite == "harness"
                else _sketch_payload())
    _write(base, suite, baseline)
    _write(fresh, suite, slow_payload)
    out = io.StringIO()
    code = trend.check_dirs(base, fresh, [suite], threshold=0.20, out=out)
    assert code == 1
    assert "REGRESSION" in out.getvalue()


def test_params_mismatch_skips_instead_of_false_failing(tmp_path):
    # A --quick CI run against a committed full-size baseline must skip,
    # not report a bogus regression -- unless forced with --ignore-params.
    base, fresh = str(tmp_path / "base"), str(tmp_path / "fresh")
    _write(base, "harness", _harness_payload(events_per_second=1000.0))
    _write(fresh, "harness", _harness_payload(
        events_per_second=100.0, params={"quick": True}))
    out = io.StringIO()
    assert trend.check_dirs(base, fresh, ["harness"], 0.20, out=out) == 0
    assert "SKIPPED" in out.getvalue()
    assert trend.check_dirs(base, fresh, ["harness"], 0.20,
                            ignore_params=True, out=io.StringIO()) == 1


def test_missing_fresh_file_is_exit_2(tmp_path):
    base, fresh = str(tmp_path / "base"), str(tmp_path / "fresh")
    _write(base, "harness", _harness_payload())
    os.makedirs(fresh)
    assert trend.check_dirs(base, fresh, ["harness"], 0.20,
                            out=io.StringIO()) == 2


def test_missing_baseline_is_skipped_not_fatal(tmp_path):
    # Repos without a committed baseline yet must not fail CI.
    base, fresh = str(tmp_path / "base"), str(tmp_path / "fresh")
    os.makedirs(base)
    _write(fresh, "harness", _harness_payload())
    out = io.StringIO()
    assert trend.check_dirs(base, fresh, ["harness"], 0.20, out=out) == 0
    assert "no committed baseline" in out.getvalue()


def test_harness_sim_run_cases_are_watched():
    payload = _harness_payload()
    payload["results"] = [
        {"name": "sim/run/nodes=1000", "ops_per_second": 900.0},
        {"name": "sweep/serial/tasks=8", "ops_per_second": 5.0},  # not watched
    ]
    metrics = trend.watched_metrics("harness", payload)
    assert metrics["result.sim/run/nodes=1000.ops_per_second"] == 900.0
    assert "result.sweep/serial/tasks=8.ops_per_second" not in metrics


def test_sim_run_case_regression_fails(tmp_path):
    base, fresh = str(tmp_path / "base"), str(tmp_path / "fresh")
    slow, fast = _harness_payload(), _harness_payload()
    fast["results"] = [{"name": "sim/run/nodes=1000", "ops_per_second": 900.0}]
    slow["results"] = [{"name": "sim/run/nodes=1000", "ops_per_second": 300.0}]
    _write(base, "harness", fast)
    _write(fresh, "harness", slow)
    out = io.StringIO()
    code = trend.check_dirs(base, fresh, ["harness"], 0.20, out=out)
    assert code == 1
    assert "sim/run/nodes=1000" in out.getvalue()


def test_require_case_gates_on_fresh_file(tmp_path):
    base, fresh = str(tmp_path / "base"), str(tmp_path / "fresh")
    payload = _harness_payload()
    payload["results"] = [
        {"name": "sim/run/nodes=1000", "ops_per_second": 900.0}]
    _write(base, "harness", _harness_payload())  # baseline lacks the case
    _write(fresh, "harness", payload)
    out = io.StringIO()
    assert trend.check_dirs(
        base, fresh, ["harness"], 0.20,
        require_cases=["harness:sim/run/nodes=1000"], out=out) == 0
    assert "required case present" in out.getvalue()
    # A silently dropped case must hard-fail even when every comparable
    # metric held steady.
    _write(fresh, "harness", _harness_payload())
    assert trend.check_dirs(
        base, fresh, ["harness"], 0.20,
        require_cases=["harness:sim/run/nodes=1000"],
        out=io.StringIO()) == 2


def test_require_case_for_uncompared_suite_is_exit_2(tmp_path):
    base, fresh = str(tmp_path / "base"), str(tmp_path / "fresh")
    _write(base, "harness", _harness_payload())
    _write(fresh, "harness", _harness_payload())
    assert trend.check_dirs(
        base, fresh, ["harness"], 0.20,
        require_cases=["sketch:decode/d=64"], out=io.StringIO()) == 2


def test_require_case_cli_flag(tmp_path, capsys):
    base, fresh = str(tmp_path / "base"), str(tmp_path / "fresh")
    _write(base, "harness", _harness_payload())
    _write(fresh, "harness", _harness_payload())
    code = trend.main(["--baseline-dir", base, "--fresh-dir", fresh,
                       "--suites", "harness",
                       "--require-case", "harness:sim/run/nodes=1000"])
    assert code == 2
    assert "required case" in capsys.readouterr().err


def test_main_cli_roundtrip(tmp_path, capsys):
    base, fresh = str(tmp_path / "base"), str(tmp_path / "fresh")
    _write(base, "sketch", _sketch_payload())
    _write(fresh, "sketch", _sketch_payload(decode_ops=100.0))
    code = trend.main(["--baseline-dir", base, "--fresh-dir", fresh,
                       "--suites", "sketch"])
    assert code == 1
    assert "regressed beyond" in capsys.readouterr().err


def _obs_payload(off_ops=20000.0, params=None):
    return {
        "schema": "repro.bench/1",
        "params": params or {"quick": False},
        "derived": {"telemetry_off_events_per_second": off_ops},
        "results": [
            {"name": "sim/run/telemetry=off", "ops_per_second": off_ops},
            {"name": "sim/run/telemetry=trace",
             "ops_per_second": off_ops * 0.8},
            {"name": "tracer/message_event",       # micro case: not watched
             "ops_per_second": 1e6},
        ],
    }


def test_obs_suite_is_watched_by_default():
    assert "obs" in trend.DEFAULT_SUITES
    metrics = trend.watched_metrics("obs", _obs_payload(off_ops=20000.0))
    assert metrics["derived.telemetry_off_events_per_second"] == 20000.0
    assert metrics["result.sim/run/telemetry=off.ops_per_second"] == 20000.0
    assert metrics["result.sim/run/telemetry=trace.ops_per_second"] == 16000.0
    assert not any("message_event" in name for name in metrics)


def test_obs_off_path_regression_fails(tmp_path):
    """Overhead leaking into the telemetry-off path trips the gate."""
    _write(tmp_path / "base", "obs", _obs_payload(off_ops=20000.0))
    _write(tmp_path / "fresh", "obs", _obs_payload(off_ops=10000.0))
    code = trend.check_dirs(str(tmp_path / "base"), str(tmp_path / "fresh"),
                            ["obs"], threshold=0.20, out=io.StringIO())
    assert code == 1
