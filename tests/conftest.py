"""Shared fixtures for the test suite."""

import random

import pytest

from repro.core.config import LOConfig
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.net.latency import ConstantLatencyModel


@pytest.fixture
def rng():
    """A deterministic RNG for tests."""
    return random.Random(1234)


@pytest.fixture
def fast_config():
    """A config tuned for small, fast simulations."""
    return LOConfig(sync_interval_s=0.5, request_timeout_s=0.5)


def make_sim(
    num_nodes=12,
    seed=7,
    config=None,
    malicious_ids=(),
    attacker_factory=None,
    enable_blocks=False,
    constant_latency=0.02,
):
    """Build a small LO simulation with cheap constant latencies."""
    return LOSimulation(
        SimulationParams(
            num_nodes=num_nodes,
            seed=seed,
            config=config or LOConfig(),
            latency_model=ConstantLatencyModel(constant_latency),
            malicious_ids=list(malicious_ids),
            attacker_factory=attacker_factory,
            enable_blocks=enable_blocks,
        )
    )


@pytest.fixture
def small_sim():
    """A 12-node correct-only simulation."""
    return make_sim()
