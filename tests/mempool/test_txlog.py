"""Unit tests for the append-only transaction log."""

import pytest

from repro.crypto import KeyPair
from repro.mempool import TransactionLog, make_transaction

KP = KeyPair.generate(seed=b"log-client")


def make_tx(nonce):
    return make_transaction(KP, nonce, fee=10, created_at=0.0)


def test_append_preserves_order():
    log = TransactionLog()
    log.append(300)
    log.append(100)
    log.append(200)
    assert list(log.order) == [300, 100, 200]
    assert log.position(100) == 1


def test_append_duplicate_is_noop():
    log = TransactionLog()
    assert log.append(5)
    assert not log.append(5)
    assert len(log) == 1
    assert log.position(5) == 0


def test_append_many_returns_fresh_only():
    log = TransactionLog()
    log.append(1)
    added = log.append_many([1, 2, 3])
    assert added == [2, 3]
    assert list(log.order) == [1, 2, 3]


def test_contains_and_known_ids():
    log = TransactionLog()
    log.append_many([7, 8])
    assert 7 in log and 9 not in log
    assert log.known_ids() == {7, 8}


def test_ids_after():
    log = TransactionLog()
    log.append_many([1, 2, 3, 4])
    assert log.ids_after(2) == [3, 4]


def test_clock_tracks_appends():
    log = TransactionLog()
    log.append_many(range(1, 21))
    assert log.clock.total == 20


def test_content_lifecycle():
    log = TransactionLog()
    tx = make_tx(1)
    log.append(tx.sketch_id)
    assert log.content_of(tx.sketch_id) is None
    assert log.missing_content() == [tx.sketch_id]
    log.add_content(tx)
    assert log.content_of(tx.sketch_id) is tx
    assert log.missing_content() == []
    assert not log.is_invalid(tx.sketch_id)


def test_invalid_content_marked():
    log = TransactionLog()
    tx = make_tx(2)
    log.append(tx.sketch_id)
    log.add_content(tx, valid=False)
    assert log.is_invalid(tx.sketch_id)


def test_content_for_uncommitted_id_rejected():
    log = TransactionLog()
    with pytest.raises(KeyError):
        log.add_content(make_tx(3))


def test_full_sketch_decodes_log():
    log = TransactionLog(sketch_capacity=16)
    ids = [make_tx(n).sketch_id for n in range(1, 9)]
    log.append_many(ids)
    assert log.full_sketch().decode() == set(ids)


def test_cell_sketches_partition_the_log():
    log = TransactionLog(sketch_capacity=16)
    ids = [make_tx(n).sketch_id for n in range(1, 13)]
    log.append_many(ids)
    recovered = set()
    for cell in range(log.clock.cells):
        recovered |= log.sketch_for_cells([cell]).decode()
    assert recovered == set(ids)


def test_sketch_for_cells_matches_items_in_cells():
    log = TransactionLog(sketch_capacity=16)
    ids = [make_tx(n).sketch_id for n in range(1, 11)]
    log.append_many(ids)
    cells = [0, 1, 2, 3]
    sketched = log.sketch_for_cells(cells).decode()
    assert sketched == set(log.items_in_cells(cells))


def test_sketch_capacity_truncation():
    log = TransactionLog(sketch_capacity=32)
    small = log.sketch_for_cells(range(32), capacity=8)
    assert small.capacity == 8
    with pytest.raises(ValueError):
        log.sketch_for_cells(range(32), capacity=64)


def test_subset_sketch():
    log = TransactionLog(sketch_capacity=8)
    ids = [make_tx(n).sketch_id for n in range(1, 5)]
    log.append_many(ids)
    assert log.subset_sketch(ids[:2]).decode() == set(ids[:2])
