"""Eviction under pressure: the never-evict-a-better-tx invariant."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import KeyPair
from repro.mempool.admission import AdmissionConfig, Mempool
from repro.mempool.evict import Evictor
from repro.mempool.fee_market import FeeMarketConfig
from repro.mempool.priority import PriorityIndex
from repro.mempool.transaction import make_transaction
from repro.mempool.watermark import WatermarkConfig


def small_pool_config(max_bytes=1_000, low_fraction=1.0):
    return WatermarkConfig(max_pool_bytes=max_bytes, low_fraction=low_fraction,
                           max_age_s=1e9, max_pool_txs=50_000)


def test_make_room_noop_when_it_fits():
    index = PriorityIndex()
    evictor = Evictor(index, small_pool_config())
    assert evictor.make_room_for(1.0, 100) == []


def test_make_room_evicts_lowest_first():
    index = PriorityIndex()
    evictor = Evictor(index, small_pool_config(max_bytes=300))
    for i, priority in enumerate([3.0, 1.0, 2.0]):
        index.add(i, priority, seq=i, size_bytes=100)
    plan = evictor.make_room_for(5.0, 100)
    assert [p for _i, p in plan] == [1.0]
    assert 1 not in index and 0 in index and 2 in index


def test_make_room_refuses_to_evict_equal_or_better():
    index = PriorityIndex()
    evictor = Evictor(index, small_pool_config(max_bytes=200))
    index.add(1, 2.0, seq=1, size_bytes=100)
    index.add(2, 3.0, seq=2, size_bytes=100)
    # Incoming at priority 2.0 could only fit by evicting priority 2.0
    # or better; the plan must abort and leave the index untouched.
    assert evictor.make_room_for(2.0, 100) is None
    assert len(index) == 2 and index.total_bytes == 200
    assert index.peek_lowest() == (1, 2.0)


def test_hysteresis_drains_to_low_watermark():
    index = PriorityIndex()
    evictor = Evictor(index, small_pool_config(max_bytes=1_000,
                                               low_fraction=0.5))
    for i in range(10):
        index.add(i, float(i + 1), seq=i, size_bytes=100)
    plan = evictor.make_room_for(100.0, 100)
    # Not just one entry: the episode clears down to 500 bytes incl. the
    # incoming 100, so four evictions (1000 -> 400).
    assert len(plan) == 6
    assert index.total_bytes == 400


def test_expire_aged_skips_corpses():
    index = PriorityIndex()
    evictor = Evictor(index, WatermarkConfig(max_age_s=10.0))
    index.add(1, 1.0, seq=1, size_bytes=10)
    index.add(2, 2.0, seq=2, size_bytes=10)
    evictor.note_admitted(1, 0.0)
    evictor.note_admitted(2, 5.0)
    index.remove(1)  # drained elsewhere: a corpse in the age FIFO
    assert evictor.expire_aged(12.0) == []  # id 2 is only 7s old
    assert evictor.expire_aged(16.0) == [2]


@given(fees=st.lists(st.integers(min_value=10, max_value=10_000),
                     min_size=5, max_size=60),
       seed=st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=30, deadline=None)
def test_pressure_never_evicts_better_while_worse_remains(fees, seed):
    """Whole-pipeline invariant: after any eviction episode, everything
    still pooled has effective priority >= everything evicted by it."""
    rnd = random.Random(seed)
    config = AdmissionConfig(
        watermarks=small_pool_config(max_bytes=1_500),
        # Near-zero half-life: the eviction-elevated floor decays away
        # immediately, so the floor never masks the eviction path itself.
        fee_market=FeeMarketConfig(floor_halflife_s=1e-6),
    )
    pool = Mempool(config)
    for i, fee in enumerate(fees):
        keypair = KeyPair.generate(seed=f"evict-{seed}-{i}".encode())
        size = rnd.choice([150, 250, 400])
        tx = make_transaction(keypair, 1, fee, created_at=float(i),
                              size_bytes=size)
        before = {sid: e.priority for sid, e in pool._entries.items()}
        result = pool.admit(tx, now=float(i))
        after = set(pool._entries)
        evicted = [before[sid] for sid in before if sid not in after]
        if evicted:
            assert result.accepted
            incoming = fee / size
            remaining = [e.priority for e in pool._entries.values()]
            assert max(evicted) <= incoming
            assert max(evicted) <= min(remaining)
        assert pool.pool_bytes <= config.watermarks.max_pool_bytes
