"""The admission pipeline: rejection reasons, RBF, nonce FIFO, drain order."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import KeyPair
from repro.mempool.admission import (
    ACCEPTED,
    AdmissionConfig,
    Mempool,
    REJECT_REASONS,
    REPLACED,
    R_DUPLICATE,
    R_NONCE_GAP,
    R_POOL_FULL,
    R_RATE_LIMITED,
    R_REPLACE_UNDERPRICED,
    R_STALE_NONCE,
    R_UNDERPRICED,
)
from repro.mempool.fee_market import FeeMarketConfig
from repro.mempool.limiter import LimiterConfig
from repro.mempool.transaction import make_transaction
from repro.mempool.watermark import WatermarkConfig

KP = KeyPair.generate(seed=b"admission-test")
KP2 = KeyPair.generate(seed=b"admission-test-2")


def tx(keypair=KP, nonce=1, fee=100, created_at=0.0, size_bytes=250):
    return make_transaction(keypair, nonce, fee, created_at,
                            size_bytes=size_bytes)


def test_accept_and_duplicate():
    pool = Mempool()
    t = tx()
    assert pool.admit(t, now=0.0).reason == ACCEPTED
    assert t.sketch_id in pool
    assert pool.admit(t, now=1.0).reason == R_DUPLICATE
    assert len(pool) == 1


def test_underpriced_rejected():
    config = AdmissionConfig(fee_market=FeeMarketConfig(min_fee_rate=1.0))
    pool = Mempool(config)
    assert pool.admit(tx(fee=100, size_bytes=250), 0.0).reason == R_UNDERPRICED
    assert pool.admit(tx(fee=250, size_bytes=250), 0.0).reason == ACCEPTED


def test_stale_and_gapped_nonces():
    pool = Mempool(AdmissionConfig(max_nonce_gap=2))
    assert pool.admit(tx(nonce=5), 0.0).accepted  # anchors next_nonce at 5
    assert pool.admit(tx(nonce=4, fee=999), 0.0).reason == R_STALE_NONCE
    assert pool.admit(tx(nonce=7), 0.0).accepted  # within the gap
    assert pool.admit(tx(nonce=8, fee=999), 0.0).reason == R_NONCE_GAP


def test_rbf_requires_fee_and_rate_bump():
    pool = Mempool()
    old = tx(fee=100)
    assert pool.admit(old, 0.0).accepted
    # Same slot, insufficient bump: rejected, original stays pooled.
    low = tx(fee=105, created_at=1.0)
    assert pool.admit(low, 1.0).reason == R_REPLACE_UNDERPRICED
    assert old.sketch_id in pool and low.sketch_id not in pool
    # Sufficient absolute bump but a worse rate: still rejected.
    fat = tx(fee=110, created_at=1.0, size_bytes=500)
    assert pool.admit(fat, 1.0).reason == R_REPLACE_UNDERPRICED
    # The advertised 10% bump at the same size replaces.
    good = tx(fee=110, created_at=1.0)
    result = pool.admit(good, 1.0)
    assert result.reason == REPLACED
    assert result.replaced_txid == old.txid
    assert old.sketch_id not in pool and good.sketch_id in pool
    assert len(pool) == 1


def test_rate_limiter_rejects_floods():
    config = AdmissionConfig(limiter=LimiterConfig(rate_per_s=1.0, burst=3.0))
    pool = Mempool(config)
    reasons = [pool.admit(tx(nonce=n), now=0.0, peer="p").reason
               for n in range(1, 6)]
    assert reasons == [ACCEPTED] * 3 + [R_RATE_LIMITED] * 2
    # peer=None skips metering entirely.
    assert pool.admit(tx(nonce=4), now=0.0, peer=None).accepted


def test_pool_full_rejects_cheap_incoming():
    config = AdmissionConfig(
        watermarks=WatermarkConfig(max_pool_bytes=500, low_fraction=1.0,
                                   max_age_s=1e9, max_pool_txs=50_000))
    pool = Mempool(config)
    assert pool.admit(tx(keypair=KP, fee=100), 0.0).accepted
    assert pool.admit(tx(keypair=KP2, fee=100), 0.0).accepted
    cheap = KeyPair.generate(seed=b"cheap")
    assert pool.admit(tx(keypair=cheap, fee=10), 0.0).reason == R_POOL_FULL
    assert len(pool) == 2


def test_eviction_raises_floor():
    config = AdmissionConfig(
        watermarks=WatermarkConfig(max_pool_bytes=500, low_fraction=1.0,
                                   max_age_s=1e9, max_pool_txs=50_000))
    pool = Mempool(config)
    pool.admit(tx(keypair=KP, fee=100), 0.0)
    pool.admit(tx(keypair=KP2, fee=100), 0.0)
    rich = KeyPair.generate(seed=b"rich")
    assert pool.admit(tx(keypair=rich, fee=1000), 0.0).accepted
    assert pool.counters["evicted_pool_full"] >= 1
    # The floor now sits above the evicted entry's fee rate and decays.
    assert pool.floor(0.0) > 100 / 250
    assert pool.floor(1e6) == config.fee_market.min_fee_rate


def test_drain_price_and_nonce_order():
    pool = Mempool()
    # KP: three contiguous nonces, mid-priced.  KP2: one expensive tx.
    for nonce, fee in ((1, 300), (2, 200), (3, 100)):
        assert pool.admit(tx(keypair=KP, nonce=nonce, fee=fee), 0.0).accepted
    assert pool.admit(tx(keypair=KP2, nonce=1, fee=250), 0.0).accepted
    batch = pool.drain(now=1.0)
    order = [(t.sender.raw, t.nonce) for t in batch]
    # Global priority picks KP/1 (300) first, then KP2/1 (250), then the
    # successors in nonce order; per sender the nonces ascend strictly.
    assert order[0] == (KP.public_key.raw, 1)
    assert order[1] == (KP2.public_key.raw, 1)
    assert [n for s, n in order if s == KP.public_key.raw] == [1, 2, 3]
    assert pool.counters["drained"] == 4
    assert len(pool) == 0


def test_drain_respects_batch_limit():
    pool = Mempool(AdmissionConfig(drain_batch_size=2))
    for nonce in range(1, 6):
        pool.admit(tx(nonce=nonce), 0.0)
    assert len(pool.drain(1.0)) == 2
    assert len(pool.drain(2.0, limit=10)) == 3


def test_gap_closes_after_drain():
    pool = Mempool(AdmissionConfig(max_nonce_gap=1))
    assert pool.admit(tx(nonce=1), 0.0).accepted
    assert pool.admit(tx(nonce=3, fee=999), 0.0).reason == R_NONCE_GAP
    pool.drain(1.0)  # drains nonce 1 -> next_nonce becomes 2
    assert pool.admit(tx(nonce=3, fee=999, created_at=1.0), 1.0).accepted


def test_age_expiry_leaves_gap_then_resubmission_works():
    config = AdmissionConfig(
        watermarks=WatermarkConfig(max_age_s=10.0))
    pool = Mempool(config)
    pool.admit(tx(nonce=1), 0.0)
    pool.admit(tx(nonce=2), 0.0)
    assert pool.drain(now=20.0) == []  # both aged out before draining
    assert pool.counters["expired_age"] == 2
    # next_nonce never advanced, so the sender may resubmit nonce 1.
    assert pool.admit(tx(nonce=1, created_at=21.0), 21.0).accepted


def test_rejection_breakdown_covers_all_reasons():
    pool = Mempool()
    assert tuple(pool.rejection_breakdown()) == REJECT_REASONS
    assert all(v == 0 for v in pool.rejection_breakdown().values())


# -- properties --------------------------------------------------------

fees = st.integers(min_value=10, max_value=10_000)


@given(old_fee=fees)
@settings(max_examples=60)
def test_rbf_bump_is_strictly_monotone(old_fee):
    """required_replacement_fee always strictly exceeds the old fee, and
    its own replacement requirement exceeds it again (chains of accepted
    replacements have strictly increasing fees)."""
    from repro.mempool.fee_market import FeeMarket

    market = FeeMarket(FeeMarketConfig())
    required = market.required_replacement_fee(old_fee)
    assert required > old_fee
    assert market.required_replacement_fee(required) > required


@given(old_fee=fees, delta=st.integers(min_value=-50, max_value=50))
@settings(max_examples=60)
def test_rbf_threshold_is_exact(old_fee, delta):
    """Same-size replacements are accepted iff fee >= the integer bound."""
    from repro.mempool.fee_market import FeeMarket

    market = FeeMarket(FeeMarketConfig())
    required = market.required_replacement_fee(old_fee)
    new_fee = max(0, required + delta)
    old = tx(fee=old_fee)
    new = tx(fee=new_fee, created_at=1.0)
    assert market.replacement_ok(old, new) == (new_fee >= required)


@given(nonces=st.lists(st.integers(min_value=1, max_value=60),
                       min_size=1, max_size=30))
@settings(max_examples=60)
def test_pooled_nonces_always_within_gap_of_anchor(nonces):
    """Whatever the submission order, every pooled nonce sits in the
    window [next_nonce, next_nonce + max_nonce_gap] and duplicates take
    the RBF path instead of double-pooling."""
    gap = 5
    pool = Mempool(AdmissionConfig(max_nonce_gap=gap))
    anchor = None
    for i, nonce in enumerate(nonces):
        result = pool.admit(tx(nonce=nonce, created_at=float(i)), float(i))
        if anchor is None and result.accepted:
            anchor = nonce
    pooled = sorted(
        entry.tx.nonce for entry in pool._entries.values()
    )
    assert len(pooled) == len(set(pooled))  # one entry per (sender, nonce)
    if pooled:
        assert anchor is not None
        assert pooled[0] >= anchor
        assert pooled[-1] <= anchor + gap
