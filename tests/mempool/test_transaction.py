"""Unit tests for transactions and prevalidation."""

import pytest

from repro.crypto import KeyPair
from repro.mempool import Transaction, TransactionError, make_transaction, prevalidate

KP = KeyPair.generate(seed=b"client")


def tx(fee=10, size=250, nonce=1):
    return make_transaction(KP, nonce, fee, created_at=1.0, size_bytes=size)


def test_signature_valid_roundtrip():
    assert tx().signature_valid()


def test_txid_and_sketch_id_derived():
    t = tx()
    assert len(t.txid) == 32
    assert 1 <= t.sketch_id < 2 ** 32


def test_distinct_nonces_distinct_ids():
    assert tx(nonce=1).txid != tx(nonce=2).txid


def test_identical_content_identical_ids():
    assert tx().txid == tx().txid


def test_forged_signature_detected():
    t = tx()
    forged = Transaction(
        sender=t.sender,
        nonce=t.nonce,
        fee=t.fee + 1,  # tampered fee
        size_bytes=t.size_bytes,
        created_at=t.created_at,
        payload=t.payload,
        signature=t.signature,
    )
    assert not forged.signature_valid()


def test_invalid_fields_rejected():
    with pytest.raises(TransactionError):
        tx(size=0)
    with pytest.raises(TransactionError):
        tx(fee=-1)


def test_prevalidate_accepts_valid():
    assert prevalidate(tx())


def test_prevalidate_rejects_bad_signature():
    t = tx()
    bad = Transaction(
        sender=t.sender,
        nonce=t.nonce,
        fee=t.fee,
        size_bytes=t.size_bytes,
        created_at=t.created_at,
        payload=b"changed",
        signature=t.signature,
    )
    assert not prevalidate(bad)


def test_prevalidate_fee_floor():
    assert not prevalidate(tx(fee=1), min_fee=5)
    assert prevalidate(tx(fee=5), min_fee=5)


def test_prevalidate_size_cap():
    assert not prevalidate(tx(size=2000), max_size=1000)


def test_prevalidate_extra_checks():
    reject_all = [lambda t: False]
    assert not prevalidate(tx(), extra_checks=reject_all)
    accept_all = [lambda t: True, lambda t: True]
    assert prevalidate(tx(), extra_checks=accept_all)


def test_wire_size_is_declared_size():
    assert tx(size=300).wire_size() == 300
