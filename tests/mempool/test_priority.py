"""The bucketed priority index: min-order, ties, lazy removal."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mempool.priority import (
    PriorityIndex,
    bucket_of,
    effective_priority,
)


def test_effective_priority_is_fee_per_byte():
    assert effective_priority(500, 250) == 2.0
    assert effective_priority(1, 500) == 0.002


def test_bucket_of_is_monotone_in_priority():
    priorities = [0.001, 0.004, 0.1, 1.0, 2.0, 16.0, 1000.0]
    bands = [bucket_of(p) for p in priorities]
    assert bands == sorted(bands)
    assert bucket_of(2.0) == bucket_of(1.0) + 1


def test_pop_lowest_orders_by_priority():
    index = PriorityIndex()
    for i, priority in enumerate([5.0, 1.0, 3.0, 0.5, 2.0]):
        index.add(i, priority, seq=i, size_bytes=10)
    popped = [index.pop_lowest() for _ in range(5)]
    assert [p for _i, p in popped] == [0.5, 1.0, 2.0, 3.0, 5.0]
    assert index.pop_lowest() is None


def test_equal_priority_evicts_newest_first():
    index = PriorityIndex()
    index.add(1, 1.0, seq=1, size_bytes=10)
    index.add(2, 1.0, seq=2, size_bytes=10)
    index.add(3, 1.0, seq=3, size_bytes=10)
    assert [index.pop_lowest()[0] for _ in range(3)] == [3, 2, 1]


def test_lazy_removal_and_bytes_accounting():
    index = PriorityIndex()
    index.add(1, 1.0, seq=1, size_bytes=100)
    index.add(2, 2.0, seq=2, size_bytes=50)
    assert index.total_bytes == 150
    assert index.remove(1)
    assert not index.remove(1)  # second removal is a no-op
    assert index.total_bytes == 50
    assert len(index) == 1
    # The corpse never surfaces through peek/pop.
    assert index.peek_lowest() == (2, 2.0)


def test_info_snapshot_supports_rollback():
    index = PriorityIndex()
    index.add(7, 1.5, seq=3, size_bytes=42)
    priority, seq, size_bytes = index.info(7)
    index.remove(7)
    assert index.info(7) is None
    index.add(7, priority, seq, size_bytes)
    assert index.peek_lowest() == (7, 1.5)
    assert index.total_bytes == 42


def test_band_histogram_counts_live_entries():
    index = PriorityIndex()
    index.add(1, 1.0, seq=1, size_bytes=10)
    index.add(2, 1.0, seq=2, size_bytes=10)
    index.add(3, 64.0, seq=3, size_bytes=10)
    hist = index.band_histogram()
    assert sum(hist.values()) == 3
    assert hist[bucket_of(1.0)] == 2
    index.remove(3)
    assert bucket_of(64.0) not in index.band_histogram()


entries = st.lists(
    st.tuples(st.floats(min_value=0.001, max_value=100.0,
                        allow_nan=False, allow_infinity=False),
              st.integers(min_value=1, max_value=500)),
    min_size=1, max_size=40,
)


@given(entries=entries, removals=st.sets(st.integers(0, 39)))
@settings(max_examples=60)
def test_pop_sequence_matches_sorted_reference(entries, removals):
    """After arbitrary adds and removals, pop_lowest drains the survivors
    in exactly (priority asc, seq desc) order."""
    index = PriorityIndex()
    for i, (priority, size) in enumerate(entries):
        index.add(i, priority, seq=i, size_bytes=size)
    for i in removals:
        if i < len(entries):
            index.remove(i)
    alive = [i for i in range(len(entries)) if i not in removals]
    expected = sorted(alive, key=lambda i: (entries[i][0], -i))
    drained = []
    while True:
        popped = index.pop_lowest()
        if popped is None:
            break
        drained.append(popped[0])
    assert drained == expected
    assert index.total_bytes == 0
