"""Token-bucket rate limiting: determinism, refill, state bounds."""

import random

from repro.mempool.limiter import LimiterConfig, TokenBucketLimiter


def test_burst_then_refill():
    limiter = TokenBucketLimiter(LimiterConfig(rate_per_s=2.0, burst=3.0))
    assert [limiter.allow("p", 0.0) for _ in range(4)] == \
        [True, True, True, False]
    # Half a second refills one token.
    assert limiter.allow("p", 0.5)
    assert not limiter.allow("p", 0.5)


def test_peers_are_metered_independently():
    limiter = TokenBucketLimiter(LimiterConfig(rate_per_s=1.0, burst=1.0))
    assert limiter.allow("a", 0.0)
    assert not limiter.allow("a", 0.0)
    assert limiter.allow("b", 0.0)


def test_refill_caps_at_burst():
    limiter = TokenBucketLimiter(LimiterConfig(rate_per_s=10.0, burst=5.0))
    limiter.allow("p", 0.0)
    assert limiter.tokens_of("p", 1_000.0) == 5.0


def test_prune_forgets_refilled_peers():
    limiter = TokenBucketLimiter(LimiterConfig(rate_per_s=10.0, burst=2.0))
    for peer in range(100):
        limiter.allow(peer, 0.0)
    assert limiter.active_peers() == 100
    limiter.allow("busy", 0.0)
    limiter.allow("busy", 0.2)  # still one token short at t=0.2
    # By t=1 every t=0 bucket has refilled to full; "busy" has not.
    assert limiter.prune(0.25) == 100
    assert limiter.active_peers() == 1
    # Pruning changes no verdict: the forgotten peers are full again.
    assert limiter.allow(0, 0.25)


def test_prune_changes_no_future_verdict():
    config = LimiterConfig(rate_per_s=5.0, burst=3.0)
    pruned, plain = TokenBucketLimiter(config), TokenBucketLimiter(config)
    rnd = random.Random(3)
    now = 0.0
    for step in range(300):
        now += rnd.expovariate(10.0)
        peer = rnd.randrange(4)
        assert pruned.allow(peer, now) == plain.allow(peer, now)
        if step % 10 == 0:
            pruned.prune(now)


def test_same_schedule_same_verdicts():
    """Two limiters fed the identical (peer, time) schedule agree on
    every verdict -- the determinism contract the pipeline relies on."""
    rnd = random.Random(7)
    schedule = []
    now = 0.0
    for _ in range(500):
        now += rnd.expovariate(50.0)
        schedule.append((rnd.randrange(5), now))
    config = LimiterConfig(rate_per_s=5.0, burst=3.0)
    a, b = TokenBucketLimiter(config), TokenBucketLimiter(config)
    verdicts_a = [a.allow(peer, t) for peer, t in schedule]
    verdicts_b = [b.allow(peer, t) for peer, t in schedule]
    assert verdicts_a == verdicts_b
    assert False in verdicts_a  # the limiter actually bit
