"""Detection tests for the three block-building attacks."""

import pytest

from repro.attacks.blockattacks import (
    BlockspaceCensorNode,
    InjectingNode,
    ReorderingNode,
    make_block_attacker_factory,
)
from repro.core.policies import ViolationKind
from tests.conftest import make_sim


def run_attack(attacker_cls, censor_predicate=None, num_nodes=12):
    factory = make_block_attacker_factory(attacker_cls, censor_predicate)
    sim = make_sim(
        num_nodes=num_nodes, malicious_ids=[0], attacker_factory=factory
    )
    for i in range(6):
        sim.inject_at(0.2 + 0.1 * i, (i % (num_nodes - 1)) + 1, fee=10)
    sim.run(10.0)  # converge mempools
    sim.nodes[0].on_leader_elected()  # attacker builds its block
    sim.run(20.0)
    return sim


def exposure_kinds(sim):
    key = sim.directory.key_of(0)
    kinds = set()
    for nid in sim.correct_ids:
        blame = sim.nodes[nid].acct.exposed.get(key)
        if blame is not None and blame.block_violation is not None:
            kinds.add(blame.block_violation.violation.kind)
    return kinds


def exposed_count(sim):
    key = sim.directory.key_of(0)
    return sum(
        1 for nid in sim.correct_ids if sim.nodes[nid].acct.is_exposed(key)
    )


def test_injection_detected_as_uncommitted_tx():
    sim = run_attack(InjectingNode)
    assert exposed_count(sim) == len(sim.correct_ids)
    assert exposure_kinds(sim) == {ViolationKind.UNCOMMITTED_TX_IN_BODY}


def test_reordering_detected_as_order_deviation():
    sim = run_attack(ReorderingNode)
    assert exposed_count(sim) == len(sim.correct_ids)
    assert exposure_kinds(sim) == {ViolationKind.ORDER_DEVIATION}


def test_blockspace_censorship_detected_as_missing_tx():
    sim = run_attack(BlockspaceCensorNode, censor_predicate=lambda i: i % 2 == 0)
    attacker = sim.nodes[0]
    assert attacker.censored_in_blocks  # it actually censored something
    assert exposed_count(sim) == len(sim.correct_ids)
    assert exposure_kinds(sim) == {ViolationKind.MISSING_COMMITTED_TX}


def test_attacked_block_still_settles():
    # Inspection is separate from validation: the bad block is in the
    # chain even though its creator is exposed (paper section 4.3).
    sim = run_attack(ReorderingNode)
    for nid in sim.correct_ids:
        assert sim.nodes[nid].ledger.height == 0


def test_injected_ids_recorded_by_attacker():
    sim = run_attack(InjectingNode)
    attacker = sim.nodes[0]
    block = attacker.ledger.block_at(0)
    assert attacker.injected_ids
    assert attacker.injected_ids <= set(block.tx_ids)


def test_honest_leader_after_attack_is_clean():
    sim = run_attack(ReorderingNode)
    sim.inject_at(sim.loop.now + 0.5, 2, fee=10)
    sim.run(sim.loop.now + 8.0)
    sim.nodes[3].on_leader_elected()
    sim.run(sim.loop.now + 10.0)
    key3 = sim.directory.key_of(3)
    for nid in sim.correct_ids:
        assert not sim.nodes[nid].acct.is_exposed(key3)
