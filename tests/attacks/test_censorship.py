"""Tests for the censoring attacker and its detection."""

from repro.attacks import CensoringNode, make_censor_factory
from tests.conftest import make_sim


def censor_sim(num_nodes=16, mal=(0, 1), equivocate=False, **kwargs):
    factory = make_censor_factory(
        set(mal), ignore_sync=True, drop_blames=True, equivocate=equivocate,
        **kwargs,
    )
    return make_sim(
        num_nodes=num_nodes, malicious_ids=mal, attacker_factory=factory
    )


def test_pure_censor_gets_suspected_not_exposed():
    sim = censor_sim()
    sim.inject_at(0.5, 3, fee=10)
    sim.run(30.0)
    keys = [sim.directory.key_of(i) for i in (0, 1)]
    for nid in sim.correct_ids:
        acct = sim.nodes[nid].acct
        for key in keys:
            assert acct.is_suspected(key) or acct.is_exposed(key)
    # No equivocation: nothing provable, so no exposures.
    assert not any(
        sim.nodes[nid].acct.exposed for nid in sim.correct_ids
    )


def test_equivocating_censor_gets_exposed_everywhere():
    sim = censor_sim(equivocate=True)
    # The attackers must have committed to *something* for two forks of
    # their history to exist, so inject through them too (as the random-
    # origin Fig. 6 workload does).
    sim.inject_at(0.3, 0, fee=10)
    sim.inject_at(0.4, 1, fee=10)
    sim.inject_at(0.5, 3, fee=10)
    sim.run(40.0)
    keys = [sim.directory.key_of(i) for i in (0, 1)]
    for nid in sim.correct_ids:
        for key in keys:
            assert sim.nodes[nid].acct.is_exposed(key)


def test_correct_nodes_still_converge_despite_censors():
    sim = censor_sim()
    tx = None

    def capture():
        nonlocal tx
        tx = sim.nodes[5].create_transaction(fee=10)

    sim.loop.call_at(0.5, capture)
    sim.run(25.0)
    holders = sum(
        1 for nid in sim.correct_ids if tx.sketch_id in sim.nodes[nid].log
    )
    assert holders == len(sim.correct_ids)


def test_censor_ids_predicate_blocks_commitment():
    sim = make_sim(num_nodes=10, malicious_ids=[0],
                   attacker_factory=make_censor_factory(
                       {0}, ignore_sync=False, drop_blames=False,
                       censor_predicate=lambda i: True))
    attacker = sim.nodes[0]
    assert isinstance(attacker, CensoringNode)
    sim.inject_at(0.5, 4, fee=10)
    sim.run(15.0)
    # The attacker refused to commit anything at all.
    assert len(attacker.log) == 0


def test_colluders_keep_talking_to_each_other():
    sim = censor_sim(num_nodes=14, mal=(0, 1, 2))
    attacker = sim.nodes[0]
    assert attacker.colluders == {1, 2}
    assert attacker._is_colluder(1)
    assert not attacker._is_colluder(5)


def test_blame_dropping_swallows_gossip():
    sim = censor_sim()
    attacker = sim.nodes[0]
    from repro.net.message import Message

    before = dict(attacker.acct.exposed)
    attacker.on_message(
        Message(5, 0, "lo/exposure", object(), wire_bytes=10)
    )
    assert attacker.acct.exposed == before  # swallowed, not processed
