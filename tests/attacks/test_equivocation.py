"""Detection tests for the pure equivocation (fork) attacker."""

from repro.attacks import EquivocatingNode
from tests.conftest import make_sim


def equivocator_sim(num_nodes=14):
    return make_sim(
        num_nodes=num_nodes,
        malicious_ids=[0],
        attacker_factory=lambda **kwargs: EquivocatingNode(**kwargs),
    )


def test_fork_produces_conflicting_headers():
    sim = equivocator_sim()
    attacker = sim.nodes[0]
    attacker.create_transaction(fee=10)
    honest = attacker._header_for_peer(2)   # even peer: fork A (honest)
    forked = attacker._header_for_peer(3)   # odd peer: fork B
    assert honest.seq == forked.seq
    assert honest.digests != forked.digests
    assert honest.signature_valid() and forked.signature_valid()
    assert not honest.consistent_with(forked)


def test_equivocator_eventually_exposed_network_wide():
    sim = equivocator_sim()
    sim.inject_at(0.3, 0, fee=10)  # attacker originates a tx -> must commit
    sim.inject_at(0.6, 5, fee=10)
    sim.run(45.0)
    key = sim.directory.key_of(0)
    exposed = sum(
        1 for nid in sim.correct_ids if sim.nodes[nid].acct.is_exposed(key)
    )
    assert exposed == len(sim.correct_ids)


def test_exposure_evidence_is_equivocation():
    sim = equivocator_sim()
    sim.inject_at(0.3, 0, fee=10)
    sim.inject_at(0.6, 5, fee=10)
    sim.run(45.0)
    key = sim.directory.key_of(0)
    blames = [
        sim.nodes[nid].acct.exposed.get(key) for nid in sim.correct_ids
    ]
    assert all(b is not None and b.equivocation is not None for b in blames)
    assert all(b.verify() for b in blames)


def test_correct_nodes_not_exposed_alongside():
    sim = equivocator_sim()
    sim.inject_at(0.3, 2, fee=10)
    sim.run(45.0)
    correct_keys = {sim.directory.key_of(i) for i in sim.correct_ids}
    for nid in sim.correct_ids:
        assert correct_keys.isdisjoint(sim.nodes[nid].acct.exposed)
