"""Tests for off-channel collusion and commitment-chain tracing."""

from repro.attacks import OffChannelNode, trace_commitment_chain
from repro.core.policies import ViolationKind
from tests.conftest import make_sim


def collusion_sim(launder, num_nodes=14, colluders=(0, 1)):
    def factory(**kwargs):
        node = OffChannelNode(**kwargs)
        node.peers_off_channel = set(colluders) - {kwargs["node_id"]}
        node.launder = launder
        return node

    return make_sim(
        num_nodes=num_nodes,
        malicious_ids=list(colluders),
        attacker_factory=factory,
    )


def seed_and_converge(sim, origin=5):
    tx = None

    def create():
        nonlocal tx
        tx = sim.nodes[origin].create_transaction(fee=500)

    sim.loop.call_at(0.3, create)
    sim.run(12.0)
    return tx


def test_offchannel_tx_reaches_colluder_secretly():
    sim = collusion_sim(launder=False)
    tx = seed_and_converge(sim)
    colluder = sim.nodes[0]
    # Off-channel: it may hold the tx without having committed to it, or
    # have learned it via the normal protocol; the stolen store records
    # the covert copy either way.
    assert tx.sketch_id in colluder.stolen or tx.sketch_id in colluder.log


def test_injection_variant_is_exposed_by_inspection():
    sim = collusion_sim(launder=False)
    tx = seed_and_converge(sim)
    attacker = sim.nodes[0]
    if tx.sketch_id in attacker.log:
        # Learned legitimately this run; remove from log view is impossible,
        # so force the covert copy to exercise the attack path.
        attacker.stolen.pop(tx.sketch_id, None)
        return  # nothing covert to test this run
    attacker.on_leader_elected()
    sim.run(sim.loop.now + 15.0)
    key = sim.directory.key_of(0)
    exposed = [
        sim.nodes[nid].acct.exposed.get(key) for nid in sim.correct_ids
    ]
    kinds = {
        b.block_violation.violation.kind
        for b in exposed
        if b is not None and b.block_violation is not None
    }
    assert ViolationKind.UNCOMMITTED_TX_IN_BODY in kinds


def test_laundering_variant_traced_to_culprit():
    sim = collusion_sim(launder=True)
    tx = seed_and_converge(sim)
    attacker = sim.nodes[0]
    covert = tx.sketch_id in attacker.stolen and tx.sketch_id not in attacker.log
    attacker.on_leader_elected()
    sim.run(sim.loop.now + 10.0)
    if not covert:
        return  # attacker learned the tx legitimately this run
    result = trace_commitment_chain(
        sim.nodes, tx.sketch_id, block_creator=0, true_origin=5
    )
    assert result.culprit == 0
    assert "origin's commitment" in result.reason


def test_trace_clears_honest_chain():
    sim = make_sim(num_nodes=10)
    tx = sim.nodes[4].create_transaction(fee=10)
    sim.run(10.0)
    # Pick any node that learned the tx through reconciliation and walk back.
    learner = next(
        nid for nid in sim.nodes
        if nid != 4 and tx.sketch_id in sim.nodes[nid].log
    )
    result = trace_commitment_chain(
        sim.nodes, tx.sketch_id, block_creator=learner, true_origin=4
    )
    assert result.culprit is None
    assert result.chain[-1].node_id == 4


def test_trace_blames_node_without_commitment():
    sim = make_sim(num_nodes=8)
    tx = sim.nodes[2].create_transaction(fee=10)
    sim.run(8.0)
    # Node 3 never committed? Force the scenario with a node that did not
    # learn the tx (crash it before propagation is impossible here, so we
    # simulate by tracing from a node lacking the commitment).
    stranger = next(
        (nid for nid in sim.nodes if tx.sketch_id not in sim.nodes[nid].log),
        None,
    )
    if stranger is None:
        # Everyone learned it; synthesize by querying an empty dummy node.
        class Dummy:
            bundles = []

        nodes = dict(sim.nodes)
        nodes[99] = Dummy()
        result = trace_commitment_chain(nodes, tx.sketch_id, 99, 2)
    else:
        result = trace_commitment_chain(sim.nodes, tx.sketch_id, stranger, 2)
    assert result.culprit is not None
    assert "without any commitment" in result.reason
