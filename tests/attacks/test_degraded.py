"""Accuracy under degraded behaviour: slow nodes and spam."""

from repro.attacks.degraded import SlowNode, SpamClientNode
from repro.core.config import LOConfig
from tests.conftest import make_sim


def slow_factory(delay):
    def factory(**kwargs):
        node = SlowNode(**kwargs)
        node.extra_delay_s = delay
        return node

    return factory


def test_slow_node_with_paper_budget_never_exposed():
    # 0.8 s processing delay against a 1 s timeout with 3 retries: slow but
    # within the retry budget once responses start flowing.
    sim = make_sim(
        num_nodes=10, malicious_ids=[4],
        attacker_factory=slow_factory(0.8),
    )
    for i in range(6):
        sim.inject_at(0.2 + 0.3 * i, i % 10, fee=10)
    sim.run(40.0)
    key = sim.directory.key_of(4)
    # No false positives: never exposed.
    for nid in sim.nodes:
        assert not sim.nodes[nid].acct.is_exposed(key)


def test_slow_node_converges_eventually():
    sim = make_sim(
        num_nodes=10, malicious_ids=[4],
        attacker_factory=slow_factory(0.8),
    )
    sim.inject_at(0.5, 0, fee=10)
    sim.run(30.0)
    item = sim.mempool_tracker.items()[0]
    assert item in sim.nodes[4].log


def test_slow_node_not_perpetually_suspected():
    sim = make_sim(
        num_nodes=10, malicious_ids=[4],
        attacker_factory=slow_factory(0.8),
    )
    for i in range(5):
        sim.inject_at(0.2 + 0.3 * i, i % 10, fee=10)
    sim.run(30.0)
    # Quiet period: the slow node answers everything outstanding.
    sim.run(80.0)
    key = sim.directory.key_of(4)
    suspecters = [
        nid for nid in sim.correct_ids if sim.nodes[nid].acct.is_suspected(key)
    ]
    assert not suspecters


def test_slow_node_near_timeout_transiently_suspected_then_cleared():
    # Temporal accuracy (section 3.2): a correct-but-slow node whose
    # processing delay lands just beyond the request timeout IS suspected
    # transiently, is NEVER exposed, and the suspicion clears once its
    # (late) answers land.  Retries are disabled so the first missed
    # deadline already raises the suspicion.
    config = LOConfig(request_timeout_s=1.0, request_retries=0)
    sim = make_sim(
        num_nodes=10, config=config, malicious_ids=[4],
        attacker_factory=slow_factory(1.2),
    )
    for i in range(6):
        sim.inject_at(0.2 + 0.3 * i, i % 10, fee=10)
    key = sim.directory.key_of(4)
    ever_suspected = False
    for checkpoint in range(1, 31):
        sim.run(float(checkpoint))
        ever_suspected = ever_suspected or any(
            sim.nodes[nid].acct.is_suspected(key) for nid in sim.correct_ids
        )
        # No false positives, at every sampled instant.
        assert not any(
            sim.nodes[nid].acct.is_exposed(key) for nid in sim.correct_ids
        )
    assert ever_suspected  # the deadline misses were noticed...
    sim.run(90.0)  # ...and a quiet period lets the late answers clear them
    assert not any(
        sim.nodes[nid].acct.is_suspected(key) for nid in sim.correct_ids
    )
    assert not any(
        sim.nodes[nid].acct.is_exposed(key) for nid in sim.correct_ids
    )
    # The slow node still converged (it is correct, just late).
    for item in sim.mempool_tracker.items():
        assert item in sim.nodes[4].log


def test_invalid_spam_never_committed():
    sim = make_sim(
        num_nodes=8, malicious_ids=[0],
        attacker_factory=lambda **kw: SpamClientNode(**kw),
    )
    spammer = sim.nodes[0]
    accepted = spammer.spam_invalid(count=10)
    assert accepted == 0
    assert len(spammer.log) == 0
    sim.run(10.0)
    # Nothing leaked into the network either.
    for node in sim.nodes.values():
        assert len(node.log) == 0


def test_dust_committed_but_kept_out_of_blocks():
    config = LOConfig(min_fee=5)
    sim = make_sim(
        num_nodes=8, config=config, malicious_ids=[0],
        attacker_factory=lambda **kw: SpamClientNode(**kw),
    )
    spammer = sim.nodes[0]
    dust = spammer.spam_dust(count=4, fee=1)
    good = sim.nodes[2].create_transaction(fee=50)
    sim.run(10.0)
    # Dust is committed everywhere (Inclusion of All Transactions)...
    for node in sim.nodes.values():
        for tx in dust:
            assert tx.sketch_id in node.log
    # ...but blocks exclude it, and inspection agrees.
    sim.nodes[3].on_leader_elected()
    sim.run(20.0)
    block = sim.nodes[1].ledger.block_at(0)
    assert good.sketch_id in block.tx_ids
    for tx in dust:
        assert tx.sketch_id not in block.tx_ids
    for node in sim.nodes.values():
        assert not node.acct.exposed
