"""Tests for time-series probes and reporting helpers."""

import io
import json
from dataclasses import dataclass

import pytest

from repro.metrics.probes import ConvergenceProbe
from repro.metrics.reporting import format_table, to_jsonable, write_json
from repro.sim import EventLoop


def test_probe_records_coverage_growth():
    loop = EventLoop()
    coverage = {"value": 0.0}
    probe = ConvergenceProbe(loop, lambda item: coverage["value"], period_s=0.5)
    probe.track(1)
    probe.start()
    loop.call_at(1.0, lambda: coverage.update(value=0.5))
    loop.call_at(2.0, lambda: coverage.update(value=1.0))
    loop.run_until(4.0)
    curve = probe.curve(1)
    assert curve[0][1] == 0.0
    assert curve[-1][1] == 1.0
    values = [c for _t, c in curve]
    assert values == sorted(values)


def test_probe_time_to_coverage():
    loop = EventLoop()
    state = {"value": 0.0}
    probe = ConvergenceProbe(loop, lambda item: state["value"], period_s=0.25)
    probe.track(7)
    probe.start()
    loop.call_at(1.5, lambda: state.update(value=1.0))
    loop.run_until(3.0)
    reached = probe.time_to_coverage(7)
    assert reached is not None
    assert 1.5 <= reached <= 2.0
    assert probe.time_to_coverage(99) is None


def test_probe_stop_halts_sampling():
    loop = EventLoop()
    probe = ConvergenceProbe(loop, lambda item: 0.5, period_s=0.5)
    probe.track(1)
    probe.start()
    loop.run_until(1.0)
    probe.stop()
    samples = len(probe.series[1])
    loop.run_until(5.0)
    assert len(probe.series[1]) == samples


def test_probe_invalid_period():
    with pytest.raises(ValueError):
        ConvergenceProbe(EventLoop(), lambda i: 0.0, period_s=0.0)


# ------------------------------------------------------------- reporting


def test_format_table_alignment():
    text = format_table(("name", "value"), [("a", 1), ("long-name", 22)])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert len(lines) == 4
    assert "long-name" in lines[3]


def test_to_jsonable_handles_rich_types():
    @dataclass
    class Inner:
        data: bytes

    @dataclass
    class Outer:
        inner: Inner
        items: set
        mapping: dict

    value = Outer(Inner(b"\x01\x02"), {3, 1}, {"k": (1, 2)})
    encoded = to_jsonable(value)
    assert encoded == {
        "inner": {"data": "0102"},
        "items": [1, 3],
        "mapping": {"k": [1, 2]},
    }
    json.dumps(encoded)  # round-trips through the json module


def test_write_json_with_label():
    stream = io.StringIO()
    write_json({"x": 1}, stream, label="demo")
    payload = json.loads(stream.getvalue())
    assert payload == {"experiment": "demo", "result": {"x": 1}}


def test_to_jsonable_nan_becomes_null():
    assert to_jsonable(float("nan")) is None
