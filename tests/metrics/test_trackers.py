"""Unit tests for latency and event trackers."""

from repro.metrics import EventCounter, LatencyTracker


def test_latency_basic_flow():
    tracker = LatencyTracker()
    tracker.record_created(1, 10.0)
    tracker.record_seen(1, observer=5, when=11.5)
    tracker.record_seen(1, observer=6, when=12.0)
    assert sorted(tracker.latencies(1)) == [1.5, 2.0]
    assert tracker.observers_of(1) == 2
    assert tracker.created_at(1) == 10.0


def test_first_seen_wins():
    tracker = LatencyTracker()
    tracker.record_created(1, 0.0)
    tracker.record_seen(1, 5, 1.0)
    tracker.record_seen(1, 5, 9.0)  # later re-observation ignored
    assert tracker.latencies(1) == [1.0]


def test_first_created_wins():
    tracker = LatencyTracker()
    tracker.record_created(1, 2.0)
    tracker.record_created(1, 0.0)
    assert tracker.created_at(1) == 2.0


def test_unknown_item_has_no_latencies():
    tracker = LatencyTracker()
    tracker.record_seen(9, 1, 5.0)  # seen without creation record
    assert tracker.latencies(9) == []
    assert tracker.created_at(9) is None


def test_all_latencies_flattens():
    tracker = LatencyTracker()
    for item in (1, 2):
        tracker.record_created(item, 0.0)
        tracker.record_seen(item, 1, 1.0)
        tracker.record_seen(item, 2, 2.0)
    assert sorted(tracker.all_latencies()) == [1.0, 1.0, 2.0, 2.0]
    assert sorted(tracker.items()) == [1, 2]


def test_counter_totals_and_per_node():
    counter = EventCounter()
    counter.increment("recon", node=1)
    counter.increment("recon", node=1, by=2)
    counter.increment("recon", node=2)
    counter.increment("other")
    assert counter.total("recon") == 4
    assert counter.per_node("recon") == {1: 3, 2: 1}
    assert counter.total("other") == 1
    assert counter.total("missing") == 0
    assert set(counter.labels()) == {"recon", "other"}
