"""Unit and property tests for statistics helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import Histogram, describe, mean, percentile, stddev

floats = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1,
    max_size=50,
)


def test_mean_basic():
    assert mean([1, 2, 3]) == 2.0
    assert mean([]) == 0.0


def test_stddev_basic():
    assert stddev([5, 5, 5]) == 0.0
    assert stddev([1]) == 0.0
    assert stddev([0, 2]) == 1.0


def test_percentile_endpoints():
    values = [3, 1, 2]
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 3
    assert percentile(values, 50) == 2


def test_percentile_interpolates():
    assert percentile([0, 10], 25) == 2.5


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


@given(values=floats, q=st.floats(min_value=0, max_value=100))
@settings(max_examples=100)
def test_percentile_within_range(values, q):
    p = percentile(values, q)
    assert min(values) <= p <= max(values)


@given(values=floats)
@settings(max_examples=100)
def test_percentile_monotone(values):
    assert percentile(values, 10) <= percentile(values, 90)


def test_describe_keys_and_empty():
    summary = describe([1.0, 2.0, 3.0])
    assert summary["count"] == 3
    assert summary["mean"] == 2.0
    assert describe([])["count"] == 0


def test_histogram_counts_and_bounds():
    hist = Histogram(0.0, 10.0, bins=10)
    hist.add_all([0.5, 1.5, 1.6, 9.99])
    assert hist.counts[0] == 1
    assert hist.counts[1] == 2
    assert hist.counts[9] == 1
    assert hist.total == 4


def test_histogram_under_overflow():
    hist = Histogram(0.0, 1.0, bins=2)
    hist.add(-1.0)
    hist.add(5.0)
    hist.add(1.0)  # high edge is exclusive
    assert hist.underflow == 1
    assert hist.overflow == 2
    assert sum(hist.counts) == 0


def test_histogram_density_integrates_to_one():
    hist = Histogram(0.0, 4.0, bins=8)
    hist.add_all([0.1, 1.1, 2.2, 3.3, 3.9])
    width = 0.5
    total = sum(density * width for _centre, density in hist.density())
    assert abs(total - 1.0) < 1e-9


def test_histogram_density_empty_is_zero():
    hist = Histogram(0.0, 1.0, bins=4)
    assert all(d == 0.0 for _c, d in hist.density())


def test_histogram_validation():
    with pytest.raises(ValueError):
        Histogram(0.0, 1.0, bins=0)
    with pytest.raises(ValueError):
        Histogram(1.0, 1.0, bins=4)
