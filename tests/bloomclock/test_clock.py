"""Unit and property tests for the Bloom Clock."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloomclock import BloomClock, ClockComparison

items = st.lists(
    st.integers(min_value=1, max_value=2 ** 32 - 1), max_size=40
)


def test_empty_clocks_equal():
    assert BloomClock().compare(BloomClock()) is ClockComparison.EQUAL


def test_add_makes_after():
    a, b = BloomClock(), BloomClock()
    a.add(123)
    assert a.compare(b) is ClockComparison.AFTER
    assert b.compare(a) is ClockComparison.BEFORE


def test_concurrent_detected():
    a, b = BloomClock(cells=4), BloomClock(cells=4)
    # Find two items in different cells.
    x, y = 1, 2
    while BloomClock(cells=4).cell_of(x) == BloomClock(cells=4).cell_of(y):
        y += 1
    a.add(x)
    b.add(y)
    assert a.compare(b) is ClockComparison.CONCURRENT


@given(added=items)
@settings(max_examples=80)
def test_superset_always_dominates(added):
    base = BloomClock()
    base.add_all(added)
    extended = base.copy()
    extended.add(999999)
    assert extended.dominates(base)
    assert extended.compare(base) in (
        ClockComparison.AFTER, ClockComparison.EQUAL
    )


@given(sa=st.sets(st.integers(min_value=1, max_value=2 ** 32 - 1), max_size=30),
       sb=st.sets(st.integers(min_value=1, max_value=2 ** 32 - 1), max_size=30))
@settings(max_examples=80)
def test_estimate_is_lower_bound(sa, sb):
    a, b = BloomClock(), BloomClock()
    a.add_all(sa)
    b.add_all(sb)
    assert a.estimate_difference(b) <= len(sa ^ sb)


def test_estimate_exact_without_collisions():
    a, b = BloomClock(cells=1024), BloomClock(cells=1024)
    a.add_all({1, 2, 3})
    b.add_all({1, 2, 3, 4, 5})
    # With many cells and few items, collisions are unlikely.
    assert a.estimate_difference(b) == 2


def test_flagged_cells_cover_differences():
    a, b = BloomClock(), BloomClock()
    a.add_all({10, 20})
    b.add_all({10})
    flagged = a.flagged_cells(b)
    assert a.cell_of(20) in flagged
    assert a.cell_of(10) not in flagged or a.cell_of(10) == a.cell_of(20)


def test_total_tracks_count():
    clock = BloomClock()
    clock.add_all(range(1, 11))
    assert clock.total == 10


def test_serialize_roundtrip():
    clock = BloomClock(cells=32)
    clock.add_all({7, 77, 777})
    data = clock.serialize()
    assert len(data) == 68 == clock.wire_size()
    restored = BloomClock.deserialize(data, cells=32)
    assert restored == clock


def test_serialize_wrong_length_rejected():
    with pytest.raises(ValueError):
        BloomClock.deserialize(b"\x00" * 5, cells=32)


def test_counter_saturation_in_serialization():
    clock = BloomClock(cells=1)
    clock.counters[0] = 0x1FFFF
    clock.total = 0x1FFFF
    data = clock.serialize()
    restored = BloomClock.deserialize(data, cells=1)
    assert restored.counters[0] == 0xFFFF  # saturated, not wrapped


def test_incompatible_cell_counts_rejected():
    with pytest.raises(ValueError):
        BloomClock(cells=8).compare(BloomClock(cells=16))


def test_cell_of_is_stable_and_in_range():
    clock = BloomClock(cells=32)
    for item in (1, 2 ** 31, 999999):
        cell = clock.cell_of(item)
        assert 0 <= cell < 32
        assert cell == clock.cell_of(item)


def test_invalid_construction():
    with pytest.raises(ValueError):
        BloomClock(cells=0)
    with pytest.raises(ValueError):
        BloomClock(cells=4, counters=[1, 2])


def test_hashable_and_copy_independent():
    a = BloomClock(cells=4)
    a.add(3)
    b = a.copy()
    assert a == b and hash(a) == hash(b)
    b.add(5)
    assert a != b
