"""Tests for the shared simulation harness."""

import pytest

from repro.attacks import make_censor_factory
from repro.core.config import LOConfig
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.net.latency import ConstantLatencyModel


def tiny(num_nodes=8, **kwargs):
    kwargs.setdefault("latency_model", ConstantLatencyModel(0.02))
    return LOSimulation(SimulationParams(num_nodes=num_nodes, seed=3, **kwargs))


def test_builds_requested_population():
    sim = tiny(num_nodes=9)
    assert len(sim.nodes) == 9
    assert sim.correct_ids == list(range(9))
    assert all(sim.topology[n] for n in range(9))


def test_directory_maps_all_nodes():
    sim = tiny()
    for nid, node in sim.nodes.items():
        assert sim.directory.key_of(nid) == node.public_key
        assert sim.directory.id_of(node.public_key) == nid


def test_malicious_factory_applied():
    factory = make_censor_factory({0, 1})
    sim = tiny(num_nodes=10, malicious_ids=[0, 1], attacker_factory=factory)
    from repro.attacks import CensoringNode

    assert isinstance(sim.nodes[0], CensoringNode)
    assert isinstance(sim.nodes[1], CensoringNode)
    assert not isinstance(sim.nodes[2], CensoringNode)
    assert sim.correct_ids == list(range(2, 10))


def test_workload_injection_counts():
    sim = tiny()
    count = sim.inject_workload(rate_per_s=10.0, duration_s=5.0)
    assert 20 <= count <= 90  # ~50 expected
    sim.run(8.0)
    assert len(sim.mempool_tracker.items()) == count


def test_inject_at_single():
    sim = tiny()
    sim.inject_at(1.0, origin=2, fee=42)
    sim.run(5.0)
    items = sim.mempool_tracker.items()
    assert len(items) == 1
    node = sim.nodes[2]
    tx = node.log.content_of(items[0])
    assert tx.fee == 42


def test_convergence_helpers():
    sim = tiny()
    sim.inject_at(0.5, 0, fee=10)
    sim.run(10.0)
    item = sim.mempool_tracker.items()[0]
    assert sim.convergence_fraction(item) == 1.0
    assert sim.all_suspected_or_exposed([]) is True
    assert sim.all_exposed([]) is True


def test_blocks_disabled_by_default():
    sim = tiny()
    assert sim.leader_schedule is None
    sim2 = tiny(enable_blocks=True)
    assert sim2.leader_schedule is not None


def test_deterministic_topology_per_seed():
    a = tiny(num_nodes=12)
    b = tiny(num_nodes=12)
    assert a.topology == b.topology


def test_config_propagates():
    config = LOConfig(sync_fanout=1)
    sim = tiny(config=config)
    assert all(node.config.sync_fanout == 1 for node in sim.nodes.values())


# ---------------------------------------------- leader eligibility / caching


class _ScanCountingNodes(dict):
    """Dict proxy that records bulk scans of the node table."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.bulk_scans = 0
        self.lookups = 0

    def values(self):
        self.bulk_scans += 1
        return super().values()

    def items(self):
        self.bulk_scans += 1
        return super().items()

    def __getitem__(self, key):
        self.lookups += 1
        return super().__getitem__(key)


def test_can_propose_does_not_scan_all_ledgers():
    # Regression: _can_propose used to recompute max(ledger.height) over
    # every node, making each leader slot O(num_nodes).  It must now
    # consult the incrementally maintained canonical height and touch only
    # the queried node.
    sim = tiny(num_nodes=10, enable_blocks=True)
    sim.inject_workload(rate_per_s=5.0, duration_s=3.0)
    sim.run(5.0)
    counting = _ScanCountingNodes(sim.nodes)
    sim.nodes = counting
    for node_id in range(10):
        sim._can_propose(node_id)
    assert counting.bulk_scans == 0
    assert counting.lookups <= 10  # one lookup per eligibility query


def test_canonical_height_tracks_block_creation():
    sim = tiny(num_nodes=10, enable_blocks=True)
    assert sim.canonical_height == -1  # no blocks yet
    sim.inject_workload(rate_per_s=5.0, duration_s=5.0)
    sim.run(20.0)
    true_max = max(node.ledger.height for node in sim.nodes.values())
    assert sim.canonical_height == true_max
    assert sim.canonical_height >= 0


def test_can_propose_excludes_stale_nodes():
    sim = tiny(num_nodes=8, enable_blocks=True)
    sim.inject_workload(rate_per_s=5.0, duration_s=5.0)
    sim.run(25.0)
    assert sim.canonical_height >= 1
    for node_id in range(8):
        expected = (
            sim.nodes[node_id].ledger.height == sim.canonical_height
        )
        assert sim._can_propose(node_id) == expected


def test_cache_stats_reset_per_simulation():
    from repro.metrics.caches import cache_stats

    def totals():
        # Only the resettable counters: `size` reports the (deliberately
        # retained) cache contents and `hit_rate` is derived.
        return {
            name: sum(counters[k] for k in ("hits", "misses", "evictions"))
            for name, counters in cache_stats().items()
        }

    # Counter state right after a fresh construction is deterministic:
    # __init__ resets the process-global cache counters before building
    # the network, so whatever construction itself contributes is the
    # same every time.
    sim = tiny(num_nodes=8)
    baseline = totals()
    sim.inject_workload(rate_per_s=5.0, duration_s=3.0)
    sim.run(6.0)
    dirty = totals()
    assert sum(dirty.values()) > sum(baseline.values()), (
        "expected the run to touch at least one registered cache"
    )
    # Constructing the next simulation must scope the counters to it: the
    # first run's hits/misses may not leak into the new snapshot.
    tiny(num_nodes=8)
    assert totals() == baseline
