"""Tests for the shared simulation harness."""

import pytest

from repro.attacks import make_censor_factory
from repro.core.config import LOConfig
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.net.latency import ConstantLatencyModel


def tiny(num_nodes=8, **kwargs):
    kwargs.setdefault("latency_model", ConstantLatencyModel(0.02))
    return LOSimulation(SimulationParams(num_nodes=num_nodes, seed=3, **kwargs))


def test_builds_requested_population():
    sim = tiny(num_nodes=9)
    assert len(sim.nodes) == 9
    assert sim.correct_ids == list(range(9))
    assert all(sim.topology[n] for n in range(9))


def test_directory_maps_all_nodes():
    sim = tiny()
    for nid, node in sim.nodes.items():
        assert sim.directory.key_of(nid) == node.public_key
        assert sim.directory.id_of(node.public_key) == nid


def test_malicious_factory_applied():
    factory = make_censor_factory({0, 1})
    sim = tiny(num_nodes=10, malicious_ids=[0, 1], attacker_factory=factory)
    from repro.attacks import CensoringNode

    assert isinstance(sim.nodes[0], CensoringNode)
    assert isinstance(sim.nodes[1], CensoringNode)
    assert not isinstance(sim.nodes[2], CensoringNode)
    assert sim.correct_ids == list(range(2, 10))


def test_workload_injection_counts():
    sim = tiny()
    count = sim.inject_workload(rate_per_s=10.0, duration_s=5.0)
    assert 20 <= count <= 90  # ~50 expected
    sim.run(8.0)
    assert len(sim.mempool_tracker.items()) == count


def test_inject_at_single():
    sim = tiny()
    sim.inject_at(1.0, origin=2, fee=42)
    sim.run(5.0)
    items = sim.mempool_tracker.items()
    assert len(items) == 1
    node = sim.nodes[2]
    tx = node.log.content_of(items[0])
    assert tx.fee == 42


def test_convergence_helpers():
    sim = tiny()
    sim.inject_at(0.5, 0, fee=10)
    sim.run(10.0)
    item = sim.mempool_tracker.items()[0]
    assert sim.convergence_fraction(item) == 1.0
    assert sim.all_suspected_or_exposed([]) is True
    assert sim.all_exposed([]) is True


def test_blocks_disabled_by_default():
    sim = tiny()
    assert sim.leader_schedule is None
    sim2 = tiny(enable_blocks=True)
    assert sim2.leader_schedule is not None


def test_deterministic_topology_per_seed():
    a = tiny(num_nodes=12)
    b = tiny(num_nodes=12)
    assert a.topology == b.topology


def test_config_propagates():
    config = LOConfig(sync_fanout=1)
    sim = tiny(config=config)
    assert all(node.config.sync_fanout == 1 for node in sim.nodes.values())
