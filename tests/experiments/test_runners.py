"""Smoke tests for every experiment runner (tiny parameters).

The benchmarks exercise the paper-scale shapes; these tests pin the
runners' interfaces and sanity invariants at toy scale so refactors fail
fast without waiting on minute-scale simulations.
"""

import math

from repro.experiments.fig6_detection import run_detection_point
from repro.experiments.fig7_mempool_latency import run_fig7
from repro.experiments.fig8_block_latency import run_policy
from repro.experiments.fig9_bandwidth import run_fig9
from repro.experiments.fig10_reconciliations import run_fig10
from repro.experiments.sec65_cpu import make_sets, run_cpu_comparison
from repro.experiments.sec65_memory import run_memory_point


def test_fig6_point_converges():
    point = run_detection_point(
        num_nodes=16, malicious_fraction=0.15, tx_rate_per_s=3.0,
        horizon_s=40.0,
    )
    assert point.num_malicious == 2
    assert point.exposure_convergence_at is not None
    assert point.suspicion_convergence_at is not None
    assert point.first_exposure_at <= point.exposure_convergence_at
    assert point.exposure_spread_s >= 0


def test_fig7_density_and_summary():
    result = run_fig7(num_nodes=15, tx_rate_per_s=4.0,
                      workload_duration_s=5.0, drain_s=5.0, bins=10)
    assert result.summary["count"] == len(result.latencies)
    assert len(result.density) == 10
    width = 8.0 / 10
    mass = sum(d * width for _c, d in result.density)
    assert math.isclose(mass, 1.0, rel_tol=1e-6)


def test_fig8_policy_latency():
    outcome = run_policy("fifo", num_nodes=12, tx_rate_per_s=3.0,
                         workload_duration_s=20.0)
    assert outcome.policy == "fifo"
    assert outcome.summary["count"] > 10
    assert all(lat >= 0 for lat in outcome.latencies)


def test_fig9_rows_complete():
    result = run_fig9(num_nodes=15, tx_rate_per_s=3.0,
                      workload_duration_s=5.0, drain_s=3.0)
    protocols = {row.protocol for row in result.rows}
    assert protocols == {"lo", "flood", "peerreview", "narwhal"}
    lo = result.by_protocol()["lo"]
    assert lo.ratio_vs_lo == 1.0
    assert all(row.overhead_bytes > 0 for row in result.rows)


def test_fig10_point_counts_reconciliations():
    point = run_fig10_smoke()
    assert point.reconciliations_per_node_per_min > 0
    assert 0 <= point.failure_fraction <= 1


def run_fig10_smoke():
    result = run_fig10(workloads_tx_per_minute=[120], num_nodes=12,
                       duration_s=10.0)
    return result.points[0]


def test_sec65_memory_point():
    point = run_memory_point(tx_per_minute=180, num_nodes=12, duration_s=10.0)
    assert point.avg_commitment_bytes > 100  # header alone is 176+ bytes
    assert point.max_commitment_bytes >= point.avg_commitment_bytes
    assert point.extrapolated_10k_nodes_mb > 0


def test_sec65_cpu_comparison():
    result = run_cpu_comparison(difference=32, partition_capacity=8)
    assert result.naive_seconds > 0
    assert result.partitioned_seconds > 0
    assert result.partitioned_sketches >= 1
    assert result.speedup > 0


def test_make_sets_exact_difference():
    a, b = make_sets(difference=20, common=50, seed=3)
    assert len(a ^ b) == 20
    assert len(a & b) == 50


def test_fig7_dissemination_hops():
    from repro.experiments.fig7_mempool_latency import dissemination_hops
    from tests.conftest import make_sim

    sim = make_sim(num_nodes=12)
    sim.inject_at(0.3, 0, fee=10)
    sim.run(10.0)
    hops = dissemination_hops(sim)
    # 11 non-origin miners each learned it through >=1 reconciliation.
    assert len(hops) == 11
    assert all(1 <= h <= 11 for h in hops)
    result = run_fig7(num_nodes=12, tx_rate_per_s=3.0,
                      workload_duration_s=5.0, drain_s=5.0)
    assert result.hops_summary["count"] > 0
    assert result.hops_summary["mean"] >= 1.0
