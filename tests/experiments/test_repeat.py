"""Tests for the repetition/averaging helpers."""

import pytest

from repro.experiments.repeat import derive_seeds, repeat_scalar


def test_derive_seeds_distinct():
    seeds = derive_seeds(42, 5)
    assert len(seeds) == 5
    assert len(set(seeds)) == 5
    assert seeds[0] == 42


def test_derive_seeds_validation():
    with pytest.raises(ValueError):
        derive_seeds(1, 0)


def test_repeat_scalar_aggregates():
    def run(seed):
        return {"value": seed % 3}

    stats = repeat_scalar(
        run, {"value": lambda r: r["value"]}, base_seed=0, repetitions=3
    )
    v = stats["value"]
    assert v["runs"] == 3
    assert v["min"] <= v["mean"] <= v["max"]


def test_repeat_scalar_on_real_experiment():
    from repro.experiments.fig7_mempool_latency import run_fig7

    stats = repeat_scalar(
        lambda seed: run_fig7(
            num_nodes=12, tx_rate_per_s=3.0, workload_duration_s=4.0,
            drain_s=4.0, seed=seed,
        ),
        {
            "mean_latency": lambda r: r.summary["mean"],
            "samples": lambda r: r.summary["count"],
        },
        base_seed=7,
        repetitions=2,
    )
    assert stats["mean_latency"]["mean"] > 0
    assert stats["samples"]["runs"] == 2
