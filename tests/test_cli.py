"""CLI tests (tiny parameters, captured stdout)."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_covers_all_experiments():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    commands = set(sub.choices)
    assert {"run", "fig6", "fig7", "fig8", "fig9", "fig10", "memory",
            "cpu", "bench", "report"} <= commands


def test_run_command(capsys):
    code = main(["run", "--nodes", "8", "--rate", "3", "--duration", "4",
                 "--drain", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean mempool latency" in out
    assert "exposures" in out


def test_cpu_command_with_json(tmp_path, capsys):
    out_file = tmp_path / "cpu.json"
    code = main(["cpu", "--difference", "24", "--capacity", "8",
                 "--json", str(out_file)])
    assert code == 0
    assert "speedup" in capsys.readouterr().out
    payload = json.loads(out_file.read_text())
    assert payload["experiment"] == "cpu"
    assert payload["result"]["difference"] == 24


def test_fig10_command(capsys):
    code = main(["fig10", "--nodes", "10", "--duration", "8",
                 "--workloads", "120"])
    assert code == 0
    assert "recon/node/min" in capsys.readouterr().out


def test_memory_command(capsys):
    code = main(["memory", "--nodes", "10", "--duration", "8",
                 "--workloads", "120"])
    assert code == 0
    assert "avg_commitment_B" in capsys.readouterr().out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
