"""CLI tests (tiny parameters, captured stdout)."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_covers_all_experiments():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    commands = set(sub.choices)
    assert {"run", "fig6", "fig7", "fig8", "fig9", "fig10", "memory",
            "cpu", "bench", "report"} <= commands


def test_run_command(capsys):
    code = main(["run", "--nodes", "8", "--rate", "3", "--duration", "4",
                 "--drain", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "mean mempool latency" in out
    assert "exposures" in out


def test_cpu_command_with_json(tmp_path, capsys):
    out_file = tmp_path / "cpu.json"
    code = main(["cpu", "--difference", "24", "--capacity", "8",
                 "--json", str(out_file)])
    assert code == 0
    assert "speedup" in capsys.readouterr().out
    payload = json.loads(out_file.read_text())
    assert payload["experiment"] == "cpu"
    assert payload["result"]["difference"] == 24


def test_fig10_command(capsys):
    code = main(["fig10", "--nodes", "10", "--duration", "8",
                 "--workloads", "120"])
    assert code == 0
    assert "recon/node/min" in capsys.readouterr().out


def test_memory_command(capsys):
    code = main(["memory", "--nodes", "10", "--duration", "8",
                 "--workloads", "120"])
    assert code == 0
    assert "avg_commitment_B" in capsys.readouterr().out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_sweep_command_json_and_run_dir(tmp_path, capsys):
    out_dir = tmp_path / "run"
    out_json = tmp_path / "merged.json"
    code = main([
        "sweep", "run",
        "--param", "num_nodes=6,8", "--param", "rate_per_s=3.0",
        "--param", "duration_s=1.0", "--param", "drain_s=1.0",
        "--repetitions", "1", "--workers", "1",
        "--out-dir", str(out_dir), "--json", str(out_json),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "2 tasks" in out and "0 failed" in out
    merged = json.loads(out_json.read_text())
    assert merged["schema"] == "repro.sweep/1"
    assert [t["params"]["num_nodes"] for t in merged["tasks"]] == [6, 8]
    assert all(t["ok"] for t in merged["tasks"])
    assert (out_dir / "sweep.json").read_bytes() == out_json.read_bytes()
    execution = json.loads((out_dir / "execution.json").read_text())
    assert execution["schema"] == "repro.sweep-execution/1"


def test_sweep_check_serial_byte_identity(tmp_path, capsys):
    code = main([
        "sweep", "run",
        "--param", "num_nodes=6", "--param", "rate_per_s=3.0",
        "--param", "duration_s=1.0", "--param", "drain_s=1.0",
        "--repetitions", "2", "--workers", "2", "--check-serial",
    ])
    assert code == 0
    assert "results identical" in capsys.readouterr().out


def test_sweep_rejects_unknown_experiment(capsys):
    assert main(["sweep", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_sweep_rejects_malformed_param():
    with pytest.raises(SystemExit):
        main(["sweep", "run", "--param", "num_nodes"])


def test_sweep_task_traces_require_out_dir(capsys):
    assert main(["sweep", "run", "--task-traces"]) == 2
    assert "--task-traces requires --out-dir" in capsys.readouterr().err


def test_experiment_verbs_accept_workers(capsys):
    # --workers must parse on every experiment verb (uniform interface).
    code = main(["fig10", "--nodes", "10", "--duration", "8",
                 "--workloads", "120", "--workers", "2"])
    assert code == 0


SPOOL_ARGS = [
    "sweep", "run",
    "--param", "num_nodes=6,8", "--param", "rate_per_s=3.0",
    "--param", "duration_s=1.0", "--param", "drain_s=1.0",
    "--repetitions", "1", "--workers", "1",
]


def test_sweep_spool_byte_identical_to_plain(tmp_path, capsys):
    plain_json = tmp_path / "plain.json"
    spool_json = tmp_path / "spool.json"
    assert main(SPOOL_ARGS + ["--json", str(plain_json)]) == 0
    assert main(SPOOL_ARGS + ["--spool", str(tmp_path / "spool"),
                              "--json", str(spool_json)]) == 0
    out = capsys.readouterr().out
    assert plain_json.read_bytes() == spool_json.read_bytes()
    assert "spool" in out and "2/2 completed" in out


def test_sweep_spool_resume_is_idempotent(tmp_path, capsys):
    spool_dir = tmp_path / "spool"
    first = tmp_path / "first.json"
    resumed = tmp_path / "resumed.json"
    assert main(SPOOL_ARGS + ["--spool", str(spool_dir),
                              "--json", str(first)]) == 0
    # Resuming a drained spool re-merges without re-running anything.
    assert main(SPOOL_ARGS + ["--spool", str(spool_dir), "--resume",
                              "--json", str(resumed)]) == 0
    capsys.readouterr()
    assert first.read_bytes() == resumed.read_bytes()


def test_sweep_spool_guards(tmp_path, capsys):
    spool_dir = tmp_path / "spool"
    # --resume without --spool is a usage error.
    assert main(SPOOL_ARGS + ["--resume"]) == 2
    assert "--resume requires --spool" in capsys.readouterr().err
    # A second fresh run into the same spool is refused, not clobbered.
    assert main(SPOOL_ARGS + ["--spool", str(spool_dir)]) == 0
    capsys.readouterr()
    assert main(SPOOL_ARGS + ["--spool", str(spool_dir)]) == 2
    assert "resume" in capsys.readouterr().err


def test_fig7_accepts_repetitions_and_workers(capsys):
    code = main(["fig7", "--nodes", "10", "--rate", "3", "--duration", "3",
                 "--repetitions", "2", "--workers", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "count" in out and "210" in out  # 2 reps x 105 pooled samples


def test_cpu_accepts_differences_sweep(tmp_path, capsys):
    out_file = tmp_path / "cpu.json"
    code = main(["cpu", "--differences", "8", "16", "--capacity", "8",
                 "--workers", "2", "--json", str(out_file)])
    assert code == 0
    assert "speedup" in capsys.readouterr().out
    payload = json.loads(out_file.read_text())
    assert [p["difference"] for p in payload["result"]["points"]] == [8, 16]


def _cold_caches():
    """Blank the process-global sketch caches (fresh-process state).

    The timeline samples the cache hit/miss counters, so back-to-back
    in-process CLI runs must start them cold for byte-identity; separate
    processes -- the real CLI usage -- start cold anyway.
    """
    from repro.metrics.caches import reset_cache_stats
    from repro.sketch.pinsketch import clear_decode_cache, \
        clear_syndrome_cache

    clear_decode_cache()
    clear_syndrome_cache()
    reset_cache_stats()


def test_run_timeline_exports_are_deterministic(tmp_path, capsys):
    """Two same-seed ``run --timeline`` invocations write byte-identical
    repro.timeline/1 files (the ISSUE 9 acceptance check, at CLI level)."""
    run_args = ["run", "--nodes", "6", "--rate", "3", "--duration", "3",
                "--drain", "2", "--seed", "5"]
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    _cold_caches()
    assert main(run_args + ["--timeline", str(a),
                            "--timeline-csv", str(tmp_path / "a.csv")]) == 0
    _cold_caches()
    assert main(run_args + ["--timeline", str(b)]) == 0
    out = capsys.readouterr().out
    assert "timeline written" in out
    assert a.read_bytes() == b.read_bytes()
    assert (tmp_path / "a.csv").read_text().startswith(
        "series,kind,bin_s,t,value")


def test_run_until_steady_stops_early_and_reports(tmp_path, capsys):
    out_file = tmp_path / "run.json"
    code = main(["run", "--nodes", "8", "--rate", "6", "--duration", "60",
                 "--drain", "20", "--admission", "--seed", "7",
                 "--until-steady", "--json", str(out_file)])
    assert code == 0
    out = capsys.readouterr().out
    assert "steady" in out
    steady = json.loads(out_file.read_text())["result"]["steady"]
    assert steady["steady"] is True
    assert steady["t"] < steady["horizon"]


def test_run_phases_prints_profile_table(tmp_path, capsys):
    out_file = tmp_path / "run.json"
    code = main(["run", "--nodes", "6", "--rate", "3", "--duration", "3",
                 "--drain", "2", "--phases", "--json", str(out_file)])
    assert code == 0
    out = capsys.readouterr().out
    assert "phase" in out and "self_s" in out
    phases = json.loads(out_file.read_text())["result"]["phases"]
    assert "net" in phases
    assert all(entry["self_s"] >= 0.0 for entry in phases.values())


def test_bench_obs_quick_writes_overhead_metrics(tmp_path, capsys):
    code = main(["bench", "--quick", "--suite", "obs",
                 "--out-dir", str(tmp_path)])
    assert code == 0
    capsys.readouterr()
    payload = json.loads((tmp_path / "BENCH_obs.json").read_text())
    assert payload["schema"] == "repro.bench/1"
    names = {r["name"] for r in payload["results"]}
    assert {"sim/run/telemetry=off", "sim/run/telemetry=trace",
            "sim/run/telemetry=timeline",
            "sim/run/telemetry=phases"} <= names
    assert payload["derived"]["telemetry_off_events_per_second"] > 0
