"""Serial vs parallel equivalence on real experiments.

The acceptance property of the sweep engine: for a fixed sweep
specification, ``workers=N`` must produce a merged document
*byte-identical* to ``workers=1`` -- and the experiment runners' own
``workers`` parameter must leave their results (and any downstream
aggregation, e.g. ``repeat_scalar`` mean/std) exactly unchanged.

Worker fan-out is real multiprocessing even on a single-core machine;
these tests assert correctness, not speedup (that lives in CI's
sweep-smoke job on 4-core runners, via ``--check-serial --min-speedup``).
"""

from repro.exec import derive_tasks, run_sweep
from repro.experiments.fig6_detection import run_fig6
from repro.experiments.fig9_bandwidth import run_fig9
from repro.experiments.fig7_mempool_latency import run_fig7
from repro.experiments.repeat import repeat_scalar
from repro.experiments.sec65_cpu import run_cpu_sweep
from repro.metrics.reporting import to_jsonable

WORKERS = 4


def test_sweep_byte_identity_on_simulation_tasks():
    # Real LOSimulation runs (the "run" experiment), 4 tasks, 4 workers;
    # the grid overrides the runner defaults to keep each task small.
    tasks = derive_tasks(
        "run",
        {"num_nodes": [6, 8], "rate_per_s": [3.0], "duration_s": [2.0],
         "drain_s": [2.0]},
        base_seed=21,
        repetitions=2,
    )
    serial = run_sweep(tasks, workers=1)
    parallel = run_sweep(tasks, workers=WORKERS)
    assert not serial.failed() and not parallel.failed()
    assert serial.results_bytes() == parallel.results_bytes()


def test_fig6_parallel_equals_serial():
    kwargs = dict(num_nodes=10, fractions=[0.1, 0.2], seed=5)
    serial = run_fig6(**kwargs, workers=1)
    parallel = run_fig6(**kwargs, workers=WORKERS)
    assert to_jsonable(serial) == to_jsonable(parallel)


def test_fig9_parallel_equals_serial():
    kwargs = dict(num_nodes=10, tx_rate_per_s=3.0, workload_duration_s=3.0,
                  drain_s=2.0, seed=5)
    serial = run_fig9(**kwargs, workers=1)
    parallel = run_fig9(**kwargs, workers=WORKERS)
    assert to_jsonable(serial) == to_jsonable(parallel)
    # The post-merge ratio fill-in must behave identically too.
    assert parallel.by_protocol()["lo"].ratio_vs_lo == 1.0


def test_fig7_repetitions_parallel_equals_serial():
    kwargs = dict(num_nodes=10, tx_rate_per_s=3.0, workload_duration_s=3.0,
                  drain_s=3.0, seed=5, repetitions=2)
    serial = run_fig7(**kwargs, workers=1)
    parallel = run_fig7(**kwargs, workers=WORKERS)
    assert to_jsonable(serial) == to_jsonable(parallel)
    # Pooling is real: two repetitions contribute more samples than one.
    single = run_fig7(**{**kwargs, "repetitions": 1})
    assert serial.summary["count"] > single.summary["count"]


def test_cpu_sweep_parallel_equals_serial_on_deterministic_fields():
    kwargs = dict(differences=[4, 8], partition_capacity=16, seed=5)
    serial = run_cpu_sweep(**kwargs, workers=1)
    parallel = run_cpu_sweep(**kwargs, workers=WORKERS)
    # Wall-clock timings are machine noise either way; the deterministic
    # surface (which differences were reconciled, and how many partitioned
    # sketches each decode took) must match exactly.
    def surface(result):
        return [(p.difference, p.partitioned_sketches)
                for p in result.points]
    assert surface(serial) == surface(parallel)
    assert [p.difference for p in serial.points] == [4, 8]


def _fig7_run(seed):
    # Module-level so the parallel path can ship it to worker processes.
    return run_fig7(num_nodes=10, tx_rate_per_s=3.0, workload_duration_s=3.0,
                    drain_s=3.0, seed=seed)


def test_repeat_scalar_parallel_mean_std_identical():
    run = _fig7_run
    extract = {
        "mean_latency": lambda r: r.summary["mean"],
        "samples": lambda r: r.summary["count"],
    }
    serial = repeat_scalar(run, extract, base_seed=7, repetitions=3)
    parallel = repeat_scalar(run, extract, base_seed=7, repetitions=3,
                             workers=WORKERS)
    assert serial == parallel  # exact float equality, mean and std included
