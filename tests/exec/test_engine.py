"""Tests for the sweep engine: merging, failures, crashes, timeouts.

The crash/timeout experiments are module-level functions registered via
:func:`register_experiment`; fork-started workers inherit the registry, so
no importable plugin module is needed.
"""

import json
import os
import time

import pytest

from repro.exec import (
    EXPERIMENTS,
    derive_tasks,
    map_points,
    map_seeds,
    register_experiment,
    run_sweep,
)


def _fast_experiment(seed, **params):
    return {"seed": seed, "square": seed * seed, **params}


def _failing_experiment(seed, **params):
    if params.get("boom"):
        raise ValueError(f"boom at seed {seed}")
    return {"seed": seed}


def _crashing_experiment(seed, **params):
    # Repetition 0 seeds stay alive; the derived second-repetition seed
    # (base + 1000) kills its worker outright -- no exception, no cleanup,
    # exactly what a segfault or OOM-kill looks like to the parent.  The
    # delay before dying lets concurrently running innocent tasks (which
    # return in microseconds) deliver their results first, keeping the
    # collateral-damage pattern of each pool break deterministic.
    if seed >= 1000:
        time.sleep(0.25)
        os._exit(3)
    return {"seed": seed}


def _sleeping_experiment(seed, sleep_s=0.0, **params):
    time.sleep(sleep_s)
    return {"seed": seed}


@pytest.fixture(autouse=True)
def _registered_probes():
    probes = {
        "probe_fast": _fast_experiment,
        "probe_fail": _failing_experiment,
        "probe_crash": _crashing_experiment,
        "probe_sleep": _sleeping_experiment,
    }
    for name, fn in probes.items():
        register_experiment(name, fn)
    yield
    for name in probes:
        EXPERIMENTS.pop(name, None)


def test_serial_sweep_merges_in_derivation_order():
    tasks = derive_tasks("probe_fast", {"x": [1, 2]}, base_seed=3,
                         repetitions=2)
    outcome = run_sweep(tasks, workers=1)
    assert [o.task.index for o in outcome.outcomes] == [0, 1, 2, 3]
    assert all(o.ok for o in outcome.outcomes)
    assert outcome.outcomes[0].result["square"] == 9
    assert not outcome.failed()


def test_parallel_merge_is_byte_identical_to_serial():
    tasks = derive_tasks("probe_fast", {"x": [1, 2], "y": ["a"]},
                         base_seed=11, repetitions=2)
    serial = run_sweep(tasks, workers=1).results_bytes()
    parallel = run_sweep(tasks, workers=4).results_bytes()
    assert serial == parallel


def test_results_doc_schema_and_determinism_split():
    tasks = derive_tasks("probe_fast", {}, base_seed=5)
    outcome = run_sweep(tasks, workers=1)
    doc = outcome.results_doc()
    assert doc["schema"] == "repro.sweep/1"
    assert doc["tasks"][0]["ok"] is True
    # Timing/placement must not leak into the deterministic document.
    assert "seconds" not in doc["tasks"][0]
    assert "worker_pid" not in doc["tasks"][0]
    execution = outcome.execution_doc()
    assert execution["schema"] == "repro.sweep-execution/1"
    assert execution["tasks_total"] == 1
    assert execution["tasks"][0]["seconds"] >= 0.0


def test_raising_experiment_is_recorded_not_fatal():
    tasks = derive_tasks("probe_fail", {"boom": [False, True]}, base_seed=2)
    outcome = run_sweep(tasks, workers=2)
    by_index = {o.task.index: o for o in outcome.outcomes}
    assert by_index[0].ok
    assert not by_index[1].ok
    assert "boom at seed 2" in by_index[1].error
    assert outcome.pool_rebuilds == 0  # an exception must not poison the pool


def test_worker_crash_is_contained_and_retried():
    # 2 grid points x 2 repetitions; the repetition-1 seed (>= 1000) makes
    # its worker die via os._exit.  The engine must rebuild the pool,
    # retry, and still complete every other task.
    tasks = derive_tasks("probe_crash", {"x": [1, 2]}, base_seed=1,
                         repetitions=2)
    outcome = run_sweep(tasks, workers=2, retries=1)
    assert len(outcome.outcomes) == 4
    by_index = {o.task.index: o for o in outcome.outcomes}
    crashed = [o for o in outcome.outcomes if o.task.seed >= 1000]
    survived = [o for o in outcome.outcomes if o.task.seed < 1000]
    assert all(not o.ok for o in crashed)
    assert all("crash" in o.error.lower() or "abandoned" in o.error
               for o in crashed)
    # retries=1 normal attempts + the one post-budget grace requeue that
    # protects innocent bystanders of a pool break -> 3 attempts total.
    assert all(o.attempts == 3 for o in crashed)
    assert all(o.ok for o in survived)
    assert outcome.pool_rebuilds >= 1
    assert sorted(by_index) == [0, 1, 2, 3]


def test_in_worker_timeout_records_timeout():
    tasks = derive_tasks("probe_sleep", {"sleep_s": [5.0]}, base_seed=9)
    start = time.perf_counter()
    outcome = run_sweep(tasks, workers=2, timeout_s=0.5, retries=0)
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0  # SIGALRM interrupted the sleep
    assert len(outcome.outcomes) == 1
    assert not outcome.outcomes[0].ok
    assert outcome.outcomes[0].timeout


def test_write_run_dir(tmp_path):
    tasks = derive_tasks("probe_fast", {}, base_seed=4)
    outcome = run_sweep(tasks, workers=1)
    paths = outcome.write_run_dir(str(tmp_path / "run"))
    with open(paths["results"], "rb") as stream:
        assert stream.read() == outcome.results_bytes()
    with open(paths["execution"], encoding="utf-8") as stream:
        assert json.load(stream)["schema"] == "repro.sweep-execution/1"


def test_per_task_traces_collected(tmp_path):
    trace_dir = str(tmp_path / "traces")
    tasks = derive_tasks("run", {"num_nodes": [6]}, base_seed=13)
    outcome = run_sweep(tasks, workers=1, trace_dir=trace_dir)
    assert outcome.outcomes[0].ok
    path = outcome.outcomes[0].trace_path
    assert path and os.path.exists(path)
    with open(path, encoding="utf-8") as stream:
        header = json.loads(stream.readline())
    assert header["schema"] == "repro.trace/1"


def _square(x):
    return x * x


def _seeded(seed):
    return {"seed": seed, "value": seed * 2}


def test_map_points_preserves_order():
    calls = [{"x": i} for i in range(6)]
    serial = map_points(_square, calls, workers=1)
    parallel = map_points(_square, calls, workers=3)
    assert serial == parallel == [0, 1, 4, 9, 16, 25]


def test_map_seeds_preserves_order():
    seeds = [7, 1007, 2007]
    serial = map_seeds(_seeded, seeds, workers=1)
    parallel = map_seeds(_seeded, seeds, workers=3)
    assert serial == parallel
    assert [r["seed"] for r in parallel] == seeds
