"""Tests for the multiprocess sweep engine (``repro.exec``)."""
