"""Tests for deterministic sweep task derivation."""

import pytest

from repro.exec import (
    EXPERIMENTS,
    derive_tasks,
    expand_grid,
    experiment_names,
    register_experiment,
)
from repro.experiments.repeat import derive_seeds


def test_expand_grid_sorted_axes_deterministic():
    points = expand_grid({"b": [1, 2], "a": ["x", "y"]})
    assert points == [
        {"a": "x", "b": 1},
        {"a": "x", "b": 2},
        {"a": "y", "b": 1},
        {"a": "y", "b": 2},
    ]
    # Insertion order of the grid dict must not matter.
    assert points == expand_grid({"a": ["x", "y"], "b": [1, 2]})


def test_expand_grid_empty_is_single_point():
    assert expand_grid({}) == [{}]


def test_derive_tasks_grid_major_repetition_minor():
    tasks = derive_tasks(
        "run", {"num_nodes": [8, 10]}, base_seed=7, repetitions=3
    )
    assert len(tasks) == 6
    assert [t.index for t in tasks] == list(range(6))
    seeds = derive_seeds(7, 3)
    # Repetition i of every grid point shares the i-th derived seed.
    assert [t.seed for t in tasks] == seeds + seeds
    assert [t.repetition for t in tasks] == [0, 1, 2, 0, 1, 2]
    assert [t.params["num_nodes"] for t in tasks] == [8, 8, 8, 10, 10, 10]


def test_derive_tasks_is_reproducible():
    a = derive_tasks("run", {"num_nodes": [8, 10]}, base_seed=3, repetitions=2)
    b = derive_tasks("run", {"num_nodes": [8, 10]}, base_seed=3, repetitions=2)
    assert a == b


def test_derive_tasks_unknown_experiment():
    with pytest.raises(KeyError):
        derive_tasks("no_such_experiment", {})


def test_task_spec_is_plain_data():
    task = derive_tasks("run", {"num_nodes": [8]}, base_seed=1)[0]
    spec = task.spec()
    assert spec == {
        "index": 0,
        "experiment": "run",
        "seed": 1,
        "repetition": 0,
        "params": {"num_nodes": 8},
    }
    import pickle

    assert pickle.loads(pickle.dumps(spec)) == spec


def test_registry_covers_cli_experiments():
    names = experiment_names()
    for expected in ("run", "fig6", "fig7", "fig9", "fig10_point",
                     "memory_point"):
        assert expected in names


def _probe_experiment(seed, **params):
    return {"seed": seed, **params}


def test_register_experiment_roundtrip():
    register_experiment("probe_tasks_test", _probe_experiment)
    try:
        tasks = derive_tasks("probe_tasks_test", {"x": [1]}, base_seed=5)
        assert tasks[0].experiment == "probe_tasks_test"
        assert EXPERIMENTS["probe_tasks_test"](seed=5, x=1) == {
            "seed": 5, "x": 1,
        }
    finally:
        del EXPERIMENTS["probe_tasks_test"]
