"""Spool-backed sweeps: crash recovery, lease atomicity, resume identity.

The acceptance properties of ``repro.exec.spool``:

* a spool sweep interrupted at any point (worker SIGKILL, coordinator
  death modelled as a partial drain) resumes to a merged ``repro.sweep/1``
  document *byte-identical* to the uninterrupted serial run;
* a stale lease is reclaimed within one lease-timeout and the task is
  retried under the backoff budget;
* concurrent claimants can never double-claim one task (lease-file
  atomicity);
* a task that exhausts ``max_attempts`` is parked -- recorded in the
  merged document, never fatal to the sweep.
"""

import json
import multiprocessing
import os
import signal
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec import (
    EXPERIMENTS,
    SpoolConfig,
    SpoolError,
    derive_tasks,
    register_experiment,
    run_spool_sweep,
    run_sweep,
    spool_status,
    spool_worker_loop,
)
from repro.exec.spool import (
    claim_task,
    collect_outcomes,
    init_spool,
    load_manifest,
    load_tasks,
    reclaim_stale,
    release_lease,
)

# Tight liveness knobs so recovery paths run in test time.
FAST = SpoolConfig(heartbeat_s=0.05, lease_timeout_s=0.25, max_attempts=3,
                   backoff_base_s=0.01, backoff_cap_s=0.05, poll_s=0.02)


def _fast_experiment(seed, **params):
    return {"seed": seed, "square": seed * seed, **params}


def _crashing_experiment(seed, **params):
    # The derived repetition-1 seed (>= 1000) kills its process outright --
    # what a segfault or OOM-kill looks like from outside.
    if seed >= 1000:
        os._exit(3)
    return {"seed": seed}


def _blocking_experiment(seed, block_file="", **params):
    # Spins while the sentinel file exists, so a test can hold a task
    # "mid-flight" for as long as it needs, then release it.
    while block_file and os.path.exists(block_file):
        time.sleep(0.02)
    return {"seed": seed}


@pytest.fixture(autouse=True)
def _registered_probes():
    # Register the probe experiments, and restore the process-global state
    # that direct in-process ``spool_worker_loop`` calls reset per task
    # (``run_spool_sweep`` does this itself; raw loop calls do not).
    from repro import obs
    from repro.crypto import keys
    from repro.exec.worker import reset_worker_state

    probes = {
        "spool_fast": _fast_experiment,
        "spool_crash": _crashing_experiment,
        "spool_block": _blocking_experiment,
    }
    for name, fn in probes.items():
        register_experiment(name, fn)
    saved_tracer = obs.TRACER
    saved_verifiers = dict(keys._VERIFIERS)
    yield
    reset_worker_state()
    keys._VERIFIERS.update(saved_verifiers)
    obs.set_tracer(saved_tracer)
    for name in probes:
        EXPERIMENTS.pop(name, None)


def _tasks(n_points=2, repetitions=2, experiment="spool_fast", **grid_extra):
    grid = {"x": list(range(n_points)), **grid_extra}
    return derive_tasks(experiment, grid, base_seed=3, repetitions=repetitions)


# ------------------------------------------------------------ happy paths


def test_spool_sweep_byte_identical_to_serial(tmp_path):
    tasks = _tasks()
    serial = run_sweep(tasks, workers=1)
    outcome = run_spool_sweep(str(tmp_path / "spool"), tasks, workers=1,
                              config=FAST)
    assert outcome.results_bytes() == serial.results_bytes()
    assert outcome.spool["completed"] == len(tasks)
    assert outcome.spool["parked"] == 0


def test_spool_multiworker_byte_identical_to_serial(tmp_path):
    tasks = _tasks(n_points=3)
    serial = run_sweep(tasks, workers=1)
    outcome = run_spool_sweep(str(tmp_path / "spool"), tasks, workers=3,
                              config=FAST)
    assert outcome.results_bytes() == serial.results_bytes()
    assert not outcome.failed()


def test_resume_after_partial_drain_matches_serial(tmp_path):
    # Coordinator-death model: the first run drains only part of the spool
    # (as if killed), a second invocation resumes and completes the rest.
    spool = str(tmp_path / "spool")
    tasks = _tasks(n_points=3)
    serial = run_sweep(tasks, workers=1)
    init_spool(spool, tasks)
    executed = spool_worker_loop(spool, config=FAST, max_tasks=2)
    assert executed == 2
    assert spool_status(spool)["pending"] == len(tasks) - 2

    outcome = run_spool_sweep(spool, tasks, workers=1, config=FAST,
                              resume=True)
    assert outcome.results_bytes() == serial.results_bytes()
    # Already-completed indices were skipped, not re-run.
    assert outcome.spool["attempts"] == len(tasks)


def test_resume_with_tasks_reloaded_from_spool(tmp_path):
    # A resuming process needs nothing but the directory: the task list
    # round-trips through the spooled spec files.
    spool = str(tmp_path / "spool")
    tasks = _tasks()
    run_spool_sweep(spool, tasks, workers=1, config=FAST)
    assert load_tasks(spool) == tasks
    outcome = run_spool_sweep(spool, None, workers=1, config=FAST,
                              resume=True)
    assert outcome.results_bytes() == run_sweep(tasks, workers=1).results_bytes()


# ------------------------------------------------------- crash recovery


def test_sigkilled_worker_is_reclaimed_retried_and_identical(tmp_path):
    # A real worker process is SIGKILLed mid-task; its lease must go
    # stale, be reclaimed within one lease timeout, and the task re-run --
    # with the final merge byte-identical to the serial run.
    spool = str(tmp_path / "spool")
    block = str(tmp_path / "block")
    with open(block, "w"):
        pass
    tasks = derive_tasks("spool_block", {"block_file": [block]}, base_seed=3,
                         repetitions=2)
    init_spool(spool, tasks)

    proc = multiprocessing.get_context("fork").Process(
        target=spool_worker_loop, args=(spool,),
        kwargs={"config": FAST}, daemon=True,
    )
    proc.start()
    deadline = time.time() + 10.0
    while True:  # wait for a fully recorded claim (lease AND attempt count)
        status = spool_status(spool)
        if status["leased"] > 0 and status["attempts"] > 0:
            break
        assert time.time() < deadline, "worker never claimed a task"
        time.sleep(0.02)
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=5.0)

    # The dead worker's lease expires and is reclaimed for retry.
    time.sleep(FAST.effective_lease_timeout_s + 0.1)
    reclaimed = reclaim_stale(spool, FAST)
    assert reclaimed, "stale lease was not reclaimed"
    status = spool_status(spool)
    assert status["leased"] == 0
    assert status["reclaims"] >= 1

    os.unlink(block)  # release: retries now complete instantly
    outcome = run_spool_sweep(spool, tasks, workers=1, config=FAST,
                              resume=True)
    serial = run_sweep(tasks, workers=1)
    assert outcome.results_bytes() == serial.results_bytes()
    retried = [o for o in outcome.outcomes if o.attempts > 1]
    assert retried, "the killed task should record the extra attempt"
    assert outcome.execution_doc()["tasks_retried"] >= 1


def test_deterministic_crasher_is_parked_not_fatal(tmp_path):
    # seed >= 1000 (repetition 1) kills its worker every time; the task
    # must burn its budget, be parked, and leave the rest of the sweep
    # (and the merged document) intact.
    tasks = _tasks(n_points=2, experiment="spool_crash")
    outcome = run_spool_sweep(str(tmp_path / "spool"), tasks, workers=2,
                              config=FAST)
    by_seed = {o.task.seed: o for o in outcome.outcomes}
    crashed = [o for o in outcome.outcomes if o.task.seed >= 1000]
    survived = [o for o in outcome.outcomes if o.task.seed < 1000]
    assert all(o.parked and not o.ok for o in crashed)
    assert all(o.attempts == FAST.max_attempts for o in crashed)
    assert all(o.ok for o in survived)
    doc = outcome.results_doc()
    assert doc["parked"] == sorted(o.task.index for o in crashed)
    parked_records = [t for t in doc["tasks"] if not t["ok"]]
    assert all("parked" in r["error"] for r in parked_records)
    execution = outcome.execution_doc()
    assert execution["tasks_parked"] == len(crashed)
    assert execution["spool"]["parked"] == len(crashed)
    assert execution["spool"]["worker_restarts"] >= 1
    del by_seed


def test_heartbeat_keeps_long_task_from_being_reclaimed(tmp_path):
    # A slow-but-alive task renews its lease; a reclaimer sweeping well
    # past the lease timeout must leave it alone.
    spool = str(tmp_path / "spool")
    block = str(tmp_path / "block")
    with open(block, "w"):
        pass
    tasks = derive_tasks("spool_block", {"block_file": [block]}, base_seed=3)
    init_spool(spool, tasks)
    worker = threading.Thread(
        target=spool_worker_loop, args=(spool,),
        kwargs={"config": FAST, "reclaim": False}, daemon=True,
    )
    worker.start()
    try:
        deadline = time.time() + 10.0
        while spool_status(spool)["leased"] == 0:
            assert time.time() < deadline
            time.sleep(0.02)
        time.sleep(FAST.effective_lease_timeout_s + 0.2)
        assert reclaim_stale(spool, FAST) == []
        assert spool_status(spool)["leased"] == 1
    finally:
        os.unlink(block)
        worker.join(timeout=10.0)
    assert spool_status(spool)["pending"] == 0


def test_reclaim_applies_retry_backoff(tmp_path):
    spool = str(tmp_path / "spool")
    tasks = _tasks(n_points=1, repetitions=1)
    init_spool(spool, tasks)
    config = SpoolConfig(heartbeat_s=0.05, lease_timeout_s=0.1,
                         max_attempts=3, backoff_base_s=30.0)
    now = time.time()
    assert claim_task(spool, 0, "owner-a", config, now=now) is not None
    # Fake a dead owner: heartbeat frozen at claim time, clock far ahead.
    reclaimed = reclaim_stale(spool, config, now=now + 5.0)
    assert reclaimed == [0]
    # Inside the backoff window the task is not claimable...
    assert claim_task(spool, 0, "owner-b", config, now=now + 6.0) is None
    # ...after it elapses, it is.
    assert claim_task(spool, 0, "owner-b", config,
                      now=now + 5.0 + 31.0) is not None


# -------------------------------------------------------- lease atomicity


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(claimants=st.integers(min_value=2, max_value=10),
       indices=st.integers(min_value=1, max_value=3))
def test_concurrent_claimants_never_double_claim(tmp_path_factory,
                                                 claimants, indices):
    # N threads race to claim each task through the same atomic-link
    # protocol real workers use; exactly one winner per task, always.
    spool = str(tmp_path_factory.mktemp("spool-race") / "spool")
    tasks = _tasks(n_points=indices, repetitions=1)
    init_spool(spool, tasks)
    config = SpoolConfig(heartbeat_s=5.0)
    for index in range(indices):
        wins = []
        barrier = threading.Barrier(claimants)

        def attempt(owner_id, index=index, wins=wins, barrier=barrier):
            barrier.wait()
            lease = claim_task(spool, index, f"owner-{owner_id}", config)
            if lease is not None:
                wins.append(lease["owner"])

        threads = [threading.Thread(target=attempt, args=(i,))
                   for i in range(claimants)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1, f"task {index} claimed {len(wins)} times"
        release_lease(spool, index)


def test_claim_respects_results_parked_and_live_leases(tmp_path):
    spool = str(tmp_path / "spool")
    tasks = _tasks(n_points=1, repetitions=1)
    init_spool(spool, tasks)
    config = SpoolConfig()
    lease = claim_task(spool, 0, "owner-a", config)
    assert lease is not None and lease["attempt"] == 1
    # Live lease blocks a second claim.
    assert claim_task(spool, 0, "owner-b", config) is None
    release_lease(spool, 0)
    # A published result blocks claims forever.
    run_spool_sweep(spool, tasks, workers=1, config=FAST, resume=True)
    assert claim_task(spool, 0, "owner-b", config) is None


# --------------------------------------------------------------- guards


def test_fresh_run_refuses_existing_spool(tmp_path):
    spool = str(tmp_path / "spool")
    tasks = _tasks(n_points=1)
    run_spool_sweep(spool, tasks, workers=1, config=FAST)
    with pytest.raises(SpoolError, match="resume"):
        run_spool_sweep(spool, tasks, workers=1, config=FAST)


def test_resume_refuses_missing_and_mismatched_spools(tmp_path):
    with pytest.raises(SpoolError, match="nothing to resume"):
        run_spool_sweep(str(tmp_path / "nope"), _tasks(), resume=True)
    spool = str(tmp_path / "spool")
    run_spool_sweep(spool, _tasks(n_points=1), workers=1, config=FAST)
    other = derive_tasks("spool_fast", {"x": [99]}, base_seed=8)
    with pytest.raises(SpoolError, match="fingerprint"):
        run_spool_sweep(spool, other, resume=True, config=FAST)


def test_manifest_records_schema_and_meta(tmp_path):
    spool = str(tmp_path / "spool")
    init_spool(spool, _tasks(n_points=1), meta={"experiment": "spool_fast"})
    manifest = load_manifest(spool)
    assert manifest["schema"] == "repro.sweep-spool/1"
    assert manifest["meta"]["experiment"] == "spool_fast"
    assert manifest["tasks_total"] == 2


def test_collect_reports_unfinished_tasks_without_dropping(tmp_path):
    spool = str(tmp_path / "spool")
    tasks = _tasks(n_points=2, repetitions=1)
    init_spool(spool, tasks)
    spool_worker_loop(spool, config=FAST, max_tasks=1)
    outcome = collect_outcomes(spool)
    assert len(outcome.outcomes) == len(tasks)
    unfinished = [o for o in outcome.outcomes if not o.ok]
    assert len(unfinished) == 1
    assert "unfinished" in unfinished[0].error
    # The deterministic document still lists every index.
    doc = json.loads(outcome.results_bytes())
    assert [t["index"] for t in doc["tasks"]] == [t.index for t in tasks]
