"""Docstring coverage and doctest execution for the public API surface.

Two jobs:

* run every doctest in ``repro.sketch`` (and the cache-metrics module) as
  part of the normal suite, so the examples in the docs cannot rot even
  when CI's separate ``--doctest-modules`` step is skipped;
* enforce that the public symbols of the documented packages actually
  carry docstrings, so the coverage achieved by the docs pass sticks.
"""

import doctest
import importlib
import inspect
import os
import pkgutil

import pytest

DOCTEST_MODULES = [
    "repro.sketch.gf",
    "repro.sketch.pinsketch",
    "repro.sketch.partition",
    "repro.metrics.caches",
    "repro.mempool.priority",
    "repro.mempool.fee_market",
    "repro.workload.hotkey",
    "repro.obs.timeline",
    "repro.obs.steady",
    "repro.obs.report",
]

DOCUMENTED_PACKAGES = [
    "repro.sketch",
    "repro.core",
    "repro.net.chaos",
    "repro.testing",
    "repro.bench",
    "repro.metrics",
    "repro.exec",
    "repro.mempool",
    "repro.workload",
    "repro.obs",
]


@pytest.mark.parametrize("name", DOCTEST_MODULES)
def test_module_doctests_pass(name):
    module = importlib.import_module(name)
    failures, tried = doctest.testmod(module, verbose=False)
    assert failures == 0
    # gf/pinsketch carry worked examples; an empty run means they vanished.
    if name.startswith("repro.sketch.") and name != "repro.sketch.partition":
        assert tried > 0, f"{name} lost its doctests"


def test_sketch_doc_examples():
    """docs/sketch.md's worked example runs verbatim."""
    path = os.path.join(os.path.dirname(__file__), "..", "docs", "sketch.md")
    failures, tried = doctest.testfile(path, module_relative=False,
                                       verbose=False)
    assert failures == 0
    assert tried > 0, "docs/sketch.md lost its worked example"


def test_mempool_doc_examples():
    """docs/mempool.md's worked example runs verbatim."""
    path = os.path.join(os.path.dirname(__file__), "..", "docs", "mempool.md")
    failures, tried = doctest.testfile(path, module_relative=False,
                                       verbose=False)
    assert failures == 0
    assert tried > 0, "docs/mempool.md lost its worked example"


def test_observability_doc_examples():
    """docs/observability.md's worked example runs verbatim."""
    path = os.path.join(os.path.dirname(__file__), "..", "docs",
                        "observability.md")
    failures, tried = doctest.testfile(path, module_relative=False,
                                       verbose=False)
    assert failures == 0
    assert tried > 0, "docs/observability.md lost its worked example"


def _public_symbols(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield name, obj


def _iter_modules(package_name):
    package = importlib.import_module(package_name)
    yield package
    if hasattr(package, "__path__"):
        for info in pkgutil.iter_modules(package.__path__):
            if not info.name.startswith("_"):
                yield importlib.import_module(f"{package_name}.{info.name}")


@pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
def test_public_symbols_have_docstrings(package_name):
    missing = []
    for module in _iter_modules(package_name):
        if not module.__doc__:
            missing.append(module.__name__)
        for name, obj in _public_symbols(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
                continue
            if inspect.isclass(obj):
                for attr, member in vars(obj).items():
                    if attr.startswith("_"):
                        continue
                    if callable(member) or isinstance(member, property):
                        if not inspect.getdoc(member):
                            missing.append(f"{module.__name__}.{name}.{attr}")
    assert not missing, f"undocumented public symbols: {sorted(set(missing))}"
