"""Tests for the Brahms Byzantine-resilient sampler."""

import random

import pytest

from repro.gossip.brahms import BrahmsNode, ByzantinePusher, MinWiseSampler
from repro.net import ConstantLatencyModel, Network
from repro.sim import EventLoop


def build_overlay(n=24, byzantine=(), flood_factor=8, seed=5,
                  rounds_time=30.0):
    loop = EventLoop()
    net = Network(loop, ConstantLatencyModel(0.01))
    rng = random.Random(seed)
    bootstrap = list(range(n))
    nodes = {}
    for node_id in range(n):
        boot = rng.sample([b for b in bootstrap if b != node_id], 8)
        if node_id in byzantine:
            node = ByzantinePusher(
                node_id, loop, net, boot, random.Random(seed + node_id),
                accomplices=set(byzantine), flood_factor=flood_factor,
            )
        else:
            node = BrahmsNode(
                node_id, loop, net, boot, random.Random(seed + node_id)
            )
        nodes[node_id] = node
    for node in nodes.values():
        node.start()
    loop.run_until(rounds_time)
    return nodes


def test_minwise_sampler_keeps_minimum():
    cell = MinWiseSampler(salt=b"s")
    for node_id in (5, 9, 2, 7):
        cell.offer(node_id)
    first = cell.sample
    # Re-offering the same stream cannot change the choice.
    for node_id in (5, 9, 2, 7):
        cell.offer(node_id)
    assert cell.sample == first
    cell.invalidate()
    assert cell.sample is None


def test_minwise_sampler_is_stream_order_independent():
    a = MinWiseSampler(salt=b"same")
    b = MinWiseSampler(salt=b"same")
    for node_id in (1, 2, 3, 4, 5):
        a.offer(node_id)
    for node_id in (5, 4, 3, 2, 1):
        b.offer(node_id)
    assert a.sample == b.sample


def test_views_stay_populated_and_valid():
    nodes = build_overlay(n=20)
    for node in nodes.values():
        assert node.view
        assert node.node_id not in node.view
        assert all(0 <= p < 20 for p in node.view)
        assert node.rounds > 10


def test_samples_spread_over_membership():
    nodes = build_overlay(n=24)
    # Union of sample lists covers a large part of the membership.
    union = set()
    for node in nodes.values():
        union |= node.sample_ids()
    assert len(union) >= 18


def test_sample_api_contract():
    nodes = build_overlay(n=16)
    node = nodes[0]
    picked = node.sample(5)
    assert len(picked) <= 5
    assert node.node_id not in picked
    excluded = node.sample(8, exclude={1, 2, 3})
    assert set(excluded).isdisjoint({1, 2, 3})


def test_byzantine_flood_does_not_take_over_samples():
    byzantine = set(range(4))  # 4 of 24 faulty (1/6)
    nodes = build_overlay(n=24, byzantine=byzantine, flood_factor=10,
                          rounds_time=40.0)
    correct = [n for i, n in nodes.items() if i not in byzantine]
    # Min-wise sampling bounds infiltration near the faulty fraction even
    # under heavy flooding; allow generous slack over the 1/6 baseline.
    fractions = []
    for node in correct:
        samples = node.sample_ids()
        if samples:
            bad = len(samples & byzantine) / len(samples)
            fractions.append(bad)
    average = sum(fractions) / len(fractions)
    assert average < 0.45


def test_correct_nodes_remain_reachable_under_attack():
    byzantine = set(range(4))
    nodes = build_overlay(n=24, byzantine=byzantine, rounds_time=40.0)
    for node_id, node in nodes.items():
        if node_id in byzantine:
            continue
        correct_samples = node.sample_ids() - byzantine - {node_id}
        assert correct_samples, "sample list fully poisoned"


def test_invalid_mixing_weights_rejected():
    loop = EventLoop()
    net = Network(loop, ConstantLatencyModel(0.01))
    with pytest.raises(ValueError):
        BrahmsNode(0, loop, net, [1, 2], random.Random(0), alpha=0.5,
                   beta=0.5, gamma=0.5)
