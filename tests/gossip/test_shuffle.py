"""Unit tests for neighbour shuffling."""

import random

from repro.gossip import NeighborShuffler, PeerSampler
from repro.sim import EventLoop


def make_shuffler(neighbors, blocklist=None, period=1.0, target=4, swaps=1):
    loop = EventLoop()
    sampler = PeerSampler(range(20), random.Random(1))
    changes = []
    shuffler = NeighborShuffler(
        loop,
        node_id=0,
        neighbors=neighbors,
        sampler=sampler,
        rng=random.Random(2),
        period=period,
        swaps_per_round=swaps,
        target_degree=target,
        blocklist=blocklist,
        on_change=lambda added, removed: changes.append((added, removed)),
    )
    return loop, shuffler, changes


def test_maintains_target_degree():
    neighbors = {1, 2, 3, 4}
    loop, shuffler, _ = make_shuffler(neighbors)
    shuffler.start()
    loop.run_until(10.0)
    assert len(neighbors) == 4


def test_rotates_neighbors_over_time():
    neighbors = {1, 2, 3, 4}
    original = set(neighbors)
    loop, shuffler, _ = make_shuffler(neighbors)
    shuffler.start()
    loop.run_until(30.0)
    assert neighbors != original or shuffler.total_swaps > 0


def test_blocked_neighbors_evicted():
    neighbors = {1, 2, 3, 4}
    loop, shuffler, _ = make_shuffler(
        neighbors, blocklist=lambda: {1, 2}
    )
    shuffler.start()
    loop.run_until(2.0)
    assert 1 not in neighbors and 2 not in neighbors
    assert len(neighbors) == 4  # refilled


def test_blocked_never_readded():
    neighbors = {1, 2, 3, 4}
    loop, shuffler, _ = make_shuffler(neighbors, blocklist=lambda: {1})
    shuffler.start()
    loop.run_until(20.0)
    assert 1 not in neighbors


def test_on_change_reports_swaps():
    neighbors = {1, 2, 3, 4}
    loop, shuffler, changes = make_shuffler(neighbors)
    shuffler.start()
    loop.run_until(5.0)
    assert changes
    added, removed = changes[0]
    assert added or removed


def test_never_adds_self():
    neighbors = set()
    loop, shuffler, _ = make_shuffler(neighbors, target=8)
    shuffler.start()
    loop.run_until(5.0)
    assert 0 not in neighbors
