"""Unit tests for the peer sampler."""

import random

import pytest

from repro.gossip import PeerSampler


def test_sample_excludes_caller():
    sampler = PeerSampler(range(10), random.Random(1))
    for _ in range(20):
        assert 3 not in sampler.sample(3, 5)


def test_sample_size_and_distinctness():
    sampler = PeerSampler(range(20), random.Random(2))
    picked = sampler.sample(0, 7)
    assert len(picked) == 7
    assert len(set(picked)) == 7


def test_small_pool_returns_everything():
    sampler = PeerSampler(range(4), random.Random(3))
    assert sorted(sampler.sample(0, 10)) == [1, 2, 3]


def test_exclusions_respected():
    sampler = PeerSampler(range(10), random.Random(4))
    picked = sampler.sample(0, 9, exclude={1, 2, 3})
    assert set(picked).isdisjoint({1, 2, 3})


def test_predicate_filter():
    sampler = PeerSampler(range(10), random.Random(5))
    picked = sampler.sample(0, 9, predicate=lambda n: n % 2 == 0)
    assert all(n % 2 == 0 for n in picked)


def test_leave_and_join():
    sampler = PeerSampler(range(5), random.Random(6))
    sampler.leave(2)
    assert 2 not in sampler.members
    for _ in range(10):
        assert 2 not in sampler.sample(0, 4)
    sampler.join(2)
    assert 2 in sampler.members


def test_join_new_member():
    sampler = PeerSampler(range(3), random.Random(7))
    sampler.join(99)
    assert 99 in sampler.members


def test_sample_one():
    sampler = PeerSampler(range(3), random.Random(8))
    peer = sampler.sample_one(0)
    assert peer in (1, 2)
    assert sampler.sample_one(0, exclude={1, 2}) is None


def test_uniformity_rough():
    sampler = PeerSampler(range(6), random.Random(9))
    counts = {i: 0 for i in range(1, 6)}
    for _ in range(2000):
        counts[sampler.sample_one(0)] += 1
    # Each of 5 peers expected ~400; allow wide tolerance.
    assert all(300 < c < 500 for c in counts.values())


def test_invalid_inputs():
    with pytest.raises(ValueError):
        PeerSampler([1], random.Random(0))
    sampler = PeerSampler(range(3), random.Random(0))
    with pytest.raises(ValueError):
        sampler.sample(0, -1)
