"""Unit tests for seeded RNG streams."""

from repro.sim import SeededRng
from repro.sim.rng import derive_seed


def test_same_seed_same_stream():
    a = SeededRng(42).stream("workload")
    b = SeededRng(42).stream("workload")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_labels_differ():
    rng = SeededRng(42)
    a = [rng.stream("one").random() for _ in range(5)]
    b = [rng.stream("two").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = SeededRng(1).stream("x").random()
    b = SeededRng(2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    rng = SeededRng(0)
    assert rng.stream("s") is rng.stream("s")


def test_fork_is_independent():
    rng = SeededRng(42)
    child = rng.fork("node-1")
    # The child's stream differs from the parent's same-named stream.
    assert child.stream("behaviour").random() != rng.stream("behaviour").random()
    # But forking again with the same label reproduces it.
    again = SeededRng(42).fork("node-1")
    assert again.stream("behaviour").random() == SeededRng(42).fork("node-1").stream("behaviour").random()


def test_derive_seed_is_deterministic_and_wide():
    s1 = derive_seed(42, "a")
    s2 = derive_seed(42, "a")
    s3 = derive_seed(42, "b")
    assert s1 == s2
    assert s1 != s3
    assert 0 <= s1 < 2 ** 64
