"""Unit tests for periodic processes."""

import random

import pytest

from repro.sim import EventLoop, PeriodicProcess


class TickCounter(PeriodicProcess):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.ticks = []

    def tick(self):
        self.ticks.append(self.loop.now)


def test_periodic_ticks_at_period():
    loop = EventLoop()
    proc = TickCounter(loop, period=1.0)
    proc.start()
    loop.run_until(5.0)
    assert proc.ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_phase_controls_first_tick():
    loop = EventLoop()
    proc = TickCounter(loop, period=1.0, phase=0.25)
    proc.start()
    loop.run_until(2.5)
    assert proc.ticks == [0.25, 1.25, 2.25]


def test_stop_halts_ticking():
    loop = EventLoop()
    proc = TickCounter(loop, period=1.0)
    proc.start()
    loop.run_until(2.0)
    proc.stop()
    loop.run_until(10.0)
    assert len(proc.ticks) == 2
    assert not proc.running


def test_start_is_idempotent():
    loop = EventLoop()
    proc = TickCounter(loop, period=1.0)
    proc.start()
    proc.start()
    loop.run_until(3.0)
    assert proc.ticks == [1.0, 2.0, 3.0]


def test_restart_after_stop():
    loop = EventLoop()
    proc = TickCounter(loop, period=1.0, phase=1.0)
    proc.start()
    loop.run_until(1.0)
    proc.stop()
    proc.start()
    loop.run_until(3.0)
    assert len(proc.ticks) == 3


def test_jitter_varies_intervals():
    loop = EventLoop()
    proc = TickCounter(
        loop, period=1.0, jitter=0.2, jitter_rng=random.Random(5)
    )
    proc.start()
    loop.run_until(20.0)
    intervals = [
        b - a for a, b in zip(proc.ticks, proc.ticks[1:])
    ]
    assert all(0.8 <= i <= 1.2 for i in intervals)
    assert len(set(round(i, 6) for i in intervals)) > 1


def test_stop_inside_tick_prevents_reschedule():
    loop = EventLoop()

    class SelfStopping(PeriodicProcess):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.count = 0

        def tick(self):
            self.count += 1
            self.stop()

    proc = SelfStopping(loop, period=1.0)
    proc.start()
    loop.run_until(10.0)
    assert proc.count == 1


def test_invalid_period_rejected():
    with pytest.raises(ValueError):
        TickCounter(EventLoop(), period=0.0)
