"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim import EventLoop, SimulationError


def test_events_run_in_time_order():
    loop = EventLoop()
    seen = []
    loop.call_later(3.0, seen.append, "c")
    loop.call_later(1.0, seen.append, "a")
    loop.call_later(2.0, seen.append, "b")
    loop.run_until(5.0)
    assert seen == ["a", "b", "c"]
    assert loop.now == 5.0


def test_ties_break_by_insertion_order():
    loop = EventLoop()
    seen = []
    for label in ("first", "second", "third"):
        loop.call_at(1.0, seen.append, label)
    loop.run_until(1.0)
    assert seen == ["first", "second", "third"]


def test_deadline_is_inclusive():
    loop = EventLoop()
    seen = []
    loop.call_at(2.0, seen.append, "edge")
    loop.run_until(2.0)
    assert seen == ["edge"]


def test_events_beyond_deadline_stay_pending():
    loop = EventLoop()
    seen = []
    loop.call_at(10.0, seen.append, "late")
    loop.run_until(5.0)
    assert seen == []
    loop.run_until(10.0)
    assert seen == ["late"]


def test_cancelled_event_does_not_run():
    loop = EventLoop()
    seen = []
    event = loop.call_later(1.0, seen.append, "x")
    event.cancel()
    loop.run_until(2.0)
    assert seen == []


def test_callbacks_can_schedule_more_events():
    loop = EventLoop()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            loop.call_later(0.5, chain, n + 1)

    loop.call_later(0.5, chain, 0)
    loop.run_until(10.0)
    assert seen == [0, 1, 2, 3]


def test_nested_event_within_deadline_runs():
    loop = EventLoop()
    seen = []
    loop.call_later(1.0, lambda: loop.call_later(0.5, seen.append, "inner"))
    loop.run_until(2.0)
    assert seen == ["inner"]


def test_scheduling_in_the_past_raises():
    loop = EventLoop()
    loop.run_until(5.0)
    with pytest.raises(SimulationError):
        loop.call_at(4.0, lambda: None)
    with pytest.raises(SimulationError):
        loop.call_later(-1.0, lambda: None)


def test_run_until_backwards_raises():
    loop = EventLoop()
    loop.run_until(5.0)
    with pytest.raises(SimulationError):
        loop.run_until(4.0)


def test_run_for_advances_relative():
    loop = EventLoop(start_time=10.0)
    loop.run_for(2.5)
    assert loop.now == 12.5


def test_step_executes_single_event():
    loop = EventLoop()
    seen = []
    loop.call_later(1.0, seen.append, "a")
    loop.call_later(2.0, seen.append, "b")
    loop.step()
    assert seen == ["a"]
    assert loop.now == 1.0


def test_step_on_empty_heap_returns_none():
    assert EventLoop().step() is None


def test_drain_runs_everything():
    loop = EventLoop()
    seen = []
    loop.call_later(1.0, seen.append, 1)
    loop.call_later(2.0, seen.append, 2)
    executed = loop.drain()
    assert executed == 2
    assert seen == [1, 2]


def test_drain_guards_against_livelock():
    loop = EventLoop()

    def reschedule():
        loop.call_later(0.1, reschedule)

    loop.call_later(0.1, reschedule)
    with pytest.raises(SimulationError):
        loop.drain(max_events=100)


def test_processed_events_counter():
    loop = EventLoop()
    for _ in range(5):
        loop.call_later(1.0, lambda: None)
    loop.run_until(2.0)
    assert loop.processed_events == 5


# ------------------------------------------------- cancelled-event accounting


def test_pending_events_excludes_cancelled():
    loop = EventLoop()
    events = [loop.call_later(float(i + 1), lambda: None) for i in range(5)]
    assert loop.pending_events == 5
    events[0].cancel()
    events[3].cancel()
    assert loop.pending_events == 3


def test_cancel_is_idempotent_in_accounting():
    loop = EventLoop()
    event = loop.call_later(1.0, lambda: None)
    loop.call_later(2.0, lambda: None)
    event.cancel()
    event.cancel()
    event.cancel()
    assert loop.pending_events == 1


def test_heap_compacts_when_tombstones_dominate():
    loop = EventLoop()
    keep = 40
    cancel = 80  # majority cancelled, heap comfortably above the minimum
    kept = [loop.call_later(1000.0 + i, lambda: None) for i in range(keep)]
    doomed = [loop.call_later(2000.0 + i, lambda: None) for i in range(cancel)]
    assert loop.heap_size == keep + cancel
    for event in doomed:
        event.cancel()
    # The cancelled fraction crossed 50% part-way through; a rebuild must
    # have shed the tombstones accumulated so far instead of waiting for
    # their (far-future) timestamps to be popped.  Cancellations after the
    # rebuild may linger, but never enough to dominate again.
    assert loop.compactions >= 1
    assert loop.pending_events == keep
    assert loop.heap_size < keep + cancel
    tombstones = loop.heap_size - loop.pending_events
    assert tombstones * 2 <= loop.heap_size
    assert all(not e.cancelled for e in kept)


def test_no_compaction_below_min_size():
    loop = EventLoop()
    events = [loop.call_later(100.0 + i, lambda: None) for i in range(10)]
    for event in events[:9]:
        event.cancel()
    assert loop.compactions == 0          # tiny heaps are left alone
    assert loop.heap_size == 10           # tombstones still in place
    assert loop.pending_events == 1


def test_events_still_run_in_order_after_compaction():
    loop = EventLoop()
    seen = []
    live = []
    for i in range(64):
        if i % 2:
            live.append((i, loop.call_later(float(i + 1), seen.append, i)))
        else:
            loop.call_later(float(i + 1), seen.append, i)
    doomed = [e for i, e in live]  # cancel every odd-timed event
    for event in doomed:
        event.cancel()
    extra = [loop.call_later(500.0, lambda: None) for _ in range(80)]
    for event in extra:
        event.cancel()
    assert loop.compactions >= 1
    loop.run_until(100.0)
    assert seen == [i for i in range(64) if i % 2 == 0]
    assert loop.pending_events == 0


def test_popping_tombstones_keeps_accounting_consistent():
    loop = EventLoop()
    events = [loop.call_later(float(i + 1), lambda: None) for i in range(6)]
    for event in events[::2]:
        event.cancel()
    loop.run_until(10.0)  # pops the tombstones without compaction
    assert loop.pending_events == 0
    assert loop.heap_size == 0
    assert loop.processed_events == 3
