"""Property tests: the list-entry heap loop matches a reference loop.

The production :class:`~repro.sim.loop.EventLoop` stores heap entries as
plain ``[time, seq, callback, args]`` lists so ``heapq`` compares them in
C.  These tests pin its observable behaviour to an *embedded reference
implementation* that keeps the old object-based heap (a Python ``__lt__``
on event objects) and the identical scheduling semantics.  Hypothesis
drives both loops through random schedule/cancel/run programs -- including
callbacks that schedule further events mid-run -- and every observable
must match exactly: callback execution order, the clock at each callback,
the final clock, and the processed/pending/compaction counters.
"""

import heapq
import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.loop import EventLoop, SimulationError


# --------------------------------------------------------------------------
# Reference implementation: object-entry heap, Python-level ordering.
# --------------------------------------------------------------------------


class _RefEvent:
    """Heap entry ordered by ``(time, seq)`` via a Python ``__lt__``."""

    __slots__ = ("time", "seq", "callback", "args")

    def __init__(self, time, seq, callback, args):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    @property
    def cancelled(self):
        return self.callback is None

    def cancel(self, loop):
        if self.callback is None:
            return
        self.callback = None
        self.args = ()
        loop._note_cancelled()


class ReferenceLoop:
    """Pre-refactor loop semantics, kept only as a test oracle.

    Mirrors :class:`EventLoop`'s public surface (``call_at``,
    ``call_later``, ``schedule_at``, ``schedule_later``, ``run_until``,
    ``step``, the counters) and its compaction policy, but with the
    object-based heap the production loop replaced.
    """

    COMPACT_MIN_SIZE = EventLoop.COMPACT_MIN_SIZE

    def __init__(self, start_time=0.0):
        self._now = float(start_time)
        self._heap = []
        self._seq = itertools.count()
        self._processed = 0
        self._cancelled = 0
        self._compactions = 0

    @property
    def now(self):
        return self._now

    @property
    def pending_events(self):
        return len(self._heap) - self._cancelled

    @property
    def heap_size(self):
        return len(self._heap)

    @property
    def compactions(self):
        return self._compactions

    @property
    def processed_events(self):
        return self._processed

    def call_at(self, when, callback, *args):
        if when < self._now:
            raise SimulationError("scheduling in the past")
        event = _RefEvent(when, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def call_later(self, delay, callback, *args):
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, *args)

    def schedule_at(self, when, callback, *args):
        self.call_at(when, callback, *args)

    def schedule_later(self, delay, callback, *args):
        self.call_later(delay, callback, *args)

    def _note_cancelled(self):
        self._cancelled += 1
        if (len(self._heap) >= self.COMPACT_MIN_SIZE
                and self._cancelled * 2 > len(self._heap)):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0
            self._compactions += 1

    def run_until(self, deadline):
        if deadline < self._now:
            raise SimulationError("deadline before now")
        heap = self._heap
        while heap and heap[0].time <= deadline:
            event = heapq.heappop(heap)
            if event.callback is None:
                self._cancelled -= 1
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
        self._now = deadline

    def step(self):
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.callback is None:
                self._cancelled -= 1
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return event
        return None


# --------------------------------------------------------------------------
# Program interpreter: one op list, two loops, compared observables.
# --------------------------------------------------------------------------


def _run_program(loop, ops):
    """Execute a schedule/cancel/run program; returns the observation log.

    Tags divisible by 3 schedule a follow-up from inside their callback
    (mid-run scheduling), tags divisible by 5 use the handle-returning
    API so cancel ops have targets; the rest use the handle-free fast
    path.  Cancel ops pick among still-pending handles, and every cancel
    index is also re-cancelled to pin idempotence.
    """
    record = []
    handles = []

    def make_callback(tag):
        def callback():
            record.append((tag, loop.now, loop.processed_events))
            if tag % 3 == 0:
                loop.schedule_later((tag % 7) * 0.05, make_callback(tag + 1000))
        return callback

    for op in ops:
        kind = op[0]
        if kind == "sched":
            _, centi_delay, tag = op
            delay = centi_delay / 100.0
            if tag % 5 == 0:
                handles.append(loop.call_later(delay, make_callback(tag)))
            else:
                loop.schedule_later(delay, make_callback(tag))
        elif kind == "cancel":
            _, pick = op
            pending = [h for h in handles if h.callback is not None]
            if pending:
                target = pending[pick % len(pending)]
                target.cancel(loop) if isinstance(target, _RefEvent) \
                    else target.cancel()
                # Cancel must be idempotent: a second call is a no-op.
                target.cancel(loop) if isinstance(target, _RefEvent) \
                    else target.cancel()
        elif kind == "run":
            _, centi_duration = op
            loop.run_until(loop.now + centi_duration / 100.0)
        elif kind == "step":
            stepped = loop.step()
            record.append(("step", stepped is not None, loop.now))
    loop.run_until(loop.now + 100.0)  # drain everything still pending
    return record


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("sched"), st.integers(0, 400),
                  st.integers(0, 50)),
        st.tuples(st.just("cancel"), st.integers(0, 64)),
        st.tuples(st.just("run"), st.integers(0, 300)),
        st.tuples(st.just("step")),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_loop_equivalent_to_reference(ops):
    real, reference = EventLoop(), ReferenceLoop()
    real_record = _run_program(real, ops)
    ref_record = _run_program(reference, ops)
    assert real_record == ref_record
    assert real.now == reference.now
    assert real.processed_events == reference.processed_events
    assert real.pending_events == reference.pending_events
    assert real.compactions == reference.compactions


@settings(max_examples=100, deadline=None)
@given(ops=_OPS)
def test_loop_runs_are_reproducible(ops):
    # The same program on two fresh loops is observably identical --
    # the determinism contract every same-seed simulation relies on.
    first = _run_program(EventLoop(), ops)
    second = _run_program(EventLoop(), ops)
    assert first == second


@settings(max_examples=100, deadline=None)
@given(
    delays=st.lists(st.integers(0, 1000), min_size=1, max_size=100),
    deadline_centi=st.integers(0, 1200),
)
def test_partial_run_executes_exactly_the_due_prefix(delays, deadline_centi):
    # run_until(deadline) must run exactly the events with time <= deadline
    # (inclusive), in (time, insertion) order.
    loop = EventLoop()
    fired = []
    for index, centi in enumerate(delays):
        loop.schedule_at(centi / 100.0, fired.append, (centi / 100.0, index))
    deadline = deadline_centi / 100.0
    loop.run_until(deadline)
    expected = sorted(
        ((centi / 100.0, index) for index, centi in enumerate(delays)
         if centi / 100.0 <= deadline),
    )
    assert fired == expected
    assert loop.now == deadline
    assert loop.pending_events == len(delays) - len(expected)


def test_past_scheduling_raises_like_reference():
    for loop in (EventLoop(), ReferenceLoop()):
        loop.run_until(1.0)
        with pytest.raises(SimulationError):
            loop.call_at(0.5, lambda: None)
        with pytest.raises(SimulationError):
            loop.call_later(-0.1, lambda: None)
    with pytest.raises(SimulationError):
        EventLoop().schedule_later(-0.1, lambda: None)


def test_mass_cancellation_compacts_both_loops_identically():
    real, reference = EventLoop(), ReferenceLoop()
    for loop in (real, reference):
        handles = [loop.call_later(10.0 + i, lambda: None)
                   for i in range(200)]
        for handle in handles[:150]:
            if isinstance(handle, _RefEvent):
                handle.cancel(loop)
            else:
                handle.cancel()
    assert real.compactions == reference.compactions > 0
    assert real.pending_events == reference.pending_events == 50
    assert real.heap_size == reference.heap_size
