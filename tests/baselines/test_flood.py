"""Unit tests for the Flood baseline."""

from repro.baselines import BaselineSimulation, FloodNode
from repro.net.latency import ConstantLatencyModel


def make_sim(n=10, seed=3):
    return BaselineSimulation(
        FloodNode, num_nodes=n, seed=seed,
        latency_model=ConstantLatencyModel(0.02),
    )


def test_transaction_floods_to_everyone():
    sim = make_sim()
    tx = sim.nodes[0].create_transaction(fee=10)
    sim.run(5.0)
    assert sim.convergence_fraction(tx.sketch_id) == 1.0


def test_content_arrives_everywhere():
    sim = make_sim()
    tx = sim.nodes[0].create_transaction(fee=10)
    sim.run(5.0)
    for node in sim.nodes.values():
        assert node.txs[tx.sketch_id].txid == tx.txid


def test_no_redundant_getdata_for_known_tx():
    sim = make_sim()
    tx = sim.nodes[0].create_transaction(fee=10)
    sim.run(5.0)
    before = sim.network.overhead_by_type().get("flood/getdata", 0)
    # Re-announcing a known tx triggers no new getdata.
    sim.nodes[1]._queue_announce(tx.sketch_id, skip_peer=-1)
    sim.run(7.0)
    after = sim.network.overhead_by_type().get("flood/getdata", 0)
    assert after == before


def test_overhead_counts_inventories_not_content():
    sim = make_sim()
    sim.nodes[0].create_transaction(fee=10, size_bytes=250)
    sim.run(5.0)
    by_type = sim.network.overhead_by_type()
    assert by_type.get("flood/inv", 0) > 0
    assert "flood/tx" not in by_type  # content is payload, not overhead
    assert sim.network.total_payload_bytes() > 0


def test_overhead_scales_with_tx_count():
    sim = make_sim()
    sim.inject_workload(rate_per_s=5.0, duration_s=4.0)
    sim.run(8.0)
    low = sim.total_overhead_bytes()
    sim2 = make_sim()
    sim2.inject_workload(rate_per_s=20.0, duration_s=4.0)
    sim2.run(8.0)
    high = sim2.total_overhead_bytes()
    assert high > 2 * low


def test_latency_tracked():
    sim = make_sim()
    sim.nodes[0].create_transaction(fee=1)
    sim.run(5.0)
    latencies = sim.tracker.all_latencies()
    assert len(latencies) == 10
    assert all(0 <= l < 2.0 for l in latencies)
