"""Unit tests for the PeerReview baseline."""

from repro.baselines import BaselineSimulation, FloodNode, PeerReviewNode
from repro.baselines.peerreview import NUM_WITNESSES
from repro.net.latency import ConstantLatencyModel


def make_sim(n=12, seed=3):
    return BaselineSimulation(
        PeerReviewNode, num_nodes=n, seed=seed,
        latency_model=ConstantLatencyModel(0.02),
    )


def test_relay_still_converges():
    sim = make_sim()
    tx = sim.nodes[0].create_transaction(fee=10)
    sim.run(5.0)
    assert sim.convergence_fraction(tx.sketch_id) == 1.0


def test_every_node_has_eight_witnesses():
    sim = make_sim(n=20)
    for node in sim.nodes.values():
        assert len(node.witnesses) == NUM_WITNESSES
        assert node.node_id not in node.witnesses


def test_witness_assignment_is_deterministic():
    a = make_sim(n=15)
    b = make_sim(n=15)
    for nid in a.nodes:
        assert a.nodes[nid].witnesses == b.nodes[nid].witnesses


def test_logs_grow_with_traffic():
    sim = make_sim()
    sim.nodes[0].create_transaction(fee=10)
    sim.run(5.0)
    assert any(len(node.log_entries) > 0 for node in sim.nodes.values())
    # Log chain heads differ as entries accumulate.
    node = sim.nodes[0]
    assert len({e.digest for e in node.log_entries}) == len(node.log_entries)


def test_witnesses_fetch_logs_and_find_no_failures():
    sim = make_sim()
    sim.inject_workload(rate_per_s=5.0, duration_s=3.0)
    sim.run(10.0)
    fetched = sum(
        len(node._witness_cursor) for node in sim.nodes.values()
    )
    assert fetched > 0
    assert all(node.audit_failures == 0 for node in sim.nodes.values())
    by_type = sim.network.overhead_by_type()
    assert by_type.get("pr/log_reply", 0) > 0
    assert by_type.get("pr/ack", 0) > 0


def test_overhead_far_exceeds_plain_flooding():
    flood = BaselineSimulation(
        FloodNode, num_nodes=12, seed=3,
        latency_model=ConstantLatencyModel(0.02),
    )
    flood.inject_workload(rate_per_s=5.0, duration_s=3.0)
    flood.run(8.0)
    pr = make_sim()
    pr.inject_workload(rate_per_s=5.0, duration_s=3.0)
    pr.run(8.0)
    assert pr.total_overhead_bytes() > 3 * flood.total_overhead_bytes()


def test_witness_detects_forked_log():
    sim = make_sim()
    sim.inject_workload(rate_per_s=5.0, duration_s=2.0)
    sim.run(4.0)
    # A node rewrites its history mid-stream (forks the hash chain), then
    # keeps logging.  Witnesses hold the digest where their last audit
    # stopped, so the continuation fails the chain check.
    victim = next(
        node for node in sim.nodes.values() if len(node.log_entries) > 4
    )
    victim._chain_head = b"\xab" * 32  # history rewrite / fork point
    victim.create_transaction(fee=10)  # fresh entries chain from the fork
    sim.run(16.0)
    failures = sum(node.audit_failures for node in sim.nodes.values())
    assert failures > 0
