"""Unit tests for the Narwhal baseline."""

from repro.baselines import BaselineSimulation, NarwhalNode
from repro.net.latency import ConstantLatencyModel


def make_sim(n=9, seed=3):
    return BaselineSimulation(
        NarwhalNode, num_nodes=n, seed=seed,
        latency_model=ConstantLatencyModel(0.02),
    )


def test_quorum_size_is_over_two_thirds():
    sim = make_sim(n=9)
    assert sim.nodes[0].quorum_size == 7
    assert make_sim(n=10).nodes[0].quorum_size == 7


def test_batches_deliver_transactions_to_everyone():
    sim = make_sim()
    tx = sim.nodes[0].create_transaction(fee=10)
    sim.run(3.0)
    assert sim.convergence_fraction(tx.sketch_id) == 1.0


def test_batches_get_certified_and_headers_broadcast():
    sim = make_sim()
    sim.nodes[0].create_transaction(fee=10)
    sim.run(3.0)
    creator = sim.nodes[0]
    assert creator._certified == {0}
    by_type = sim.network.overhead_by_type()
    assert by_type.get("nw/header", 0) > 0
    assert by_type.get("nw/ack", 0) > 0


def test_batching_accumulates_pending_txs():
    sim = make_sim()
    node = sim.nodes[0]
    for i in range(5):
        node.create_transaction(fee=i + 1)
    sim.run(2.0)
    batch = node._my_batches[0]
    assert len(batch.txs) == 5


def test_no_batch_without_transactions():
    sim = make_sim()
    sim.run(3.0)
    assert all(not node._my_batches for node in sim.nodes.values())
    assert sim.total_overhead_bytes() == 0


def test_header_cost_scales_with_quorum():
    small = make_sim(n=6)
    small.nodes[0].create_transaction(fee=1)
    small.run(3.0)
    large = make_sim(n=18)
    large.nodes[0].create_transaction(fee=1)
    large.run(3.0)
    small_header = small.network.overhead_by_type()["nw/header"]
    large_header = large.network.overhead_by_type()["nw/header"]
    # Header bytes grow superlinearly with n (n recipients x n-sized cert).
    assert large_header > 4 * small_header


def test_latencies_are_sub_second_locally():
    sim = make_sim()
    sim.nodes[0].create_transaction(fee=10)
    sim.run(3.0)
    latencies = sim.tracker.all_latencies()
    assert latencies and max(latencies) < 1.0
