"""Unit tests for canonical ordering (section 4.3)."""

from repro.core.commitment import BundleInfo
from repro.core.ordering import canonical_order, fee_priority_order, shuffle_bundle

import pytest

PREV_A = b"\x01" * 32
PREV_B = b"\x02" * 32


def bundles_of(*id_lists):
    return [
        BundleInfo(index=i, ids=tuple(ids), source_peer=None, committed_at=0.0)
        for i, ids in enumerate(id_lists)
    ]


def test_shuffle_is_deterministic():
    assert shuffle_bundle([1, 2, 3, 4], PREV_A, 0) == shuffle_bundle(
        [1, 2, 3, 4], PREV_A, 0
    )


def test_shuffle_depends_only_on_id_set():
    assert shuffle_bundle([4, 2, 3, 1], PREV_A, 0) == shuffle_bundle(
        [1, 2, 3, 4], PREV_A, 0
    )


def test_shuffle_varies_with_seed_inputs():
    ids = list(range(1, 30))
    assert shuffle_bundle(ids, PREV_A, 0) != shuffle_bundle(ids, PREV_B, 0)
    assert shuffle_bundle(ids, PREV_A, 0) != shuffle_bundle(ids, PREV_A, 1)


def test_shuffle_is_permutation():
    ids = [5, 9, 13, 21]
    assert sorted(shuffle_bundle(ids, PREV_A, 2)) == sorted(ids)


def test_canonical_order_respects_bundle_sequence():
    bundles = bundles_of([1, 2, 3], [10, 11], [20])
    order = canonical_order(bundles, 3, PREV_A, exclude=lambda i: False)
    assert set(order[:3]) == {1, 2, 3}
    assert set(order[3:5]) == {10, 11}
    assert order[5] == 20


def test_canonical_order_truncates_at_seq():
    bundles = bundles_of([1], [2], [3])
    order = canonical_order(bundles, 2, PREV_A, exclude=lambda i: False)
    assert set(order) == {1, 2}


def test_canonical_order_applies_exclusion_after_shuffle():
    bundles = bundles_of([1, 2, 3, 4])
    full = canonical_order(bundles, 1, PREV_A, exclude=lambda i: False)
    filtered = canonical_order(bundles, 1, PREV_A, exclude=lambda i: i == 2)
    assert filtered == [i for i in full if i != 2]


def test_canonical_order_seq_zero_is_empty():
    assert canonical_order(bundles_of([1]), 0, PREV_A, lambda i: False) == []


def test_canonical_order_rejects_bad_seq():
    with pytest.raises(ValueError):
        canonical_order(bundles_of([1]), 2, PREV_A, lambda i: False)


def test_fee_priority_order():
    fees = {1: 5, 2: 50, 3: 50, 4: 1}
    order = fee_priority_order([1, 2, 3, 4], fees.__getitem__, lambda i: False)
    assert order == [2, 3, 1, 4]  # fee desc, id asc on ties


def test_fee_priority_excludes():
    fees = {1: 5, 2: 50}
    order = fee_priority_order([1, 2], fees.__getitem__, lambda i: i == 2)
    assert order == [1]


def test_cross_party_agreement():
    # Two independent reconstructions of the same bundle sets produce the
    # same canonical order -- the property inspection relies on.
    creator_view = bundles_of([3, 1, 2], [7, 5])
    inspector_view = bundles_of([1, 2, 3], [5, 7])  # different received order
    a = canonical_order(creator_view, 2, PREV_A, lambda i: False)
    b = canonical_order(inspector_view, 2, PREV_A, lambda i: False)
    assert a == b
