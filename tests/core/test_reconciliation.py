"""Unit tests for reconciliation messages and adaptive sizing."""

import pytest

from repro.core.config import LOConfig
from repro.core.reconciliation import (
    SplitSpec,
    adaptive_capacity,
    decode_difference,
    ids_for_spec,
    sketch_for_spec,
)
from repro.crypto import KeyPair
from repro.mempool import TransactionLog, make_transaction
from repro.sketch import PinSketch

CLIENT = KeyPair.generate(seed=b"recon-client")


def filled_log(n=20):
    log = TransactionLog(sketch_capacity=64)
    ids = []
    for i in range(1, n + 1):
        tx = make_transaction(CLIENT, i, 10, created_at=0.0)
        log.append(tx.sketch_id)
        ids.append(tx.sketch_id)
    return log, ids


def test_split_spec_cell_halving():
    spec = SplitSpec(tuple(range(8)))
    left, right = spec.split()
    assert left.cells == (0, 1, 2, 3)
    assert right.cells == (4, 5, 6, 7)
    assert left.bit_level == right.bit_level == 0


def test_split_spec_bit_descent():
    spec = SplitSpec((3,))
    left, right = spec.split()
    assert left.cells == right.cells == (3,)
    assert left.bit_level == right.bit_level == 1
    assert left.bit_index == 0 and right.bit_index == 1
    ll, lr = left.split()
    assert ll.bit_level == 2
    assert {ll.bit_index, lr.bit_index} == {0, 2}


def test_split_spec_matches_bits():
    spec = SplitSpec((0,), bit_level=2, bit_index=0b10)
    assert spec.matches(0b0110)
    assert not spec.matches(0b0111)
    assert SplitSpec((0,)).matches(12345)  # level 0 matches all


def test_split_partition_is_exact():
    spec = SplitSpec((1, 2), bit_level=1, bit_index=1)
    left, right = spec.split()
    for value in range(1, 64):
        in_parent = spec.matches(value)
        assert in_parent == (left.matches(value) or right.matches(value))
        assert not (left.matches(value) and right.matches(value))


def test_sketch_for_spec_cells_matches_manual():
    log, ids = filled_log()
    spec = SplitSpec(tuple(range(16)))
    sketch = sketch_for_spec(log, spec, capacity=32)
    expected = set(ids_for_spec(log, spec))
    assert sketch.decode() == expected


def test_sketch_for_spec_bit_refined():
    log, ids = filled_log()
    spec = SplitSpec(tuple(range(32)), bit_level=1, bit_index=0)
    sketch = sketch_for_spec(log, spec, capacity=32)
    expected = {i for i in ids if i % 2 == 0}
    assert sketch.decode() == expected
    assert set(ids_for_spec(log, spec)) == expected


def test_adaptive_capacity_scaling():
    config = LOConfig(min_sketch_capacity=16, sketch_capacity=100,
                      sketch_safety_factor=2.0)
    assert adaptive_capacity(1, config) == 16          # floor
    assert adaptive_capacity(20, config) == 64         # 40 -> next pow2
    assert adaptive_capacity(500, config) == 100       # ceiling


def test_adaptive_capacity_power_of_two():
    config = LOConfig()
    for estimate in (1, 3, 9, 17, 33):
        capacity = adaptive_capacity(estimate, config)
        assert capacity & (capacity - 1) == 0 or capacity == config.sketch_capacity


def test_decode_difference_success_and_failure():
    a = PinSketch(8, 32)
    b = PinSketch(8, 32)
    a.add_all({101, 102})
    b.add_all({102, 103})
    assert decode_difference(a, b) == {101, 103}
    overloaded = PinSketch(2, 32)
    other = PinSketch(2, 32)
    import random

    overloaded.add_all(random.Random(5).sample(range(1, 2 ** 31), 30))
    result = decode_difference(overloaded, other)
    assert result is None or len(result) <= 2  # None, or an aliased decode


def test_message_wire_sizes():
    from repro.core.reconciliation import (
        ContentRequest,
        ContentResponse,
        SyncResponse,
    )

    request = ContentRequest(request_id=1, ids=(1, 2, 3))
    assert request.wire_size() == 8 + 12
    tx = make_transaction(CLIENT, 99, 5, created_at=0.0, size_bytes=250)
    response = ContentResponse(request_id=1, txs=(tx,))
    assert response.wire_size() == 8 + 250
