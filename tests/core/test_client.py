"""Tests for light clients (stage I submission and status queries)."""

from repro.core.client import LightClient
from tests.conftest import make_sim


def client_in(sim, seed=b"test-client"):
    return LightClient(sim.loop, sim.network, seed=seed)


def test_submit_gets_signed_acks():
    sim = make_sim(num_nodes=6)
    client = client_in(sim)
    tx = client.make_transaction(fee=25)
    client.submit(tx, miners=[0, 1, 2])
    sim.run(2.0)
    acks = client.acks_for(tx)
    assert len(acks) == 3
    assert all(ack.accepted and ack.verify() for ack in acks)


def test_submitted_tx_enters_mempools_and_propagates():
    sim = make_sim(num_nodes=8)
    client = client_in(sim)
    tx = client.make_transaction(fee=25)
    client.submit(tx, miners=[0])
    sim.run(10.0)
    for node in sim.nodes.values():
        assert tx.sketch_id in node.log


def test_status_query_lifecycle():
    sim = make_sim(num_nodes=6)
    client = client_in(sim)
    tx = client.make_transaction(fee=25)
    # Before submission: unknown.
    client.query_status(tx.sketch_id, miner=3)
    sim.run(1.0)
    assert client.latest_status(tx.sketch_id).status == "unknown"
    # After submission and propagation: content-held at a remote miner.
    client.submit(tx, miners=[0])
    sim.run(8.0)
    client.query_status(tx.sketch_id, miner=3)
    sim.run(9.0)
    assert client.latest_status(tx.sketch_id).status == "content-held"


def test_status_settled_after_block():
    sim = make_sim(num_nodes=6)
    client = client_in(sim)
    tx = client.make_transaction(fee=25)
    client.submit(tx, miners=[0])
    sim.run(6.0)
    sim.nodes[2].on_leader_elected()
    sim.run(10.0)
    client.query_status(tx.sketch_id, miner=4)
    sim.run(11.0)
    assert client.latest_status(tx.sketch_id).status == "settled"


def test_invalid_submission_not_acked_as_accepted():
    sim = make_sim(num_nodes=6)
    client = client_in(sim)
    tx = client.make_transaction(fee=25)
    from repro.mempool.transaction import Transaction

    forged = Transaction(
        sender=tx.sender, nonce=tx.nonce, fee=tx.fee + 1,
        size_bytes=tx.size_bytes, created_at=tx.created_at,
        payload=tx.payload, signature=tx.signature,
    )
    client.submit(forged, miners=[0])
    sim.run(2.0)
    acks = client.acks_for(forged)
    assert len(acks) == 1
    assert not acks[0].accepted


def test_duplicate_submission_still_acked():
    sim = make_sim(num_nodes=6)
    client = client_in(sim)
    tx = client.make_transaction(fee=25)
    client.submit(tx, miners=[0])
    sim.run(1.0)
    client.submit(tx, miners=[0])
    sim.run(2.0)
    acks = client.acks_for(tx)
    assert len(acks) == 2
    assert all(ack.accepted for ack in acks)


def test_contradicted_ack_detects_stage1_censorship():
    from repro.attacks import OffChannelNode

    def factory(**kwargs):
        node = OffChannelNode(**kwargs)
        node.peers_off_channel = set()
        node.launder = True
        node.intercept_fee_min = 100  # steal anything juicy
        return node

    sim = make_sim(num_nodes=8, malicious_ids=[0], attacker_factory=factory)
    client = client_in(sim)
    tx = client.make_transaction(fee=500)
    client.submit(tx, miners=[0])
    sim.run(2.0)
    # Fake ack arrives...
    assert client.acks_for(tx) and client.acks_for(tx)[0].accepted
    # ...but the status query reveals the miner never committed it.
    client.query_status(tx.sketch_id, miner=0)
    sim.run(4.0)
    assert client.latest_status(tx.sketch_id).status == "unknown"
    suspicious = client.contradicted_acks(tx)
    assert len(suspicious) == 1
    assert suspicious[0].verify()  # transferable client-side evidence


def test_multiple_clients_are_distinct():
    sim = make_sim(num_nodes=6)
    a = client_in(sim, seed=b"a")
    b = client_in(sim, seed=b"b")
    assert a.node_id != b.node_id
    assert a.keypair.public_key != b.keypair.public_key
