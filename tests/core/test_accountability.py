"""Unit tests for suspicion/exposure bookkeeping."""

import pytest

from repro.bloomclock import BloomClock
from repro.core.accountability import (
    AccountabilityState,
    BlockViolationEvidence,
    ExposureBlame,
    SuspicionBlame,
)
from repro.chain.block import sign_block
from repro.core.commitment import (
    EquivocationEvidence,
    GENESIS_DIGEST,
    bundle_digest,
    chain_digest,
    sign_header,
)
from repro.core.inspection import Violation
from repro.core.policies import STALE_SEQ_SLACK, ViolationKind
from repro.crypto import KeyPair

OWNER = KeyPair.generate(seed=b"acct-owner")
REMOTE = KeyPair.generate(seed=b"acct-remote")


def make_header(bundles, keypair=REMOTE):
    clock = BloomClock()
    digests = []
    digest = GENESIS_DIGEST
    for ids in bundles:
        clock.add_all(ids)
        digest = chain_digest(digest, bundle_digest(ids))
        digests.append(digest)
    return sign_header(
        keypair, len(bundles), sum(len(b) for b in bundles), digests, clock
    )


def fresh_state():
    return AccountabilityState(OWNER.public_key)


# ------------------------------------------------------------ request cycle


def test_request_timeout_retry_then_suspect():
    state = fresh_state()
    req = state.open_request(REMOTE.public_key, "sync", (), 0.0, retries=2)
    assert state.on_timeout(req.request_id, 1.0) == "resend"
    assert state.on_timeout(req.request_id, 2.0) == "resend"
    assert state.on_timeout(req.request_id, 3.0) == "suspect"
    assert state.is_suspected(REMOTE.public_key)
    # Pending requests are retained after suspicion (paper section 5.2).
    assert req.request_id in state.pending


def test_response_closes_request():
    state = fresh_state()
    req = state.open_request(REMOTE.public_key, "content", (5,), 0.0, retries=3)
    assert state.close_request(req.request_id) is req
    assert state.on_timeout(req.request_id, 1.0) is None
    assert not state.is_suspected(REMOTE.public_key)


def test_close_requests_to_filters_by_kind():
    state = fresh_state()
    state.open_request(REMOTE.public_key, "sync", (), 0.0, 1)
    state.open_request(REMOTE.public_key, "content", (1,), 0.0, 1)
    assert state.close_requests_to(REMOTE.public_key, kind="sync") == 1
    assert len(state.pending) == 1


def test_clear_suspicion():
    state = fresh_state()
    req = state.open_request(REMOTE.public_key, "sync", (), 0.0, 0)
    state.on_timeout(req.request_id, 1.0)
    assert state.clear_suspicion(REMOTE.public_key)
    assert not state.is_suspected(REMOTE.public_key)
    assert not state.clear_suspicion(REMOTE.public_key)


# ---------------------------------------------------------------- suspicion


def blame(kind="content", detail=(5,), last=None):
    return SuspicionBlame(
        accuser=OWNER.public_key,
        accused=REMOTE.public_key,
        kind=kind,
        detail=detail,
        last_known=last,
        raised_at=1.0,
    )


def test_adopt_suspicion():
    state = fresh_state()
    assert state.adopt_suspicion(blame(), now=1.0)
    assert state.is_suspected(REMOTE.public_key)
    assert not state.adopt_suspicion(blame(), now=2.0)  # already suspected


def test_own_accusation_not_adopted():
    state = fresh_state()
    self_blame = SuspicionBlame(
        accuser=REMOTE.public_key,
        accused=OWNER.public_key,
        kind="sync",
        detail=(),
        last_known=None,
        raised_at=0.0,
    )
    assert not state.adopt_suspicion(self_blame, now=1.0)


def test_blocklist_combines_suspected_and_exposed():
    state = fresh_state()
    state.adopt_suspicion(blame(), now=0.0)
    assert REMOTE.public_key in state.blocklist()


# ----------------------------------------------------------------- exposure


def make_equivocation():
    a = make_header([[1], [2]])
    b = make_header([[1], [3]])
    return EquivocationEvidence(REMOTE.public_key, a, b)


def test_expose_with_valid_evidence():
    state = fresh_state()
    exposure = ExposureBlame(REMOTE.public_key, equivocation=make_equivocation())
    assert state.expose(exposure)
    assert state.is_exposed(REMOTE.public_key)
    assert not state.expose(exposure)  # idempotent


def test_exposure_supersedes_suspicion():
    state = fresh_state()
    req = state.open_request(REMOTE.public_key, "sync", (), 0.0, 0)
    state.on_timeout(req.request_id, 1.0)
    state.expose(ExposureBlame(REMOTE.public_key, equivocation=make_equivocation()))
    assert not state.is_suspected(REMOTE.public_key)
    assert not state.pending  # abandoned requests to exposed node
    # Suspicions of exposed nodes are not re-adopted.
    assert not state.adopt_suspicion(blame(), now=2.0)


def test_invalid_evidence_rejected():
    state = fresh_state()
    consistent = EquivocationEvidence(
        REMOTE.public_key, make_header([[1]]), make_header([[1], [2]])
    )
    assert not state.expose(ExposureBlame(REMOTE.public_key, equivocation=consistent))
    assert not state.is_exposed(REMOTE.public_key)


def test_empty_blame_rejected():
    state = fresh_state()
    assert not state.expose(ExposureBlame(REMOTE.public_key))


def test_wrong_accused_rejected():
    state = fresh_state()
    other = KeyPair.generate(seed=b"acct-third").public_key
    assert not state.expose(ExposureBlame(other, equivocation=make_equivocation()))


def test_observe_header_produces_evidence_on_fork():
    state = fresh_state()
    assert state.observe_header(make_header([[1], [2]])) is None
    evidence = state.observe_header(make_header([[1], [9]]))
    assert evidence is not None and evidence.verify()


def test_observe_unsigned_header_ignored():
    state = fresh_state()
    header = make_header([[1]])
    forged = type(header)(
        signer=header.signer,
        seq=header.seq,
        tx_count=header.tx_count,
        digests=header.digests,
        clock=header.clock,
        signature=b"\x00" * 32,
    )
    assert state.observe_header(forged) is None
    assert state.stores == {} or not state.stores[REMOTE.public_key].by_seq


# ------------------------------------------------------ block evidence


def make_block_violation(kind=ViolationKind.ORDER_DEVIATION, seq_gap=0):
    bundle_ids = ((1, 2), (3,))
    header = make_header([list(b) for b in bundle_ids])
    block = sign_block(
        REMOTE, 0, b"\x00" * 32, (3, 2, 1), header.seq - seq_gap, 0.0
    )
    violation = Violation(kind, block.block_hash, "test")
    return BlockViolationEvidence(
        accused=REMOTE.public_key,
        block=block,
        header=header,
        bundle_ids=bundle_ids,
        violation=violation,
    )


def test_block_violation_structure_verifies():
    evidence = make_block_violation()
    assert evidence.chain_matches_header()
    assert evidence.verify_structure()
    state = fresh_state()
    assert state.expose(ExposureBlame(REMOTE.public_key, block_violation=evidence))


def test_block_violation_wrong_bundles_fails():
    good = make_block_violation()
    tampered = BlockViolationEvidence(
        accused=good.accused,
        block=good.block,
        header=good.header,
        bundle_ids=((1, 2), (99,)),
        violation=good.violation,
    )
    assert not tampered.verify_structure()


def test_stale_seq_evidence_requires_large_gap():
    small_gap = make_block_violation(ViolationKind.STALE_COMMITMENT_SEQ, seq_gap=1)
    assert not small_gap.verify_structure()
    # Build a genuinely huge gap: block pinned at 0, header far ahead.
    bundles = [[i] for i in range(1, STALE_SEQ_SLACK + 3)]
    header = make_header(bundles)
    block = sign_block(REMOTE, 0, b"\x00" * 32, (), 0, 0.0)
    violation = Violation(
        ViolationKind.STALE_COMMITMENT_SEQ, block.block_hash, "gap"
    )
    evidence = BlockViolationEvidence(
        accused=REMOTE.public_key,
        block=block,
        header=header,
        bundle_ids=(),
        violation=violation,
    )
    assert evidence.verify_structure()


# -------------------------------------------------------------- Fig. 4 logic


def test_evaluate_suspicion_exposes_on_fork():
    state = fresh_state()
    state.observe_header(make_header([[1], [2]]))
    forked = make_header([[1], [7]])
    action, header, evidence = state.evaluate_suspicion(blame(last=forked))
    assert action == "expose"
    assert evidence is not None and evidence.verify()


def test_evaluate_suspicion_relays_newer_covering_commitment():
    state = fresh_state()
    newer = make_header([[1], [5]])
    state.observe_header(newer)
    state.store_for(REMOTE.public_key).record_ids([5])
    older = make_header([[1]])
    action, header, _ = state.evaluate_suspicion(
        blame(kind="content", detail=(5,), last=older)
    )
    assert action == "relay"
    assert header.seq == 2


def test_evaluate_suspicion_investigates_uncovered_detail():
    state = fresh_state()
    state.observe_header(make_header([[1], [5]]))
    action, header, _ = state.evaluate_suspicion(
        blame(kind="content", detail=(42,), last=make_header([[1]]))
    )
    assert action == "investigate"


def test_evaluate_suspicion_adopts_without_better_info():
    state = fresh_state()
    action, _header, _ = state.evaluate_suspicion(blame())
    assert action == "adopt"
