"""Unit tests for ingress schema validation and peer quarantine."""

import pytest

from repro.core.commitment import sign_header
from repro.core.reconciliation import (
    ContentRequest,
    ContentResponse,
    SplitSpec,
    SyncRequest,
    SyncResponse,
)
from repro.core.wire import PeerQuarantine, validate_payload
from repro.crypto.keys import KeyPair
from repro.bloomclock import BloomClock
from repro.mempool.transaction import make_transaction
from repro.sketch import PinSketch


def make_header(seed=b"wire-test", seq=0):
    keypair = KeyPair.generate(seed=seed)
    return sign_header(
        keypair, seq=seq, tx_count=0, digests=(), clock=BloomClock(cells=32)
    )


def make_sync_request():
    return SyncRequest(
        request_id=1,
        header=make_header(),
        spec=SplitSpec(tuple(range(4))),
        sketch=PinSketch(capacity=8, m=32),
    )


def test_well_formed_payloads_pass():
    assert validate_payload("lo/sync_req", make_sync_request()) is None
    assert validate_payload("lo/commit_upd", make_header()) is None
    assert validate_payload("lo/content_req", ContentRequest(0, (1, 2))) is None
    assert validate_payload("lo/block_req", 3) is None
    assert validate_payload("lo/status_query", (1_000_000, 42)) is None
    tx = make_transaction(KeyPair.generate(seed=b"c"), 1, fee=5, created_at=0.0)
    assert validate_payload("lo/client_submit", tx) is None
    assert validate_payload("lo/content_resp", ContentResponse(0, (tx,))) is None


def test_type_confusion_rejected():
    request = make_sync_request()
    for msg_type in ("lo/sync_req", "lo/sync_resp", "lo/commit_upd",
                     "lo/suspicion", "lo/exposure", "lo/block",
                     "lo/content_req", "lo/content_resp", "lo/client_submit"):
        for garbage in (None, 42, b"\x00" * 8, "boo", [], {}, (1, 2, 3)):
            assert validate_payload(msg_type, garbage) is not None
    # The right dataclass under the wrong type tag is also rejected.
    assert validate_payload("lo/sync_resp", request) is not None
    assert validate_payload("lo/block_req", request) is not None


def test_field_level_corruption_rejected():
    request = make_sync_request()
    import dataclasses

    bad_header = dataclasses.replace(request, header=b"not-a-header")
    assert "header" in validate_payload("lo/sync_req", bad_header)
    bad_spec = dataclasses.replace(request, spec=SplitSpec((-1, 2)))
    assert "cells" in validate_payload("lo/sync_req", bad_spec)
    bad_id = dataclasses.replace(request, request_id="nope")
    assert "request_id" in validate_payload("lo/sync_req", bad_id)


def test_sync_response_status_enum_enforced():
    response = SyncResponse(request_id=1, header=make_header(), status="pwned")
    assert "status" in validate_payload("lo/sync_resp", response)


def test_bool_is_not_an_int():
    # bools slip through isinstance(int) checks unless explicitly excluded.
    assert validate_payload("lo/block_req", True) is not None


def test_unknown_message_type_is_violation():
    assert "unknown message type" in validate_payload("lo/evil", None)


def test_validator_crash_becomes_reason_not_exception():
    class Hostile:
        def __getattr__(self, name):
            raise RuntimeError("gotcha")

    # Hostile objects must never escape the validator as exceptions.
    for msg_type in ("lo/sync_req", "lo/commit_upd", "lo/status_query"):
        reason = validate_payload(msg_type, Hostile())
        assert reason is not None


def test_nan_raised_at_rejected():
    from repro.core.accountability import SuspicionBlame

    key_a = KeyPair.generate(seed=b"a").public_key
    key_b = KeyPair.generate(seed=b"b").public_key
    blame = SuspicionBlame(
        accuser=key_a, accused=key_b, kind="sync", detail=(),
        last_known=None, raised_at=float("nan"),
    )
    assert "NaN" in validate_payload("lo/suspicion", blame)


# ------------------------------------------------------------- quarantine


def test_quarantine_opens_at_threshold():
    q = PeerQuarantine(threshold=3, base_s=10.0, max_s=100.0)
    assert not q.record_violation(5, now=0.0)
    assert not q.record_violation(5, now=1.0)
    assert not q.is_quarantined(5, now=1.5)
    assert q.record_violation(5, now=2.0)  # third strike opens the episode
    assert q.is_quarantined(5, now=2.1)
    assert q.release_time(5) == pytest.approx(12.0)
    assert q.violations_of(5) == 3


def test_quarantine_expires_and_backoff_doubles():
    q = PeerQuarantine(threshold=2, base_s=4.0, max_s=10.0)
    q.record_violation(1, now=0.0)
    assert q.record_violation(1, now=0.1)          # episode 1: 4 s
    assert q.is_quarantined(1, now=3.9)
    assert not q.is_quarantined(1, now=4.2)        # re-admitted
    q.record_violation(1, now=5.0)
    assert q.record_violation(1, now=5.1)          # episode 2: 8 s
    assert q.release_time(1) == pytest.approx(13.1)
    q.record_violation(1, now=14.0)
    assert q.record_violation(1, now=14.1)         # episode 3: capped at 10 s
    assert q.release_time(1) == pytest.approx(24.1)
    assert q.snapshot()[1] == (6, 3)


def test_violations_during_quarantine_do_not_extend_it():
    q = PeerQuarantine(threshold=1, base_s=5.0, max_s=50.0)
    assert q.record_violation(9, now=0.0)
    release = q.release_time(9)
    assert not q.record_violation(9, now=1.0)
    assert q.release_time(9) == release


def test_quarantine_is_per_peer():
    q = PeerQuarantine(threshold=1, base_s=5.0, max_s=50.0)
    q.record_violation(1, now=0.0)
    assert q.is_quarantined(1, now=0.1)
    assert not q.is_quarantined(2, now=0.1)


def test_quarantine_rejects_bad_params():
    with pytest.raises(ValueError):
        PeerQuarantine(threshold=0)
    with pytest.raises(ValueError):
        PeerQuarantine(base_s=10.0, max_s=1.0)
