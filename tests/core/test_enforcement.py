"""Tests for the section 5.4 enforcement policies."""

from repro.attacks.blockattacks import ReorderingNode, make_block_attacker_factory
from repro.core.enforcement import EnforcementManager, StakeSlashing
from tests.conftest import make_sim


def attacked_sim_with_enforcement():
    sim = make_sim(
        num_nodes=12,
        malicious_ids=[0],
        attacker_factory=make_block_attacker_factory(ReorderingNode),
    )
    manager = EnforcementManager(sim.directory)
    for node in sim.nodes.values():
        manager.attach(node)
    for i in range(5):
        sim.inject_at(0.2 + 0.2 * i, 1 + (i % 11), fee=10)
    sim.run(8.0)
    sim.nodes[0].on_leader_elected()  # bad block
    sim.run(25.0)
    return sim, manager


def test_slashing_debits_exposed_miner():
    sim, manager = attacked_sim_with_enforcement()
    attacker_key = sim.directory.key_of(0)
    assert manager.slashing.stake_of(attacker_key) < manager.slashing.initial_stake
    assert manager.report.total_slashed > 0


def test_correct_miners_keep_their_stake():
    sim, manager = attacked_sim_with_enforcement()
    for nid in sim.correct_ids:
        key = sim.directory.key_of(nid)
        assert manager.slashing.stake_of(key) == manager.slashing.initial_stake


def test_slashing_is_idempotent_per_evidence():
    slashing = StakeSlashing(initial_stake=100, slash_fraction=0.5)
    from repro.crypto import KeyPair

    key = KeyPair.generate(seed=b"slashed").public_key
    first = slashing.on_exposure(key, ("evidence", 1))
    repeat = slashing.on_exposure(key, ("evidence", 1))
    assert first == 50.0
    assert repeat == 0.0
    assert slashing.stake_of(key) == 50.0


def test_network_eviction_removes_exposed_neighbours():
    sim, manager = attacked_sim_with_enforcement()
    attacker_key = sim.directory.key_of(0)
    for nid in sim.correct_ids:
        node = sim.nodes[nid]
        if node.acct.is_exposed(attacker_key):
            assert 0 not in node.neighbors
    assert manager.report.evictions > 0


def test_leader_eligibility_denied_after_majority_exposure():
    sim, manager = attacked_sim_with_enforcement()
    assert not manager.leader_eligible(0)
    assert manager.leader_eligible(3)
    assert manager.report.leader_elections_denied >= 1


def test_block_rejection_filters_repeat_offender():
    sim, manager = attacked_sim_with_enforcement()
    # Second bad block: every correct node has already exposed the creator,
    # so the new block is rejected before settlement.
    heights_before = {sim.nodes[n].ledger.height for n in sim.correct_ids}
    sim.nodes[0].on_leader_elected()
    sim.run(sim.loop.now + 10.0)
    report = manager.finalize_report()
    assert report.rejected_blocks > 0
    heights_after = {sim.nodes[n].ledger.height for n in sim.correct_ids}
    assert heights_after == heights_before  # nothing new settled


def test_clean_network_no_enforcement_actions():
    sim = make_sim(num_nodes=10)
    manager = EnforcementManager(sim.directory)
    for node in sim.nodes.values():
        manager.attach(node)
    for i in range(4):
        sim.inject_at(0.2 + 0.2 * i, i % 10, fee=10)
    sim.run(15.0)
    report = manager.finalize_report()
    assert report.total_slashed == 0
    assert report.evictions == 0
    assert report.rejected_blocks == 0
