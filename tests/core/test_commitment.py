"""Unit tests for signed commitments and commitment stores."""

import pytest

from repro.bloomclock import BloomClock
from repro.core.commitment import (
    BundleInfo,
    CommitmentHeader,
    CommitmentStore,
    GENESIS_DIGEST,
    bundle_digest,
    chain_digest,
    header_wire_size,
    sign_header,
)
from repro.crypto import KeyPair

KP = KeyPair.generate(seed=b"committer")


def make_header(bundles, keypair=KP, clock=None, tamper_last=False):
    """Signed header over a list of bundle id-lists."""
    if clock is None:
        clock = BloomClock()
        for ids in bundles:
            clock.add_all(ids)
    digests = []
    digest = GENESIS_DIGEST
    for ids in bundles:
        digest = chain_digest(digest, bundle_digest(ids))
        digests.append(digest)
    if tamper_last and digests:
        digests[-1] = chain_digest(digests[-1], b"fork")
    return sign_header(
        keypair,
        seq=len(bundles),
        tx_count=sum(len(ids) for ids in bundles),
        digests=digests,
        clock=clock,
    )


def test_signed_header_verifies():
    header = make_header([[1, 2], [3]])
    assert header.signature_valid()
    assert header.seq == 2
    assert header.tx_count == 3


def test_tampered_header_fails():
    header = make_header([[1, 2]])
    forged = CommitmentHeader(
        signer=header.signer,
        seq=header.seq + 1,
        tx_count=header.tx_count,
        digests=header.digests + (b"x" * 32,),
        clock=header.clock,
        signature=header.signature,
    )
    assert not forged.signature_valid()


def test_bundle_digest_is_order_insensitive():
    assert bundle_digest([1, 2, 3]) == bundle_digest([3, 1, 2])
    assert bundle_digest([1, 2]) != bundle_digest([1, 2, 3])


def test_prefix_consistency():
    older = make_header([[1, 2]])
    newer = make_header([[1, 2], [3, 4]])
    assert older.is_prefix_of(newer)
    assert not newer.is_prefix_of(older)
    assert older.consistent_with(newer)
    assert newer.consistent_with(older)


def test_forked_histories_are_inconsistent():
    a = make_header([[1, 2], [3]])
    b = make_header([[1, 2], [4]])
    assert not a.consistent_with(b)


def test_clock_regression_is_inconsistent():
    # An extension whose clock fails to dominate the earlier header's
    # clock proves a non-append-only history even when digests line up.
    bundles = [[10, 20]]
    honest = make_header(bundles)
    bigger = make_header(bundles + [[30]])
    assert honest.consistent_with(bigger)
    inflated = make_header(bundles, clock=_inflated_clock())
    assert not bigger.consistent_with(inflated)


def _inflated_clock():
    clock = BloomClock()
    for i in range(1, 2000):
        clock.add(i)
    return clock


def test_consistency_requires_same_signer():
    other = KeyPair.generate(seed=b"other")
    with pytest.raises(ValueError):
        make_header([[1]]).consistent_with(make_header([[1]], keypair=other))


def test_wire_size_constant():
    small = make_header([[1]])
    large = make_header([[i] for i in range(1, 40)])
    assert small.wire_size() == large.wire_size() == header_wire_size(32)


def test_store_accepts_consistent_sequence():
    store = CommitmentStore(KP.public_key)
    assert store.observe(make_header([[1]])) is None
    assert store.observe(make_header([[1], [2]])) is None
    assert store.seq == 2
    assert store.latest.seq == 2


def test_store_detects_same_seq_fork():
    store = CommitmentStore(KP.public_key)
    store.observe(make_header([[1], [2]]))
    evidence = store.observe(make_header([[1], [3]]))
    assert evidence is not None
    assert evidence.verify()
    assert evidence.accused == KP.public_key


def test_store_detects_history_rewrite():
    store = CommitmentStore(KP.public_key)
    store.observe(make_header([[1], [2]]))
    # A "newer" header whose prefix disagrees with what we stored.
    evidence = store.observe(make_header([[9], [2], [3]]))
    assert evidence is not None
    assert evidence.verify()


def test_store_out_of_order_observation_ok():
    store = CommitmentStore(KP.public_key)
    assert store.observe(make_header([[1], [2], [3]])) is None
    assert store.observe(make_header([[1]])) is None  # older but consistent
    assert store.seq == 3


def test_store_rejects_foreign_signer():
    store = CommitmentStore(KP.public_key)
    other = KeyPair.generate(seed=b"foreign")
    with pytest.raises(ValueError):
        store.observe(make_header([[1]], keypair=other))


def test_store_known_ids_accumulate():
    store = CommitmentStore(KP.public_key)
    store.record_ids([1, 2])
    store.record_ids([2, 3])
    assert store.known_ids == {1, 2, 3}


def test_evidence_for_honest_pair_does_not_verify():
    from repro.core.commitment import EquivocationEvidence

    a = make_header([[1]])
    b = make_header([[1], [2]])
    bogus = EquivocationEvidence(accused=KP.public_key, header_a=a, header_b=b)
    assert not bogus.verify()


def test_bundle_info_digest():
    bundle = BundleInfo(index=0, ids=(5, 1), source_peer=None, committed_at=0.0)
    assert bundle.digest == bundle_digest([1, 5])


# ------------------------------------------------- sketch-based consistency


def _sketch_of(ids, capacity=16):
    from repro.sketch import PinSketch

    sketch = PinSketch(capacity, 32)
    sketch.add_all(ids)
    return sketch


def test_sketch_consistency_accepts_pure_growth():
    from repro.core.commitment import sketch_history_consistent

    older = {101, 202, 303}
    newer = older | {404, 505}
    assert sketch_history_consistent(
        _sketch_of(older), _sketch_of(newer), len(older), len(newer)
    )


def test_sketch_consistency_detects_removal():
    from repro.core.commitment import sketch_history_consistent

    older = {101, 202, 303}
    newer = {101, 202}  # dropped 303
    assert not sketch_history_consistent(
        _sketch_of(older), _sketch_of(newer), len(older), len(newer)
    )


def test_sketch_consistency_detects_swap_with_matching_counts():
    from repro.core.commitment import sketch_history_consistent

    older = {101, 202, 303}
    newer = {101, 202, 999}  # removed 303, added 999: counts line up
    assert not sketch_history_consistent(
        _sketch_of(older), _sketch_of(newer), 3, 3
    )


def test_sketch_consistency_identical_histories():
    from repro.core.commitment import sketch_history_consistent

    items = {7, 8, 9}
    assert sketch_history_consistent(_sketch_of(items), _sketch_of(items), 3, 3)


def test_sketch_consistency_shrinking_count_rejected():
    from repro.core.commitment import sketch_history_consistent

    assert not sketch_history_consistent(
        _sketch_of({1, 2}), _sketch_of({1}), 2, 1
    )


def test_sketch_consistency_matches_live_node_history():
    from repro.core.commitment import sketch_history_consistent
    from tests.conftest import make_sim

    sim = make_sim(num_nodes=6)
    node = sim.nodes[0]
    snapshots = []

    def snap():
        snapshots.append((node.log.full_sketch(capacity=32), len(node.log)))

    for i in range(4):
        sim.inject_at(0.2 + 0.4 * i, i % 6, fee=10)
        sim.loop.call_at(0.3 + 0.4 * i, snap)
    sim.run(8.0)
    snap()
    for (s_old, c_old), (s_new, c_new) in zip(snapshots, snapshots[1:]):
        assert sketch_history_consistent(s_old, s_new, c_old, c_new)
