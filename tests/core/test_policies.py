"""Tests for the Table 1 policy matrix.

Each explicit policy maps to exactly one manipulation primitive, and every
violation kind resolves to the policy it breaks -- this is Table 1 encoded
and checked.
"""

from repro.core.policies import (
    Manipulation,
    POLICY_ADDRESSES,
    Policy,
    STALE_SEQ_SLACK,
    ViolationKind,
)


def test_every_policy_addresses_one_manipulation():
    assert POLICY_ADDRESSES[Policy.INCLUSION_OF_ALL_TRANSACTIONS] is Manipulation.CENSORSHIP
    assert POLICY_ADDRESSES[Policy.SELECTION_IN_RECEIVED_ORDER] is Manipulation.INJECTION
    assert POLICY_ADDRESSES[Policy.VERIFIABLE_CANONICAL_ORDER] is Manipulation.REORDERING
    assert set(POLICY_ADDRESSES) == set(Policy)


def test_violation_kinds_map_to_policies():
    assert (
        ViolationKind.MISSING_COMMITTED_TX.policy
        is Policy.INCLUSION_OF_ALL_TRANSACTIONS
    )
    assert (
        ViolationKind.UNCOMMITTED_TX_IN_BODY.policy
        is Policy.SELECTION_IN_RECEIVED_ORDER
    )
    assert (
        ViolationKind.ORDER_DEVIATION.policy
        is Policy.VERIFIABLE_CANONICAL_ORDER
    )
    assert (
        ViolationKind.STALE_COMMITMENT_SEQ.policy
        is Policy.INCLUSION_OF_ALL_TRANSACTIONS
    )


def test_violation_kinds_map_to_manipulations():
    assert ViolationKind.MISSING_COMMITTED_TX.manipulation is Manipulation.CENSORSHIP
    assert ViolationKind.UNCOMMITTED_TX_IN_BODY.manipulation is Manipulation.INJECTION
    assert ViolationKind.ORDER_DEVIATION.manipulation is Manipulation.REORDERING
    assert ViolationKind.STALE_COMMITMENT_SEQ.manipulation is Manipulation.CENSORSHIP


def test_every_violation_kind_is_mapped():
    for kind in ViolationKind:
        assert kind.policy in Policy
        assert kind.manipulation in Manipulation


def test_stale_slack_is_a_sane_protocol_constant():
    assert isinstance(STALE_SEQ_SLACK, int)
    assert STALE_SEQ_SLACK > 0
