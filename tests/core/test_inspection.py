"""Unit tests for block inspection."""

from repro.chain.block import sign_block
from repro.core.commitment import BundleInfo
from repro.core.config import LOConfig
from repro.core.inspection import BlockInspector
from repro.core.ordering import canonical_order
from repro.core.policies import ViolationKind
from repro.crypto import KeyPair
from repro.mempool import make_transaction

KP = KeyPair.generate(seed=b"inspected-miner")
CLIENT = KeyPair.generate(seed=b"inspection-client")
PREV = b"\x03" * 32


def make_world(num_txs=6, fee=10):
    txs = [
        make_transaction(CLIENT, n, fee, created_at=0.0)
        for n in range(1, num_txs + 1)
    ]
    half = num_txs // 2
    bundles = [
        BundleInfo(0, tuple(t.sketch_id for t in txs[:half]), None, 0.0),
        BundleInfo(1, tuple(t.sketch_id for t in txs[half:]), None, 0.0),
    ]
    contents = {t.sketch_id: t for t in txs}
    return txs, bundles, contents


def inspect(block, bundles, contents, settled=frozenset(), config=None):
    inspector = BlockInspector(config or LOConfig())
    return inspector.inspect(
        block,
        bundles,
        PREV,
        set(settled),
        content_known=lambda i: i in contents,
        is_invalid=lambda i: False,
        fee_of=lambda i: contents[i].fee if i in contents else None,
    )


def canonical_ids(bundles, seq=2, settled=frozenset()):
    return canonical_order(bundles, seq, PREV, lambda i: i in settled)


def test_clean_block_passes():
    txs, bundles, contents = make_world()
    body = canonical_ids(bundles)
    block = sign_block(KP, 0, PREV, body, 2, 0.0)
    result = inspect(block, bundles, contents)
    assert result.clean


def test_reordered_block_flagged():
    txs, bundles, contents = make_world()
    body = canonical_ids(bundles)
    body[0], body[1] = body[1], body[0]
    block = sign_block(KP, 0, PREV, body, 2, 0.0)
    result = inspect(block, bundles, contents)
    assert result.conclusive
    assert [v.kind for v in result.violations] == [ViolationKind.ORDER_DEVIATION]


def test_injected_tx_flagged():
    txs, bundles, contents = make_world()
    alien = make_transaction(KP, 999, 1000, created_at=1.0)
    body = [alien.sketch_id] + canonical_ids(bundles)
    block = sign_block(KP, 0, PREV, body, 2, 0.0)
    result = inspect(block, bundles, contents)
    assert result.conclusive
    assert [v.kind for v in result.violations] == [
        ViolationKind.UNCOMMITTED_TX_IN_BODY
    ]


def test_censored_tx_flagged():
    txs, bundles, contents = make_world()
    body = canonical_ids(bundles)
    removed = body.pop(1)
    block = sign_block(KP, 0, PREV, body, 2, 0.0)
    result = inspect(block, bundles, contents)
    assert result.conclusive
    assert [v.kind for v in result.violations] == [
        ViolationKind.MISSING_COMMITTED_TX
    ]
    assert str(removed) in result.violations[0].detail


def test_censored_tail_tx_flagged():
    txs, bundles, contents = make_world()
    body = canonical_ids(bundles)[:-1]  # drop the last canonical tx
    block = sign_block(KP, 0, PREV, body, 2, 0.0)
    result = inspect(block, bundles, contents)
    assert result.conclusive
    assert [v.kind for v in result.violations] == [
        ViolationKind.MISSING_COMMITTED_TX
    ]


def test_appended_new_txs_allowed():
    txs, bundles, contents = make_world()
    own = make_transaction(KP, 7, 30, created_at=1.0)
    body = canonical_ids(bundles) + [own.sketch_id]
    block = sign_block(KP, 0, PREV, body, 2, 0.0)
    result = inspect(block, bundles, contents)
    assert result.clean


def test_duplicated_committed_tx_in_suffix_flagged():
    txs, bundles, contents = make_world()
    body = canonical_ids(bundles)
    body.append(body[0])  # replay a committed tx after the canonical body
    block = sign_block(KP, 0, PREV, body, 2, 0.0)
    result = inspect(block, bundles, contents)
    assert result.conclusive
    assert result.violations


def test_settled_txs_must_be_skipped():
    txs, bundles, contents = make_world()
    settled = {txs[0].sketch_id}
    body = canonical_ids(bundles, settled=settled)
    block = sign_block(KP, 0, PREV, body, 2, 0.0)
    result = inspect(block, bundles, contents, settled=settled)
    assert result.clean


def test_below_threshold_fee_must_be_excluded():
    txs, bundles, contents = make_world(fee=0)
    # Canonical expectation under min_fee=1 is an empty body.
    block = sign_block(KP, 0, PREV, (), 2, 0.0)
    assert inspect(block, bundles, contents).clean
    # Including a low-fee tx deviates from the canonical sequence.
    body = canonical_order(bundles, 2, PREV, lambda i: False)
    bad = sign_block(KP, 0, PREV, body, 2, 0.0)
    result = inspect(bad, bundles, contents)
    assert result.conclusive and result.violations


def test_unknown_content_makes_inspection_inconclusive():
    txs, bundles, contents = make_world()
    missing_id = txs[0].sketch_id
    del contents[missing_id]
    body = canonical_ids(bundles)
    block = sign_block(KP, 0, PREV, body, 2, 0.0)
    result = inspect(block, bundles, contents)
    assert not result.conclusive
    assert missing_id in result.missing_content
    assert not result.violations


def test_unknown_commitment_prefix_is_inconclusive():
    txs, bundles, contents = make_world()
    block = sign_block(KP, 0, PREV, (), 5, 0.0)  # seq beyond known bundles
    result = inspect(block, bundles, contents)
    assert not result.conclusive


def test_block_capacity_respected_by_expectation():
    txs, bundles, contents = make_world()
    config = LOConfig(max_block_txs=3)
    body = canonical_ids(bundles)[:3]
    block = sign_block(KP, 0, PREV, body, 2, 0.0)
    result = inspect(block, bundles, contents, config=config)
    assert result.clean
