"""Hypothesis property tests on core protocol invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloomclock import BloomClock
from repro.core.commitment import (
    CommitmentStore,
    GENESIS_DIGEST,
    bundle_digest,
    chain_digest,
    sign_header,
)
from repro.core.commitment import BundleInfo
from repro.core.ordering import canonical_order, shuffle_bundle
from repro.crypto import KeyPair

KP = KeyPair.generate(seed=b"prop-signer")

bundle_lists = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=2 ** 32 - 1),
        min_size=1, max_size=6, unique=True,
    ),
    min_size=0, max_size=6,
)
hashes = st.binary(min_size=32, max_size=32)


def header_for(bundles):
    clock = BloomClock()
    digests = []
    digest = GENESIS_DIGEST
    for ids in bundles:
        clock.add_all(ids)
        digest = chain_digest(digest, bundle_digest(ids))
        digests.append(digest)
    return sign_header(
        KP, len(bundles), sum(len(b) for b in bundles), digests, clock
    )


@given(bundles=bundle_lists)
@settings(max_examples=60)
def test_prefix_headers_are_always_consistent(bundles):
    """Every prefix of an honest history is consistent with the full one."""
    full = header_for(bundles)
    for cut in range(len(bundles) + 1):
        prefix = header_for(bundles[:cut])
        assert prefix.consistent_with(full)
        assert full.consistent_with(prefix)


@given(bundles=bundle_lists, extra=st.integers(min_value=1, max_value=2 ** 32 - 1))
@settings(max_examples=60)
def test_store_never_flags_honest_growth(bundles, extra):
    """Observing an honest, growing history never produces evidence."""
    store = CommitmentStore(KP.public_key)
    history = []
    for ids in bundles + [[extra]]:
        history.append([i for i in ids if all(i not in b for b in history)])
        if not history[-1]:
            history.pop()
            continue
        assert store.observe(header_for(history)) is None


@given(bundles=bundle_lists, prev=hashes)
@settings(max_examples=60)
def test_canonical_order_is_permutation_of_committed(bundles, prev):
    """The canonical order contains each committed id exactly once."""
    infos = [
        BundleInfo(i, tuple(ids), None, 0.0) for i, ids in enumerate(bundles)
    ]
    order = canonical_order(infos, len(infos), prev, lambda i: False)
    committed = [i for ids in bundles for i in ids]
    # ids may repeat across bundles in generated data; canonical order
    # preserves multiplicity per bundle.
    assert sorted(order) == sorted(committed)


@given(bundles=bundle_lists, prev=hashes)
@settings(max_examples=60)
def test_canonical_order_is_reproducible(bundles, prev):
    infos = [
        BundleInfo(i, tuple(ids), None, 0.0) for i, ids in enumerate(bundles)
    ]
    a = canonical_order(infos, len(infos), prev, lambda i: False)
    b = canonical_order(infos, len(infos), prev, lambda i: False)
    assert a == b


@given(
    ids=st.lists(st.integers(min_value=1, max_value=2 ** 32 - 1),
                 min_size=1, max_size=20, unique=True),
    prev_a=hashes,
    prev_b=hashes,
    index=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=60)
def test_shuffle_permutation_property(ids, prev_a, prev_b, index):
    out = shuffle_bundle(ids, prev_a, index)
    assert sorted(out) == sorted(ids)
    # Determinism in all arguments.
    assert out == shuffle_bundle(list(reversed(ids)), prev_a, index)


@given(bundles=bundle_lists)
@settings(max_examples=60)
def test_clock_dominance_monotone_along_history(bundles):
    """Later headers' clocks dominate earlier ones (append-only growth)."""
    previous = None
    history = []
    for ids in bundles:
        history.append(ids)
        header = header_for(history)
        if previous is not None:
            assert header.clock.dominates(previous.clock)
        previous = header
