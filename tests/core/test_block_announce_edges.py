"""Edge cases in block announcement handling."""

from repro.chain.block import sign_block
from repro.core.reconciliation import BlockAnnounce
from tests.conftest import make_sim


def converged_sim(num_nodes=8):
    sim = make_sim(num_nodes=num_nodes)
    for i in range(4):
        sim.inject_at(0.2 + 0.2 * i, i % num_nodes, fee=10)
    sim.run(8.0)
    return sim


def test_unsigned_block_is_dropped():
    sim = converged_sim()
    builder = sim.nodes[0]
    block = builder.builder.build(
        builder.log, builder.bundles, builder.ledger, created_at=sim.loop.now
    )
    forged = sign_block(
        builder.keypair, block.height, block.prev_hash, block.tx_ids,
        block.commit_seq, block.created_at,
    )
    bad = type(forged)(
        creator=forged.creator,
        height=forged.height,
        prev_hash=forged.prev_hash,
        tx_ids=forged.tx_ids,
        commit_seq=forged.commit_seq,
        created_at=forged.created_at,
        signature=b"\x00" * 32,
    )
    announce = BlockAnnounce(
        block=bad, header=builder.header(),
        bundle_ids=tuple(b.ids for b in builder.bundles),
    )
    target = sim.nodes[3]
    sim.network.send(0, 3, "lo/block", announce, wire_bytes=100,
                     is_overhead=False)
    sim.run(sim.loop.now + 2.0)
    assert target.ledger.height == -1  # not settled


def test_malformed_announce_context_raises_suspicion():
    sim = converged_sim()
    builder = sim.nodes[0]
    block = builder.builder.build(
        builder.log, builder.bundles, builder.ledger, created_at=sim.loop.now
    )
    # Bundle ids that do not hash-chain to the signed header.
    announce = BlockAnnounce(
        block=block,
        header=builder.header(),
        bundle_ids=tuple((9999,) for _ in builder.bundles),
    )
    before = sim.counter.total("suspicions_raised")
    sim.network.send(0, 3, "lo/block", announce, wire_bytes=100,
                     is_overhead=False)
    sim.run(sim.loop.now + 2.0)
    target = sim.nodes[3]
    # Settled (inspection is separate from validation) but unjudgeable:
    # the creator was suspected pending a usable context.  (The suspicion
    # clears again once the -- otherwise correct -- creator keeps
    # responding to syncs: temporal accuracy.)
    assert target.ledger.height == 0
    assert sim.counter.total("suspicions_raised") > before
    assert not target.acct.is_exposed(builder.public_key)


def test_duplicate_announce_processed_once():
    sim = converged_sim()
    sim.nodes[0].on_leader_elected()
    sim.run(sim.loop.now + 5.0)
    heights = {n.ledger.height for n in sim.nodes.values()}
    assert heights == {0}
    # Replay the same block: nothing changes.
    builder = sim.nodes[0]
    block = builder.ledger.block_at(0)
    announce = BlockAnnounce(
        block=block,
        header=builder.header_at(block.commit_seq) or builder.header(),
        bundle_ids=tuple(
            b.ids for b in builder.bundles[: block.commit_seq]
        ),
    )
    sim.network.send(0, 3, "lo/block", announce, wire_bytes=100,
                     is_overhead=False)
    sim.run(sim.loop.now + 3.0)
    assert sim.nodes[3].ledger.height == 0


def test_out_of_order_blocks_buffered():
    sim = converged_sim(num_nodes=6)
    # Build two blocks back-to-back at one node, deliver the second first
    # to another node via a direct link manipulation.
    sim.network.block_link(0, 4)  # node 4 misses direct deliveries from 0
    sim.nodes[0].on_leader_elected()
    sim.run(sim.loop.now + 4.0)
    sim.inject_at(sim.loop.now + 0.2, 1, fee=10)
    sim.run(sim.loop.now + 4.0)
    sim.nodes[1].on_leader_elected()
    sim.run(sim.loop.now + 6.0)
    # Everyone, including node 4 (which got block 0 only via gossip),
    # settles both blocks in order.
    for node in sim.nodes.values():
        assert node.ledger.height == 1
