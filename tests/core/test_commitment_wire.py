"""Tests for the commitment header wire format."""

from repro.bloomclock import BloomClock
from repro.core.commitment import (
    CommitmentHeader,
    GENESIS_DIGEST,
    bundle_digest,
    chain_digest,
    sign_header,
)
from repro.crypto import KeyPair

import pytest

KP = KeyPair.generate(seed=b"wire-signer")


def header_for(bundles):
    clock = BloomClock()
    digests = []
    digest = GENESIS_DIGEST
    for ids in bundles:
        clock.add_all(ids)
        digest = chain_digest(digest, bundle_digest(ids))
        digests.append(digest)
    return sign_header(
        KP, len(bundles), sum(len(b) for b in bundles), digests, clock
    )


def test_roundtrip_preserves_signed_fields():
    original = header_for([[1, 2], [3]])
    data = original.to_bytes()
    assert len(data) == original.wire_size()
    decoded = CommitmentHeader.from_bytes(data)
    assert decoded.signer == original.signer
    assert decoded.seq == original.seq
    assert decoded.tx_count == original.tx_count
    assert decoded.tip_digest() == original.tip_digest()
    assert decoded.clock == original.clock
    assert decoded.signature_valid()


def test_roundtrip_empty_history():
    original = header_for([])
    decoded = CommitmentHeader.from_bytes(original.to_bytes())
    assert decoded.seq == 0
    assert decoded.tip_digest() == GENESIS_DIGEST
    assert decoded.signature_valid()


def test_tampered_bytes_fail_verification():
    data = bytearray(header_for([[1, 2]]).to_bytes())
    data[40] ^= 0xFF  # corrupt the seq field
    decoded = CommitmentHeader.from_bytes(bytes(data))
    assert not decoded.signature_valid()


def test_wire_form_marks_partial_chain():
    multi = header_for([[1], [2], [3]])
    assert multi.has_full_chain
    decoded = CommitmentHeader.from_bytes(multi.to_bytes())
    assert not decoded.has_full_chain  # interior digests not shipped
    single = CommitmentHeader.from_bytes(header_for([[1]]).to_bytes())
    assert single.has_full_chain  # seq 1: the tip IS the whole chain


def test_wrong_length_rejected():
    with pytest.raises(ValueError):
        CommitmentHeader.from_bytes(b"\x00" * 10)
