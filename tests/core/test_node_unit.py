"""Unit-level tests of LONode behaviour on tiny networks."""

import pytest

from repro.core.config import LOConfig
from tests.conftest import make_sim


def drain(sim, seconds=5.0):
    sim.run(sim.loop.now + seconds)


def test_local_transaction_committed_and_stored():
    sim = make_sim(num_nodes=4)
    node = sim.nodes[0]
    tx = node.create_transaction(fee=10)
    assert tx.sketch_id in node.log
    assert node.log.content_of(tx.sketch_id) is tx
    assert node.seq == 1
    assert node.bundles[0].source_peer is None


def test_invalid_client_transaction_rejected():
    sim = make_sim(num_nodes=4)
    node = sim.nodes[0]
    from repro.mempool.transaction import Transaction

    tx = node.create_transaction(fee=10)
    forged = Transaction(
        sender=tx.sender,
        nonce=tx.nonce + 1,
        fee=tx.fee,
        size_bytes=tx.size_bytes,
        created_at=tx.created_at,
        payload=tx.payload,
        signature=tx.signature,
    )
    assert not sim.nodes[1].receive_client_transaction(forged)
    assert forged.sketch_id not in sim.nodes[1].log


def test_duplicate_client_submission_ignored():
    sim = make_sim(num_nodes=4)
    node = sim.nodes[0]
    tx = node.create_transaction(fee=10)
    assert not node.receive_client_transaction(tx)
    assert node.seq == 1


def test_transaction_propagates_to_all_nodes():
    sim = make_sim(num_nodes=8)
    tx = sim.nodes[0].create_transaction(fee=10)
    drain(sim, 8.0)
    for node in sim.nodes.values():
        assert tx.sketch_id in node.log
        assert node.log.content_of(tx.sketch_id) is not None


def test_commitment_headers_observed_by_peers():
    sim = make_sim(num_nodes=6)
    sim.nodes[0].create_transaction(fee=10)
    drain(sim, 6.0)
    key0 = sim.nodes[0].public_key
    observers = sum(
        1
        for nid, node in sim.nodes.items()
        if nid != 0 and node.acct.store_for(key0).latest is not None
    )
    assert observers >= 3  # overlay neighbours saw node 0's commitment


def test_bundle_provenance_recorded():
    sim = make_sim(num_nodes=6)
    tx = sim.nodes[0].create_transaction(fee=10)
    drain(sim, 8.0)
    # Some node learned the tx from a peer: its bundle names that peer.
    for nid, node in sim.nodes.items():
        if nid == 0:
            continue
        bundle = next(
            (b for b in node.bundles if tx.sketch_id in b.ids), None
        )
        assert bundle is not None
        assert bundle.source_peer is not None


def test_header_caching_and_refresh():
    sim = make_sim(num_nodes=4)
    node = sim.nodes[0]
    empty = node.header()
    assert node.header() is empty  # cached
    node.create_transaction(fee=5)
    refreshed = node.header()
    assert refreshed.seq == empty.seq + 1
    assert node.header_at(empty.seq).digests == empty.digests


def test_no_false_accusations_in_correct_network():
    sim = make_sim(num_nodes=10)
    sim.inject_at(0.5, 0, fee=10)
    sim.inject_at(1.0, 3, fee=20)
    drain(sim, 20.0)
    for node in sim.nodes.values():
        assert not node.acct.exposed
        assert not node.acct.suspected


def test_crashed_node_becomes_suspected():
    sim = make_sim(num_nodes=6)
    sim.network.crash(2)
    sim.nodes[0].create_transaction(fee=10)
    drain(sim, 25.0)
    key2 = sim.directory.key_of(2)
    suspecters = sum(
        1
        for nid in sim.nodes
        if nid != 2 and sim.nodes[nid].acct.is_suspected(key2)
    )
    assert suspecters >= len(sim.nodes) - 2  # everyone (suspicion spreads)


def test_recovered_node_is_unsuspected_eventually():
    config = LOConfig()
    sim = make_sim(num_nodes=6, config=config)
    sim.network.crash(2)
    sim.nodes[0].create_transaction(fee=10)
    drain(sim, 25.0)
    key2 = sim.directory.key_of(2)
    assert any(
        sim.nodes[nid].acct.is_suspected(key2) for nid in sim.nodes if nid != 2
    )
    sim.network.recover(2)
    drain(sim, 30.0)
    # Temporal accuracy: the recovered node answers pending requests
    # (through new syncs) and stops being suspected by its contacts.
    still = [
        nid
        for nid in sim.nodes
        if nid != 2 and sim.nodes[nid].acct.is_suspected(key2)
    ]
    assert len(still) < len(sim.nodes) - 2


def test_leader_builds_canonical_block_and_peers_accept():
    sim = make_sim(num_nodes=6)
    txs = [sim.nodes[i % 6].create_transaction(fee=10) for i in range(5)]
    drain(sim, 8.0)
    sim.nodes[3].on_leader_elected()
    drain(sim, 5.0)
    heights = {node.ledger.height for node in sim.nodes.values()}
    assert heights == {0}
    block = sim.nodes[0].ledger.block_at(0)
    assert set(block.tx_ids) == {t.sketch_id for t in txs}
    for node in sim.nodes.values():
        assert not node.acct.exposed  # clean block, no exposures


def test_sequential_blocks_settle_in_order():
    sim = make_sim(num_nodes=6)
    sim.nodes[0].create_transaction(fee=10)
    drain(sim, 5.0)
    sim.nodes[1].on_leader_elected()
    drain(sim, 3.0)
    sim.nodes[2].create_transaction(fee=10)
    drain(sim, 5.0)
    sim.nodes[4].on_leader_elected()
    drain(sim, 3.0)
    for node in sim.nodes.values():
        assert node.ledger.height == 1
    # Second block must not repeat the settled tx of the first.
    b0 = sim.nodes[0].ledger.block_at(0)
    b1 = sim.nodes[0].ledger.block_at(1)
    assert not (set(b0.tx_ids) & set(b1.tx_ids))


def test_highest_fee_policy_flag():
    sim = make_sim(num_nodes=5)
    for node in sim.nodes.values():
        node.block_policy = "highest_fee"
        node.inspection_enabled = False
    fees = [5, 80, 30]
    for i, fee in enumerate(fees):
        sim.nodes[i].create_transaction(fee=fee)
    drain(sim, 6.0)
    sim.nodes[0].on_leader_elected()
    drain(sim, 3.0)
    block = sim.nodes[1].ledger.block_at(0)
    block_fees = [
        sim.nodes[1].log.content_of(i).fee for i in block.tx_ids
    ]
    assert block_fees == sorted(block_fees, reverse=True)
