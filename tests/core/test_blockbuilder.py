"""Unit tests for deterministic block building."""

import pytest

from repro.chain import Ledger
from repro.core.blockbuilder import BlockBuilder
from repro.core.commitment import BundleInfo
from repro.core.config import LOConfig
from repro.core.ordering import canonical_order
from repro.crypto import KeyPair
from repro.mempool import TransactionLog, make_transaction

KP = KeyPair.generate(seed=b"builder")
CLIENT = KeyPair.generate(seed=b"builder-client")


def setup_state(num_txs=6, fee=10, invalid=(), missing=()):
    """Log + bundles with `num_txs` committed transactions."""
    log = TransactionLog(sketch_capacity=32)
    bundles = []
    txs = []
    for n in range(1, num_txs + 1):
        tx = make_transaction(CLIENT, n, fee, created_at=0.0)
        txs.append(tx)
    half = num_txs // 2
    for index, chunk in enumerate((txs[:half], txs[half:])):
        ids = []
        for tx in chunk:
            log.append(tx.sketch_id)
            ids.append(tx.sketch_id)
            if tx.sketch_id in missing:
                continue
            log.add_content(tx, valid=tx.sketch_id not in invalid)
        bundles.append(
            BundleInfo(index=index, ids=tuple(ids), source_peer=None,
                       committed_at=0.0)
        )
    return log, bundles, txs


def test_builds_canonical_block():
    log, bundles, txs = setup_state()
    builder = BlockBuilder(KP, LOConfig())
    ledger = Ledger()
    block = builder.build(log, bundles, ledger, created_at=1.0)
    assert block.commit_seq == 2
    expected = canonical_order(
        bundles, 2, ledger.tip_hash, builder.exclusion_predicate(log, ledger)
    )
    assert list(block.tx_ids) == expected
    assert block.signature_valid()


def test_excludes_low_fee():
    log, bundles, txs = setup_state(fee=0)  # below min_fee=1
    builder = BlockBuilder(KP, LOConfig(min_fee=1))
    block = builder.build(log, bundles, Ledger(), created_at=0.0)
    assert block.tx_ids == ()


def test_excludes_invalid():
    _, _, txs = setup_state()
    bad = txs[0].sketch_id
    log, bundles, _ = setup_state(invalid={bad})
    builder = BlockBuilder(KP, LOConfig())
    block = builder.build(log, bundles, Ledger(), created_at=0.0)
    assert bad not in block.tx_ids
    assert len(block.tx_ids) == len(txs) - 1


def test_excludes_settled():
    log, bundles, txs = setup_state()
    builder = BlockBuilder(KP, LOConfig())
    ledger = Ledger()
    first = builder.build(log, bundles, ledger, created_at=0.0)
    ledger.append(first)
    second = builder.build(log, bundles, ledger, created_at=1.0)
    assert second.tx_ids == ()  # everything already settled


def test_coverable_seq_stops_at_missing_content():
    _, _, txs = setup_state()
    hole = txs[1].sketch_id  # first bundle gets a content hole
    log, bundles, _ = setup_state(missing={hole})
    builder = BlockBuilder(KP, LOConfig())
    assert builder.coverable_seq(log, bundles) == 0
    block = builder.build(log, bundles, Ledger(), created_at=0.0)
    assert block.commit_seq == 0
    assert block.tx_ids == ()


def test_coverable_seq_counts_invalid_as_covered():
    log, bundles, txs = setup_state()
    bad = txs[0].sketch_id
    log2, bundles2, _ = setup_state(invalid={bad})
    builder = BlockBuilder(KP, LOConfig())
    assert builder.coverable_seq(log2, bundles2) == 2


def test_blockspace_cap():
    log, bundles, txs = setup_state(num_txs=10)
    builder = BlockBuilder(KP, LOConfig(max_block_txs=4))
    block = builder.build(log, bundles, Ledger(), created_at=0.0)
    assert len(block.tx_ids) == 4


def test_appended_ids_follow_committed():
    log, bundles, txs = setup_state()
    builder = BlockBuilder(KP, LOConfig())
    extra_tx = make_transaction(KP, 99, 50, created_at=2.0)
    log_ids = {t.sketch_id for t in txs}
    block = builder.build(
        log, bundles, Ledger(), created_at=2.0,
        appended_ids=[extra_tx.sketch_id],
    )
    # Appended tx lacks content in the log, so the exclusion predicate
    # drops it -- the builder must commit + store its own txs first.
    assert extra_tx.sketch_id not in block.tx_ids

    log.append(extra_tx.sketch_id)
    log.add_content(extra_tx)
    block = builder.build(
        log, bundles, Ledger(), created_at=2.0, commit_seq=2,
        appended_ids=[extra_tx.sketch_id],
    )
    assert block.tx_ids[-1] == extra_tx.sketch_id
    assert set(block.tx_ids[:-1]) == log_ids


def test_highest_fee_policy_orders_by_fee():
    log = TransactionLog(sketch_capacity=32)
    fees = [5, 100, 20]
    ids = []
    for n, fee in enumerate(fees, start=1):
        tx = make_transaction(CLIENT, n, fee, created_at=0.0)
        log.append(tx.sketch_id)
        log.add_content(tx)
        ids.append((tx.sketch_id, fee))
    builder = BlockBuilder(KP, LOConfig())
    block = builder.build_highest_fee(log, Ledger(), created_at=0.0)
    block_fees = [dict(ids)[i] for i in block.tx_ids]
    assert block_fees == sorted(block_fees, reverse=True)
    assert block.commit_seq == 0
