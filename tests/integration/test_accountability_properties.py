"""The section 3.2 accountability properties, end to end.

* Accuracy / no false positives: no correct node is ever exposed.
* Accuracy / temporal: correct nodes are not perpetually suspected.
* Suspicion completeness: request-ignoring nodes end up suspected by all.
* Exposure completeness: one exposure spreads to every correct node.
"""

from repro.attacks import make_censor_factory
from tests.conftest import make_sim


def correct_keys(sim):
    return {sim.directory.key_of(i) for i in sim.correct_ids}


def test_no_false_positives_under_load():
    sim = make_sim(num_nodes=20, enable_blocks=True)
    for i in range(15):
        sim.inject_at(0.1 + 0.2 * i, i % 20, fee=5 + i)
    sim.run(40.0)
    keys = correct_keys(sim)
    for nid in sim.correct_ids:
        acct = sim.nodes[nid].acct
        assert keys.isdisjoint(set(acct.exposed)), "correct node exposed"


def test_temporal_accuracy_suspicions_clear():
    sim = make_sim(num_nodes=20, enable_blocks=True)
    for i in range(15):
        sim.inject_at(0.1 + 0.2 * i, i % 20, fee=5)
    sim.run(30.0)
    # Quiet period with no new transactions: every transient suspicion of
    # a correct node must have cleared.
    sim.run(60.0)
    keys = correct_keys(sim)
    for nid in sim.correct_ids:
        acct = sim.nodes[nid].acct
        lingering = keys & set(acct.suspected)
        assert not lingering, f"node {nid} still suspects correct nodes"


def test_suspicion_completeness_for_request_ignorers():
    mal = (0, 1, 2)
    sim = make_sim(
        num_nodes=18,
        malicious_ids=mal,
        attacker_factory=make_censor_factory(
            set(mal), ignore_sync=True, drop_blames=True, equivocate=False
        ),
    )
    for i in range(8):
        sim.inject_at(0.1 + 0.2 * i, 3 + (i % 15), fee=5)
    sim.run(45.0)
    keys = [sim.directory.key_of(i) for i in mal]
    for nid in sim.correct_ids:
        acct = sim.nodes[nid].acct
        for key in keys:
            assert acct.is_suspected(key) or acct.is_exposed(key)


def test_exposure_completeness_spreads_to_all():
    mal = (0,)
    sim = make_sim(
        num_nodes=18,
        malicious_ids=mal,
        attacker_factory=make_censor_factory(
            {0}, ignore_sync=True, drop_blames=True, equivocate=True
        ),
    )
    # Attacker-originated txs force it to commit (fork material).
    sim.inject_at(0.2, 0, fee=5)
    for i in range(8):
        sim.inject_at(0.4 + 0.2 * i, 1 + (i % 16), fee=5)
    sim.run(45.0)
    key = sim.directory.key_of(0)
    exposed = [
        nid for nid in sim.correct_ids if sim.nodes[nid].acct.is_exposed(key)
    ]
    assert len(exposed) == len(sim.correct_ids)


def test_exposure_evidence_is_independently_verifiable():
    mal = (0,)
    sim = make_sim(
        num_nodes=14,
        malicious_ids=mal,
        attacker_factory=make_censor_factory(
            {0}, ignore_sync=True, drop_blames=True, equivocate=True
        ),
    )
    sim.inject_at(0.2, 0, fee=5)
    sim.inject_at(0.4, 5, fee=5)
    sim.run(45.0)
    key = sim.directory.key_of(0)
    for nid in sim.correct_ids:
        blame = sim.nodes[nid].acct.exposed.get(key)
        if blame is not None:
            assert blame.verify()
