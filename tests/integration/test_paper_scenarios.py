"""Scenario tests lifted directly from the paper's figures.

* Fig. 2: node B reconciles with A then C and must build its block with
  A's transactions ordered before C's (bundle order = commitment order).
* Section 4.2 implementation detail: when the set difference exceeds the
  sketch capacity, reconciliation splits and still converges.
"""

from repro.core.config import LOConfig
from tests.conftest import make_sim


def test_fig2_bundle_order_preserved_in_block():
    # Three "regions": A (node 0), B (node 1), C (node 2).  B learns A's
    # transactions first, C's later; its block must order them that way.
    sim = make_sim(num_nodes=3, config=LOConfig(sync_fanout=2))
    a, b, c = sim.nodes[0], sim.nodes[1], sim.nodes[2]
    # Make the triangle explicit regardless of the sampled topology.
    a.neighbors, b.neighbors, c.neighbors = {1}, {0, 2}, {1}

    tx_a = [a.create_transaction(fee=10) for _ in range(2)]
    sim.run(5.0)  # B reconciles with A (and C hears via B)
    a_pos = [b.log.position(t.sketch_id) for t in tx_a]
    assert all(p is not None for p in a_pos)

    tx_c = [c.create_transaction(fee=10) for _ in range(2)]
    sim.run(10.0)
    c_pos = [b.log.position(t.sketch_id) for t in tx_c]
    assert all(p is not None for p in c_pos)
    # Received order: everything from A precedes everything from C.
    assert max(a_pos) < min(c_pos)

    # B builds: A-derived txs appear before C-derived txs in the block.
    b.on_leader_elected()
    sim.run(12.0)
    block = b.ledger.block_at(0)
    body = list(block.tx_ids)
    idx_a = [body.index(t.sketch_id) for t in tx_a]
    idx_c = [body.index(t.sketch_id) for t in tx_c]
    assert max(idx_a) < min(idx_c)
    # And every node accepts it without exposures.
    for node in sim.nodes.values():
        assert not node.acct.exposed


def test_large_divergence_triggers_split_and_converges():
    config = LOConfig(sketch_capacity=16, min_sketch_capacity=16)
    sim = make_sim(num_nodes=10, config=config)
    left = set(range(5))
    right = set(range(5, 10))
    sim.network.partition([left, right])
    # Push enough disjoint transactions on both sides to exceed capacity.
    for i in range(30):
        sim.inject_at(0.1 + 0.05 * i, i % 5, fee=5)
        sim.inject_at(0.12 + 0.05 * i, 5 + (i % 5), fee=5)
    sim.run(15.0)
    sim.network.heal_partition()
    sim.run(60.0)
    assert sim.counter.total("reconciliation_failures") > 0  # splits happened
    # Everyone still converged on all ~60 transactions.
    items = sim.mempool_tracker.items()
    assert len(items) == 60
    for item in items:
        assert sim.convergence_fraction(item) == 1.0
    # Splitting never produced phantom commitments: every committed id is
    # a real transaction.
    real = set(items)
    for node in sim.nodes.values():
        assert node.log.known_ids() <= real
