"""Seeded chaos runs: faults heal, invariants hold, runs are bit-identical.

Acceptance: a seeded chaos schedule (drop + duplicate + reorder + corrupt
+ crash/recover over >= 20 nodes) is deterministic across two invocations
and passes the invariant harness -- zero false exposures, suspicions of
correct nodes cleared, append-only commitment logs, and full mempool
convergence once the faults stop.
"""

import pytest

from repro.core.config import LOConfig
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.net.chaos import ChaosPlan, CrashWindow
from repro.net.latency import ConstantLatencyModel
from repro.testing import InvariantMonitor, check_chaos_invariants

CHAOS_UNTIL = 20.0
HEAL_UNTIL = 90.0

PLAN = ChaosPlan(
    seed=99,
    drop_rate=0.05,
    duplicate_rate=0.05,
    reorder_rate=0.2,
    max_jitter_s=0.4,
    corrupt_rate=0.03,
    crash_windows=(CrashWindow(3, 5.0, 12.0), CrashWindow(7, 8.0, 16.0)),
)


def run_chaos_simulation():
    """One full chaos-then-heal run; returns (sim, monitor)."""
    sim = LOSimulation(
        SimulationParams(
            num_nodes=20,
            seed=7,
            config=LOConfig(quarantine_base_s=2.0, quarantine_max_s=8.0),
            latency_model=ConstantLatencyModel(0.03),
            chaos_plan=PLAN,
        )
    )
    monitor = InvariantMonitor(sim, period_s=2.0).start()
    for i in range(8):
        sim.inject_at(0.5 + 1.5 * i, origin=(i * 5) % 20, fee=10)
    sim.run(CHAOS_UNTIL)
    sim.chaos.uninstall()  # faults heal; crash windows already elapsed
    sim.run(HEAL_UNTIL)
    return sim, monitor


def fingerprint(sim):
    """Everything observable that a nondeterministic run would perturb."""
    return {
        "delivered": sim.network.delivered_messages,
        "drops": sim.drop_breakdown(),
        "chaos": sim.chaos.injector.counters.as_dict(),
        "violations": sim.wire_violation_totals(),
        "logs": {nid: len(node.log) for nid, node in sim.nodes.items()},
        "chains": {
            nid: tuple(node._digest_chain) for nid, node in sim.nodes.items()
        },
        "restarts": {nid: node.restarts for nid, node in sim.nodes.items()},
    }


@pytest.mark.chaos
def test_chaos_run_passes_invariants_and_is_deterministic():
    sim_a, monitor_a = run_chaos_simulation()

    # The invariant battery: no false exposures, suspicions cleared,
    # append-only logs (sampled during the run), full convergence.
    check_chaos_invariants(sim_a, monitor=monitor_a)

    # The schedule actually exercised every fault class.
    counters = sim_a.chaos.injector.counters
    assert counters.dropped > 0
    assert counters.duplicated > 0
    assert counters.reordered > 0
    assert counters.corrupted > 0
    assert sim_a.drop_breakdown().get("chaos", 0) == counters.dropped
    # Corrupted payloads surfaced as contained wire violations somewhere.
    assert sum(sim_a.wire_violation_totals().values()) > 0
    # Both scripted crash windows ran their restart path.
    assert sim_a.nodes[3].restarts == 1
    assert sim_a.nodes[7].restarts == 1

    # Determinism: an identical second invocation is bit-for-bit the same.
    sim_b, monitor_b = run_chaos_simulation()
    check_chaos_invariants(sim_b, monitor=monitor_b)
    assert fingerprint(sim_a) == fingerprint(sim_b)


@pytest.mark.chaos
def test_restarted_nodes_reconverge_with_the_rest():
    sim, monitor = run_chaos_simulation()
    reference = set(sim.nodes[0].log.order)
    for crashed in PLAN.crashed_ids():
        assert set(sim.nodes[crashed].log.order) == reference
    check_chaos_invariants(sim, monitor=monitor)
