"""Randomized protocol fuzz: core invariants across random small worlds.

Each case randomizes population, workload and fault-free event timing from
a hypothesis-chosen seed, runs the full stack for a short horizon, and
checks the invariants that must hold in ANY all-correct execution:

* no blames (accuracy);
* append-only logs whose sketches match their contents;
* commitment headers self-consistent along each node's own history;
* settled chains identical across nodes when blocks are enabled.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import LOConfig
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.net.latency import ConstantLatencyModel


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_nodes=st.integers(min_value=4, max_value=14),
    num_txs=st.integers(min_value=1, max_value=8),
    blocks=st.booleans(),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_correct_worlds_hold_invariants(seed, num_nodes, num_txs, blocks):
    sim = LOSimulation(
        SimulationParams(
            num_nodes=num_nodes,
            seed=seed,
            config=LOConfig(mean_block_time_s=4.0),
            latency_model=ConstantLatencyModel(0.02),
            enable_blocks=blocks,
        )
    )
    for i in range(num_txs):
        sim.inject_at(0.2 + 0.5 * i, (seed + i) % num_nodes, fee=1 + i)
    sim.run(18.0)

    items = set(sim.mempool_tracker.items())
    tips = set()
    for node in sim.nodes.values():
        # Accuracy: nobody blamed anybody.
        assert not node.acct.exposed
        # Log integrity: the incremental sketches decode to the log set,
        # and no phantom ids were ever committed.
        known = node.log.known_ids()
        assert known <= items
        assert node.log.full_sketch(capacity=64).decode() == known
        # Own commitment history is internally consistent.
        header = node.header()
        assert header.signature_valid()
        assert header.tx_count == len(node.log)
        assert header.seq == len(node.bundles)
        for earlier_seq in range(0, node.seq, max(1, node.seq // 3)):
            earlier = node.header_at(earlier_seq)
            if earlier is not None:
                assert earlier.consistent_with(header)
        tips.add(node.ledger.tip_hash)
    # Convergence: every injected tx reached every node.
    for item in items:
        assert sim.convergence_fraction(item) == 1.0
    # One chain (when blocks ran at all).
    assert len(tips) == 1
