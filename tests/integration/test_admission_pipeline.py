"""End-to-end admission pipeline: heavy traffic, determinism, accounting.

The acceptance scenario for the production mempool: a seeded
heavy-traffic run (bursty MMPP arrivals + hot-key sender skew + a dash
of RBF) flows through per-node admission, the pools drain into
append-only log commitments on sync ticks, and two same-seed runs agree
byte for byte on the full summary.
"""

import json

from repro.core.config import LOConfig
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.mempool.admission import AdmissionConfig, REJECT_REASONS


def heavy_run(seed=7, rbf_fraction=0.05):
    sim = LOSimulation(SimulationParams(
        num_nodes=8, seed=seed, enable_blocks=True,
        config=LOConfig(admission=AdmissionConfig()),
    ))
    sim.inject_open_loop(
        rate_per_s=20.0, duration_s=10.0, arrivals="bursty",
        hot_fraction=0.6, rbf_fraction=rbf_fraction,
    )
    sim.run(16.0)
    return sim


def summary_of(sim):
    return {
        "admission": sim.admission_breakdown(),
        "pool": sorted(
            (node_id, sorted(node.mempool._entries))
            for node_id, node in sim.nodes.items()
        ),
        "logs": sorted(
            (node_id, list(node.log.order))
            for node_id, node in sim.nodes.items()
        ),
        "latencies": sorted(sim.mempool_tracker.all_latencies()),
    }


def test_same_seed_runs_are_byte_identical():
    first = json.dumps(summary_of(heavy_run()), sort_keys=True)
    second = json.dumps(summary_of(heavy_run()), sort_keys=True)
    assert first == second


def test_heavy_traffic_flows_through_admission():
    sim = heavy_run()
    breakdown = sim.admission_breakdown()
    admitted = breakdown["accepted"] + breakdown["replaced"]
    assert admitted > 100
    assert breakdown["drained"] > 0
    # Every drained transaction reached an append-only log commitment.
    committed = sum(len(list(node.log.order)) for node in sim.nodes.values())
    assert committed > 0
    # The counter dict exposes every pipeline reason, zeros included.
    for reason in REJECT_REASONS:
        assert reason in breakdown
    assert not any(node.acct.exposed for node in sim.nodes.values())


def test_rbf_traffic_registers_replacements_or_rejections():
    sim = heavy_run(rbf_fraction=0.3)
    breakdown = sim.admission_breakdown()
    assert breakdown["replaced"] + breakdown["replace_underpriced"] > 0


def test_admission_off_keeps_legacy_path():
    sim = LOSimulation(SimulationParams(num_nodes=4, seed=3,
                                        enable_blocks=True))
    sim.inject_open_loop(rate_per_s=5.0, duration_s=4.0)
    sim.run(8.0)
    assert sim.admission_breakdown() == {}
    assert all(node.mempool is None for node in sim.nodes.values())
    assert sum(len(list(node.log.order)) for node in sim.nodes.values()) > 0
