"""Fast path on vs off: same seed, byte-identical observable output.

``Network.send`` takes a precomputed fast path while no fault of any kind
is installed; installing any fault (here: a no-op delivery hook that
approves every message) forces the full branch chain.  The two paths must
be *observably indistinguishable*: identical simulation results, identical
event counts and identical ``repro.trace/1`` trace exports, line for line.
Anything less would mean the optimisation changes behaviour, not just
speed.
"""

import json

from repro import obs
from repro.core.config import LOConfig
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.metrics.caches import reset_cache_stats
from repro.obs import Tracer, trace_lines
from repro.sketch.pinsketch import clear_decode_cache, clear_syndrome_cache


def _traced_run(force_slow_path: bool):
    """One small simulation; returns (summary dict, trace lines)."""
    # The sketch caches and their hit/miss counters are process-global and
    # appear in metrics snapshots inside the trace; start both runs from
    # the same blank state so the comparison sees only the send path.
    clear_decode_cache()
    clear_syndrome_cache()
    reset_cache_stats()
    tracer = Tracer()
    with obs.use_tracer(tracer):
        sim = LOSimulation(SimulationParams(
            num_nodes=10, seed=1234, config=LOConfig(),
        ))
        if force_slow_path:
            # A hook that approves everything is behaviourally a no-op but
            # flips the no-faults flag off.
            sim.network.add_delivery_hook(lambda message: True)
        assert sim.network._fast_send is (not force_slow_path)
        injected = sim.inject_workload(rate_per_s=8.0, duration_s=4.0)
        sim.run(6.0)
        summary = {
            "injected": injected,
            "events_processed": sim.loop.processed_events,
            "now": sim.loop.now,
            "delivered": sim.network.delivered_messages,
            "dropped": sim.network.dropped_messages,
            "overhead_bytes": sim.total_overhead_bytes(),
            "latencies": sim.mempool_tracker.all_latencies(),
            "exposures": sorted(
                (node_id, sorted(peer.hex() for peer in node.acct.exposed))
                for node_id, node in sim.nodes.items()
            ),
        }
    # meta=None keeps the export free of wall-clock fields; every line is
    # then a pure function of the simulation.
    return summary, trace_lines(tracer)


def test_fast_and_slow_send_paths_are_byte_identical():
    fast_summary, fast_trace = _traced_run(force_slow_path=False)
    slow_summary, slow_trace = _traced_run(force_slow_path=True)
    assert json.dumps(fast_summary, sort_keys=True) == \
        json.dumps(slow_summary, sort_keys=True)
    assert fast_summary["events_processed"] > 0
    assert fast_trace == slow_trace  # line-for-line identical export


def test_telemetry_guards_rebind_and_default_to_none():
    """Every profiled module keeps a ``_PHASES`` guard that is ``None``
    while no profiler is installed (the zero-cost-when-off contract, the
    same mechanism as the network's ``_TRACE`` tracer guard) and rebinds
    to the live profiler inside ``use_profiler``."""
    import repro.crypto.keys as keys
    import repro.mempool.admission as admission
    import repro.sim.loop as loop

    for module in (loop, keys, admission):
        assert module._PHASES is None, module.__name__
    profiler = obs.PhaseProfiler()
    with obs.use_profiler(profiler):
        for module in (loop, keys, admission):
            assert module._PHASES is profiler, module.__name__
    for module in (loop, keys, admission):
        assert module._PHASES is None, module.__name__


def test_profiled_run_is_byte_identical_to_unprofiled():
    """The phase profiler reads the wall clock but must never leak into
    deterministic artifacts: a profiled run's trace export and summary
    are line-for-line identical to an unprofiled run's."""
    plain_summary, plain_trace = _traced_run(force_slow_path=False)
    profiler = obs.PhaseProfiler()
    with obs.use_profiler(profiler):
        profiled_summary, profiled_trace = _traced_run(force_slow_path=False)
    assert json.dumps(plain_summary, sort_keys=True) == \
        json.dumps(profiled_summary, sort_keys=True)
    assert plain_trace == profiled_trace
    # ...while the profiler itself did observe the run
    assert profiler.self_s
    assert sum(profiler.calls.values()) > 0


def test_fast_path_reenables_after_faults_clear():
    sim = LOSimulation(SimulationParams(num_nodes=4, seed=7,
                                        config=LOConfig()))
    network = sim.network
    assert network._fast_send
    network.crash(0)
    assert not network._fast_send
    network.recover(0)
    assert network._fast_send
    network.block_link(1, 2)
    network.partition([{0, 1}, {2, 3}])
    assert not network._fast_send
    network.unblock_link(1, 2)
    assert not network._fast_send  # partition still installed
    network.heal_partition()
    assert network._fast_send
