"""Paper-scale smoke: a seeded 10,000-node run completes and is sane.

The paper's evaluation ran LO on a 10,000-node cluster (section 6.1).
This suite proves the batched delivery engine actually reaches that node
count inside a test budget -- the simulated horizon is tiny, so the run
is dominated by the parts batching is for: topology construction, the
per-tick reconciliation fan-outs, and heap traffic.
"""

import pytest

from repro.exec.tasks import run_plain

PAPER_NODES = 10_000


@pytest.mark.slow
def test_ten_thousand_node_run_completes():
    summary = run_plain(
        seed=1234,
        num_nodes=PAPER_NODES,
        rate_per_s=5.0,
        duration_s=0.6,
        drain_s=0.4,
    )
    assert summary["nodes"] == PAPER_NODES
    # First sync ticks are jittered across the first simulated second, so
    # a one-second horizon gives every node at least one timer firing.
    assert summary["events_processed"] > PAPER_NODES
    assert summary["overhead_bytes"] > 0
    # Temporal accuracy at scale: nobody is exposed in a fault-free run.
    assert summary["exposures"] == 0


@pytest.mark.slow
def test_ten_thousand_node_run_is_seed_deterministic():
    kwargs = dict(seed=77, num_nodes=PAPER_NODES, rate_per_s=1.0,
                  duration_s=0.2, drain_s=0.1)
    first = run_plain(**kwargs)
    second = run_plain(**kwargs)
    assert first == second
