"""Byzantine ingress hardening: malformed payloads never crash a node.

Acceptance: randomly corrupted payloads for EVERY ``lo/*`` message type
are fed to a live node -- the simulation keeps running with zero
unhandled exceptions, every violation is counted and attributed to the
(authenticated) sending peer, and repeated garbage quarantines the peer
with exponential backoff before re-admission.
"""

import random

import pytest

from repro.attacks.degraded import GarbageNode
from repro.core.accountability import ExposureBlame, SuspicionBlame
from repro.core.commitment import EquivocationEvidence
from repro.core.config import LOConfig
from repro.core.node import LONode
from repro.core.reconciliation import (
    BlockAnnounce,
    ContentRequest,
    ContentResponse,
    SplitSpec,
    SyncRequest,
    SyncResponse,
    sketch_for_spec,
)
from repro.core.wire import validate_payload
from repro.crypto.keys import KeyPair
from repro.mempool.transaction import make_transaction
from repro.net.chaos import corrupt_payload
from repro.net.message import Message
from tests.conftest import make_sim

ALL_TYPES = tuple(sorted(LONode._HANDLERS))

# A threshold no fuzz run reaches: every violation stays countable instead
# of the peer being silently dropped at the quarantine gate.
NO_QUARANTINE = LOConfig(quarantine_threshold=1_000_000)


def well_formed_payloads(sim):
    """One legitimate payload per lo/* message type, built from node 1."""
    node = sim.nodes[1]
    other = sim.nodes[2]
    header = node.header()
    spec = SplitSpec(tuple(range(sim.params.config.clock_cells)))
    sketch = sketch_for_spec(node.log, spec, 16)
    tx = make_transaction(node.keypair, 999, fee=5, created_at=0.0)
    block = node.builder.build(node.log, node.bundles, node.ledger, created_at=0.0)
    return {
        "lo/sync_req": SyncRequest(0, header, spec, sketch),
        "lo/sync_resp": SyncResponse(0, header, "ok", (1,), (2,)),
        "lo/content_req": ContentRequest(0, (1, 2, 3)),
        "lo/content_resp": ContentResponse(0, (tx,)),
        "lo/suspicion": SuspicionBlame(
            accuser=node.public_key, accused=other.public_key, kind="sync",
            detail=(), last_known=None, raised_at=0.0,
        ),
        "lo/exposure": ExposureBlame(
            accused=other.public_key,
            equivocation=EquivocationEvidence(
                accused=other.public_key, header_a=header, header_b=header,
            ),
        ),
        "lo/commit_upd": header,
        "lo/block": BlockAnnounce(block=block, header=header, bundle_ids=()),
        "lo/block_req": 0,
        "lo/client_submit": tx,
        "lo/status_query": (1_000_000, 42),
    }


def test_fuzzed_payloads_on_every_handler_never_crash():
    sim = make_sim(num_nodes=8, config=NO_QUARANTINE)
    sim.run(2.0)  # let real traffic flow first
    target = sim.nodes[0]
    rng = random.Random(0xC0FFEE)
    legitimate = well_formed_payloads(sim)
    assert set(legitimate) == set(ALL_TYPES)

    attackers = [1, 2, 3]
    injected = 0
    for trial in range(60):
        sender = attackers[trial % len(attackers)]
        for msg_type in ALL_TYPES:
            payload = corrupt_payload(legitimate[msg_type], rng)
            if rng.random() < 0.3:
                payload = corrupt_payload(payload, rng)  # double mangle
            # Deliver straight into the hardened ingress; any unhandled
            # exception propagates and fails the test here.
            target.on_message(
                Message(sender, 0, msg_type, payload, wire_bytes=64)
            )
            injected += 1
    # The node survived; the simulation still runs.
    sim.run(4.0)
    assert injected == 60 * len(ALL_TYPES)
    violations = sim.counter.per_node("wire_violations").get(0, 0)
    assert violations > injected // 2
    # Attribution: every attacking peer was counted individually, and the
    # per-peer counts add up to the node's total.
    per_peer = {peer: target.quarantine.violations_of(peer)
                for peer in attackers}
    assert all(count > 0 for count in per_peer.values())
    assert sum(per_peer.values()) == violations
    # Fully-correct peers were never blamed.
    for honest in (4, 5, 6, 7):
        assert target.quarantine.violations_of(honest) == 0


def test_unknown_message_types_and_raw_garbage_contained():
    sim = make_sim(num_nodes=6, config=NO_QUARANTINE)
    target = sim.nodes[0]
    rng = random.Random(7)
    for _ in range(50):
        garbage = corrupt_payload(rng.getrandbits(16), rng)
        msg_type = rng.choice(ALL_TYPES + ("lo/evil", "nonsense", ""))
        target.on_message(Message(1, 0, msg_type, garbage, wire_bytes=8))
    sim.run(2.0)
    # Nearly all garbage is a violation; the rare exception is garbage that
    # happens to satisfy a trivial schema (e.g. an int for lo/block_req).
    assert target.quarantine.violations_of(1) >= 45


def test_schema_valid_but_handler_hostile_payload_contained():
    # A suspicion about a key no directory maps anywhere passes the schema
    # but breaks the handler's local-verification probe (Fig. 4) --
    # containment must turn that into an attributed violation.
    sim = make_sim(num_nodes=6)
    sim.run(1.5)
    target = sim.nodes[0]
    stranger = KeyPair.generate(seed=b"nobody-knows-me").public_key
    blame = SuspicionBlame(
        accuser=sim.nodes[1].public_key, accused=stranger, kind="content",
        detail=(1, 2), last_known=None, raised_at=0.0,
    )
    assert validate_payload("lo/suspicion", blame) is None
    target.on_message(Message(1, 0, "lo/suspicion", blame, wire_bytes=64))
    assert target.quarantine.violations_of(1) == 1
    assert not target.acct.is_suspected(stranger)
    sim.run(2.0)  # still alive


def test_repeated_garbage_quarantines_then_readmits():
    config = LOConfig(
        quarantine_threshold=3, quarantine_base_s=4.0, quarantine_max_s=64.0
    )
    sim = make_sim(num_nodes=6, config=config)
    target = sim.nodes[0]
    for _ in range(3):
        target.on_message(Message(1, 0, "lo/evil", None, wire_bytes=8))
    assert target.quarantine.is_quarantined(1, target.now)
    # Accountability heard about it: the offender is now suspected.
    assert target.acct.is_suspected(sim.directory.key_of(1))
    # While quarantined: inbound messages dropped before they are even
    # counted, and the peer is excluded from outbound sync.
    target.on_message(Message(1, 0, "lo/evil", None, wire_bytes=8))
    assert target.quarantine.violations_of(1) == 3
    if 1 in target.neighbors:
        assert 1 not in target._eligible_neighbors()
    # Backoff expires -> re-admission on probation.
    sim.run(4.5)
    assert not target.quarantine.is_quarantined(1, target.now)
    # Next episode doubles.
    for _ in range(3):
        target.on_message(Message(1, 0, "lo/evil", None, wire_bytes=8))
    release = target.quarantine.release_time(1)
    assert release == pytest.approx(target.now + 8.0)


def test_garbage_node_flood_is_survived_and_quarantined():
    config = LOConfig(
        quarantine_threshold=3, quarantine_base_s=8.0, quarantine_max_s=128.0
    )
    sim = make_sim(
        num_nodes=10, config=config, malicious_ids=[4],
        attacker_factory=GarbageNode,
    )
    for i in range(6):
        sim.inject_at(0.3 + 0.4 * i, (5 + i) % 10, fee=10)
    sim.run(30.0)
    attacker = sim.nodes[4]
    assert attacker.garbage_sent > 0
    # The flooded neighbours survived, attributed the garbage, and at
    # least one of them quarantined the flooder.
    victims = sorted(set(attacker.neighbors) & set(sim.correct_ids))
    assert victims
    assert all(
        sim.nodes[nid].quarantine.violations_of(4) > 0 for nid in victims
    )
    assert any(
        sim.nodes[nid].quarantine.episodes.get(4, 0) >= 1 for nid in victims
    )
    # The flood never broke convergence for honest traffic.
    for item in sim.mempool_tracker.items():
        assert sim.convergence_fraction(item) == 1.0
    # No correct node was ever exposed (garbage is not proof of anything).
    for a in sim.correct_ids:
        for b in sim.correct_ids:
            assert not sim.nodes[a].acct.is_exposed(sim.directory.key_of(b))
