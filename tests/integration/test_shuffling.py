"""Integration: the section 5.1 neighbour-rotation machinery."""

from repro.attacks import make_censor_factory
from repro.core.config import LOConfig
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.net.latency import ConstantLatencyModel


def shuffled_sim(num_nodes=16, malicious_ids=(), attacker_factory=None,
                 period=2.0, seed=9):
    return LOSimulation(
        SimulationParams(
            num_nodes=num_nodes,
            seed=seed,
            config=LOConfig(),
            latency_model=ConstantLatencyModel(0.02),
            malicious_ids=list(malicious_ids),
            attacker_factory=attacker_factory,
            enable_shuffling=True,
            shuffle_period_s=period,
        )
    )


def test_shuffling_preserves_convergence():
    sim = shuffled_sim()
    txs = []

    def create(origin):
        txs.append(sim.nodes[origin].create_transaction(fee=10))

    for i in range(6):
        sim.loop.call_at(0.2 + 0.3 * i, create, i % 16)
    sim.run(20.0)
    for tx in txs:
        assert sim.convergence_fraction(tx.sketch_id) == 1.0


def test_shuffling_rotates_neighbors():
    sim = shuffled_sim(period=1.0)
    before = {nid: set(node.neighbors) for nid, node in sim.nodes.items()}
    sim.run(15.0)
    changed = sum(
        1 for nid, node in sim.nodes.items() if set(node.neighbors) != before[nid]
    )
    assert changed > len(sim.nodes) // 2


def test_shuffling_keeps_degree_near_target():
    sim = shuffled_sim(period=1.0)
    sim.run(20.0)
    for node in sim.nodes.values():
        assert len(node.neighbors) >= 4  # target degree 8, sampler refills


def test_suspected_peers_rotated_out():
    mal = (0, 1)
    sim = shuffled_sim(
        num_nodes=16,
        malicious_ids=mal,
        attacker_factory=make_censor_factory(
            set(mal), ignore_sync=True, drop_blames=True
        ),
        period=2.0,
    )
    for i in range(6):
        sim.inject_at(0.2 + 0.3 * i, 2 + (i % 14), fee=10)
    sim.run(40.0)
    # Once suspected, the shuffler evicts attackers from correct nodes'
    # neighbour sets and must not re-add them.
    attached = sum(
        1
        for nid in sim.correct_ids
        for peer in sim.nodes[nid].neighbors
        if peer in mal
    )
    total_edges = sum(len(sim.nodes[nid].neighbors) for nid in sim.correct_ids)
    assert attached <= total_edges * 0.1


def test_no_false_blames_with_shuffling():
    sim = shuffled_sim()
    for i in range(6):
        sim.inject_at(0.2 + 0.3 * i, i % 16, fee=10)
    sim.run(30.0)
    for node in sim.nodes.values():
        assert not node.acct.exposed
