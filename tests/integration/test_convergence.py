"""Integration: mempool convergence under the full protocol stack."""

import statistics

from tests.conftest import make_sim


def test_all_nodes_converge_on_all_transactions():
    sim = make_sim(num_nodes=20)
    sim.inject_workload = None  # guard: use explicit injections below
    txs = []

    def create(origin, fee):
        txs.append(sim.nodes[origin].create_transaction(fee=fee))

    for i in range(10):
        sim.loop.call_at(0.2 + 0.3 * i, create, i % 20, 10 + i)
    sim.run(20.0)
    for tx in txs:
        assert sim.convergence_fraction(tx.sketch_id) == 1.0
    # Contents too, not just commitments.
    for node in sim.nodes.values():
        assert node.log.missing_content() == []


def test_mempool_latency_is_seconds_scale():
    sim = make_sim(num_nodes=25, constant_latency=0.05)
    for i in range(8):
        sim.inject_at(0.2 + 0.25 * i, i % 25, fee=10)
    sim.run(25.0)
    latencies = sim.mempool_tracker.all_latencies()
    assert latencies
    mean = statistics.mean(latencies)
    # Paper reports ~1.14 s mean with its setup; ours must land in the
    # same seconds-scale ballpark on a small overlay.
    assert 0.1 < mean < 5.0


def test_logs_agree_on_content_not_order():
    # Received order is per-node ("local partial ordering"); the SET of
    # known transactions converges.
    sim = make_sim(num_nodes=10)
    for i in range(6):
        sim.inject_at(0.2 + 0.2 * i, i % 10, fee=5)
    sim.run(15.0)
    id_sets = {frozenset(node.log.known_ids()) for node in sim.nodes.values()}
    assert len(id_sets) == 1


def test_sketch_state_matches_log_contents():
    sim = make_sim(num_nodes=8)
    for i in range(5):
        sim.inject_at(0.2 + 0.2 * i, i % 8, fee=5)
    sim.run(12.0)
    for node in sim.nodes.values():
        assert node.log.full_sketch().decode() == node.log.known_ids()


def test_commitment_stores_track_peers_accurately():
    sim = make_sim(num_nodes=8)
    sim.inject_at(0.2, 0, fee=5)
    sim.run(12.0)
    # known_ids recorded for a peer must be a subset of that peer's log.
    for nid, node in sim.nodes.items():
        for peer_key, store in node.acct.stores.items():
            peer = sim.directory.id_of(peer_key)
            assert store.known_ids <= sim.nodes[peer].log.known_ids()


def test_deterministic_replay():
    a = make_sim(num_nodes=10, seed=77)
    a.inject_at(0.5, 2, fee=9)
    a.run(10.0)
    b = make_sim(num_nodes=10, seed=77)
    b.inject_at(0.5, 2, fee=9)
    b.run(10.0)
    assert a.total_overhead_bytes() == b.total_overhead_bytes()
    assert a.loop.processed_events == b.loop.processed_events
    for nid in a.nodes:
        assert list(a.nodes[nid].log.order) == list(b.nodes[nid].log.order)
