"""Integration: partitions, crashes, and recovery (section 5.2).

"A node may retrieve pending requests after a partition or a crash.  Once
it publicly responds to all pending requests, no correct node will suspect
it."  These tests drive exactly those scenarios through the network-layer
fault injection.
"""

from tests.conftest import make_sim


def test_partition_blocks_convergence_then_heals():
    sim = make_sim(num_nodes=12)
    left = set(range(6))
    right = set(range(6, 12))
    sim.network.partition([left, right])
    tx = sim.nodes[0].create_transaction(fee=10)
    sim.run(10.0)
    # Only the left side learned the tx.
    for nid in range(12):
        has = tx.sketch_id in sim.nodes[nid].log
        assert has == (nid in left)
    sim.network.heal_partition()
    sim.run(30.0)
    assert sim.convergence_fraction(tx.sketch_id) == 1.0


def test_partitioned_side_suspects_then_forgives():
    sim = make_sim(num_nodes=10)
    isolated = {9}
    rest = set(range(9))
    sim.nodes[5].create_transaction(fee=10)
    sim.run(5.0)
    sim.network.partition([rest, isolated])
    sim.nodes[2].create_transaction(fee=10)
    sim.run(25.0)
    key9 = sim.directory.key_of(9)
    suspecters = [
        nid for nid in range(9) if sim.nodes[nid].acct.is_suspected(key9)
    ]
    assert suspecters  # the unreachable node is suspected
    sim.network.heal_partition()
    sim.run(60.0)
    still = [
        nid for nid in range(9) if sim.nodes[nid].acct.is_suspected(key9)
    ]
    # Temporal accuracy after healing: the node answers syncs again.
    assert len(still) < len(suspecters)
    assert not still


def test_rejoined_node_catches_up():
    sim = make_sim(num_nodes=10)
    sim.network.crash(7)
    txs = [sim.nodes[i].create_transaction(fee=10) for i in (0, 2, 4)]
    sim.run(10.0)
    assert all(t.sketch_id not in sim.nodes[7].log for t in txs)
    sim.network.recover(7)
    sim.run(40.0)
    for t in txs:
        assert t.sketch_id in sim.nodes[7].log
        assert sim.nodes[7].log.content_of(t.sketch_id) is not None


def test_no_exposures_from_partitions_alone():
    # Partitions cause suspicion, never exposure: unreachable is not
    # provable misbehaviour (accuracy, section 3.2).
    sim = make_sim(num_nodes=12)
    sim.network.partition([set(range(6)), set(range(6, 12))])
    sim.nodes[0].create_transaction(fee=10)
    sim.nodes[8].create_transaction(fee=10)
    sim.run(30.0)
    sim.network.heal_partition()
    sim.run(30.0)
    for node in sim.nodes.values():
        assert not node.acct.exposed
