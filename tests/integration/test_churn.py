"""Integration: node churn (leave / rejoin at any time, section 3)."""

from tests.conftest import make_sim


def test_rolling_churn_preserves_convergence():
    sim = make_sim(num_nodes=14)
    txs = []

    def create(origin):
        txs.append(sim.nodes[origin].create_transaction(fee=10))

    # Nodes 10..13 cycle offline/online while transactions keep flowing.
    schedule = [
        (0.5, "crash", 10),
        (1.0, "tx", 0),
        (3.0, "crash", 11),
        (4.0, "tx", 2),
        (6.0, "recover", 10),
        (7.0, "tx", 4),
        (9.0, "recover", 11),
        (10.0, "crash", 12),
        (11.0, "tx", 6),
        (14.0, "recover", 12),
    ]
    for when, action, arg in schedule:
        if action == "crash":
            sim.loop.call_at(when, sim.network.crash, arg)
        elif action == "recover":
            sim.loop.call_at(when, sim.network.recover, arg)
        else:
            sim.loop.call_at(when, create, arg)
    sim.run(60.0)
    for tx in txs:
        assert sim.convergence_fraction(tx.sketch_id) == 1.0
    # Churned-but-correct nodes end up clean of blames.
    for churned in (10, 11, 12):
        key = sim.directory.key_of(churned)
        for node in sim.nodes.values():
            assert not node.acct.is_exposed(key)
            assert not node.acct.is_suspected(key)


def test_rejoiner_receives_blocks_built_while_away():
    from repro.core.config import LOConfig

    sim = make_sim(num_nodes=10, config=LOConfig(mean_block_time_s=3.0),
                   enable_blocks=True)
    sim.network.crash(9)
    for i in range(5):
        sim.inject_at(0.3 + 0.4 * i, i % 9, fee=10)
    sim.run(20.0)
    height_while_away = sim.nodes[0].ledger.height
    assert height_while_away >= 1
    assert sim.nodes[9].ledger.height == -1
    sim.network.recover(9)
    # New blocks keep being produced; their announcements reveal the chain
    # gap to the rejoiner, which fetches the missing ancestors.
    for i in range(3):
        sim.inject_at(sim.loop.now + 1.0 + i, i % 9, fee=10)
    sim.run(80.0)
    rejoined = sim.nodes[9]
    for item in sim.mempool_tracker.items():
        assert item in rejoined.log
    # Full chain catch-up through lo/block_req ancestor fetches.
    assert rejoined.ledger.height == sim.nodes[0].ledger.height
    assert rejoined.ledger.tip_hash == sim.nodes[0].ledger.tip_hash
