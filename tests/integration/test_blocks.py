"""Integration: block production, settlement and inspection together."""

from repro.core.config import LOConfig
from tests.conftest import make_sim


def test_continuous_block_production_settles_everything():
    config = LOConfig(mean_block_time_s=4.0)
    sim = make_sim(num_nodes=12, config=config, enable_blocks=True)
    txs = []

    def create(origin):
        txs.append(sim.nodes[origin].create_transaction(fee=10))

    for i in range(10):
        sim.loop.call_at(0.2 + 0.4 * i, create, i % 12)
    sim.run(60.0)
    ledger = sim.nodes[0].ledger
    assert ledger.height >= 2
    for tx in txs:
        assert ledger.is_settled(tx.sketch_id), "tx never made it to a block"


def test_all_nodes_share_one_chain():
    config = LOConfig(mean_block_time_s=4.0)
    sim = make_sim(num_nodes=12, config=config, enable_blocks=True)
    for i in range(6):
        sim.inject_at(0.2 + 0.4 * i, i % 12, fee=10)
    sim.run(40.0)
    tips = {node.ledger.tip_hash for node in sim.nodes.values()}
    assert len(tips) == 1
    heights = {node.ledger.height for node in sim.nodes.values()}
    assert len(heights) == 1


def test_no_transaction_settles_twice():
    config = LOConfig(mean_block_time_s=3.0)
    sim = make_sim(num_nodes=10, config=config, enable_blocks=True)
    for i in range(8):
        sim.inject_at(0.2 + 0.3 * i, i % 10, fee=10)
    sim.run(45.0)
    ledger = sim.nodes[0].ledger
    seen = []
    for h in range(ledger.height + 1):
        seen.extend(ledger.block_at(h).tx_ids)
    assert len(seen) == len(set(seen))


def test_clean_blocks_trigger_no_exposures():
    config = LOConfig(mean_block_time_s=4.0)
    sim = make_sim(num_nodes=12, config=config, enable_blocks=True)
    for i in range(8):
        sim.inject_at(0.2 + 0.3 * i, i % 12, fee=10)
    sim.run(50.0)
    assert sim.counter.total("blocks_inspected") > 0
    for node in sim.nodes.values():
        assert not node.acct.exposed


def test_block_latency_tracked_per_transaction():
    config = LOConfig(mean_block_time_s=4.0)
    sim = make_sim(num_nodes=10, config=config, enable_blocks=True)
    for i in range(6):
        sim.inject_at(0.2 + 0.3 * i, i % 10, fee=10)
    sim.run(40.0)
    latencies = sim.block_tracker.all_latencies()
    assert latencies
    assert all(lat >= 0 for lat in latencies)
