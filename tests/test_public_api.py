"""The public API surface: everything README/docs reference must import."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.sim",
    "repro.net",
    "repro.crypto",
    "repro.sketch",
    "repro.bloomclock",
    "repro.chain",
    "repro.mempool",
    "repro.mempool.admission",
    "repro.mempool.priority",
    "repro.mempool.fee_market",
    "repro.mempool.drain",
    "repro.mempool.evict",
    "repro.mempool.limiter",
    "repro.mempool.watermark",
    "repro.gossip",
    "repro.core",
    "repro.core.enforcement",
    "repro.core.client",
    "repro.core.wire",
    "repro.net.chaos",
    "repro.testing",
    "repro.baselines",
    "repro.attacks",
    "repro.workload",
    "repro.workload.bursty",
    "repro.workload.hotkey",
    "repro.metrics",
    "repro.metrics.caches",
    "repro.metrics.probes",
    "repro.metrics.reporting",
    "repro.metrics.stats",
    "repro.metrics.trackers",
    "repro.obs",
    "repro.obs.tracer",
    "repro.obs.registry",
    "repro.obs.export",
    "repro.obs.schema",
    "repro.obs.report",
    "repro.obs.timeline",
    "repro.obs.steady",
    "repro.obs.phases",
    "repro.obs.live",
    "repro.bench",
    "repro.bench.runner",
    "repro.bench.suites",
    "repro.bench.harness",
    "repro.bench.mempool",
    "repro.bench.obs",
    "repro.exec",
    "repro.exec.tasks",
    "repro.exec.worker",
    "repro.exec.engine",
    "repro.exec.spool",
    "repro.experiments",
    "repro.experiments.fig6_detection",
    "repro.experiments.fig7_mempool_latency",
    "repro.experiments.fig8_block_latency",
    "repro.experiments.fig9_bandwidth",
    "repro.experiments.fig10_reconciliations",
    "repro.experiments.sec65_cpu",
    "repro.experiments.sec65_memory",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_dunder_all_resolves(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_metrics_convenience_exports():
    """Probes and reporting helpers are importable from the package root."""
    from repro.metrics import (  # noqa: F401
        ConvergenceProbe,
        format_table,
        to_jsonable,
        write_json,
    )


def test_version():
    import repro

    assert repro.__version__


def test_readme_quickstart_snippet():
    """The exact flow shown in README runs."""
    from repro.experiments.harness import LOSimulation, SimulationParams

    sim = LOSimulation(SimulationParams(num_nodes=10, seed=7,
                                        enable_blocks=True))
    sim.inject_workload(rate_per_s=3.0, duration_s=4.0)
    sim.run(8.0)
    lat = sim.mempool_tracker.all_latencies()
    assert lat
    assert not any(n.acct.exposed for n in sim.nodes.values())
