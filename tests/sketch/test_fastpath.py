"""Fast-path (numpy) vs pure-Python fallback equivalence.

The vectorised kernels in :mod:`repro.sketch.gf` and the batched syndrome
generation in :mod:`repro.sketch.pinsketch` must be *bit-identical* to the
scalar reference implementations -- these are property tests over random
inputs plus a few targeted regressions (field-table sharing, cache
identity, decode determinism).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.gf import (
    GF2m,
    GF2Tower32,
    default_field,
    fast_path_active,
    have_numpy,
    set_fast_path,
)
from repro.sketch.pinsketch import (
    PinSketch,
    clear_decode_cache,
    clear_syndrome_cache,
    sketch_syndromes,
)

needs_numpy = pytest.mark.skipif(not have_numpy(), reason="numpy unavailable")


@pytest.fixture
def fallback():
    """Force the pure-Python path for the duration of a test."""
    previous = set_fast_path(False)
    clear_syndrome_cache()
    clear_decode_cache()
    yield
    set_fast_path(previous)
    clear_syndrome_cache()
    clear_decode_cache()


def _random_batch(rnd, m, n, nonzero=False):
    low = 1 if nonzero else 0
    return [rnd.randrange(low, 1 << m) for _ in range(n)]


# ------------------------------------------------------------ kernel parity


@needs_numpy
@pytest.mark.parametrize("m", [8, 12, 16, 24, 32, 48, 64])
def test_batch_kernels_match_scalar(m):
    field = default_field(m)
    rnd = random.Random(1000 + m)
    xs = _random_batch(rnd, m, 257)
    ys = _random_batch(rnd, m, 257)
    nz = _random_batch(rnd, m, 257, nonzero=True)

    assert field.mul_batch(xs, ys) == [field.mul(x, y) for x, y in zip(xs, ys)]
    assert field.sqr_batch(xs) == [field.sqr(x) for x in xs]
    assert field.inv_batch(nz) == [field.inv(x) for x in nz]
    scalar = nz[0]
    assert field.mul_scalar_batch(scalar, xs) == [
        field.mul(scalar, x) for x in xs
    ]
    expected_dot = 0
    for x, y in zip(xs, ys):
        expected_dot ^= field.mul(x, y)
    assert field.dot(xs, ys) == expected_dot


@needs_numpy
@pytest.mark.parametrize("m", [16, 32])
def test_batch_kernels_identical_with_fast_path_off(m, fallback):
    field = default_field(m)
    rnd = random.Random(2000 + m)
    xs = _random_batch(rnd, m, 64)
    ys = _random_batch(rnd, m, 64)
    slow = field.mul_batch(xs, ys)
    set_fast_path(True)
    assert field.mul_batch(xs, ys) == slow


@needs_numpy
def test_inv_batch_rejects_zero():
    field = default_field(16)
    with pytest.raises(ZeroDivisionError):
        field.inv_batch([1, 0, 3])


@needs_numpy
@given(st.lists(st.integers(min_value=0, max_value=2 ** 16 - 1),
                min_size=0, max_size=40))
@settings(max_examples=100)
def test_chien_scan_matches_trace_splitting(coeffs):
    """find_roots_scan must agree with brute-force evaluation."""
    field = default_field(16)
    while coeffs and coeffs[-1] == 0:
        coeffs = coeffs[:-1]
    scanned = field.find_roots_scan(coeffs)
    if scanned is None or len(coeffs) < 2:
        return
    # Cross-check every reported root, and spot-check non-roots.
    for root in scanned:
        acc = 0
        for coefficient in reversed(coeffs):
            acc = field.mul(acc, root) ^ coefficient
        assert acc == 0
    assert len(scanned) == len(set(scanned))
    assert len(scanned) <= len(coeffs) - 1


# ------------------------------------------------------- decode equivalence


@needs_numpy
@given(st.sets(st.integers(min_value=1, max_value=2 ** 16 - 1),
               min_size=0, max_size=24))
@settings(max_examples=50, deadline=None)
def test_decode_identical_fast_vs_fallback(elements):
    """Whole-pipeline property: decode output is byte-identical."""
    previous = set_fast_path(True)
    try:
        sketch = PinSketch(32, 16)
        sketch.add_all(elements)
        clear_decode_cache()
        fast = sketch.decode()
        set_fast_path(False)
        clear_decode_cache()
        slow = sketch.decode()
    finally:
        set_fast_path(previous)
    assert fast == slow == set(elements)


@needs_numpy
@pytest.mark.parametrize("m,capacity,difference", [(16, 64, 48), (32, 16, 12)])
def test_reconcile_identical_fast_vs_fallback(m, capacity, difference):
    rnd = random.Random(99)
    items = rnd.sample(range(1, (1 << m) - 1), difference)
    a = PinSketch(capacity, m)
    b = PinSketch(capacity, m)
    a.add_all(items[: difference // 3])
    b.add_all(items[difference // 3:])
    combined = a ^ b

    previous = set_fast_path(True)
    try:
        clear_decode_cache()
        fast = combined.decode()
        set_fast_path(False)
        clear_decode_cache()
        slow = combined.decode()
    finally:
        set_fast_path(previous)
    assert fast == slow == set(items)


def test_fallback_works_without_numpy_path(fallback):
    """The pure-Python pipeline stands alone (numpy never touched)."""
    assert not fast_path_active()
    sketch = PinSketch(8, 16)
    sketch.add_all([5, 9, 1000])
    assert sketch.decode() == {5, 9, 1000}


# -------------------------------------------------- field/table cache reuse


@pytest.mark.parametrize("m", [8, 16])
def test_explicit_modulus_field_is_cached(m):
    from repro.sketch.gf import IRREDUCIBLE_POLY

    modulus = IRREDUCIBLE_POLY[m]
    f1 = default_field(m, modulus)
    f2 = default_field(m, modulus)
    assert f1 is f2


def test_explicit_and_default_modulus_share_tables():
    """Two sketches over the same (m, modulus) share one table build."""
    from repro.sketch.gf import IRREDUCIBLE_POLY

    modulus = IRREDUCIBLE_POLY[16]
    f1 = GF2m(16, modulus)
    f2 = GF2m(16, modulus)
    assert f1._exp is f2._exp
    assert f1._log is f2._log

    s1 = PinSketch(8, 16, field=default_field(16, modulus))
    s2 = PinSketch(8, 16, field=default_field(16, modulus))
    assert s1.field is s2.field


def test_tower_subfield_tables_shared():
    t1 = GF2Tower32()
    t2 = GF2Tower32()
    assert t1.sub._exp is t2.sub._exp


# ------------------------------------------------------ syndrome-cache laws


def test_syndrome_views_are_identity_stable_across_capacities():
    v_small = sketch_syndromes(7, 4, 16)
    v_large = sketch_syndromes(7, 9, 16)
    assert v_large[:4] == v_small
    assert sketch_syndromes(7, 9, 16) is v_large


@needs_numpy
def test_batched_syndromes_match_scalar(fallback):
    elements = random.Random(7).sample(range(1, 2 ** 16 - 1), 40)
    scalar = [sketch_syndromes(e, 16, 16) for e in elements]
    set_fast_path(True)
    clear_syndrome_cache()
    sketch_a = PinSketch(16, 16)
    sketch_a.add_all(elements)
    sketch_b = PinSketch(16, 16)
    for syndromes in scalar:
        sketch_b.xor_syndromes(syndromes)
    assert sketch_a._syndromes == sketch_b._syndromes
