"""Unit and property tests for GF(2^m) arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.gf import GF2m, GF2Tower32, default_field

FIELDS = {16: GF2m(16), 32: default_field(32)}

elem16 = st.integers(min_value=0, max_value=2 ** 16 - 1)
elem32 = st.integers(min_value=0, max_value=2 ** 32 - 1)
nonzero32 = st.integers(min_value=1, max_value=2 ** 32 - 1)


def test_default_field_32_is_tower():
    assert isinstance(default_field(32), GF2Tower32)


def test_default_field_is_cached():
    assert default_field(32) is default_field(32)


def test_tower_quadratic_constant_has_trace_one():
    field = default_field(32)
    assert field._subfield_trace(field.QUAD_C) == 1


@given(a=elem32, b=elem32)
@settings(max_examples=200)
def test_tower_mul_commutes(a, b):
    f = FIELDS[32]
    assert f.mul(a, b) == f.mul(b, a)


@given(a=elem32, b=elem32, c=elem32)
@settings(max_examples=200)
def test_tower_mul_associative_and_distributive(a, b, c):
    f = FIELDS[32]
    assert f.mul(a, f.mul(b, c)) == f.mul(f.mul(a, b), c)
    assert f.mul(a, b ^ c) == f.mul(a, b) ^ f.mul(a, c)


@given(a=elem32)
@settings(max_examples=200)
def test_tower_square_is_self_multiply(a):
    f = FIELDS[32]
    assert f.sqr(a) == f.mul(a, a)


@given(a=nonzero32)
@settings(max_examples=200)
def test_tower_inverse(a):
    f = FIELDS[32]
    assert f.mul(a, f.inv(a)) == 1


@given(a=elem16, b=elem16)
@settings(max_examples=200)
def test_table_mul_matches_reference(a, b):
    f = FIELDS[16]
    assert f.mul(a, b) == f._mul_notable(a, b)


def test_identity_and_zero():
    for f in FIELDS.values():
        assert f.mul(0, 12345 % f.order) == 0
        assert f.mul(1, 12345 % f.order) == 12345 % f.order
        assert f.add(7, 7) == 0


def test_inv_of_zero_raises():
    for f in FIELDS.values():
        with pytest.raises(ZeroDivisionError):
            f.inv(0)


def test_pow_edge_cases():
    f = FIELDS[16]
    assert f.pow(5, 0) == 1
    assert f.pow(5, 1) == 5
    assert f.pow(5, 2) == f.sqr(5)
    assert f.mul(f.pow(5, 3), f.pow(5, -3)) == 1


def test_div_is_mul_by_inverse():
    f = FIELDS[32]
    assert f.div(100, 7) == f.mul(100, f.inv(7))


@given(u=elem32)
@settings(max_examples=150)
def test_artin_schreier_solver(u):
    f = FIELDS[32]
    solution = f.artin_schreier_solve(u)
    if solution is None:
        assert f.trace(u) == 1
    else:
        assert f.sqr(solution) ^ solution == u


def test_trace_is_gf2_valued_and_linear():
    f = FIELDS[32]
    for a, b in [(3, 5), (123456, 789), (2 ** 31, 17)]:
        assert f.trace(a) in (0, 1)
        assert f.trace(a ^ b) == f.trace(a) ^ f.trace(b)


# ------------------------------------------------------------- polynomials


def test_poly_mul_and_mod():
    f = FIELDS[16]
    # (x + 3)(x + 5) = x^2 + (3+5)x + 15
    product = f.poly_mul([3, 1], [5, 1])
    assert product == [f.mul(3, 5), 3 ^ 5, 1]
    assert f.poly_mod(product, [3, 1]) == []  # divisible by x + 3


def test_poly_gcd_of_shared_root():
    f = FIELDS[16]
    p = f.poly_mul([7, 1], [9, 1])
    q = f.poly_mul([7, 1], [11, 1])
    assert f.poly_gcd(p, q) == [7, 1]


def test_poly_eval_horner():
    f = FIELDS[16]
    poly = [1, 2, 3]  # 3x^2 + 2x + 1
    x = 7
    expected = f.mul(3, f.sqr(x)) ^ f.mul(2, x) ^ 1
    assert f.poly_eval(poly, x) == expected


def test_poly_monic_normalises_leading_coefficient():
    f = FIELDS[16]
    monic = f.poly_monic([4, 6])
    assert monic[-1] == 1
    # Roots preserved: p(r) == 0 <-> monic(r) == 0.
    root = f.div(4, 6)
    assert f.poly_eval(monic, root) == 0


def test_poly_sqr_mod_consistency():
    f = FIELDS[16]
    p = [3, 1, 5]
    q = [9, 0, 0, 1]
    direct = f.poly_mod(f.poly_mul(p, p), q)
    assert f.poly_sqr_mod(p, q) == direct


def test_poly_mod_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        FIELDS[16].poly_mod([1, 2], [])


def test_unknown_field_size_rejected():
    with pytest.raises(ValueError):
        GF2m(13)
