"""Unit and property tests for PinSketch set reconciliation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import PinSketch, SketchDecodeError, sketch_syndromes
from repro.sketch.pinsketch import clear_decode_cache

ids32 = st.sets(
    st.integers(min_value=1, max_value=2 ** 32 - 1), min_size=0, max_size=12
)


def test_roundtrip_small_set():
    sketch = PinSketch(capacity=8, m=32)
    sketch.add_all({10, 20, 30})
    assert sketch.decode() == {10, 20, 30}


def test_empty_sketch_decodes_empty():
    assert PinSketch(capacity=4, m=32).decode() == set()


def test_add_twice_removes():
    sketch = PinSketch(capacity=4, m=32)
    sketch.add(42)
    sketch.add(42)
    assert sketch.is_empty()
    assert sketch.decode() == set()


def test_xor_yields_symmetric_difference():
    a = PinSketch(capacity=8, m=32)
    b = PinSketch(capacity=8, m=32)
    a.add_all({1, 2, 3, 100})
    b.add_all({3, 100, 200})
    assert (a ^ b).decode() == {1, 2, 200}


@given(sa=ids32, sb=ids32)
@settings(max_examples=60, deadline=None)
def test_symmetric_difference_property(sa, sb):
    a = PinSketch(capacity=24, m=32)
    b = PinSketch(capacity=24, m=32)
    a.add_all(sa)
    b.add_all(sb)
    assert (a ^ b).decode() == sa ^ sb


def test_capacity_exact_fit():
    sketch = PinSketch(capacity=5, m=32)
    items = {11, 22, 33, 44, 55}
    sketch.add_all(items)
    assert sketch.decode() == items


def test_over_capacity_raises():
    # Overload detection is probabilistic: an overloaded sketch can alias
    # to a small set with identical syndromes (e.g. {1..8} == {8} at
    # capacity 3).  With random 31-bit elements that is astronomically
    # rare, so all trials should fail cleanly.
    rnd = random.Random(9)
    failures = 0
    for trial in range(8):
        sketch = PinSketch(capacity=4, m=32)
        sketch.add_all(rnd.sample(range(1, 2 ** 31), 12))
        try:
            decoded = sketch.decode()
            assert len(decoded) <= 4  # aliased result still looks in-capacity
        except SketchDecodeError:
            failures += 1
    assert failures >= 7


def test_verify_false_still_decodes_valid_sets():
    sketch = PinSketch(capacity=8, m=32)
    sketch.add_all({5, 6, 7})
    assert sketch.decode(verify=False) == {5, 6, 7}


def test_serialize_roundtrip():
    sketch = PinSketch(capacity=6, m=32)
    sketch.add_all({9, 99, 999})
    data = sketch.serialize()
    assert len(data) == sketch.wire_size() == 6 * 4
    restored = PinSketch.deserialize(data, capacity=6, m=32)
    assert restored.decode() == {9, 99, 999}


def test_deserialize_wrong_length_rejected():
    with pytest.raises(ValueError):
        PinSketch.deserialize(b"\x00" * 10, capacity=6, m=32)


def test_truncated_keeps_prefix_semantics():
    big = PinSketch(capacity=16, m=32)
    big.add_all({100, 200})
    small = big.truncated(4)
    assert small.capacity == 4
    assert small.decode() == {100, 200}
    with pytest.raises(ValueError):
        small.truncated(8)


def test_copy_is_independent():
    a = PinSketch(capacity=4, m=32)
    a.add(77)
    b = a.copy()
    b.add(88)
    assert a.decode() == {77}
    assert b.decode() == {77, 88}


def test_mismatched_fields_cannot_combine():
    with pytest.raises(ValueError):
        PinSketch(4, m=16) ^ PinSketch(4, m=32)


def test_xor_uses_min_capacity():
    combined = PinSketch(8, m=32) ^ PinSketch(4, m=32)
    assert combined.capacity == 4


def test_element_out_of_range_rejected():
    sketch = PinSketch(capacity=4, m=16)
    with pytest.raises(ValueError):
        sketch.add(2 ** 16)
    with pytest.raises(ValueError):
        sketch.add(0)


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        PinSketch(capacity=0, m=32)


def test_syndrome_cache_consistency():
    v1 = sketch_syndromes(12345, 8, 32)
    v2 = sketch_syndromes(12345, 8, 32)
    assert v1 is v2  # lru_cache
    assert len(v1) == 8
    assert v1[0] == 12345


def test_xor_syndromes_matches_add():
    direct = PinSketch(capacity=8, m=32)
    direct.add(4242)
    via_vector = PinSketch(capacity=8, m=32)
    via_vector.xor_syndromes(sketch_syndromes(4242, 8, 32))
    assert direct.serialize() == via_vector.serialize()


def test_xor_syndromes_short_vector_rejected():
    sketch = PinSketch(capacity=8, m=32)
    with pytest.raises(ValueError):
        sketch.xor_syndromes((1, 2, 3))


def test_pack_unpack_roundtrip_struct_and_generic_widths():
    from repro.sketch import pack_syndromes, unpack_syndromes

    for m in (8, 16, 32, 64):  # struct fast-path widths
        vector = [1, (1 << m) - 1, 7, 0]
        packed = pack_syndromes(vector, m)
        assert unpack_syndromes(packed, 4, m) == vector
    vector = [1, 4095, 7, 0]  # m=12: generic shift/mask fallback
    packed = pack_syndromes(vector, 12)
    assert unpack_syndromes(packed, 4, 12) == vector
    assert unpack_syndromes(packed, 2, 12) == vector[:2]


def test_packed_xor_matches_sketch_xor():
    from repro.sketch import pack_syndromes

    a, b = PinSketch(capacity=8, m=32), PinSketch(capacity=8, m=32)
    for x in (10, 20, 30):
        a.add(x)
    for x in (20, 30, 40):
        b.add(x)
    packed = (pack_syndromes(a.syndromes_view(), 32)
              ^ pack_syndromes(b.syndromes_view(), 32))
    combined = PinSketch.from_packed(packed, 8, 32)
    # Slot-wise XOR never carries across slots, so the packed combine is
    # exactly the sketch combine.
    assert combined.syndromes_view() == (a ^ b).syndromes_view()
    assert sorted(combined.decode()) == [10, 40]


def test_from_packed_truncates_high_slots():
    from repro.sketch import pack_syndromes

    full = PinSketch(capacity=16, m=32)
    full.add_all(range(1, 6))
    packed = pack_syndromes(full.syndromes_view(), 32)
    truncated = PinSketch.from_packed(packed, 8, 32)
    assert truncated.syndromes_view() == full.truncated(8).syndromes_view()


def test_sketch_syndromes_packed_matches_tuple_view():
    from repro.sketch import sketch_syndromes_packed, unpack_syndromes

    view = sketch_syndromes(54321, 8, 32)
    packed = sketch_syndromes_packed(54321, 8, 32)
    assert unpack_syndromes(packed, 8, 32) == list(view)
    assert sketch_syndromes_packed(54321, 8, 32) == packed  # memoized


def test_decode_cache_failure_and_success_paths():
    clear_decode_cache()
    sketch = PinSketch(capacity=3, m=32)
    rnd = random.Random(17)
    sketch.add_all(rnd.sample(range(1, 2 ** 31), 9))
    with pytest.raises(SketchDecodeError):
        sketch.decode()
    # Second decode hits the cached failure.
    with pytest.raises(SketchDecodeError):
        sketch.decode()
    ok = PinSketch(capacity=3, m=32)
    ok.add_all({5, 6})
    assert ok.decode() == {5, 6}
    assert ok.decode() == {5, 6}  # cached success


def test_large_difference_decodes():
    rnd = random.Random(4)
    items = set(rnd.sample(range(1, 2 ** 31), 50))
    sketch = PinSketch(capacity=64, m=32)
    sketch.add_all(items)
    assert sketch.decode() == items


def test_sixteen_bit_field_roundtrip():
    sketch = PinSketch(capacity=8, m=16)
    sketch.add_all({100, 200, 300})
    assert sketch.decode() == {100, 200, 300}


def test_eight_bit_field_roundtrip():
    sketch = PinSketch(capacity=4, m=8)
    sketch.add_all({11, 22, 33})
    assert sketch.decode() == {11, 22, 33}


def test_sixtyfour_bit_field_roundtrip():
    # The generic (table-less) field path; slower but must stay correct.
    sketch = PinSketch(capacity=3, m=64)
    items = {2 ** 40 + 1, 2 ** 50 + 7, 12345}
    sketch.add_all(items)
    assert sketch.decode() == items


def test_mixed_capacity_xor_difference():
    a = PinSketch(capacity=16, m=32)
    b = PinSketch(capacity=8, m=32)
    a.add_all({100, 200, 300})
    b.add_all({200, 400})
    assert (a ^ b).decode() == {100, 300, 400}
