"""Unit and property tests for hash-partitioned reconciliation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import PartitionedReconciler
from repro.sketch.partition import elements_in_partition, partition_index


def test_partition_index_low_bits():
    assert partition_index(0b1011, 2) == 0b11
    assert partition_index(0b1011, 0) == 0
    assert partition_index(0b1000, 3) == 0


def test_elements_in_partition_filters():
    elements = [1, 2, 3, 4, 5, 6, 7, 8]
    evens = elements_in_partition(elements, 1, 0)
    odds = elements_in_partition(elements, 1, 1)
    assert set(evens) == {2, 4, 6, 8}
    assert set(odds) == {1, 3, 5, 7}


def test_small_difference_single_sketch():
    rec = PartitionedReconciler(capacity=16, m=32)
    a = set(range(100, 150))
    b = set(range(105, 155))  # symmetric difference of 10 <= capacity
    diff, stats = rec.reconcile_sets(a, b)
    assert diff == a ^ b
    assert stats.sketches_decoded == 1
    assert stats.decode_failures == 0
    assert not stats.failed


def test_large_difference_recurses():
    rnd = random.Random(2)
    rec = PartitionedReconciler(capacity=8, m=32)
    a = set(rnd.sample(range(1, 2 ** 31), 120))
    b = set(rnd.sample(range(1, 2 ** 31), 120))
    diff, stats = rec.reconcile_sets(a, b)
    assert diff == a ^ b
    assert stats.decode_failures > 0
    assert stats.max_depth_reached > 0
    assert stats.bytes_transferred > 0


def test_identical_sets_empty_difference():
    rec = PartitionedReconciler(capacity=4, m=32)
    items = {5, 10, 15}
    diff, stats = rec.reconcile_sets(set(items), set(items))
    assert diff == set()
    assert stats.sketches_decoded == 1


def test_refusing_provider_marks_failure():
    rec = PartitionedReconciler(capacity=4, m=32)
    diff, stats = rec.reconcile(set(range(1, 10)), lambda level, index: None)
    assert stats.failed
    assert stats.unresolved_partitions == [(0, 0)]


def test_max_depth_exhaustion_reports_failure():
    # Note capacity >= 2: a capacity-1 sketch is degenerate (any set
    # aliases to the single element equal to its XOR, since in char 2
    # sum(x^2) == (sum x)^2), so it cannot detect its own overload.
    rnd = random.Random(3)
    rec = PartitionedReconciler(capacity=2, m=32, max_depth=1)
    a = set(rnd.sample(range(1, 2 ** 31), 64))
    diff, stats = rec.reconcile_sets(a, set())
    assert stats.failed
    assert stats.unresolved_partitions
    # NOTE: the recovered ids are NOT asserted correct here -- a massively
    # overloaded capacity-2 sketch aliases to a wrong 2-element set with
    # ~50% probability (hence the protocol's min_sketch_capacity of 16).


@given(
    sa=st.sets(st.integers(min_value=1, max_value=2 ** 31), max_size=40),
    sb=st.sets(st.integers(min_value=1, max_value=2 ** 31), max_size=40),
)
@settings(max_examples=25, deadline=None)
def test_partitioned_reconcile_property(sa, sb):
    rec = PartitionedReconciler(capacity=8, m=32)
    diff, stats = rec.reconcile_sets(sa, sb)
    assert diff == sa ^ sb
    assert not stats.failed


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        PartitionedReconciler(capacity=0)
    with pytest.raises(ValueError):
        PartitionedReconciler(capacity=4, max_depth=-1)


def test_stats_bytes_count_remote_sketches():
    rec = PartitionedReconciler(capacity=4, m=32)
    _, stats = rec.reconcile_sets({1, 2}, {3, 4})
    assert stats.bytes_transferred == 4 * 4  # one capacity-4 sketch of 32-bit words
