"""Unit tests for the synthetic Ethereum-like trace generator."""

import random
import statistics

import pytest

from repro.workload import EthereumTraceGenerator


def make_gen(rate=10.0, nodes=20, seed=1, **kwargs):
    return EthereumTraceGenerator(
        num_nodes=nodes, rate_per_s=rate, rng=random.Random(seed), **kwargs
    )


def test_arrival_times_sorted_and_bounded():
    trace = make_gen().generate(30.0)
    times = [t.at_time for t in trace]
    assert times == sorted(times)
    assert all(0 <= t < 30.0 for t in times)


def test_poisson_rate_approximation():
    trace = make_gen(rate=20.0).generate(60.0)
    # Expect ~1200; tolerate 4 sigma.
    assert 1050 <= len(trace) <= 1350


def test_origins_within_nodes():
    trace = make_gen(nodes=7).generate(20.0)
    assert all(0 <= t.origin < 7 for t in trace)
    assert len({t.origin for t in trace}) > 3


def test_fee_distribution_is_heavy_tailed():
    trace = make_gen(rate=50.0).generate(60.0)
    fees = [t.fee for t in trace]
    assert all(f >= 1 for f in fees)
    median = statistics.median(fees)
    p99 = sorted(fees)[int(0.99 * len(fees))]
    assert 10 <= median <= 40          # around the 20-unit median
    assert p99 > 5 * median            # a long upper tail


def test_sizes_cluster_near_mean():
    trace = make_gen(rate=50.0, mean_size_bytes=250).generate(30.0)
    sizes = [t.size_bytes for t in trace]
    assert all(s >= 100 for s in sizes)
    assert 200 <= statistics.median(sizes) <= 300


def test_accounts_are_zipfian():
    gen = make_gen(rate=50.0, num_accounts=100, zipf_exponent=1.2)
    trace = gen.generate(60.0)
    counts = {}
    for t in trace:
        counts[t.sender_account] = counts.get(t.sender_account, 0) + 1
    top = max(counts.values())
    assert top > len(trace) / 20  # popular accounts dominate


def test_deterministic_given_seed():
    a = make_gen(seed=9).generate(10.0)
    b = make_gen(seed=9).generate(10.0)
    assert a == b


def test_invalid_parameters():
    with pytest.raises(ValueError):
        make_gen(rate=0.0)
    with pytest.raises(ValueError):
        EthereumTraceGenerator(0, 1.0, random.Random(0))
    with pytest.raises(ValueError):
        make_gen().generate(0.0)
