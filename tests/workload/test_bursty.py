"""Heavy-traffic generators: MMPP burstiness, hot-key skew, scaled replay."""

import collections
import random
import statistics

from repro.workload import (
    EthereumTraceGenerator,
    HotKeySampler,
    MMPPTraceGenerator,
)


def make_mmpp(seed=1, rate=20.0, **kwargs):
    return MMPPTraceGenerator(
        num_nodes=10, rate_per_s=rate, rng=random.Random(seed), **kwargs
    )


def vmr_of_counts(trace, duration):
    """Variance-to-mean ratio of per-second arrival counts."""
    counts = collections.Counter(int(t.at_time) for t in trace)
    per_second = [counts.get(s, 0) for s in range(int(duration))]
    mean = statistics.mean(per_second)
    return statistics.variance(per_second) / mean


def test_mmpp_same_seed_identical():
    a = make_mmpp(seed=9).generate(60.0)
    b = make_mmpp(seed=9).generate(60.0)
    assert [(t.at_time, t.origin, t.fee, t.size_bytes, t.sender_account)
            for t in a] == \
           [(t.at_time, t.origin, t.fee, t.size_bytes, t.sender_account)
            for t in b]


def test_mmpp_is_overdispersed_vs_poisson():
    duration = 300.0
    bursty = make_mmpp(seed=4, burst_multiplier=10.0).generate(duration)
    poisson = EthereumTraceGenerator(
        num_nodes=10, rate_per_s=20.0, rng=random.Random(4)
    ).generate(duration)
    # A Poisson process has VMR ~1; the MMPP mixture is far above it.
    assert vmr_of_counts(poisson, duration) < 2.0
    assert vmr_of_counts(bursty, duration) > 3.0


def test_mmpp_times_sorted_and_mean_rate_sane():
    gen = make_mmpp(seed=2, rate=10.0, burst_multiplier=8.0,
                    mean_calm_s=8.0, mean_burst_s=2.0)
    trace = gen.generate(200.0)
    times = [t.at_time for t in trace]
    assert times == sorted(times)
    assert all(0 <= t < 200.0 for t in times)
    expected = gen.mean_rate_per_s * 200.0
    assert 0.5 * expected < len(trace) < 1.7 * expected


def test_hot_key_sampler_concentrates_mass():
    rnd = random.Random(11)
    sampler = HotKeySampler(rnd, num_accounts=1000, num_hot=4,
                            hot_fraction=0.7)
    draws = [sampler() for _ in range(20_000)]
    assert all(0 <= a < 1000 for a in draws)
    hot_share = sum(1 for a in draws if a < 4) / len(draws)
    assert 0.65 < hot_share < 0.75
    assert len(set(draws)) > 100  # the cold tail still gets traffic


def test_hot_key_sampler_skews_trace_accounts():
    rnd = random.Random(5)
    gen = MMPPTraceGenerator(
        num_nodes=10, rate_per_s=50.0, rng=rnd,
        account_sampler=HotKeySampler(rnd, num_accounts=1000, num_hot=8,
                                      hot_fraction=0.6),
    )
    trace = gen.generate(120.0)
    hot = sum(1 for t in trace if t.sender_account < 8)
    assert hot / len(trace) > 0.5


def test_replay_scaled_merges_disjoint_account_replicas():
    gen = make_mmpp(seed=6, rate=5.0)
    base = list(gen.replay_scaled(60.0, scale=1))
    scaled = list(make_mmpp(seed=6, rate=5.0).replay_scaled(60.0, scale=3))
    # Same seed, same scale -> byte-identical replay.
    again = list(make_mmpp(seed=6, rate=5.0).replay_scaled(60.0, scale=3))
    assert [(t.at_time, t.sender_account) for t in scaled] == \
           [(t.at_time, t.sender_account) for t in again]
    # Roughly scale x the traffic, merged in time order.
    assert 2 * len(base) < len(scaled) < 4 * len(base)
    times = [t.at_time for t in scaled]
    assert times == sorted(times)
    # Replica i draws accounts from [i*N, (i+1)*N): no cross-replica
    # nonce collisions when the accounts become signing keys.
    num_accounts = gen.num_accounts
    replicas = {t.sender_account // num_accounts for t in scaled}
    assert replicas == {0, 1, 2}
