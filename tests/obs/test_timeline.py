"""Timeline recorder unit + property tests: fixed memory, conserved totals.

The acceptance bar (ISSUE 9): memory stays O(bins) per series no matter
how long the run, counter totals survive every decimation exactly, bin
timestamps stay strictly increasing, and a same-seed simulation exports
a byte-identical ``repro.timeline/1`` file every time.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.metrics.caches import reset_cache_stats
from repro.obs import MetricsRegistry, TimelineRecorder
from repro.obs.timeline import (
    TIMELINE_SCHEMA,
    load_timeline,
    validate_timeline_lines,
)
from repro.sketch.pinsketch import clear_decode_cache, clear_syndrome_cache


# ------------------------------------------------------------------ sampling


def test_counter_series_records_per_bin_deltas():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    recorder = TimelineRecorder(registry=registry, interval_s=1.0, bins=16)
    counter.inc(5)
    recorder.sample(0.0)  # first sighting anchors the baseline: delta 0
    counter.inc(2)
    recorder.sample(1.0)
    counter.inc(7)
    recorder.sample(2.0)
    series = recorder.series("c")
    assert series.kind == "counter"
    assert series.points == [[0.0, 0.0], [1.0, 2.0], [2.0, 7.0]]
    assert series.total() == 9.0  # last cumulative - first cumulative


def test_gauge_series_keeps_last_value_per_bin():
    registry = MetricsRegistry()
    gauge = registry.gauge("g")
    recorder = TimelineRecorder(registry=registry, interval_s=2.0, bins=16)
    gauge.set(1.0)
    recorder.sample(0.0)
    gauge.set(9.0)
    recorder.sample(1.0)  # same 2s bin: last write wins
    gauge.set(4.0)
    recorder.sample(2.0)
    series = recorder.series("g")
    assert series.kind == "gauge"
    assert series.points == [[0.0, 9.0], [2.0, 4.0]]
    assert series.last() == 4.0


def test_record_gauge_bypasses_registry():
    recorder = TimelineRecorder(interval_s=1.0, bins=8)
    recorder.record_gauge("derived.fee", 3.0, 0.25)
    assert recorder.series("derived.fee").points == [[3.0, 0.25]]


def test_constructor_validation():
    with pytest.raises(ValueError):
        TimelineRecorder(interval_s=0.0)
    with pytest.raises(ValueError):
        TimelineRecorder(bins=3)
    with pytest.raises(ValueError):
        TimelineRecorder(bins=12)  # not a power of two


# ---------------------------------------------------------------- decimation


def test_memory_stays_bounded_over_long_runs():
    """10k samples against an 8-bin budget never exceed 8 points."""
    registry = MetricsRegistry()
    counter = registry.counter("c")
    gauge = registry.gauge("g")
    recorder = TimelineRecorder(registry=registry, interval_s=0.5, bins=8)
    for i in range(10_000):
        counter.inc(2)
        gauge.set(float(i))
        recorder.sample(0.5 * i)
        assert all(len(recorder.series(n)) <= 8
                   for n in recorder.series_names())
    # the stride grew by powers of two to cover the horizon
    assert recorder.bin_s / recorder.interval_s == 2 ** 11  # 1024s horizon
    assert recorder.series("c").total() == 2 * 9_999  # baseline excluded
    assert recorder.series("g").last() == 9_999.0


def test_all_series_share_one_stride():
    """Decimation is recorder-wide: a busy series drags every series'
    stride with it so timestamps keep lining up across series."""
    recorder = TimelineRecorder(interval_s=1.0, bins=4)
    recorder.record_gauge("sparse", 0.0, 1.0)
    for i in range(16):
        recorder.record_gauge("busy", float(i), float(i))
    record_strides = {r["bin_s"] for r in recorder.timeline_records()}
    assert record_strides == {recorder.bin_s}
    assert recorder.bin_s == 4.0


# ------------------------------------------------------------------- export


def _sampled_recorder():
    registry = MetricsRegistry()
    counter = registry.counter("events")
    recorder = TimelineRecorder(registry=registry, interval_s=1.0, bins=8)
    for i in range(20):
        counter.inc(i % 3)
        recorder.sample(float(i))
    return recorder


def test_export_validates_and_roundtrips(tmp_path):
    recorder = _sampled_recorder()
    assert validate_timeline_lines(recorder.export_lines()) == []
    path = tmp_path / "t.jsonl"
    written = recorder.export_jsonl(str(path), meta={"seed": 1})
    assert written == len(recorder.series_names())
    meta, records = load_timeline(str(path))
    assert meta == {"seed": 1}
    assert [r["name"] for r in records] == recorder.series_names()
    header = json.loads(path.read_text().splitlines()[0])
    assert header["schema"] == TIMELINE_SCHEMA


def test_csv_export_rows_match_points(tmp_path):
    recorder = _sampled_recorder()
    path = tmp_path / "t.csv"
    rows = recorder.export_csv(str(path))
    lines = path.read_text().splitlines()
    assert lines[0] == "series,kind,bin_s,t,value"
    assert rows == len(lines) - 1
    assert rows == sum(len(r["points"])
                       for r in recorder.timeline_records())


def test_validator_rejects_malformed_lines():
    recorder = _sampled_recorder()
    good = recorder.export_lines()
    assert validate_timeline_lines(["not json"]) != []
    assert any("schema" in e for e in validate_timeline_lines(
        ['{"schema":"wrong/9","meta":{}}']))
    bad_record = json.loads(good[1])
    bad_record["points"] = [[0.0, 1.0], [0.0, 2.0]]  # not increasing
    errors = validate_timeline_lines([good[0], json.dumps(bad_record)])
    assert any("not increasing" in e for e in errors)
    assert validate_timeline_lines([]) == ["timeline is empty (no header line)"]


# --------------------------------------------------------------- properties


@settings(max_examples=50, deadline=None)
@given(
    increments=st.lists(st.integers(min_value=0, max_value=50),
                        min_size=1, max_size=300),
    bins=st.sampled_from([4, 8, 16]),
)
def test_counter_total_conserved_and_timestamps_increase(increments, bins):
    """Across any number of decimations the counter total equals the
    cumulative growth after the baseline sample, and every series' bin
    timestamps stay strictly increasing (the schema invariant)."""
    registry = MetricsRegistry()
    counter = registry.counter("c")
    recorder = TimelineRecorder(registry=registry, interval_s=0.5, bins=bins)
    for i, inc in enumerate(increments):
        counter.inc(inc)
        recorder.sample(0.5 * i)
    series = recorder.series("c")
    assert len(series) <= bins
    assert series.total() == sum(increments[1:])
    timestamps = [t for t, _v in series.points]
    assert timestamps == sorted(set(timestamps))
    assert all(t % recorder.bin_s == 0 for t in timestamps)
    assert validate_timeline_lines(recorder.export_lines()) == []


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=300),
)
def test_gauge_last_value_survives_decimation(values):
    recorder = TimelineRecorder(interval_s=1.0, bins=4)
    for i, value in enumerate(values):
        recorder.record_gauge("g", float(i), value)
    series = recorder.series("g")
    assert len(series) <= 4
    assert series.last() == values[-1]


# ------------------------------------------------------------- determinism


def _timeline_lines(seed):
    """One small admission run under a fresh recorder; returns the export.

    The sketch caches are process-global, so back-to-back in-process runs
    must start them cold for byte-identity (separate processes, as the
    CLI runs, start cold anyway).
    """
    clear_decode_cache()
    clear_syndrome_cache()
    reset_cache_stats()
    recorder = TimelineRecorder(interval_s=0.5, bins=64)
    with obs.use_timeline(recorder):
        sim = LOSimulation(SimulationParams(num_nodes=8, seed=seed))
        sim.inject_workload(rate_per_s=6.0, duration_s=6.0)
        sim.run(10.0)
    return recorder.export_lines(meta={"seed": seed})


def test_same_seed_runs_export_byte_identical_timelines():
    first = _timeline_lines(seed=21)
    second = _timeline_lines(seed=21)
    assert first == second
    assert len(first) > 1  # header + at least one series


def test_different_seeds_export_different_timelines():
    assert _timeline_lines(seed=21) != _timeline_lines(seed=22)
