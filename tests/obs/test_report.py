"""Report helpers and the ``report`` CLI verb (plus ``--trace`` plumbing)."""

import json

import pytest

from repro.cli import main
from repro.obs import Tracer, export_jsonl
from repro.obs.report import (
    cache_rows,
    event_counts,
    fault_detection_rows,
    final_metrics,
    load_trace,
    span_rows,
)


def write_demo_trace(path):
    tracer = Tracer()
    for peer, (start, end) in ((3, (1.0, 2.0)), (4, (2.0, 2.5))):
        span = tracer.begin_span("reconcile.round", t=start, node_id=1,
                                 peer=peer)
        tracer.end_span(span, t=end, outcome="ok")
    tracer.event("chaos.crash", t=3.0, node_id=2)
    tracer.event("acct.suspicion", t=4.0, node_id=1, accused=2,
                 kind="timeout")
    tracer.event("acct.exposure", t=6.0, node_id=1, accused=2,
                 kind="equivocation")
    tracer.registry.counter("caches.decode.hits").inc(9)
    tracer.registry.counter("net.delivered").inc(40)
    tracer.snapshot_metrics(t=7.0)
    export_jsonl(tracer, str(path), meta={"seed": 1, "command": "demo"})
    return path


# ----------------------------------------------------------- pure helpers


def test_load_trace_splits_meta_and_records(tmp_path):
    path = write_demo_trace(tmp_path / "t.jsonl")
    meta, records = load_trace(str(path))
    assert meta == {"seed": 1, "command": "demo"}
    assert len(records) == 6
    assert records[0]["type"] == "span"


def test_load_trace_rejects_non_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("this is not json\n")
    with pytest.raises(ValueError):
        load_trace(str(path))


def test_span_rows_aggregate_and_per_node(tmp_path):
    _, records = load_trace(str(write_demo_trace(tmp_path / "t.jsonl")))
    (row,) = span_rows(records, per_node=False)
    assert row == ("reconcile.round", "*", 2, 1.5, 0.75, 1.0)
    (per_node_row,) = span_rows(records, per_node=True)
    assert per_node_row[:3] == ("reconcile.round", 1, 2)


def test_event_counts(tmp_path):
    _, records = load_trace(str(write_demo_trace(tmp_path / "t.jsonl")))
    assert event_counts(records) == [
        ("acct.exposure", 1), ("acct.suspicion", 1), ("chaos.crash", 1),
    ]


def test_fault_detection_pairs_crash_with_first_detection(tmp_path):
    _, records = load_trace(str(write_demo_trace(tmp_path / "t.jsonl")))
    (row,) = fault_detection_rows(records)
    node, fault, fault_t, suspicion_t, exposure_t, latency = row
    assert (node, fault, fault_t) == (2, "chaos.crash", 3.0)
    assert (suspicion_t, exposure_t) == (4.0, 6.0)
    assert latency == 1.0  # suspicion came first


def test_fault_without_detection_has_none_latency():
    records = [{"type": "event", "t": 2.0, "name": "chaos.crash",
                "node": 5, "attrs": {}}]
    (row,) = fault_detection_rows(records)
    assert row == (5, "chaos.crash", 2.0, None, None, None)


def test_detection_before_fault_is_ignored():
    records = [
        {"type": "event", "t": 5.0, "name": "acct.suspicion", "node": 1,
         "attrs": {"accused": 2}},
        {"type": "event", "t": 9.0, "name": "chaos.crash", "node": 2,
         "attrs": {}},
    ]
    (row,) = fault_detection_rows(records)
    assert row[3] is None  # the t=5 suspicion predates the t=9 fault


def test_final_metrics_and_cache_rows(tmp_path):
    _, records = load_trace(str(write_demo_trace(tmp_path / "t.jsonl")))
    metrics = final_metrics(records)
    assert metrics["t"] == 7.0
    assert cache_rows(metrics) == [("caches.decode.hits", 9)]
    assert final_metrics([]) is None


# -------------------------------------------------------------- CLI verb


def test_report_command(tmp_path, capsys):
    path = write_demo_trace(tmp_path / "t.jsonl")
    code = main(["report", str(path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "reconcile.round" in out
    assert "fault -> detection latency" in out
    assert "chaos.crash" in out
    assert "caches.decode.hits" in out


def test_report_command_rejects_invalid_trace(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"schema": "bogus/9"}\n{"type": "mystery"}\n')
    code = main(["report", str(path)])
    assert code == 1
    err = capsys.readouterr().err
    assert "schema error" in err


def test_run_command_with_trace_export(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    chrome = tmp_path / "run.chrome.json"
    out_json = tmp_path / "run.json"
    code = main(["run", "--nodes", "8", "--rate", "3", "--duration", "4",
                 "--drain", "4", "--trace", str(trace),
                 "--trace-chrome", str(chrome), "--trace-sample", "10",
                 "--json", str(out_json)])
    assert code == 0
    assert "trace written" in capsys.readouterr().out

    header = json.loads(trace.read_text().splitlines()[0])
    assert header["schema"] == "repro.trace/1"
    assert header["meta"]["command"] == "run"
    assert json.loads(chrome.read_text())["traceEvents"]

    # satellite: run --json now surfaces drops, violations and metrics
    result = json.loads(out_json.read_text())["result"]
    assert set(result) >= {"drop_breakdown", "wire_violation_totals",
                           "metrics"}
    assert "counters" in result["metrics"]

    # the report verb digests the freshly written trace
    code = main(["report", str(trace)])
    assert code == 0
    assert "span durations" in capsys.readouterr().out


def test_trace_flag_leaves_null_tracer_installed(tmp_path):
    from repro import obs

    main(["run", "--nodes", "6", "--rate", "2", "--duration", "3",
          "--drain", "3", "--trace", str(tmp_path / "t.jsonl")])
    assert obs.TRACER.enabled is False
