"""Phase profiler tests: attribution maths, classification, integration.

The profiler reads the wall clock, so unit tests inject a fake clock for
exact attribution; the integration tests only assert structure (which
phases appear) and the contract that profiling never changes simulation
results.
"""

import pytest

from repro import obs
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.obs import PhaseProfiler
from repro.obs.phases import CLASSIFY_RULES, OTHER_PHASE, classify_callback


class FakeClock:
    """A manually advanced perf counter."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        """Move time forward by ``dt`` seconds."""
        self.now += dt


# ---------------------------------------------------------------- attribution


def test_flat_phase_accumulates_self_and_inclusive():
    clock = FakeClock()
    profiler = PhaseProfiler(clock=clock)
    for _ in range(3):
        profiler.enter("net")
        clock.advance(2.0)
        profiler.exit()
    assert profiler.calls["net"] == 3
    assert profiler.self_s["net"] == 6.0
    assert profiler.incl_s["net"] == 6.0


def test_nested_child_time_excluded_from_parent_self():
    clock = FakeClock()
    profiler = PhaseProfiler(clock=clock)
    profiler.enter("net")
    clock.advance(1.0)
    profiler.enter("crypto")
    clock.advance(3.0)
    profiler.exit()
    clock.advance(1.0)
    profiler.exit()
    assert profiler.self_s["net"] == 2.0  # 5 elapsed - 3 child
    assert profiler.incl_s["net"] == 5.0
    assert profiler.self_s["crypto"] == 3.0
    assert profiler.incl_s["crypto"] == 3.0


def test_reentrant_phase_charges_inclusive_once():
    """crypto inside crypto: self time counts both frames, inclusive only
    the outermost, so totals never double-count."""
    clock = FakeClock()
    profiler = PhaseProfiler(clock=clock)
    profiler.enter("crypto")
    clock.advance(1.0)
    profiler.enter("crypto")
    clock.advance(2.0)
    profiler.exit()
    clock.advance(1.0)
    profiler.exit()
    assert profiler.self_s["crypto"] == 4.0
    assert profiler.incl_s["crypto"] == 4.0  # once, not 4 + 2
    assert profiler.calls["crypto"] == 2


def test_rows_sorted_by_self_time_and_fractions_sum_to_one():
    clock = FakeClock()
    profiler = PhaseProfiler(clock=clock)
    for phase, dt in (("net", 6.0), ("crypto", 3.0), ("mempool", 1.0)):
        profiler.enter(phase)
        clock.advance(dt)
        profiler.exit()
    rows = profiler.rows()
    assert [row[0] for row in rows] == ["net", "crypto", "mempool"]
    assert sum(row[4] for row in rows) == pytest.approx(1.0)
    as_dict = profiler.as_dict()
    assert as_dict["net"]["self_s"] == 6.0
    assert as_dict["net"]["self_fraction"] == 0.6


# -------------------------------------------------------------- classification


def test_classify_callback_by_qualname():
    class Network:
        def _deliver(self):
            """Stub resembling the real delivery callback."""

    def _sync_tick():
        pass

    def unknown():
        pass

    assert classify_callback(Network()._deliver) == "net"
    assert classify_callback(_sync_tick) == "reconcile"
    assert classify_callback(unknown) == OTHER_PHASE
    assert classify_callback(lambda: None) == OTHER_PHASE


def test_classify_is_cached_per_function():
    profiler = PhaseProfiler()

    class Network:
        def _deliver(self):
            """Stub resembling the real delivery callback."""

    a, b = Network(), Network()
    assert profiler.classify(a._deliver) == "net"
    assert profiler.classify(b._deliver) == "net"
    # two bound methods, one underlying function, one cache entry
    assert len(profiler._classify_cache) == 1


def test_classification_rules_cover_telemetry_ticks():
    rules = dict(CLASSIFY_RULES)
    assert rules["telemetry_tick"] == "telemetry"
    assert rules["snapshot_tick"] == "telemetry"


# ----------------------------------------------------------------- integration


def _run(seed=11, profiler=None):
    if profiler is not None:
        ctx = obs.use_profiler(profiler)
    else:
        import contextlib

        ctx = contextlib.nullcontext()
    with ctx:
        sim = LOSimulation(SimulationParams(num_nodes=8, seed=seed))
        sim.inject_workload(rate_per_s=6.0, duration_s=4.0)
        sim.run(8.0)
    return {
        "events": sim.loop.processed_events,
        "delivered": sim.network.delivered_messages,
        "latencies": sim.mempool_tracker.all_latencies(),
    }


def test_profiled_sim_attributes_expected_phases():
    profiler = PhaseProfiler()
    _run(profiler=profiler)
    phases = set(profiler.self_s)
    assert {"net", "reconcile", "workload", "crypto"} <= phases
    assert all(t >= 0.0 for t in profiler.self_s.values())
    assert profiler._stack == []  # every enter() found its exit()
    # crypto nests inside loop phases: inclusive >= self for its parents
    for phase in phases:
        assert profiler.incl_s[phase] >= 0.0


def test_profiling_does_not_change_simulation_results():
    baseline = _run()
    profiled = _run(profiler=PhaseProfiler())
    assert baseline == profiled
    assert baseline["events"] > 0
