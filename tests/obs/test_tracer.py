"""Tracer and registry unit tests: no-op cost, spans, sampling, snapshots."""

import pytest

from repro import obs
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
)


# ------------------------------------------------------------------ tracer


def test_null_tracer_is_disabled_and_inert():
    tracer = NullTracer()
    assert tracer.enabled is False
    assert tracer.registry is None
    tracer.event("x", t=1.0, node_id=2, detail="y")
    span = tracer.begin_span("x", t=1.0)
    assert span is None
    tracer.end_span(span, t=2.0)
    tracer.message_event("net.send", 0.0, "tx", 1, 2, 100)
    tracer.snapshot_metrics(0.0)  # all no-ops, nothing to assert


def test_default_tracer_is_null():
    assert obs.get_tracer() is NULL_TRACER
    assert obs.TRACER.enabled is False


def test_event_record_shape():
    tracer = Tracer()
    tracer.event("acct.suspicion", t=3.5, node_id=7, accused=2, kind="timeout")
    (record,) = tracer.records
    assert record == {
        "type": "event",
        "t": 3.5,
        "name": "acct.suspicion",
        "node": 7,
        "attrs": {"accused": 2, "kind": "timeout"},
    }


def test_span_lifecycle_and_attr_merge():
    tracer = Tracer()
    parent = tracer.begin_span("outer", t=1.0, node_id=0)
    child = tracer.begin_span("inner", t=1.5, node_id=0, parent=parent,
                              peer=3)
    assert tracer.open_spans == 2
    assert tracer.records == []  # nothing recorded until close
    tracer.end_span(child, t=2.0, outcome="ok")
    tracer.end_span(parent, t=4.0)
    assert tracer.open_spans == 0
    inner, outer = tracer.records
    assert inner["name"] == "inner"
    assert inner["parent_id"] == outer["span_id"]
    assert inner["attrs"] == {"peer": 3, "outcome": "ok"}
    assert inner["t_end"] - inner["t_start"] == pytest.approx(0.5)
    assert outer["parent_id"] is None


def test_end_span_is_idempotent_and_none_tolerant():
    tracer = Tracer()
    span = tracer.begin_span("s", t=0.0)
    tracer.end_span(span, t=1.0)
    tracer.end_span(span, t=9.0, late="ignored")
    tracer.end_span(None, t=2.0)
    assert len(tracer.records) == 1
    assert tracer.records[0]["t_end"] == 1.0
    assert "late" not in tracer.records[0]["attrs"]


def test_unclosed_spans_never_recorded():
    tracer = Tracer()
    tracer.begin_span("open", t=0.0)
    assert tracer.open_spans == 1
    assert tracer.spans_named("open") == []


def test_message_sampling_keeps_first_and_every_nth():
    tracer = Tracer(sample_every=3)
    for i in range(7):
        tracer.message_event("net.send", float(i), "tx", 1, 2, 100)
    kept = [r["attrs"]["nth"] for r in tracer.events_named("net.send")]
    assert kept == [0, 3, 6]


def test_message_sampling_is_per_kind_and_type():
    tracer = Tracer(sample_every=2)
    tracer.message_event("net.send", 0.0, "tx", 1, 2, 10)
    tracer.message_event("net.send", 0.0, "sync_req", 1, 2, 10)
    tracer.message_event("net.deliver", 0.0, "tx", 1, 2, 10)
    # three distinct (kind, type) streams, each keeps its first message
    assert len(tracer.records) == 3


def test_sample_every_validation():
    with pytest.raises(ValueError):
        Tracer(sample_every=0)
    with pytest.raises(ValueError):
        Tracer(snapshot_interval_s=0.0)


def test_use_tracer_restores_previous():
    assert obs.TRACER is NULL_TRACER
    with obs.use_tracer(Tracer()) as tracer:
        assert obs.TRACER is tracer
        with obs.use_tracer(Tracer()) as inner:
            assert obs.TRACER is inner
        assert obs.TRACER is tracer
    assert obs.TRACER is NULL_TRACER


def test_set_and_clear_tracer():
    tracer = Tracer()
    obs.set_tracer(tracer)
    try:
        assert obs.get_tracer() is tracer
    finally:
        obs.clear_tracer()
    assert obs.get_tracer() is NULL_TRACER


# ---------------------------------------------------------------- registry


def test_counter_gauge_histogram_instruments():
    reg = MetricsRegistry()
    reg.counter("hits").inc()
    reg.counter("hits").inc(4)
    reg.gauge("depth").set(2.5)
    hist = reg.histogram("sizes")
    for value in (3, 1, 2):
        hist.observe(value)
    snap = reg.snapshot()
    assert snap["counters"]["hits"] == 5
    assert snap["gauges"]["depth"] == 2.5
    assert snap["histograms"]["sizes"] == {
        "count": 3, "total": 6.0, "mean": 2.0, "min": 1.0, "max": 3.0,
    }


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1)


def test_collectors_merge_under_prefix_and_skip_non_numeric():
    reg = MetricsRegistry()
    reg.register_collector("net", lambda: {"bytes": 128, "name": "eth0",
                                           "up": True})
    counters = reg.snapshot()["counters"]
    assert counters == {"net.bytes": 128}  # str and bool skipped


def test_collector_reregistration_replaces():
    reg = MetricsRegistry()
    reg.register_collector("sim", lambda: {"txs": 1})
    reg.register_collector("sim", lambda: {"txs": 99})
    assert reg.snapshot()["counters"] == {"sim.txs": 99}
    reg.unregister_collector("sim")
    reg.unregister_collector("missing")  # ignored
    assert reg.snapshot()["counters"] == {}


def test_snapshot_keys_sorted():
    reg = MetricsRegistry()
    reg.counter("z").inc()
    reg.counter("a").inc()
    reg.register_collector("m", lambda: {"k": 1})
    assert list(reg.snapshot()["counters"]) == ["a", "m.k", "z"]


def test_tracer_snapshot_records_registry_state():
    tracer = Tracer()
    tracer.registry.counter("hits").inc(2)
    tracer.snapshot_metrics(t=5.0)
    (record,) = tracer.records
    assert record["type"] == "metrics"
    assert record["t"] == 5.0
    assert record["counters"]["hits"] == 2


def test_registry_reset():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.register_collector("x", lambda: {"k": 1})
    reg.reset()
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
