"""Steady-state detection: window maths, monitor verdicts, early stop.

The monitor must say "steady" for a converged soak and keep saying "not
yet" for a drifting one, and ``LOSimulation.run_until_steady`` must stop
a converging admission run strictly before its horizon -- at the same
simulated time on every same-seed run.
"""

import pytest

from repro import obs
from repro.core.config import AdmissionConfig, LOConfig
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.obs import SteadyStateMonitor, TimelineRecorder
from repro.obs.steady import DEFAULT_STEADY_SERIES, window_is_steady


# ------------------------------------------------------------- window maths


def test_window_is_steady_relative_band():
    assert window_is_steady([100.0, 102.0, 99.0], rel_tol=0.05)
    assert not window_is_steady([100.0, 120.0, 99.0], rel_tol=0.05)


def test_window_is_steady_edge_cases():
    assert not window_is_steady([])
    assert window_is_steady([5.0])
    assert window_is_steady([0.0, 0.0, 0.0])  # all-zero: spread <= abs_tol
    # tiny jitter around zero passes only via abs_tol
    assert window_is_steady([0.0, 1e-12], rel_tol=0.0, abs_tol=1e-9)
    assert not window_is_steady([0.0, 1.0], rel_tol=0.0, abs_tol=1e-9)


# ---------------------------------------------------------------- monitor


def _gauge_timeline(values, name="g", interval_s=1.0):
    recorder = TimelineRecorder(interval_s=interval_s, bins=64)
    for i, value in enumerate(values):
        recorder.record_gauge(name, interval_s * i, value)
    return recorder


def test_monitor_not_steady_until_window_fills():
    recorder = _gauge_timeline([5.0] * 4)
    monitor = SteadyStateMonitor(recorder, series=("g",), window_bins=4)
    # 4 points = window + still-filling bin not yet available
    assert monitor.window_values("g") == []
    assert not monitor.check()
    status = monitor.status()
    assert status["series"]["g"] == {"eligible": False, "steady": False}


def test_monitor_converging_gauge_goes_steady():
    values = [100.0, 60.0, 30.0, 20.0] + [10.0] * 6
    recorder = _gauge_timeline(values)
    monitor = SteadyStateMonitor(recorder, series=("g",), window_bins=4)
    assert monitor.check()
    assert monitor.status()["steady"] is True


def test_monitor_drifting_gauge_stays_unsteady():
    values = [float(10 * i) for i in range(10)]  # linear climb
    recorder = _gauge_timeline(values)
    monitor = SteadyStateMonitor(recorder, series=("g",), window_bins=4)
    assert not monitor.check()
    assert monitor.status()["series"]["g"] == {"eligible": True,
                                               "steady": False}


def test_monitor_excludes_still_filling_bin():
    """A spike in the newest bin must not flip the verdict: that bin is
    still filling and is excluded from the judged window."""
    recorder = _gauge_timeline([10.0] * 8 + [500.0])
    monitor = SteadyStateMonitor(recorder, series=("g",), window_bins=4)
    assert monitor.window_values("g") == [10.0] * 4
    assert monitor.check()


def test_monitor_judges_counters_as_rates():
    """A counter growing at a constant rate is steady; an accelerating
    one is not."""
    from repro.obs import MetricsRegistry

    for deltas, expected in (
        ([7.0] * 10, True),
        ([float(2 ** i) for i in range(10)], False),
    ):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        recorder = TimelineRecorder(registry=registry, interval_s=1.0,
                                    bins=64)
        for i, delta in enumerate(deltas):
            counter.inc(delta)
            recorder.sample(float(i))
        monitor = SteadyStateMonitor(recorder, series=("c",), window_bins=4)
        assert monitor.check() is expected, deltas


def test_monitor_never_recorded_series_blocks_steady():
    recorder = _gauge_timeline([1.0] * 10, name="present")
    monitor = SteadyStateMonitor(recorder, series=("present", "absent"),
                                 window_bins=4)
    assert not monitor.check()
    assert monitor.status()["series"]["absent"]["eligible"] is False


def test_monitor_validation():
    recorder = TimelineRecorder()
    with pytest.raises(ValueError):
        SteadyStateMonitor(recorder, window_bins=1)
    with pytest.raises(ValueError):
        SteadyStateMonitor(recorder, rel_tol=-0.1)
    with pytest.raises(ValueError):
        SteadyStateMonitor(recorder, series=())
    assert SteadyStateMonitor(recorder).series == DEFAULT_STEADY_SERIES


# ------------------------------------------------------------ harness stop


def _steady_soak(seed=7):
    recorder = TimelineRecorder(interval_s=0.5, bins=256)
    with obs.use_timeline(recorder):
        sim = LOSimulation(SimulationParams(
            num_nodes=8, seed=seed,
            config=LOConfig(admission=AdmissionConfig()),
        ))
        sim.inject_workload(rate_per_s=6.0, duration_s=60.0)
        outcome = sim.run_until_steady(80.0)
    return outcome


def test_run_until_steady_stops_converging_soak_before_horizon():
    outcome = _steady_soak()
    assert outcome["steady"] is True
    assert outcome["steady_at"] is not None
    assert outcome["t"] < outcome["horizon"] == 80.0


def test_run_until_steady_is_deterministic():
    assert _steady_soak() == _steady_soak()


def test_run_until_steady_requires_timeline():
    sim = LOSimulation(SimulationParams(num_nodes=4, seed=1))
    with pytest.raises(ValueError):
        sim.run_until_steady(10.0)


def test_run_until_steady_unsteady_run_reaches_horizon():
    """A drifting watched series keeps the run going to the horizon."""
    recorder = TimelineRecorder(interval_s=0.5, bins=256)
    with obs.use_timeline(recorder):
        sim = LOSimulation(SimulationParams(num_nodes=6, seed=3))
        sim.inject_workload(rate_per_s=4.0, duration_s=8.0)
        monitor = SteadyStateMonitor(recorder, series=("never.recorded",))
        outcome = sim.run_until_steady(8.0, monitor=monitor)
    assert outcome["steady"] is False
    assert outcome["steady_at"] is None
    assert outcome["t"] == outcome["horizon"] == 8.0
