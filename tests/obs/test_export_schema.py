"""Exporter and schema-validator tests (JSONL determinism, Chrome format)."""

import json

from repro.obs import (
    Tracer,
    chrome_trace,
    export_chrome,
    export_jsonl,
    trace_lines,
    validate_trace_file,
    validate_trace_lines,
)


def make_tracer():
    tracer = Tracer()
    tracer.event("chaos.drop", t=0.5, node_id=1, msg_type="tx")
    span = tracer.begin_span("reconcile.round", t=1.0, node_id=2, peer=3)
    tracer.end_span(span, t=2.0, outcome="ok")
    tracer.registry.counter("hits").inc(7)
    tracer.snapshot_metrics(t=3.0)
    return tracer


# ----------------------------------------------------------------- JSONL


def test_trace_lines_header_first():
    lines = trace_lines(make_tracer(), meta={"seed": 7})
    header = json.loads(lines[0])
    assert header == {"schema": "repro.trace/1", "meta": {"seed": 7}}
    assert len(lines) == 4  # header + event + span + metrics


def test_export_jsonl_roundtrip_and_validation(tmp_path):
    path = tmp_path / "t.jsonl"
    count = export_jsonl(make_tracer(), str(path), meta={"seed": 7})
    assert count == 3
    assert validate_trace_file(str(path)) == []


def test_export_is_byte_deterministic(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    export_jsonl(make_tracer(), str(a), meta={"seed": 7})
    export_jsonl(make_tracer(), str(b), meta={"seed": 7})
    assert a.read_bytes() == b.read_bytes()


# ------------------------------------------------------------- validator


def test_validator_accepts_valid_lines():
    assert validate_trace_lines(trace_lines(make_tracer())) == []


def test_validator_rejects_empty_trace():
    errors = validate_trace_lines([])
    assert errors == ["trace is empty (no header line)"]


def test_validator_flags_bad_header():
    errors = validate_trace_lines(['{"schema": "bogus/9"}'])
    assert any("header schema" in e for e in errors)
    assert any("meta" in e for e in errors)


def test_validator_flags_malformed_records():
    lines = [
        '{"schema": "repro.trace/1", "meta": {}}',
        "not json at all",
        '{"type": "event", "name": "", "node": "x"}',
        '{"type": "span", "name": "s", "t_start": 5.0, "t_end": 1.0,'
        ' "span_id": 1, "parent_id": null, "node": null, "attrs": {}}',
        '{"type": "metrics", "t": 0.0, "counters": {"k": "NaNish"},'
        ' "gauges": {}, "histograms": {}}',
        '{"type": "mystery"}',
    ]
    errors = validate_trace_lines(lines)
    assert any("not valid JSON" in e for e in errors)
    assert any("non-empty 'name'" in e for e in errors)
    assert any("ends before it starts" in e for e in errors)
    assert any("not numeric" in e for e in errors)
    assert any("unknown record type" in e for e in errors)


# --------------------------------------------------------------- chrome


def test_chrome_trace_structure():
    payload = chrome_trace(make_tracer(), meta={"seed": 7})
    assert payload["displayTimeUnit"] == "ms"
    assert payload["otherData"]["schema"] == "repro.trace/1"
    events = payload["traceEvents"]
    phases = [e["ph"] for e in events]
    assert phases == ["i", "X", "C"]
    instant, complete, counter = events
    assert instant["ts"] == 0.5e6 and instant["tid"] == 1
    assert complete["ts"] == 1.0e6 and complete["dur"] == 1.0e6
    assert complete["args"]["outcome"] == "ok"
    assert counter["args"] == {"hits": 7}


def test_export_chrome_is_loadable_json(tmp_path):
    path = tmp_path / "t.chrome.json"
    count = export_chrome(make_tracer(), str(path))
    payload = json.loads(path.read_text())
    assert count == len(payload["traceEvents"]) == 3
