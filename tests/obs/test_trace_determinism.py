"""Trace regression tests on a real simulation: determinism + coverage.

Acceptance (ISSUE 4): a seeded chaos scenario traced twice yields
byte-identical ``repro.trace/1`` JSONL, the trace validates against the
schema, and it contains at least one reconciliation span, one
chaos/fault event, and one accountability event.
"""

import json

from repro import obs
from repro.attacks import make_censor_factory
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.net.chaos import ChaosPlan, CrashWindow
from repro.net.latency import ConstantLatencyModel
from repro.metrics.caches import reset_cache_stats
from repro.obs import Tracer, export_jsonl, validate_trace_file
from repro.sketch.pinsketch import clear_decode_cache, clear_syndrome_cache

PLAN = ChaosPlan(
    seed=5,
    drop_rate=0.05,
    duplicate_rate=0.05,
    crash_windows=(CrashWindow(4, 3.0, 8.0),),
)


def run_traced(tmp_path, name, sample_every=4):
    """One seeded chaos + equivocator run; returns the JSONL path.

    The sketch caches are process-global, so back-to-back in-process runs
    must start them cold for byte-identity (separate processes, as the
    CLI runs, start cold anyway).
    """
    clear_syndrome_cache()
    clear_decode_cache()
    reset_cache_stats()
    tracer = Tracer(sample_every=sample_every, snapshot_interval_s=5.0)
    with obs.use_tracer(tracer):
        sim = LOSimulation(
            SimulationParams(
                num_nodes=10,
                seed=11,
                malicious_ids=[0],
                attacker_factory=make_censor_factory(
                    {0}, ignore_sync=True, drop_blames=True, equivocate=True
                ),
                latency_model=ConstantLatencyModel(0.05),
                chaos_plan=PLAN,
            )
        )
        sim.inject_workload(rate_per_s=4.0, duration_s=10.0)
        sim.run(20.0)
    path = tmp_path / name
    export_jsonl(tracer, str(path), meta={"seed": 11})
    return path


def test_traced_chaos_run_is_byte_identical(tmp_path):
    a = run_traced(tmp_path, "a.jsonl")
    b = run_traced(tmp_path, "b.jsonl")
    assert a.read_bytes() == b.read_bytes()


def test_trace_validates_and_covers_required_records(tmp_path):
    path = run_traced(tmp_path, "t.jsonl")
    assert validate_trace_file(str(path)) == []

    records = [json.loads(line) for line in path.read_text().splitlines()[1:]]
    spans = {r["name"] for r in records if r["type"] == "span"}
    events = {r["name"] for r in records if r["type"] == "event"}

    assert "reconcile.round" in spans
    assert "sim.run" in spans
    # chaos / fault events
    assert events & {"chaos.drop", "chaos.duplicate", "chaos.crash",
                     "net.drop"}
    assert "chaos.crash" in events  # the scripted crash window
    # accountability events
    assert events & {"acct.suspicion", "acct.equivocation", "acct.exposure"}

    # every reconciliation round closed with an outcome attribute
    rounds = [r for r in records
              if r["type"] == "span" and r["name"] == "reconcile.round"]
    assert rounds and all("outcome" in r["attrs"] for r in rounds)

    # periodic metrics snapshots made it in, carrying absorbed namespaces
    metrics = [r for r in records if r["type"] == "metrics"]
    assert metrics
    final = metrics[-1]["counters"]
    assert any(k.startswith("net.") for k in final)
    assert any(k.startswith("chaos.") for k in final)
    assert any(k.startswith("caches.") for k in final)


def test_tracing_off_leaves_no_records(tmp_path):
    assert obs.TRACER.enabled is False
    sim = LOSimulation(SimulationParams(num_nodes=6, seed=3))
    sim.inject_workload(rate_per_s=3.0, duration_s=3.0)
    sim.run(6.0)
    # a tracer installed *afterwards* observes nothing from that run
    tracer = Tracer()
    assert tracer.records == []
