"""``report`` hardening: empty and fault-free traces render explicit notes.

Regression tests for the failure mode where a sparse trace (no spans, no
faults, no metrics snapshots) made ``report`` print half-empty tables or
nothing at all.  Every absent section must say so explicitly, and the
command must still exit 0 -- an empty trace is a valid trace.
"""

import json

from repro import obs
from repro.cli import main
from repro.obs import Tracer, export_jsonl
from repro.obs.timeline import TimelineRecorder


def _write_trace(path, tracer, meta=None):
    export_jsonl(tracer, str(path), meta=meta)
    return str(path)


def test_report_on_completely_empty_trace(tmp_path, capsys):
    path = _write_trace(tmp_path / "empty.jsonl", Tracer())
    assert main(["report", path]) == 0
    out = capsys.readouterr().out
    assert "0 records" in out
    assert "no spans recorded" in out
    assert "no events recorded" in out
    assert "no faults recorded" in out
    assert "no metrics snapshots recorded" in out


def test_report_on_fault_free_trace_names_the_absent_faults(tmp_path, capsys):
    tracer = Tracer()
    span = tracer.begin_span("sim.run", t=0.0)
    tracer.event("net.send.sampled", t=1.0, node_id=0)
    tracer.end_span(span, t=2.0)
    path = _write_trace(tmp_path / "clean.jsonl", tracer)
    assert main(["report", path]) == 0
    out = capsys.readouterr().out
    assert "sim.run" in out  # the span table rendered
    assert "no faults recorded (no chaos crashes, equivocations or" in out
    # the note explains *what kind* of faults would have appeared
    assert "block-policy violations" in out


def test_report_timeline_flag_on_trace_without_timeline(tmp_path, capsys):
    path = _write_trace(tmp_path / "t.jsonl", Tracer())
    assert main(["report", path, "--timeline"]) == 0
    assert "no timeline series recorded" in capsys.readouterr().out


def test_report_timeline_flag_renders_embedded_series(tmp_path, capsys):
    tracer = Tracer()
    timeline = TimelineRecorder(interval_s=1.0, bins=8)
    counter = timeline.registry.counter("demo.events")
    with obs.use_tracer(tracer), obs.use_timeline(timeline):
        for i in range(6):
            counter.inc(2)
            timeline.sample(float(i))
    path = tmp_path / "t.jsonl"
    export_jsonl(tracer, str(path), timeline=timeline)
    assert main(["report", str(path), "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "demo.events" in out
    assert "counter" in out


def test_report_standalone_timeline_export(tmp_path, capsys):
    timeline = TimelineRecorder(interval_s=1.0, bins=8)
    timeline.record_gauge("pool.depth", 0.0, 3.0)
    timeline.record_gauge("pool.depth", 1.0, 4.0)
    path = tmp_path / "timeline.jsonl"
    timeline.export_jsonl(str(path), meta={"seed": 5})
    assert main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "repro.timeline/1" in out
    assert "pool.depth" in out
    assert "gauge" in out


def test_report_rejects_malformed_timeline_export(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    lines = [
        json.dumps({"schema": "repro.timeline/1", "meta": {}}),
        json.dumps({"type": "timeline", "name": "x", "kind": "nope",
                    "bin_s": 1.0, "points": []}),
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    assert main(["report", str(path)]) == 1
    assert "schema error" in capsys.readouterr().err
