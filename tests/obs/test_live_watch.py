"""Live telemetry sink + ``watch`` verb tests (injected clocks, tmp dirs).

The sink's contract: readers never observe a torn document (atomic
replace), flushes are wall-clock throttled, and ``python -m repro watch``
renders either a telemetry directory or a sweep spool without disturbing
the writer.
"""

import json
import os

import pytest

from repro.cli import main
from repro.obs.live import (
    TELEMETRY_FILE,
    TELEMETRY_SCHEMA,
    TelemetrySink,
    detect_watch_target,
    read_telemetry,
    spool_is_finished,
    spool_watch_rows,
    telemetry_is_finished,
    telemetry_rows,
    write_atomic_json,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        """Move time forward by ``dt`` seconds."""
        self.now += dt


# -------------------------------------------------------------------- sink


def test_write_atomic_json_leaves_no_temp_files(tmp_path):
    path = tmp_path / "doc.json"
    write_atomic_json(str(path), {"a": 1})
    assert json.loads(path.read_text()) == {"a": 1}
    assert os.listdir(tmp_path) == ["doc.json"]  # temp file replaced away


def test_sink_flush_publishes_schema_tagged_document(tmp_path):
    sink = TelemetrySink(str(tmp_path))
    sink.flush({"t": 4.0})
    doc = read_telemetry(str(tmp_path))
    assert doc["schema"] == TELEMETRY_SCHEMA
    assert doc["t"] == 4.0
    assert doc["updated_unix"] > 0
    assert sink.flushes == 1


def test_sink_maybe_flush_throttles_on_wall_clock(tmp_path):
    clock = FakeClock()
    sink = TelemetrySink(str(tmp_path), flush_wall_s=1.0, clock=clock)
    built = []

    def payload():
        built.append(True)
        return {"t": clock.now}

    assert sink.maybe_flush(payload)        # first flush always happens
    assert not sink.maybe_flush(payload)    # throttled
    clock.advance(0.5)
    assert not sink.maybe_flush(payload)
    clock.advance(0.6)
    assert sink.maybe_flush(payload)
    assert sink.flushes == 2
    assert len(built) == 2  # payload_fn not invoked on throttled calls


def test_sink_validation(tmp_path):
    with pytest.raises(ValueError):
        TelemetrySink(str(tmp_path), flush_wall_s=0.0)


# ----------------------------------------------------------------- reading


def test_read_telemetry_absent_and_garbled(tmp_path):
    assert read_telemetry(str(tmp_path)) is None
    garbled = tmp_path / TELEMETRY_FILE
    garbled.write_text("{not json", encoding="utf-8")
    assert read_telemetry(str(tmp_path)) is None  # mid-replace torn read


def test_detect_watch_target(tmp_path):
    assert detect_watch_target(str(tmp_path)) == ""
    spool = tmp_path / "spool"
    spool.mkdir()
    (spool / "manifest.json").write_text("{}")
    assert detect_watch_target(str(spool)) == "spool"
    tele = tmp_path / "tele"
    TelemetrySink(str(tele)).flush({"t": 0.0})
    assert detect_watch_target(str(tele)) == "telemetry"
    assert detect_watch_target(str(tele / TELEMETRY_FILE)) == "telemetry"
    assert detect_watch_target(str(tmp_path / "nope")) == ""


def test_telemetry_rows_and_finished():
    doc = {
        "t": 40.0, "horizon": 80.0, "events_processed": 1234,
        "events_per_wall_s": 5000.0, "done": False,
        "steady": {"steady": False,
                   "series": {"g": {"eligible": True, "steady": False}}},
        "series_last": {"g": 5.5},
    }
    rows = dict(telemetry_rows(doc))
    assert rows["sim time (s)"] == "40.00  (50% of horizon)"
    assert rows["events processed"] == 1234
    assert rows["steady"] == "not yet"
    assert rows["  g"] == "drifting"
    assert rows["last g"] == "5.5"
    assert rows["done"] == "running"
    assert not telemetry_is_finished(doc)
    assert telemetry_is_finished({"done": True})


def test_spool_rows_and_finished():
    status = {"tasks_total": 8, "completed": 8, "pending": 0, "leased": 0,
              "parked": 0, "attempts": 9, "reclaims": 1}
    rows = dict(spool_watch_rows(status))
    assert rows["completed"] == "8  (100%)"
    assert spool_is_finished(status)
    assert not spool_is_finished({"pending": 2, "leased": 0})
    assert not spool_is_finished({"pending": 0, "leased": 1})


# ----------------------------------------------------------------- watch verb


def test_watch_once_on_telemetry_dir(tmp_path, capsys):
    sink = TelemetrySink(str(tmp_path))
    sink.flush({"t": 12.0, "horizon": 24.0, "events_processed": 99,
                "done": False})
    code = main(["watch", str(tmp_path), "--once"])
    assert code == 0
    out = capsys.readouterr().out
    assert "watch telemetry" in out
    assert "12.00" in out
    assert "99" in out


def test_watch_once_on_spool_dir(tmp_path, capsys):
    # a real (tiny) spool, produced by the sweep CLI itself
    spool = tmp_path / "spool"
    code = main([
        "sweep", "run", "--param", "num_nodes=6", "--param", "rate_per_s=2.0",
        "--param", "duration_s=1.0", "--param", "drain_s=1.0",
        "--repetitions", "1", "--workers", "1", "--spool", str(spool),
    ])
    assert code == 0
    capsys.readouterr()
    code = main(["watch", str(spool), "--once"])
    assert code == 0
    out = capsys.readouterr().out
    assert "watch spool" in out
    assert "completed" in out


def test_watch_once_unknown_target_fails(tmp_path, capsys):
    code = main(["watch", str(tmp_path / "missing"), "--once"])
    assert code == 2
    assert "no telemetry.json or spool manifest.json" in \
        capsys.readouterr().err


def test_run_telemetry_dir_end_to_end(tmp_path, capsys):
    """``run --telemetry-dir`` publishes a final done=True document that
    ``watch --once`` then renders."""
    code = main(["run", "--nodes", "6", "--rate", "3", "--duration", "3",
                 "--drain", "2", "--telemetry-dir", str(tmp_path)])
    assert code == 0
    doc = read_telemetry(str(tmp_path))
    assert doc["done"] is True
    assert doc["events_processed"] > 0
    assert telemetry_is_finished(doc)
    capsys.readouterr()
    assert main(["watch", str(tmp_path), "--once"]) == 0
    assert "yes" in capsys.readouterr().out  # the done row
