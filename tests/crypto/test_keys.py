"""Unit tests for the simulated signature scheme."""

import pytest

from repro.crypto import KeyPair, PublicKey, verify


def test_sign_verify_roundtrip():
    kp = KeyPair.generate(seed=b"alice")
    sig = kp.sign(b"message")
    assert verify(kp.public_key, b"message", sig)


def test_tampered_message_fails():
    kp = KeyPair.generate(seed=b"alice")
    sig = kp.sign(b"message")
    assert not verify(kp.public_key, b"other", sig)


def test_tampered_signature_fails():
    kp = KeyPair.generate(seed=b"alice")
    sig = bytearray(kp.sign(b"message"))
    sig[0] ^= 0xFF
    assert not verify(kp.public_key, b"message", bytes(sig))


def test_wrong_key_fails():
    alice = KeyPair.generate(seed=b"alice")
    bob = KeyPair.generate(seed=b"bob")
    sig = alice.sign(b"message")
    assert not verify(bob.public_key, b"message", sig)


def test_deterministic_from_seed():
    a = KeyPair.generate(seed=b"node-7")
    b = KeyPair.generate(seed=b"node-7")
    assert a.public_key == b.public_key
    assert a.sign(b"m") == b.sign(b"m")


def test_random_keys_are_distinct():
    assert KeyPair.generate().public_key != KeyPair.generate().public_key


def test_unknown_public_key_never_verifies():
    fake = PublicKey(b"\x01" * 32)
    assert not verify(fake, b"m", b"\x00" * 32)


def test_public_key_identity_semantics():
    kp = KeyPair.generate(seed=b"x")
    same = PublicKey(kp.public_key.raw)
    assert kp.public_key == same
    assert hash(kp.public_key) == hash(same)
    assert len({kp.public_key, same}) == 1


def test_public_key_validation():
    with pytest.raises(ValueError):
        PublicKey(b"short")


def test_empty_seed_rejected():
    with pytest.raises(ValueError):
        KeyPair(b"")


def test_public_key_ordering_is_total():
    keys = sorted(
        KeyPair.generate(seed=str(i).encode()).public_key for i in range(5)
    )
    assert keys == sorted(keys)
