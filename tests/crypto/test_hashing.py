"""Unit tests for hashing helpers."""

import hashlib

import pytest

from repro.crypto import sha256, sha256_hex, short_id, txid_from_bytes


def test_sha256_matches_stdlib():
    assert sha256(b"abc") == hashlib.sha256(b"abc").digest()
    assert sha256_hex(b"abc") == hashlib.sha256(b"abc").hexdigest()


def test_short_id_is_prefix():
    assert sha256_hex(b"x").startswith(short_id(b"x"))
    assert len(short_id(b"x", nbytes=4)) == 8


def test_txid_from_bytes_in_range():
    digest = sha256(b"tx")
    value = txid_from_bytes(digest, bits=32)
    assert 1 <= value < 2 ** 32


def test_txid_respects_bit_width():
    digest = sha256(b"tx")
    assert txid_from_bytes(digest, bits=16) < 2 ** 16
    assert txid_from_bytes(digest, bits=12) < 2 ** 12


def test_txid_zero_maps_to_one():
    # A digest whose leading bytes are zero must not yield the (invalid)
    # zero field element.
    assert txid_from_bytes(b"\x00" * 32, bits=32) == 1


def test_txid_is_deterministic():
    digest = sha256(b"same")
    assert txid_from_bytes(digest) == txid_from_bytes(digest)


def test_txid_empty_digest_rejected():
    with pytest.raises(ValueError):
        txid_from_bytes(b"")


def test_txid_collision_rate_is_low():
    # 2000 distinct digests into 32 bits: collisions should be rare.
    ids = {txid_from_bytes(sha256(str(i).encode())) for i in range(2000)}
    assert len(ids) >= 1999
