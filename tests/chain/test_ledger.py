"""Unit tests for the ledger."""

from repro.chain import Ledger
from repro.chain.block import GENESIS_HASH, sign_block
from repro.crypto import KeyPair

KP = KeyPair.generate(seed=b"ledger-miner")


def chain_block(ledger, tx_ids, seq=0):
    return sign_block(
        KP, ledger.height + 1, ledger.tip_hash, tx_ids, seq, created_at=0.0
    )


def test_empty_ledger_state():
    ledger = Ledger()
    assert len(ledger) == 0
    assert ledger.height == -1
    assert ledger.tip_hash == GENESIS_HASH


def test_append_extends_chain():
    ledger = Ledger()
    b0 = chain_block(ledger, (1, 2))
    assert ledger.append(b0)
    assert ledger.height == 0
    assert ledger.tip_hash == b0.block_hash
    b1 = chain_block(ledger, (3,))
    assert ledger.append(b1)
    assert ledger.block_at(1) is b1


def test_duplicate_append_noop():
    ledger = Ledger()
    block = chain_block(ledger, (1,))
    assert ledger.append(block)
    assert not ledger.append(block)
    assert ledger.height == 0


def test_non_extending_block_rejected():
    ledger = Ledger()
    b0 = chain_block(ledger, (1,))
    ledger.append(b0)
    orphan = sign_block(KP, 5, b"\x07" * 32, (9,), 0, 0.0)
    assert not ledger.append(orphan)


def test_settlement_index():
    ledger = Ledger()
    ledger.append(chain_block(ledger, (10, 20)))
    ledger.append(chain_block(ledger, (30,)))
    assert ledger.is_settled(10)
    assert ledger.is_settled(30)
    assert not ledger.is_settled(99)
    assert ledger.settle_height_of(20) == 0
    assert ledger.settle_height_of(30) == 1
    assert ledger.settled_ids() == {10, 20, 30}


def test_block_by_hash():
    ledger = Ledger()
    block = chain_block(ledger, (1,))
    ledger.append(block)
    assert ledger.block_by_hash(block.block_hash) is block
    assert ledger.block_by_hash(b"\x00" * 32) is None


def test_settle_height_keeps_first_occurrence():
    ledger = Ledger()
    ledger.append(chain_block(ledger, (5,)))
    # A (faulty) later block repeating the id must not move its height.
    ledger.append(chain_block(ledger, (5, 6)))
    assert ledger.settle_height_of(5) == 0
