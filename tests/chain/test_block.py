"""Unit tests for blocks and the order seed."""

import pytest

from repro.chain import Block, block_order_seed
from repro.chain.block import GENESIS_HASH, sign_block
from repro.crypto import KeyPair


def make_block(tx_ids=(1, 2, 3), height=0, prev=GENESIS_HASH, seq=2):
    kp = KeyPair.generate(seed=b"miner")
    return sign_block(kp, height, prev, tx_ids, seq, created_at=1.5)


def test_signed_block_verifies():
    block = make_block()
    assert block.signature_valid()


def test_tampered_body_fails_verification():
    block = make_block()
    forged = Block(
        creator=block.creator,
        height=block.height,
        prev_hash=block.prev_hash,
        tx_ids=(9, 9, 9),
        commit_seq=block.commit_seq,
        created_at=block.created_at,
        signature=block.signature,
    )
    assert not forged.signature_valid()


def test_block_hash_changes_with_content():
    a = make_block(tx_ids=(1,))
    b = make_block(tx_ids=(2,))
    assert a.block_hash != b.block_hash


def test_block_hash_is_deterministic():
    assert make_block().block_hash == make_block().block_hash


def test_invalid_height_rejected():
    kp = KeyPair.generate(seed=b"m")
    with pytest.raises(ValueError):
        sign_block(kp, -1, GENESIS_HASH, (), 0, 0.0)


def test_invalid_prev_hash_rejected():
    kp = KeyPair.generate(seed=b"m")
    with pytest.raises(ValueError):
        sign_block(kp, 0, b"short", (), 0, 0.0)


def test_wire_size_scales_with_txs():
    small = make_block(tx_ids=(1,))
    large = make_block(tx_ids=tuple(range(1, 101)))
    assert large.wire_size() - small.wire_size() == 4 * 99


def test_order_seed_depends_on_prev_hash_and_bundle():
    h1, h2 = b"\x01" * 32, b"\x02" * 32
    assert block_order_seed(h1, 0) != block_order_seed(h2, 0)
    assert block_order_seed(h1, 0) != block_order_seed(h1, 1)
    assert block_order_seed(h1, 3) == block_order_seed(h1, 3)
