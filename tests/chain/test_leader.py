"""Unit tests for the random leader schedule."""

import random

import pytest

from repro.chain import LeaderSchedule
from repro.sim import EventLoop


def run_schedule(duration, mean=1.0, nodes=None, eligible=None, seed=1):
    loop = EventLoop()
    leaders = []
    schedule = LeaderSchedule(
        loop,
        node_ids=nodes or list(range(10)),
        mean_block_time=mean,
        rng=random.Random(seed),
        on_leader=leaders.append,
        eligible=eligible,
    )
    schedule.start()
    loop.run_until(duration)
    return schedule, leaders


def test_block_rate_approximates_mean():
    _, leaders = run_schedule(duration=600.0, mean=10.0)
    # ~60 expected; allow generous tolerance.
    assert 35 <= len(leaders) <= 90


def test_leaders_drawn_from_node_set():
    _, leaders = run_schedule(duration=100.0, mean=1.0, nodes=[3, 5, 7])
    assert set(leaders) <= {3, 5, 7}
    assert len(set(leaders)) > 1


def test_eligibility_filter():
    _, leaders = run_schedule(
        duration=100.0, mean=1.0, eligible=lambda n: n % 2 == 0
    )
    assert all(leader % 2 == 0 for leader in leaders)


def test_no_eligible_nodes_skips_election():
    schedule, leaders = run_schedule(
        duration=50.0, mean=1.0, eligible=lambda n: False
    )
    assert leaders == []
    assert schedule.elections == 0


def test_stop_halts_elections():
    loop = EventLoop()
    leaders = []
    schedule = LeaderSchedule(
        loop, [0, 1], 1.0, random.Random(2), leaders.append
    )
    schedule.start()
    loop.run_until(10.0)
    count = len(leaders)
    schedule.stop()
    loop.run_until(50.0)
    assert len(leaders) == count


def test_start_is_idempotent():
    loop = EventLoop()
    leaders = []
    schedule = LeaderSchedule(
        loop, [0], 1.0, random.Random(3), leaders.append
    )
    schedule.start()
    schedule.start()
    loop.run_until(20.0)
    # One schedule stream only (no doubled rate): ~20 elections, not ~40.
    assert len(leaders) < 35


def test_invalid_parameters_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        LeaderSchedule(loop, [0], 0.0, random.Random(0), lambda n: None)
    with pytest.raises(ValueError):
        LeaderSchedule(loop, [], 1.0, random.Random(0), lambda n: None)


def test_min_gap_enforced():
    loop = EventLoop()
    times = []
    schedule = LeaderSchedule(
        loop, [0, 1], mean_block_time=2.0, rng=random.Random(4),
        on_leader=lambda n: times.append(loop.now), min_gap=1.0,
    )
    schedule.start()
    loop.run_until(200.0)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert gaps and min(gaps) >= 1.0
    # Mean preserved: min_gap + Exp(mean - min_gap) has the requested mean.
    mean_gap = sum(gaps) / len(gaps)
    assert 1.5 < mean_gap < 2.6


def test_min_gap_validation():
    loop = EventLoop()
    with pytest.raises(ValueError):
        LeaderSchedule(loop, [0], 1.0, random.Random(0), lambda n: None,
                       min_gap=1.0)
