"""Tests for the ``repro.bench`` subsystem: runner, suites, CLI, schema."""

import json

import pytest

from repro.bench import (
    SCHEMA,
    SUITES,
    BenchResult,
    bench_case,
    bench_payload,
    run_suites,
    write_bench_json,
)
from repro.cli import main

REQUIRED_TOP_KEYS = {
    "schema", "suite", "created_unix", "python", "numpy", "fast_path",
    "params", "results", "derived",
}
REQUIRED_RESULT_KEYS = {
    "name", "params", "iterations", "repeats", "ops_per_call",
    "seconds_per_op", "ops_per_second",
}


def _check_schema(payload, suite):
    assert REQUIRED_TOP_KEYS <= set(payload)
    assert payload["schema"] == SCHEMA == "repro.bench/1"
    assert payload["suite"] == suite
    assert isinstance(payload["created_unix"], int)
    assert isinstance(payload["fast_path"], bool)
    assert payload["results"], "a suite must time at least one case"
    for entry in payload["results"]:
        assert REQUIRED_RESULT_KEYS <= set(entry)
        assert entry["iterations"] >= 1
        assert entry["seconds_per_op"] >= 0.0
    for value in payload["derived"].values():
        assert isinstance(value, float)


def test_bench_case_counts_iterations():
    calls = []
    result = bench_case("noop", lambda: calls.append(1),
                        iterations=5, repeats=2, ops_per_call=3)
    # 1 warm-up + 2 repeats x 5 iterations
    assert len(calls) == 11
    assert result.iterations == 5
    assert result.repeats == 2
    assert result.ops_per_call == 3
    assert result.ops_per_second == pytest.approx(
        1.0 / result.seconds_per_op
    )


def test_bench_case_calibrates_iterations():
    result = bench_case("noop", lambda: None, repeats=1,
                        target_seconds=0.001)
    assert result.iterations >= 1


def test_bench_payload_schema():
    results = [BenchResult(name="x", iterations=1, seconds_per_op=0.5)]
    payload = bench_payload("sketch", results, derived={"speedup_x": 2.0},
                            params={"quick": True})
    _check_schema(payload, "sketch")
    assert payload["derived"]["speedup_x"] == 2.0
    assert payload["params"]["quick"] is True


def test_write_bench_json_round_trips(tmp_path):
    path = tmp_path / "BENCH_sketch.json"
    results = [BenchResult(name="x", iterations=2, seconds_per_op=0.25)]
    payload = write_bench_json(str(path), "sketch", results)
    on_disk = json.loads(path.read_text())
    assert on_disk == payload
    _check_schema(on_disk, "sketch")


def test_run_suites_rejects_unknown_suite(tmp_path):
    with pytest.raises(ValueError, match="unknown bench suite"):
        run_suites(["nope"], out_dir=str(tmp_path))


def test_suite_registry_is_complete():
    assert set(SUITES) == {"sketch", "reconcile", "harness", "mempool",
                       "obs"}


@pytest.mark.slow
def test_bench_cli_quick_emits_valid_files(tmp_path, capsys):
    code = main(["bench", "--quick", "--out-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "suite: sketch" in out
    assert "suite: reconcile" in out
    assert "suite: harness" in out
    for suite in ("sketch", "reconcile", "harness", "mempool", "obs"):
        path = tmp_path / f"BENCH_{suite}.json"
        assert path.exists()
        _check_schema(json.loads(path.read_text()), suite)


@pytest.mark.slow
def test_harness_suite_reports_sweep_identity(tmp_path):
    payloads = run_suites(["harness"], quick=True, out_dir=str(tmp_path))
    derived = payloads["harness"]["derived"]
    assert derived["events_per_second"] > 0
    assert derived["sweep_results_identical"] == 1.0
    assert derived["sweep_tasks"] >= 4


@pytest.mark.slow
def test_sketch_suite_derives_decode_speedup(tmp_path):
    payloads = run_suites(["sketch"], quick=True, out_dir=str(tmp_path))
    derived = payloads["sketch"]["derived"]
    from repro.sketch.gf import have_numpy

    if have_numpy():
        assert any(k.startswith("speedup_decode_") for k in derived)


@pytest.mark.slow
def test_reconcile_suite_reports_wire_stats(tmp_path):
    payloads = run_suites(["reconcile"], quick=True, out_dir=str(tmp_path))
    derived = payloads["reconcile"]["derived"]
    assert derived["bytes_transferred"] > 0
    assert derived["decode_failures"] >= 0
