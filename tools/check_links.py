#!/usr/bin/env python
"""Markdown link checker for the repository's documentation.

Checks every ``[text](target)`` link in the given markdown files:

* relative targets must resolve to an existing file or directory
  (fragments like ``protocol.md#sync`` are checked against the file part);
* ``http(s)``/``mailto``/``doi`` targets are skipped (no network in CI);
* bare in-page anchors (``#section``) are skipped.

Exit status 1 with one line per broken link, 0 when clean.

Usage::

    python tools/check_links.py README.md DESIGN.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) -- but not images' inner ']' and not footnote refs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "doi:")


def iter_links(text: str):
    """Yield (line_number, target) for every markdown link, skipping
    fenced code blocks (their brackets are code, not links)."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path) -> list:
    errors = []
    for lineno, target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{path}:{lineno}: broken link -> {target}")
    return errors


def main(argv: list) -> int:
    if not argv:
        print(__doc__)
        return 2
    all_errors = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            all_errors.append(f"{name}: file not found")
            continue
        all_errors.extend(check_file(path))
    for error in all_errors:
        print(error)
    if not all_errors:
        print(f"ok: {len(argv)} file(s), no broken links")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
