#!/usr/bin/env python3
"""Fail loudly when a fresh bench run regresses against the committed one.

Compares freshly generated ``BENCH_*.json`` files (``repro.bench/1``
schema) against committed baselines and exits non-zero when a watched
throughput metric drops by more than the threshold (default 20%), so an
events/sec or decode-speed regression fails CI instead of drifting
silently across PRs.

Watched metrics (higher is better):

* ``harness`` -- ``derived.events_per_second`` (whole-system simulation
  throughput) and ``derived.wall_seconds_per_sim_second`` (inverted);
* ``sketch``  -- ``ops_per_second`` of every ``decode/...`` result case
  present in *both* files, matched by exact case name.

Micro-benchmarks are only comparable at identical workloads, so a suite
whose ``params`` differ between baseline and fresh (e.g. a ``--quick`` CI
run against a committed full-size baseline) is *skipped with a warning*
unless ``--ignore-params`` forces the comparison.  Improvements are
reported but never fail.

Usage::

    python -m repro bench --out-dir bench-out
    python tools/check_bench_trend.py --baseline-dir . --fresh-dir bench-out

Exit codes: 0 = no regression, 1 = regression beyond threshold,
2 = missing/undecodable inputs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterator, List, Optional, Tuple

DEFAULT_THRESHOLD = 0.20
DEFAULT_SUITES = ("harness", "sketch")

#: suite -> list of (metric label, extractor); extractor returns
#: ``{label: higher-is-better value}`` entries found in a payload.
_SCHEMA = "repro.bench/1"


def _load(path: str) -> Optional[dict]:
    try:
        with open(path, encoding="utf-8") as stream:
            payload = json.load(stream)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if payload.get("schema") != _SCHEMA:
        raise SystemExit(
            f"error: {path} has schema {payload.get('schema')!r},"
            f" expected {_SCHEMA!r}"
        )
    return payload


def watched_metrics(suite: str, payload: dict) -> Dict[str, float]:
    """Extract the suite's higher-is-better throughput metrics."""
    metrics: Dict[str, float] = {}
    derived = payload.get("derived", {})
    if suite == "harness":
        if "events_per_second" in derived:
            metrics["derived.events_per_second"] = \
                float(derived["events_per_second"])
        wall = derived.get("wall_seconds_per_sim_second")
        if wall:  # lower is better: invert so one comparison rule fits all
            metrics["derived.sim_seconds_per_wall_second"] = 1.0 / float(wall)
    elif suite == "sketch":
        for result in payload.get("results", []):
            name = result.get("name", "")
            if name.startswith("decode/"):
                metrics[f"result.{name}.ops_per_second"] = \
                    float(result["ops_per_second"])
    return metrics


def compare_suite(
    suite: str,
    baseline: dict,
    fresh: dict,
    threshold: float,
    ignore_params: bool = False,
) -> Iterator[Tuple[str, str, float, float, float]]:
    """Yield ``(status, metric, baseline, fresh, change)`` rows.

    ``status`` is ``REGRESSION`` (beyond threshold), ``ok`` (within), or
    ``skipped`` (suite-level parameter mismatch; single sentinel row).
    ``change`` is the fractional delta, negative for a slowdown.
    """
    if not ignore_params and baseline.get("params") != fresh.get("params"):
        yield ("skipped", "params differ (sizes not comparable;"
               " --ignore-params to force)", 0.0, 0.0, 0.0)
        return
    if not ignore_params and baseline.get("fast_path") != fresh.get("fast_path"):
        yield ("skipped", "fast_path availability differs"
               " (environment mismatch)", 0.0, 0.0, 0.0)
        return
    base_metrics = watched_metrics(suite, baseline)
    fresh_metrics = watched_metrics(suite, fresh)
    for name in sorted(base_metrics):
        if name not in fresh_metrics:
            continue
        base, new = base_metrics[name], fresh_metrics[name]
        if base <= 0:
            continue
        change = (new - base) / base
        status = "REGRESSION" if change < -threshold else "ok"
        yield (status, name, base, new, change)


def check_dirs(
    baseline_dir: str,
    fresh_dir: str,
    suites: List[str],
    threshold: float,
    ignore_params: bool = False,
    out=sys.stdout,
) -> int:
    """Compare every suite's file pair; returns the process exit code."""
    regressions = 0
    compared = 0
    for suite in suites:
        filename = f"BENCH_{suite}.json"
        baseline = _load(os.path.join(baseline_dir, filename))
        fresh = _load(os.path.join(fresh_dir, filename))
        if baseline is None:
            print(f"[{suite}] no committed baseline {filename}; skipping",
                  file=out)
            continue
        if fresh is None:
            print(f"error: fresh {filename} missing in {fresh_dir}",
                  file=sys.stderr)
            return 2
        for status, name, base, new, change in compare_suite(
                suite, baseline, fresh, threshold, ignore_params):
            if status == "skipped":
                print(f"[{suite}] SKIPPED: {name}", file=out)
                continue
            compared += 1
            print(f"[{suite}] {status:10s} {name}:"
                  f" {base:.1f} -> {new:.1f} ({change:+.1%})", file=out)
            if status == "REGRESSION":
                regressions += 1
    if regressions:
        print(f"{regressions} metric(s) regressed beyond"
              f" {threshold:.0%}", file=sys.stderr)
        return 1
    print(f"bench trend ok ({compared} metric(s) compared)", file=out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (see module docstring)."""
    parser = argparse.ArgumentParser(
        description="gate CI on BENCH_*.json performance trends")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory with the committed BENCH_*.json")
    parser.add_argument("--fresh-dir", required=True,
                        help="directory with the freshly generated files")
    parser.add_argument("--suites", nargs="+", default=list(DEFAULT_SUITES),
                        help="suites to compare (default: harness sketch)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="max tolerated fractional drop (default 0.20)")
    parser.add_argument("--ignore-params", action="store_true",
                        help="compare even when suite params differ"
                             " (quick vs full runs are NOT comparable;"
                             " use only when you know the workloads match)")
    args = parser.parse_args(argv)
    return check_dirs(args.baseline_dir, args.fresh_dir, args.suites,
                      args.threshold, args.ignore_params)


if __name__ == "__main__":
    sys.exit(main())
