#!/usr/bin/env python3
"""Fail loudly when a fresh bench run regresses against the committed one.

Compares freshly generated ``BENCH_*.json`` files (``repro.bench/1``
schema) against committed baselines and exits non-zero when a watched
throughput metric drops by more than the threshold (default 20%), so an
events/sec or decode-speed regression fails CI instead of drifting
silently across PRs.

Watched metrics (higher is better):

* ``harness`` -- ``derived.events_per_second`` (whole-system simulation
  throughput), ``derived.wall_seconds_per_sim_second`` (inverted), and
  ``ops_per_second`` of every ``sim/run/...`` result case present in
  *both* files (this covers per-topology rows such as
  ``sim/run/nodes=1000`` individually);
* ``sketch``  -- ``ops_per_second`` of every ``decode/...`` result case
  present in *both* files, matched by exact case name;
* ``mempool`` -- ``derived.admissions_per_second`` (admission-pipeline
  throughput) and ``ops_per_second`` of every ``admit...``/``evict...``
  result case present in *both* files;
* ``obs`` -- ``derived.telemetry_off_events_per_second`` (telemetry-off
  harness throughput; a drop here is instrumentation overhead leaking
  into the off path) and ``ops_per_second`` of every ``sim/run/...``
  result case present in *both* files.

``--require-case SUITE:NAME`` additionally *demands* that the freshly
generated suite file contains a result case with that exact name (exit 2
when absent) -- CI uses it to guarantee the large-topology row keeps
being produced, since a silently dropped case would otherwise just stop
being compared.

Micro-benchmarks are only comparable at identical workloads, so a suite
whose ``params`` differ between baseline and fresh (e.g. a ``--quick`` CI
run against a committed full-size baseline) is *skipped with a warning*
unless ``--ignore-params`` forces the comparison.  Improvements are
reported but never fail.

Usage::

    python -m repro bench --out-dir bench-out
    python tools/check_bench_trend.py --baseline-dir . --fresh-dir bench-out

Exit codes: 0 = no regression, 1 = regression beyond threshold,
2 = missing/undecodable inputs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterator, List, Optional, Tuple

DEFAULT_THRESHOLD = 0.20
DEFAULT_SUITES = ("harness", "sketch", "mempool", "obs")

#: suite -> list of (metric label, extractor); extractor returns
#: ``{label: higher-is-better value}`` entries found in a payload.
_SCHEMA = "repro.bench/1"


def _load(path: str) -> Optional[dict]:
    try:
        with open(path, encoding="utf-8") as stream:
            payload = json.load(stream)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if payload.get("schema") != _SCHEMA:
        raise SystemExit(
            f"error: {path} has schema {payload.get('schema')!r},"
            f" expected {_SCHEMA!r}"
        )
    return payload


def watched_metrics(suite: str, payload: dict) -> Dict[str, float]:
    """Extract the suite's higher-is-better throughput metrics."""
    metrics: Dict[str, float] = {}
    derived = payload.get("derived", {})
    if suite == "harness":
        if "events_per_second" in derived:
            metrics["derived.events_per_second"] = \
                float(derived["events_per_second"])
        wall = derived.get("wall_seconds_per_sim_second")
        if wall:  # lower is better: invert so one comparison rule fits all
            metrics["derived.sim_seconds_per_wall_second"] = 1.0 / float(wall)
        for result in payload.get("results", []):
            name = result.get("name", "")
            if name.startswith("sim/run/"):
                metrics[f"result.{name}.ops_per_second"] = \
                    float(result["ops_per_second"])
    elif suite == "sketch":
        for result in payload.get("results", []):
            name = result.get("name", "")
            if name.startswith("decode/"):
                metrics[f"result.{name}.ops_per_second"] = \
                    float(result["ops_per_second"])
    elif suite == "mempool":
        if "admissions_per_second" in derived:
            metrics["derived.admissions_per_second"] = \
                float(derived["admissions_per_second"])
        for result in payload.get("results", []):
            name = result.get("name", "")
            if name.startswith(("admit", "evict")):
                metrics[f"result.{name}.ops_per_second"] = \
                    float(result["ops_per_second"])
    elif suite == "obs":
        if "telemetry_off_events_per_second" in derived:
            metrics["derived.telemetry_off_events_per_second"] = \
                float(derived["telemetry_off_events_per_second"])
        for result in payload.get("results", []):
            name = result.get("name", "")
            if name.startswith("sim/run/"):
                metrics[f"result.{name}.ops_per_second"] = \
                    float(result["ops_per_second"])
    return metrics


def compare_suite(
    suite: str,
    baseline: dict,
    fresh: dict,
    threshold: float,
    ignore_params: bool = False,
) -> Iterator[Tuple[str, str, float, float, float]]:
    """Yield ``(status, metric, baseline, fresh, change)`` rows.

    ``status`` is ``REGRESSION`` (beyond threshold), ``ok`` (within), or
    ``skipped`` (suite-level parameter mismatch; single sentinel row).
    ``change`` is the fractional delta, negative for a slowdown.
    """
    if not ignore_params and baseline.get("params") != fresh.get("params"):
        yield ("skipped", "params differ (sizes not comparable;"
               " --ignore-params to force)", 0.0, 0.0, 0.0)
        return
    if not ignore_params and baseline.get("fast_path") != fresh.get("fast_path"):
        yield ("skipped", "fast_path availability differs"
               " (environment mismatch)", 0.0, 0.0, 0.0)
        return
    base_metrics = watched_metrics(suite, baseline)
    fresh_metrics = watched_metrics(suite, fresh)
    for name in sorted(base_metrics):
        if name not in fresh_metrics:
            continue
        base, new = base_metrics[name], fresh_metrics[name]
        if base <= 0:
            continue
        change = (new - base) / base
        status = "REGRESSION" if change < -threshold else "ok"
        yield (status, name, base, new, change)


def _parse_required(require_cases: Optional[List[str]]) -> Dict[str, List[str]]:
    required: Dict[str, List[str]] = {}
    for item in require_cases or []:
        suite, _, case = item.partition(":")
        if not suite or not case:
            raise SystemExit(
                f"error: --require-case wants SUITE:NAME, got {item!r}")
        required.setdefault(suite, []).append(case)
    return required


def check_dirs(
    baseline_dir: str,
    fresh_dir: str,
    suites: List[str],
    threshold: float,
    ignore_params: bool = False,
    require_cases: Optional[List[str]] = None,
    out=sys.stdout,
) -> int:
    """Compare every suite's file pair; returns the process exit code."""
    regressions = 0
    compared = 0
    required = _parse_required(require_cases)
    for suite in suites:
        filename = f"BENCH_{suite}.json"
        baseline = _load(os.path.join(baseline_dir, filename))
        fresh = _load(os.path.join(fresh_dir, filename))
        # Required cases gate on the *fresh* file alone: the point is to
        # fail when a case silently stops being produced, which a missing
        # baseline must not excuse.
        for case in required.pop(suite, []):
            if fresh is None:
                print(f"error: fresh {filename} missing in {fresh_dir}"
                      f" (required case {case})", file=sys.stderr)
                return 2
            names = {r.get("name") for r in fresh.get("results", [])}
            if case not in names:
                print(f"error: required case {suite}:{case} missing from"
                      f" fresh {filename}", file=sys.stderr)
                return 2
            print(f"[{suite}] required case present: {case}", file=out)
        if baseline is None:
            print(f"[{suite}] no committed baseline {filename}; skipping",
                  file=out)
            continue
        if fresh is None:
            print(f"error: fresh {filename} missing in {fresh_dir}",
                  file=sys.stderr)
            return 2
        for status, name, base, new, change in compare_suite(
                suite, baseline, fresh, threshold, ignore_params):
            if status == "skipped":
                print(f"[{suite}] SKIPPED: {name}", file=out)
                continue
            compared += 1
            print(f"[{suite}] {status:10s} {name}:"
                  f" {base:.1f} -> {new:.1f} ({change:+.1%})", file=out)
            if status == "REGRESSION":
                regressions += 1
    if required:
        leftovers = ", ".join(f"{s}:{c}" for s, cs in sorted(required.items())
                              for c in cs)
        print(f"error: --require-case names suite(s) not compared:"
              f" {leftovers}", file=sys.stderr)
        return 2
    if regressions:
        print(f"{regressions} metric(s) regressed beyond"
              f" {threshold:.0%}", file=sys.stderr)
        return 1
    print(f"bench trend ok ({compared} metric(s) compared)", file=out)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (see module docstring)."""
    parser = argparse.ArgumentParser(
        description="gate CI on BENCH_*.json performance trends")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory with the committed BENCH_*.json")
    parser.add_argument("--fresh-dir", required=True,
                        help="directory with the freshly generated files")
    parser.add_argument("--suites", nargs="+", default=list(DEFAULT_SUITES),
                        help="suites to compare"
                             " (default: harness sketch mempool obs)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="max tolerated fractional drop (default 0.20)")
    parser.add_argument("--ignore-params", action="store_true",
                        help="compare even when suite params differ"
                             " (quick vs full runs are NOT comparable;"
                             " use only when you know the workloads match)")
    parser.add_argument("--require-case", action="append", default=[],
                        metavar="SUITE:NAME",
                        help="fail (exit 2) unless the fresh SUITE file"
                             " contains a result case NAME; repeatable")
    args = parser.parse_args(argv)
    return check_dirs(args.baseline_dir, args.fresh_dir, args.suites,
                      args.threshold, args.ignore_params,
                      require_cases=args.require_case)


if __name__ == "__main__":
    sys.exit(main())
