"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures: it runs the
matching experiment once under pytest-benchmark's timer (rounds=1 -- these
are minute-scale simulations, not microbenchmarks) and prints the rows /
series the paper reports, so `pytest benchmarks/ --benchmark-only` doubles
as the reproduction log recorded in EXPERIMENTS.md.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer, return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


def print_table(title: str, headers, rows) -> None:
    """Print one paper-style table to the captured stdout."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(header_line)
    print("-" * len(header_line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
