"""Fig. 8: tx-to-block latency, FIFO vs Highest Fee, plus the size sweep.

Paper shape (left): FIFO ~3 s vs Highest Fee 7-8 s (a ~2.5x mean ratio)
with "much larger variation, with many low-fee transactions experiencing
very high latency".  (Right): FIFO latency grows slowly with system size.
"""

from benchmarks.conftest import print_table, run_once
from repro.experiments.fig8_block_latency import run_fig8

NUM_NODES = 40
SIZE_SWEEP = [20, 40, 60]


def test_fig8_policies_and_size_sweep(benchmark):
    result = run_once(
        benchmark,
        run_fig8,
        num_nodes=NUM_NODES,
        size_sweep=SIZE_SWEEP,
        tx_rate_per_s=5.0,
        workload_duration_s=60.0,
    )
    rows = []
    for policy in (result.fifo, result.highest_fee):
        s = policy.summary
        rows.append(
            (
                policy.policy,
                f"{s['mean']:.2f}",
                f"{s['p50']:.2f}",
                f"{s['p90']:.2f}",
                f"{s['p99']:.2f}",
                f"{s['std']:.2f}",
            )
        )
    print_table(
        "Fig. 8 (left) -- tx-to-block latency by policy (seconds)",
        ("policy", "mean", "p50", "p90", "p99", "std"),
        rows,
    )
    print_table(
        "Fig. 8 (right) -- FIFO latency vs system size",
        ("nodes", "mean_s", "p90_s"),
        [
            (n, f"{s['mean']:.2f}", f"{s['p90']:.2f}")
            for n, s in sorted(result.size_sweep.items())
        ],
    )
    fifo, fee = result.fifo.summary, result.highest_fee.summary
    # Who wins and by roughly what factor (paper: ~2.5x mean, fatter tail).
    assert fee["mean"] > 1.5 * fifo["mean"]
    assert fee["std"] > 2 * fifo["std"]
    assert fee["p99"] > fifo["p99"]
    # FIFO stays seconds-scale and grows slowly with size.
    means = [s["mean"] for _n, s in sorted(result.size_sweep.items())]
    assert means[-1] < 3 * means[0] + 2.0
