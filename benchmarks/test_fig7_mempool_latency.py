"""Fig. 7: density of per-miner mempool-inclusion latency.

Paper shape: unimodal density, mean ~1.14 s, convergence after interacting
with 5-6 nodes.
"""

from benchmarks.conftest import print_table, run_once
from repro.experiments.fig7_mempool_latency import run_fig7

NUM_NODES = 80
TX_RATE = 10.0


def test_fig7_latency_density(benchmark):
    result = run_once(
        benchmark,
        run_fig7,
        num_nodes=NUM_NODES,
        tx_rate_per_s=TX_RATE,
        workload_duration_s=15.0,
        drain_s=10.0,
    )
    summary = result.summary
    print_table(
        f"Fig. 7 -- mempool inclusion latency, {NUM_NODES} nodes @ {TX_RATE} tx/s",
        ("metric", "seconds"),
        [
            ("mean", f"{summary['mean']:.3f}"),
            ("p50", f"{summary['p50']:.3f}"),
            ("p90", f"{summary['p90']:.3f}"),
            ("p99", f"{summary['p99']:.3f}"),
            ("max", f"{summary['max']:.3f}"),
            ("samples", int(summary["count"])),
        ],
    )
    coarse = _coarsen(result.density, 8)
    print_table(
        "Fig. 7 -- latency density (coarse bins)",
        ("bin_centre_s", "density"),
        [(f"{c:.2f}", f"{d:.3f}") for c, d in coarse],
    )
    hops = result.hops_summary
    print_table(
        "Fig. 7 companion -- reconciliation hops to reach a miner"
        " (paper: converges after interacting with 5-6 nodes)",
        ("metric", "hops"),
        [
            ("mean", f"{hops['mean']:.2f}"),
            ("p50", f"{hops['p50']:.1f}"),
            ("p90", f"{hops['p90']:.1f}"),
            ("max", f"{hops['max']:.0f}"),
        ],
    )
    # Paper-shape assertions: seconds-scale mean, unimodal-ish with the
    # mass well before the tail.
    assert 0.3 < summary["mean"] < 4.0
    assert summary["p90"] < 3 * summary["mean"] + 1.0
    assert summary["count"] > 1000
    # Dissemination stays a handful of pairwise interactions deep.
    assert 1.0 <= hops["mean"] <= 8.0


def _coarsen(density, target_bins):
    step = max(1, len(density) // target_bins)
    out = []
    for i in range(0, len(density), step):
        chunk = density[i : i + step]
        centre = sum(c for c, _d in chunk) / len(chunk)
        avg_density = sum(d for _c, d in chunk) / len(chunk)
        out.append((centre, avg_density))
    return out
