"""Fig. 6: suspicion/exposure times vs fraction of colluding censors.

Paper shape: exposure convergence lands ~6-7 s after the first detection
and degrades only mildly as the malicious fraction grows; suspicion
convergence is slower than exposure (it waits on timeouts and retries).
"""

from benchmarks.conftest import print_table, run_once
from repro.experiments.fig6_detection import run_fig6

NUM_NODES = 50
FRACTIONS = [0.1, 0.2, 0.3, 0.4]


def test_fig6_detection_times(benchmark):
    result = run_once(
        benchmark, run_fig6, num_nodes=NUM_NODES, fractions=FRACTIONS
    )
    rows = []
    for point in result.points:
        rows.append(
            (
                f"{point.malicious_fraction:.0%}",
                point.num_malicious,
                _fmt(point.suspicion_convergence_at),
                _fmt(point.exposure_convergence_at),
                _fmt(point.exposure_spread_s),
            )
        )
    print_table(
        f"Fig. 6 -- detection times, {NUM_NODES} nodes "
        "(suspicion/exposure convergence across all correct nodes)",
        ("malicious", "count", "suspicion_s", "exposure_s", "spread_s"),
        rows,
    )
    for point in result.points:
        # Every fraction must fully converge within the horizon.
        assert point.exposure_convergence_at is not None
        assert point.suspicion_convergence_at is not None
        # Exposure spreads within seconds of first detection (paper: 6-7 s).
        assert point.exposure_spread_s < 15.0


def _fmt(value):
    return "n/a" if value is None else f"{value:.2f}"
