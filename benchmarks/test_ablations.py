"""Ablation benches for the design choices DESIGN.md calls out.

* Bloom-Clock pre-filter on/off: the pre-filter is what keeps sketch
  decodes small and failures rare (section 4.2's stated motivation for
  combining the structures).
* Reconciliation fan-out: more targets per round converge faster but cost
  bandwidth.
* Retry budget under high latency: fewer retries make slow-but-correct
  nodes look faulty (accuracy erosion).
"""

import statistics

from benchmarks.conftest import print_table, run_once
from repro.core.config import LOConfig
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.net.latency import ConstantLatencyModel


def _run_lo(config, num_nodes=24, rate=6.0, duration=12.0, seed=5,
            latency=None):
    sim = LOSimulation(
        SimulationParams(
            num_nodes=num_nodes, seed=seed, config=config,
            latency_model=latency,
        )
    )
    sim.inject_workload(rate_per_s=rate, duration_s=duration)
    sim.run(duration + 5.0)
    latencies = sim.mempool_tracker.all_latencies()
    return {
        "overhead_mb": sim.total_overhead_bytes() / 1e6,
        "mean_latency": statistics.mean(latencies) if latencies else 0.0,
        "reconciliations": sim.counter.total("reconciliations"),
        "failures": sim.counter.total("reconciliation_failures"),
        "false_suspicions": sum(
            len(sim.nodes[nid].acct.suspected) for nid in sim.correct_ids
        ),
    }


def test_ablation_bloomclock_prefilter(benchmark):
    def run_both():
        on = _run_lo(LOConfig(use_clock_prefilter=True))
        off = _run_lo(LOConfig(use_clock_prefilter=False))
        return on, off

    on, off = run_once(benchmark, run_both)
    print_table(
        "Ablation -- Bloom-Clock pre-filter",
        ("variant", "overhead_MB", "mean_latency_s", "decodes", "failures"),
        [
            ("prefilter_on", f"{on['overhead_mb']:.2f}",
             f"{on['mean_latency']:.2f}", on["reconciliations"], on["failures"]),
            ("prefilter_off", f"{off['overhead_mb']:.2f}",
             f"{off['mean_latency']:.2f}", off["reconciliations"], off["failures"]),
        ],
    )
    # The pre-filter pays: less overhead per reconciliation round.
    assert on["overhead_mb"] < off["overhead_mb"]


def test_ablation_sync_fanout(benchmark):
    def run_sweep():
        return {
            fanout: _run_lo(LOConfig(sync_fanout=fanout))
            for fanout in (1, 3, 6)
        }

    results = run_once(benchmark, run_sweep)
    print_table(
        "Ablation -- reconciliation fan-out (targets per second)",
        ("fanout", "mean_latency_s", "overhead_MB"),
        [
            (f, f"{r['mean_latency']:.2f}", f"{r['overhead_mb']:.2f}")
            for f, r in sorted(results.items())
        ],
    )
    # More fan-out converges faster and costs more bandwidth.
    assert results[6]["mean_latency"] < results[1]["mean_latency"]
    assert results[6]["overhead_mb"] > results[1]["overhead_mb"]


def test_ablation_timeout_accuracy(benchmark):
    slow = ConstantLatencyModel(0.45)  # RTT close to the 1 s timeout

    def run_both():
        tight = _run_lo(
            LOConfig(request_timeout_s=0.5, request_retries=0), latency=slow
        )
        paper = _run_lo(
            LOConfig(request_timeout_s=1.0, request_retries=3), latency=slow
        )
        return tight, paper

    tight, paper = run_once(benchmark, run_both)
    print_table(
        "Ablation -- timeout/retry budget on a slow (450 ms one-way) network",
        ("variant", "false_suspicions", "mean_latency_s"),
        [
            ("0.5s_x0_retries", tight["false_suspicions"],
             f"{tight['mean_latency']:.2f}"),
            ("1.0s_x3_retries (paper)", paper["false_suspicions"],
             f"{paper['mean_latency']:.2f}"),
        ],
    )
    # The paper's budget keeps slow-but-correct nodes unsuspected.
    assert paper["false_suspicions"] <= tight["false_suspicions"]
    assert paper["false_suspicions"] == 0


def test_ablation_suspicion_verification(benchmark):
    """Verify-before-suspect (Fig. 4) vs adopting hearsay immediately.

    Local verification delays suspicion convergence by roughly one
    timeout-and-retries round but keeps hearsay from propagating
    unchecked; the paper's Fig. 6 'Suspicion' curve trails 'Exposure'
    for exactly this reason.
    """
    from repro.experiments.fig6_detection import run_detection_point

    def run_both():
        verified = run_detection_point(
            30, 0.2, seed=5, tx_rate_per_s=4.0, horizon_s=50.0
        )
        return verified

    verified = run_once(benchmark, run_both)
    print_table(
        "Ablation -- third-party suspicion handling (30 nodes, 20% censors)",
        ("variant", "suspicion_all_s", "exposure_all_s"),
        [
            (
                "verify-locally (paper)",
                f"{verified.suspicion_convergence_at:.2f}",
                f"{verified.exposure_convergence_at:.2f}",
            ),
        ],
    )
    # Suspicion must wait on the probe timeout budget, so it cannot beat
    # the exposure path by much -- and both must converge.
    assert verified.suspicion_convergence_at is not None
    assert verified.exposure_convergence_at is not None


def test_ablation_sketch_capacity(benchmark):
    """Per-sketch capacity vs decode failures and split traffic.

    DESIGN.md: smaller sketches fit more comfortably in a UDP packet but
    overflow more often under load, triggering the section 6.5 bisection;
    the paper's 100-capacity default rarely splits at its workloads.
    """

    def run_sweep():
        out = {}
        for capacity in (16, 32, 100):
            config = LOConfig(
                sketch_capacity=capacity,
                min_sketch_capacity=16,
            )
            out[capacity] = _run_lo(config, rate=12.0)
        return out

    results = run_once(benchmark, run_sweep)
    print_table(
        "Ablation -- per-sketch capacity @ 12 tx/s",
        ("capacity", "decodes", "failures", "overhead_MB"),
        [
            (c, r["reconciliations"], r["failures"],
             f"{r['overhead_mb']:.2f}")
            for c, r in sorted(results.items())
        ],
    )
    # Tight capacity must not break convergence, only cost splits.
    assert results[16]["failures"] >= results[100]["failures"]
