"""Section 6.5 CPU rows: naive vs hash-partitioned sketch decoding.

Paper numbers: a 1,000-item difference takes ~10 s to decode naively and
<100 ms with partitioning (>=100x).  Pure-Python absolute times differ
(DESIGN.md substitutions); the reproduced quantity is the speedup, which
grows with the difference size because decode cost is superlinear while
partitioning pins every decode at the per-sketch capacity.  The benchmark
runs a scaled-down difference to stay minutes-friendly; pass a larger
``difference`` to repro.experiments.sec65_cpu.run_cpu_comparison to
approach the paper's 1,000-item row.
"""

from benchmarks.conftest import print_table, run_once
from repro.experiments.sec65_cpu import run_cpu_comparison

DIFFERENCE = 128
PARTITION_CAPACITY = 16


def test_sec65_decode_speedup(benchmark):
    result = run_once(
        benchmark,
        run_cpu_comparison,
        difference=DIFFERENCE,
        partition_capacity=PARTITION_CAPACITY,
    )
    print_table(
        "Sec. 6.5 -- sketch decode cost, naive vs hash-partitioned",
        ("difference", "naive_s", "partitioned_s", "speedup", "sketches"),
        [
            (
                result.difference,
                f"{result.naive_seconds:.3f}",
                f"{result.partitioned_seconds:.3f}",
                f"{result.speedup:.1f}x",
                result.partitioned_sketches,
            )
        ],
    )
    # Partitioning must deliver a substantial speedup already at this
    # scaled-down difference; the ratio grows with the difference size.
    assert result.speedup > 2.0
    assert result.partitioned_sketches > 1
