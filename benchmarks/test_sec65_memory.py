"""Section 6.5 memory rows: commitment sizes vs workload.

Paper numbers: ~1.17 KB commitments at 120 tx/min growing to ~9.36 KB at
24,000 tx/min; ~87 MB to store one commitment per member of a 10,000-node
network; ~10 MB additional storage at 10,000 nodes / 20 tx/s.  The
reproduced shape: commitment size grows sub-linearly with workload (the
sketch adapts to the clock-estimated difference) and stays kilobyte-scale,
making the 10,000-node extrapolation tens of megabytes.
"""

from benchmarks.conftest import print_table, run_once
from repro.experiments.sec65_memory import run_memory_sweep

WORKLOADS = [120, 360, 900]
NUM_NODES = 20


def test_sec65_commitment_memory(benchmark):
    result = run_once(
        benchmark,
        run_memory_sweep,
        workloads_tx_per_minute=WORKLOADS,
        num_nodes=NUM_NODES,
        duration_s=20.0,
    )
    rows = [
        (
            f"{p.tx_per_minute:.0f}",
            f"{p.avg_commitment_bytes:.0f}",
            f"{p.max_commitment_bytes}",
            f"{p.per_neighbor_store_bytes / 1e3:.2f}",
            f"{p.extrapolated_10k_nodes_mb:.1f}",
        )
        for p in result.points
    ]
    print_table(
        "Sec. 6.5 -- commitment sizes vs workload",
        ("tx/min", "avg_B", "max_B", "8-neighbor_KB", "10k-node_MB"),
        rows,
    )
    sizes = [p.avg_commitment_bytes for p in result.points]
    # Kilobyte-scale commitments that grow with workload.
    assert 150 < sizes[0] < 4000
    assert sizes[-1] >= sizes[0]
    # The paper's headline: storing commitments for a whole 10,000-node
    # network stays double-digit megabytes.
    assert all(p.extrapolated_10k_nodes_mb < 90 for p in result.points)
