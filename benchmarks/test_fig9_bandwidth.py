"""Fig. 9: bandwidth overhead of LO vs Flood, PeerReview and Narwhal.

Paper shape: LO is cheapest; Flood >= 4x LO; Narwhal 7-10x LO (while
beating LO's latency by 1-2 s); PeerReview is by far the most expensive
(~20x LO in the paper's setup).
"""

from benchmarks.conftest import print_table, run_once
from repro.experiments.fig9_bandwidth import run_fig9

NUM_NODES = 60
TX_RATE = 10.0


def test_fig9_bandwidth_comparison(benchmark):
    result = run_once(
        benchmark,
        run_fig9,
        num_nodes=NUM_NODES,
        tx_rate_per_s=TX_RATE,
        workload_duration_s=15.0,
    )
    by_protocol = result.by_protocol()
    rows = [
        (
            row.protocol,
            f"{row.overhead_bytes / 1e6:.2f}",
            f"{row.overhead_bytes_per_node_per_s / 1e3:.2f}",
            f"{row.ratio_vs_lo:.1f}x",
            f"{row.mean_latency_s:.2f}",
        )
        for row in result.rows
    ]
    print_table(
        f"Fig. 9 -- bandwidth overhead, {NUM_NODES} nodes @ {TX_RATE} tx/s"
        " (tx content bytes excluded)",
        ("protocol", "overhead_MB", "KB/node/s", "vs_LO", "mean_latency_s"),
        rows,
    )
    lo = by_protocol["lo"]
    flood = by_protocol["flood"]
    narwhal = by_protocol["narwhal"]
    peerreview = by_protocol["peerreview"]
    # The paper's ordering and rough factors.
    assert flood.overhead_bytes >= 3.5 * lo.overhead_bytes
    assert narwhal.overhead_bytes > flood.overhead_bytes
    assert peerreview.overhead_bytes > narwhal.overhead_bytes
    # Narwhal trades bandwidth for latency: ~1-2 s faster than LO.
    assert narwhal.mean_latency_s < lo.mean_latency_s
