"""Fig. 10: average sketch reconciliations per minute vs workload.

Paper shape: the decode count per node per minute grows with the tx rate
but stays bounded (hash-partitioning turns would-be giant decodes into a
handful of capacity-bounded ones).
"""

from benchmarks.conftest import print_table, run_once
from repro.experiments.fig10_reconciliations import run_fig10

WORKLOADS = [60, 180, 420, 900]
NUM_NODES = 30


def test_fig10_reconciliation_rate(benchmark):
    result = run_once(
        benchmark,
        run_fig10,
        workloads_tx_per_minute=WORKLOADS,
        num_nodes=NUM_NODES,
        duration_s=30.0,
    )
    rows = [
        (
            f"{p.tx_per_minute:.0f}",
            f"{p.reconciliations_per_node_per_min:.1f}",
            f"{p.failures_per_node_per_min:.1f}",
            f"{p.failure_fraction:.1%}",
        )
        for p in result.points
    ]
    print_table(
        f"Fig. 10 -- sketch reconciliations per node per minute, {NUM_NODES} nodes",
        ("tx/min", "reconciliations/min", "failures/min", "failure_frac"),
        rows,
    )
    rates = [p.reconciliations_per_node_per_min for p in result.points]
    # Grows with workload...
    assert rates[-1] > rates[0]
    # ...but stays bounded: 3 sync targets/s = 180 base attempts/min; the
    # partition fallback must keep the decode count the same order of
    # magnitude, not blow it up.
    assert rates[-1] < 800
    # Failures stay a modest fraction of decodes at every workload.
    assert all(p.failure_fraction < 0.5 for p in result.points)
