#!/usr/bin/env python3
"""Bandwidth overhead: LO vs Flood vs PeerReview vs Narwhal (Fig. 9).

All four mempool protocols run the same Ethereum-like workload on the same
topology and latency model; transaction content bytes are excluded from
the overhead numbers (they are identical across protocols).

Run:  python examples/bandwidth_comparison.py
"""

from repro.experiments.fig9_bandwidth import run_fig9


def main() -> None:
    print("Fig. 9 reproduction: protocol overhead, 60 nodes @ 10 tx/s, 15 s\n")
    result = run_fig9(num_nodes=60, tx_rate_per_s=10.0,
                      workload_duration_s=15.0)
    header = (
        f"{'protocol':<12} {'overhead':>10} {'per node':>12}"
        f" {'vs LO':>7} {'latency':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in result.rows:
        print(
            f"{row.protocol:<12}"
            f" {row.overhead_bytes / 1e6:>8.2f}MB"
            f" {row.overhead_bytes_per_node_per_s / 1e3:>9.2f}KB/s"
            f" {row.ratio_vs_lo:>6.1f}x"
            f" {row.mean_latency_s:>8.2f}s"
        )
    print(
        "\npaper shape: LO cheapest; Flood >=4x LO; Narwhal trades 7-10x"
        "\nLO's bandwidth for 1-2 s better latency; PeerReview costs the"
        "\nmost by a wide margin (witness log replication)."
    )


if __name__ == "__main__":
    main()
