#!/usr/bin/env python3
"""Quickstart: a small LO network end to end.

Builds a 30-node LO overlay (Bitcoin-like degrees, synthetic 32-city
latencies), injects an Ethereum-like transaction workload, lets the
mempool reconciliation run, produces a few blocks with random leaders, and
prints what the accountable base layer guarantees: converged mempools,
signed commitments everywhere, canonical blocks that pass inspection, and
zero blames in an all-correct network.

Run:  python examples/quickstart.py
"""

import statistics

from repro.core.config import LOConfig
from repro.experiments.harness import LOSimulation, SimulationParams


def main() -> None:
    config = LOConfig(mean_block_time_s=6.0)
    sim = LOSimulation(
        SimulationParams(num_nodes=30, seed=7, config=config,
                         enable_blocks=True)
    )
    num_txs = sim.inject_workload(rate_per_s=10.0, duration_s=20.0)
    print(f"injected {num_txs} transactions over 20 s across 30 nodes")
    sim.run(35.0)

    # 1. Mempool convergence.
    latencies = sim.mempool_tracker.all_latencies()
    fully_converged = sum(
        1
        for tx in sim.mempool_tracker.items()
        if sim.convergence_fraction(tx) == 1.0
    )
    print(f"\n-- mempool reconciliation --")
    print(f"transactions fully converged: {fully_converged}/{num_txs}")
    print(f"mean inclusion latency: {statistics.mean(latencies):.2f} s "
          f"(paper: ~1.14 s)")

    # 2. Commitments.
    node = sim.nodes[0]
    print(f"\n-- commitments (node 0) --")
    print(f"committed bundles: {node.seq}, transactions: {len(node.log)}")
    header = node.header()
    print(f"current header: seq={header.seq}, clock_total={header.clock.total},"
          f" wire={header.wire_size()} B, signature_valid={header.signature_valid()}")

    # 3. Blocks.
    ledger = node.ledger
    print(f"\n-- blocks --")
    print(f"chain height: {ledger.height}")
    for h in range(ledger.height + 1):
        block = ledger.block_at(h)
        creator = sim.directory.id_of(block.creator)
        print(f"  block {h}: {len(block.tx_ids)} txs, creator node {creator},"
              f" pinned commitment seq {block.commit_seq}")

    # 4. Accountability: accuracy (no blames among correct nodes).
    exposures = sum(len(n.acct.exposed) for n in sim.nodes.values())
    suspicions = sum(len(n.acct.suspected) for n in sim.nodes.values())
    print(f"\n-- accountability --")
    print(f"exposures: {exposures}, lingering suspicions: {suspicions} "
          f"(all-correct network: both must be 0)")
    print(f"blocks inspected across the network: "
          f"{sim.counter.total('blocks_inspected')}")
    print(f"protocol overhead: {sim.total_overhead_bytes() / 1e6:.2f} MB; "
          f"tx payload: {sim.network.total_payload_bytes() / 1e6:.2f} MB")

    assert exposures == 0 and suspicions == 0
    print("\nOK: accountable base layer ran cleanly.")


if __name__ == "__main__":
    main()
