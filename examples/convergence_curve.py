#!/usr/bin/env python3
"""Transaction convergence curves (the story behind Fig. 7).

Tracks single transactions as they spread through the overlay, sampling
the fraction of miners that committed them every 250 ms, and prints the
coverage curve plus the reconciliation-hop depth at which each miner
learned them.

Run:  python examples/convergence_curve.py
"""

import statistics

from repro.experiments.fig7_mempool_latency import dissemination_hops
from repro.experiments.harness import LOSimulation, SimulationParams
from repro.metrics.probes import ConvergenceProbe


def main() -> None:
    sim = LOSimulation(SimulationParams(num_nodes=60, seed=17))
    probe = ConvergenceProbe(
        sim.loop, coverage_of=sim.convergence_fraction, period_s=0.25
    )
    probe.start()
    tracked = []

    def create(origin):
        tx = sim.nodes[origin].create_transaction(fee=20)
        probe.track(tx.sketch_id)
        tracked.append(tx)

    for i, origin in enumerate((0, 17, 42)):
        sim.loop.call_at(1.0 + 4.0 * i, create, origin)
    sim.run(25.0)

    print("convergence curves (fraction of 60 miners holding the tx):\n")
    for tx in tracked:
        curve = probe.curve(tx.sketch_id)
        full_at = probe.time_to_coverage(tx.sketch_id)
        points = "  ".join(f"{t:.2f}s:{c:.0%}" for t, c in curve[:9])
        print(f"tx {tx.txid.hex()[:8]}  {points}")
        print(f"  -> full coverage after {full_at:.2f}s\n")

    hops = dissemination_hops(sim)
    print(f"reconciliation hops to reach a miner: mean {statistics.mean(hops):.1f},"
          f" max {max(hops)}")
    print("(paper: convergence after interacting with 5-6 nodes;"
          " mean discovery 1.14 s)")


if __name__ == "__main__":
    main()
