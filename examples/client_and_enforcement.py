#!/usr/bin/env python3
"""Light clients and enforcement (paper sections 2.3 stage I and 5.4).

A light client submits transactions to miners and collects signed
acknowledgements; a stage-I censor fake-acks and withholds, which the
client catches by comparing acks against status queries.  On top of the
detection layer, the section 5.4 enforcement levers fire: stake slashing,
network eviction, leader ineligibility and block rejection.

Run:  python examples/client_and_enforcement.py
"""

from repro.attacks import OffChannelNode
from repro.attacks.blockattacks import ReorderingNode, make_block_attacker_factory
from repro.core.client import LightClient
from repro.core.enforcement import EnforcementManager
from repro.experiments.harness import LOSimulation, SimulationParams


def stage1_censorship_demo() -> None:
    print("== stage-I censorship caught by the client ==")

    def factory(**kwargs):
        node = OffChannelNode(**kwargs)
        node.peers_off_channel = set()
        node.launder = True
        node.intercept_fee_min = 100
        return node

    sim = LOSimulation(
        SimulationParams(num_nodes=12, seed=21, malicious_ids=[0],
                         attacker_factory=factory)
    )
    client = LightClient(sim.loop, sim.network, seed=b"demo-client")
    tx = client.make_transaction(fee=750)
    client.submit(tx, miners=[0, 3])  # one censor, one honest miner
    sim.run(3.0)
    acks = client.acks_for(tx)
    print(f"submitted fee={tx.fee} tx to miners 0 and 3;"
          f" acks received: {len(acks)} (all signed+accepted:"
          f" {all(a.accepted and a.verify() for a in acks)})")
    client.query_status(tx.sketch_id, miner=0)
    client.query_status(tx.sketch_id, miner=3)
    sim.run(6.0)
    contradicted = client.contradicted_acks(tx)
    print(f"status at censor (miner 0):"
          f" {[r.status for r in client.status_replies[tx.sketch_id] if sim.directory.id_of(r.miner) == 0]}")
    print(f"contradicted acks (signed evidence of stage-I censorship):"
          f" {len(contradicted)}")
    assert len(contradicted) == 1


def enforcement_demo() -> None:
    print("\n== section 5.4 enforcement after a re-ordering attack ==")
    sim = LOSimulation(
        SimulationParams(
            num_nodes=15, seed=22, malicious_ids=[0],
            attacker_factory=make_block_attacker_factory(ReorderingNode),
        )
    )
    manager = EnforcementManager(sim.directory)
    for node in sim.nodes.values():
        manager.attach(node)
    sim.inject_workload(rate_per_s=4.0, duration_s=8.0)
    sim.run(14.0)
    sim.nodes[0].on_leader_elected()  # the attack
    sim.run(30.0)
    attacker_key = sim.directory.key_of(0)
    print(f"attacker stake after slashing:"
          f" {manager.slashing.stake_of(attacker_key):.0f}"
          f" / {manager.slashing.initial_stake}")
    print(f"neighbour evictions applied: {manager.report.evictions}")
    print(f"still eligible for leadership: {manager.leader_eligible(0)}")
    # A repeat offense is now rejected outright.
    sim.nodes[0].on_leader_elected()
    sim.run(sim.loop.now + 10.0)
    report = manager.finalize_report()
    print(f"repeat-offender blocks rejected before settlement:"
          f" {report.rejected_blocks}")
    assert report.total_slashed > 0
    assert not manager.leader_eligible(0)
    assert report.rejected_blocks > 0


def main() -> None:
    stage1_censorship_demo()
    enforcement_demo()
    print("\nOK: client-side evidence and enforcement levers all firing.")


if __name__ == "__main__":
    main()
