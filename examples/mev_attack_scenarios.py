#!/usr/bin/env python3
"""MEV attack scenarios and their detection (paper sections 2.2, 4.3, 5).

Runs the three transaction-manipulation primitives through a faulty block
creator and shows LO's inspection attributing each one:

* injection       -> uncommitted-tx-in-body (front-running style)
* re-ordering     -> order-deviation (fee-sorting the block)
* blockspace censorship -> missing-committed-tx

and finally a collusion scenario (section 5.3): an attacker learns a
transaction off-channel, launders it as a fake 'local' submission, and is
implicated by commitment-chain tracing.

Run:  python examples/mev_attack_scenarios.py
"""

from repro.attacks import OffChannelNode, trace_commitment_chain
from repro.attacks.blockattacks import (
    BlockspaceCensorNode,
    InjectingNode,
    ReorderingNode,
    make_block_attacker_factory,
)
from repro.experiments.harness import LOSimulation, SimulationParams


def run_block_attack(name, attacker_cls, censor_predicate=None):
    factory = make_block_attacker_factory(attacker_cls, censor_predicate)
    sim = LOSimulation(
        SimulationParams(num_nodes=20, seed=11, malicious_ids=[0],
                         attacker_factory=factory)
    )
    sim.inject_workload(rate_per_s=5.0, duration_s=8.0)
    sim.run(14.0)                      # converge mempools
    sim.nodes[0].on_leader_elected()   # the attacker wins leadership
    sim.run(30.0)                      # blocks + blames propagate

    key = sim.directory.key_of(0)
    exposed_by = [
        nid for nid in sim.correct_ids if sim.nodes[nid].acct.is_exposed(key)
    ]
    kinds = set()
    for nid in exposed_by:
        blame = sim.nodes[nid].acct.exposed[key]
        if blame.block_violation is not None:
            violation = blame.block_violation.violation
            kinds.add(violation.kind)
    print(f"\n== {name} ==")
    block = sim.nodes[0].ledger.block_at(0)
    print(f"attacker's block: {len(block.tx_ids)} txs at height 0")
    print(f"exposed by {len(exposed_by)}/{len(sim.correct_ids)} correct nodes")
    for kind in kinds:
        print(f"violation: {kind.value}  "
              f"(policy broken: {kind.policy.value}; "
              f"manipulation: {kind.manipulation.value})")
    assert len(exposed_by) == len(sim.correct_ids)
    return kinds


def run_collusion():
    print("\n== off-channel collusion (section 5.3 + stage-I interception) ==")

    def factory(**kwargs):
        node = OffChannelNode(**kwargs)
        node.peers_off_channel = {0, 1} - {kwargs["node_id"]}
        node.launder = True
        node.intercept_fee_min = 500  # steal juicy client transactions
        return node

    sim = LOSimulation(
        SimulationParams(num_nodes=20, seed=13, malicious_ids=[0, 1],
                         attacker_factory=factory)
    )
    sim.inject_workload(rate_per_s=3.0, duration_s=5.0)

    # A client submits a high-fee transaction to miner B (node 1).  B
    # fake-acks it, never commits it, and slips it to C (node 0)
    # off-channel -- Fig. 5's covert edge.
    from repro.crypto import KeyPair
    from repro.mempool import make_transaction

    client = KeyPair.generate(seed=b"victim-client")
    state = {}

    def submit():
        tx = make_transaction(client, 1, fee=900, created_at=sim.loop.now)
        accepted = sim.nodes[1].receive_client_transaction(tx)
        state["tx"] = tx
        state["acked"] = accepted

    def strike():
        attacker = sim.nodes[0]
        tx = state["tx"]
        state["covert"] = (
            tx.sketch_id in attacker.stolen and tx.sketch_id not in attacker.log
        )
        attacker.on_leader_elected()  # launders the stolen tx as 'local'

    sim.loop.call_at(1.0, submit)
    sim.loop.call_at(3.0, strike)
    sim.run(25.0)

    tx = state["tx"]
    print(f"client submitted fee={tx.fee} tx to miner B (node 1);"
          f" fake-acked: {state['acked']}")
    print(f"creator C (node 0) held it covertly before building:"
          f" {state['covert']}")
    block = sim.nodes[0].ledger.block_at(0)
    print(f"C's block contains the stolen tx: {tx.sketch_id in block.tx_ids}")
    result = trace_commitment_chain(
        sim.nodes, tx.sketch_id, block_creator=0, true_origin=1,
        client_submitted_to=1,
    )
    print("commitment-chain trace from block creator:")
    for step in result.chain:
        source = (
            "local claim" if step.claims_local else f"from node {step.source_peer}"
        )
        print(f"  node {step.node_id}: bundle {step.bundle_index} ({source})")
    print(f"verdict: culprit=node {result.culprit} -- {result.reason}")
    assert result.culprit == 0


def main() -> None:
    from repro.core.policies import ViolationKind

    kinds = run_block_attack("injection (front-running)", InjectingNode)
    assert ViolationKind.UNCOMMITTED_TX_IN_BODY in kinds
    kinds = run_block_attack("re-ordering (fee-sorted block)", ReorderingNode)
    assert ViolationKind.ORDER_DEVIATION in kinds
    kinds = run_block_attack(
        "blockspace censorship", BlockspaceCensorNode,
        censor_predicate=lambda i: i % 2 == 0,
    )
    assert ViolationKind.MISSING_COMMITTED_TX in kinds
    run_collusion()
    print("\nOK: every manipulation primitive detected and attributed.")


if __name__ == "__main__":
    main()
