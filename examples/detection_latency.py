#!/usr/bin/env python3
"""Detection latency under colluding censors (the Fig. 6 experiment).

Sweeps the fraction of colluding malicious miners (censoring transactions,
dropping blame gossip, and equivocating when they respond) and reports how
long it takes for every correct node to (a) suspect and (b) hold a
verifiable exposure of every attacker.

Run:  python examples/detection_latency.py
"""

from repro.experiments.fig6_detection import run_fig6


def main() -> None:
    print("Fig. 6 reproduction: detection time vs fraction of colluding censors")
    print("(50 nodes; attackers ignore requests, drop blames, equivocate)\n")
    result = run_fig6(num_nodes=50, fractions=[0.1, 0.2, 0.3, 0.4])
    header = (
        f"{'malicious':>10} {'first_exposure':>15} {'exposure_all':>13}"
        f" {'spread':>7} {'suspicion_all':>14}"
    )
    print(header)
    print("-" * len(header))
    for p in result.points:
        print(
            f"{p.malicious_fraction:>10.0%}"
            f" {p.first_exposure_at:>14.2f}s"
            f" {p.exposure_convergence_at:>12.2f}s"
            f" {p.exposure_spread_s:>6.2f}s"
            f" {p.suspicion_convergence_at:>13.2f}s"
        )
    print(
        "\npaper shape: exposure convergence lands ~6-7 s after the first"
        "\ndetection and degrades mildly with more colluders; suspicion is"
        "\nslower because it waits on the 1 s timeout x 3 retries."
    )


if __name__ == "__main__":
    main()
