#!/usr/bin/env python3
"""Ordering fairness: FIFO (LO) vs Highest-Fee block building (Fig. 8).

LO's canonical policy includes every committed transaction in received
order; today's fee-priority policy auctions scarce blockspace, starving
low-fee transactions.  This example reproduces the Fig. 8 comparison and
prints an ASCII latency histogram so the fat tail is visible.

Run:  python examples/block_ordering_fairness.py
"""

from repro.experiments.fig8_block_latency import run_policy
from repro.metrics import Histogram


def ascii_histogram(latencies, low=0.0, high=60.0, bins=12, width=44):
    hist = Histogram(low, high, bins)
    hist.add_all(latencies)
    peak = max(hist.counts) or 1
    lines = []
    for i, count in enumerate(hist.counts):
        lo = low + i * (high - low) / bins
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  {lo:5.1f}s |{bar:<{width}}| {count}")
    if hist.overflow:
        lines.append(f"  >{high:4.0f}s |{'#' * 3:<{width}}| {hist.overflow}")
    return "\n".join(lines)


def main() -> None:
    print("Fig. 8 reproduction: tx-to-block latency by ordering policy")
    print("(40 nodes, 5 tx/s, 12 s per-miner block time, 4 proposers)\n")
    results = {}
    for policy in ("fifo", "highest_fee"):
        results[policy] = run_policy(
            policy, num_nodes=40, tx_rate_per_s=5.0, workload_duration_s=60.0
        )
    for policy, outcome in results.items():
        s = outcome.summary
        print(f"== {policy} ==")
        print(
            f"mean {s['mean']:.1f}s  p50 {s['p50']:.1f}s  p90 {s['p90']:.1f}s"
            f"  p99 {s['p99']:.1f}s  std {s['std']:.1f}s"
        )
        print(ascii_histogram(outcome.latencies))
        print()
    fifo = results["fifo"].summary
    fee = results["highest_fee"].summary
    print(
        f"mean ratio highest_fee/fifo: {fee['mean'] / fifo['mean']:.1f}x"
        f" (paper: ~2.5x); std ratio: {fee['std'] / fifo['std']:.1f}x"
    )
    print(
        "LO's FIFO serves every transaction within a block or two;"
        " fee priority leaves a starved low-fee tail."
    )


if __name__ == "__main__":
    main()
