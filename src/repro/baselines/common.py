"""Shared plumbing for baseline mempool protocols.

:class:`BaseMempoolNode` provides what every mempool protocol needs --
transaction creation/storage, latency tracking, neighbour lists -- so each
baseline only implements its dissemination strategy.
:class:`BaselineSimulation` mirrors :class:`~repro.experiments.harness.
LOSimulation` (same topology, latencies and workload) for any node class.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set, Type

from repro.crypto.keys import KeyPair
from repro.mempool.transaction import Transaction, make_transaction
from repro.metrics import LatencyTracker
from repro.net.latency import CityLatencyModel, LatencyModel
from repro.net.message import ENVELOPE_BYTES, Message
from repro.net.network import Endpoint, Network
from repro.net.topology import TopologyBuilder
from repro.sim.loop import EventLoop
from repro.sim.rng import SeededRng
from repro.workload import EthereumTraceGenerator

TX_HASH_BYTES = 32     # an announced transaction id on the wire
SIGNATURE_BYTES = 64   # one signature
AUTH_BYTES = 96        # a PeerReview authenticator (hash + seq + signature)


class BaseMempoolNode(Endpoint):
    """Common state for a baseline mempool node."""

    def __init__(
        self,
        node_id: int,
        loop: EventLoop,
        network: Network,
        neighbors: Set[int],
        rng: random.Random,
        num_nodes: int,
        tracker: Optional[LatencyTracker] = None,
    ):
        self.node_id = node_id
        self.loop = loop
        self.network = network
        self.neighbors = set(neighbors)
        self.rng = rng
        self.num_nodes = num_nodes
        self.tracker = tracker
        self.keypair = KeyPair.generate(seed=f"baseline-node-{node_id}".encode())
        self.txs: Dict[int, Transaction] = {}   # sketch_id -> Transaction
        self.known_ids: Set[int] = set()
        self._nonce = 0

    @property
    def now(self) -> float:
        return self.loop.now

    def start(self) -> None:
        """Hook for periodic protocols; default no-op."""

    def create_transaction(self, fee: int, size_bytes: int = 250) -> Transaction:
        """Create a local transaction and hand it to the protocol."""
        self._nonce += 1
        tx = make_transaction(self.keypair, self._nonce, fee, self.now, size_bytes)
        if self.tracker is not None:
            self.tracker.record_created(tx.sketch_id, self.now)
        self._store(tx)
        self.on_new_local_tx(tx)
        return tx

    def _store(self, tx: Transaction) -> bool:
        """Record a transaction; returns False for duplicates."""
        if tx.sketch_id in self.known_ids:
            return False
        self.known_ids.add(tx.sketch_id)
        self.txs[tx.sketch_id] = tx
        if self.tracker is not None:
            self.tracker.record_seen(tx.sketch_id, self.node_id, self.now)
        return True

    def on_new_local_tx(self, tx: Transaction) -> None:
        """Protocol-specific dissemination of a locally created tx."""
        raise NotImplementedError

    def send(
        self, peer: int, msg_type: str, payload, body_bytes: int,
        is_overhead: bool = True,
    ) -> None:
        """Send with the standard envelope added."""
        self.network.send(
            self.node_id, peer, msg_type, payload,
            wire_bytes=body_bytes + ENVELOPE_BYTES, is_overhead=is_overhead,
        )


class BaselineSimulation:
    """Harness running any :class:`BaseMempoolNode` subclass."""

    def __init__(
        self,
        node_cls: Type[BaseMempoolNode],
        num_nodes: int = 100,
        seed: int = 42,
        out_degree: int = 8,
        max_in_degree: int = 125,
        latency_model: Optional[LatencyModel] = None,
        node_kwargs: Optional[dict] = None,
    ):
        self.num_nodes = num_nodes
        self.rng = SeededRng(seed)
        self.loop = EventLoop()
        latency = latency_model or CityLatencyModel(
            num_nodes, self.rng.stream("latency")
        )
        self.network = Network(self.loop, latency)
        self.tracker = LatencyTracker()
        builder = TopologyBuilder(
            num_nodes, self.rng.stream("topology"),
            out_degree=out_degree, max_in_degree=max_in_degree,
        )
        self.topology = builder.build()
        self.nodes: Dict[int, BaseMempoolNode] = {}
        for node_id in range(num_nodes):
            node = node_cls(
                node_id=node_id,
                loop=self.loop,
                network=self.network,
                neighbors=self.topology[node_id],
                rng=self.rng.fork(f"node-{node_id}").stream("behaviour"),
                num_nodes=num_nodes,
                tracker=self.tracker,
                **(node_kwargs or {}),
            )
            self.network.register(node)
            self.nodes[node_id] = node
        for node in self.nodes.values():
            node.start()

    def inject_workload(
        self, rate_per_s: float, duration_s: float, tx_size_bytes: int = 250
    ) -> int:
        """Same Poisson/Ethereum-like workload as the LO harness."""
        generator = EthereumTraceGenerator(
            num_nodes=self.num_nodes,
            rate_per_s=rate_per_s,
            rng=self.rng.stream("workload"),
            mean_size_bytes=tx_size_bytes,
        )
        count = 0
        for trace_tx in generator.stream(duration_s):
            self.loop.call_at(
                trace_tx.at_time,
                self._inject_one,
                trace_tx.origin,
                trace_tx.fee,
                trace_tx.size_bytes,
            )
            count += 1
        return count

    def _inject_one(self, origin: int, fee: int, size_bytes: int) -> None:
        self.nodes[origin].create_transaction(fee=fee, size_bytes=size_bytes)

    def run(self, until: float) -> None:
        """Advance simulated time."""
        self.loop.run_until(until)

    def total_overhead_bytes(self) -> int:
        """Protocol overhead bytes sent network-wide."""
        return self.network.total_overhead_bytes()

    def convergence_fraction(self, sketch_id: int) -> float:
        """Fraction of nodes holding a given transaction."""
        have = sum(1 for n in self.nodes.values() if sketch_id in n.known_ids)
        return have / self.num_nodes
