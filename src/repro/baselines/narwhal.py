"""Narwhal: DAG-based mempool with certified batches.

The Fig. 9 'Narwhal' baseline (Danezis et al., EuroSys 2022), implemented
as the paper describes its comparison setup: "each node creates batches of
recent transactions every 0.5 seconds and reliably broadcasts them.  A
batch, upon receiving acknowledgments from over two-thirds of the network,
is then incorporated into a header.  The header is broadcast to the
network.  Peers who are missing any batch from the header have the option
to directly request it from the originator."

Cost shape: every batch triggers N broadcasts, ~2N/3 signed acks back to
the creator, and an N-wide header broadcast whose certificate carries 2N/3
signatures -- "7 to 10 times greater" bandwidth than LO at 200 nodes, per
the paper, because certification traffic grows with the committee size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.baselines.common import (
    BaseMempoolNode,
    SIGNATURE_BYTES,
    TX_HASH_BYTES,
)
from repro.mempool.transaction import Transaction
from repro.net.message import Message

BATCH_INTERVAL_S = 0.5
DIGEST_BYTES = 32


@dataclass(frozen=True)
class Batch:
    """A broadcast batch of transactions."""

    creator: int
    batch_seq: int
    txs: Tuple[Transaction, ...]

    @property
    def digest_key(self) -> Tuple[int, int]:
        return (self.creator, self.batch_seq)


@dataclass(frozen=True)
class Header:
    """A certified header referencing one batch.

    The certificate is modelled as the quorum size (each member costs one
    signature on the wire); signature validity is assumed, as the paper's
    comparison only measures bandwidth.
    """

    creator: int
    batch_seq: int
    quorum: int


class NarwhalNode(BaseMempoolNode):
    """Batch -> ack -> certificate -> header pipeline."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._pending: List[Transaction] = []
        self._batch_seq = 0
        self._acks: Dict[int, Set[int]] = {}        # batch_seq -> ack senders
        self._certified: Set[int] = set()
        self._my_batches: Dict[int, Batch] = {}
        self._known_batches: Dict[Tuple[int, int], Batch] = {}

    def start(self) -> None:
        self.loop.call_later(
            BATCH_INTERVAL_S * self.rng.random(), self._batch_tick
        )

    @property
    def quorum_size(self) -> int:
        """Strictly more than two-thirds of the network."""
        return (2 * self.num_nodes) // 3 + 1

    def on_new_local_tx(self, tx: Transaction) -> None:
        self._pending.append(tx)

    # -------------------------------------------------------------- batches

    def _batch_tick(self) -> None:
        self.loop.call_later(BATCH_INTERVAL_S, self._batch_tick)
        if not self._pending:
            return
        batch = Batch(
            creator=self.node_id,
            batch_seq=self._batch_seq,
            txs=tuple(self._pending),
        )
        self._batch_seq += 1
        self._pending = []
        self._my_batches[batch.batch_seq] = batch
        self._known_batches[batch.digest_key] = batch
        self._acks[batch.batch_seq] = {self.node_id}
        payload_bytes = sum(tx.wire_size() for tx in batch.txs)
        for peer in range(self.num_nodes):
            if peer == self.node_id:
                continue
            # Batch envelope (digest + seq) is overhead; tx bytes are not.
            self.send(peer, "nw/batch", batch, DIGEST_BYTES + 8)
            self.send(peer, "nw/batch_payload", batch.digest_key,
                      payload_bytes, is_overhead=False)

    def on_message(self, message: Message) -> None:
        if message.msg_type == "nw/batch":
            batch: Batch = message.payload
            if batch.digest_key not in self._known_batches:
                self._known_batches[batch.digest_key] = batch
                for tx in batch.txs:
                    self._store(tx)
            self.send(message.sender, "nw/ack",
                      (batch.creator, batch.batch_seq),
                      DIGEST_BYTES + SIGNATURE_BYTES)
        elif message.msg_type == "nw/batch_payload":
            pass  # payload bytes are accounted on the wire; content is in nw/batch
        elif message.msg_type == "nw/ack":
            creator, batch_seq = message.payload
            if creator != self.node_id or batch_seq in self._certified:
                return
            acks = self._acks.setdefault(batch_seq, {self.node_id})
            acks.add(message.sender)
            if len(acks) >= self.quorum_size:
                self._certified.add(batch_seq)
                self._broadcast_header(batch_seq, len(acks))
        elif message.msg_type == "nw/header":
            header: Header = message.payload
            key = (header.creator, header.batch_seq)
            if key not in self._known_batches:
                self.send(header.creator, "nw/batch_request", key,
                          DIGEST_BYTES)
        elif message.msg_type == "nw/batch_request":
            key = message.payload
            batch = self._known_batches.get(key)
            if batch is not None:
                self.send(message.sender, "nw/batch", batch,
                          DIGEST_BYTES + 8)
                self.send(
                    message.sender, "nw/batch_payload", key,
                    sum(tx.wire_size() for tx in batch.txs),
                    is_overhead=False,
                )

    def _broadcast_header(self, batch_seq: int, quorum: int) -> None:
        header = Header(self.node_id, batch_seq, quorum)
        # Header = batch digest + certificate of `quorum` signatures.
        header_bytes = DIGEST_BYTES + 8 + quorum * SIGNATURE_BYTES
        for peer in range(self.num_nodes):
            if peer != self.node_id:
                self.send(peer, "nw/header", header, header_bytes)
