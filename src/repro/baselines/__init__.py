"""Baseline mempool protocols for the Fig. 9 bandwidth comparison.

Section 6.4 compares LO against:

* **Flood** -- "the standard mempool exchange method where miners relay a
  'Mempool' message listing their current transaction hashes.  Receivers
  subsequently request any transactions they don't recognize."
* **PeerReview** (Haeberlen et al., SOSP 2007) -- "a universal
  accountability protocol, where each miner maintains a message log, with
  eight random witnesses assigned per miner.  These witnesses periodically
  retrieve and review miners' logs."
* **Narwhal** (Danezis et al., EuroSys 2022) -- "a DAG-based mempool
  protocol ... each node creates batches of recent transactions every 0.5
  seconds and reliably broadcasts them.  A batch, upon receiving
  acknowledgments from over two-thirds of the network, is then incorporated
  into a header.  The header is broadcast to the network."

All three run on the same simulator, topology and workload as LO; overhead
accounting likewise excludes transaction content bytes.
"""

from repro.baselines.common import BaseMempoolNode, BaselineSimulation
from repro.baselines.flood import FloodNode
from repro.baselines.peerreview import PeerReviewNode
from repro.baselines.narwhal import NarwhalNode

__all__ = [
    "BaseMempoolNode",
    "BaselineSimulation",
    "FloodNode",
    "NarwhalNode",
    "PeerReviewNode",
]
