"""PeerReview: generic accountability via tamper-evident logs + witnesses.

The Fig. 9 'PeerReview' baseline (Haeberlen et al., SOSP 2007): "each miner
maintains a message log, with eight random witnesses assigned per miner.
These witnesses periodically retrieve and review miners' logs for any
indications of malicious activity, whether it be injection (commission) or
censorship (omission)."

Faithful cost model on top of the flooding relay (PeerReview wraps a
reference protocol; the mempool reference protocol *is* flooding):

* every protocol message carries an authenticator (signed hash-chain head,
  ~96 B) and is acknowledged with another authenticator;
* each node appends SEND/RECV entries to a hash-chained log;
* every audit period each witness fetches the log entries it has not seen
  yet (~72 B per entry on the wire) and replays them against the reference
  automaton (checked here by re-validating the hash chain).

The resulting overhead -- two authenticators per message plus an 8x
witness fan-out of per-message log entries -- is what makes PeerReview
roughly 20x more expensive than LO in the paper's comparison.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.common import AUTH_BYTES, BaseMempoolNode, TX_HASH_BYTES
from repro.baselines.flood import ANNOUNCE_DELAY_S, FloodNode
from repro.mempool.transaction import Transaction
from repro.net.message import Message

LOG_ENTRY_WIRE_BYTES = 40     # content hash (32) + seq/type/peer packed (8)
AUDIT_INTERVAL_S = 2.0
NUM_WITNESSES = 8


@dataclass(frozen=True)
class LogEntry:
    """One tamper-evident log record."""

    seq: int
    kind: str          # "send" | "recv"
    peer: int
    msg_type: str
    digest: bytes      # hash-chain head after this entry


class PeerReviewNode(FloodNode):
    """Flooding relay wrapped with PeerReview logging and witnessing."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.log_entries: List[LogEntry] = []
        self._chain_head = b"\x00" * 32
        self.witnesses: List[int] = self._pick_witnesses()
        self._witness_cursor: Dict[int, int] = {}  # audited node -> entries seen
        self._witness_head: Dict[int, bytes] = {}  # audited node -> last digest
        self.audit_failures = 0

    def _pick_witnesses(self) -> List[int]:
        """Deterministic pseudo-random witness set for this node."""
        seed = hashlib.sha256(f"witnesses-{self.node_id}".encode()).digest()
        picks: List[int] = []
        counter = 0
        while len(picks) < min(NUM_WITNESSES, self.num_nodes - 1):
            candidate = int.from_bytes(
                hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()[:4],
                "big",
            ) % self.num_nodes
            counter += 1
            if candidate != self.node_id and candidate not in picks:
                picks.append(candidate)
        return picks

    def start(self) -> None:
        self.loop.call_later(
            AUDIT_INTERVAL_S * (0.5 + self.rng.random()), self._audit_tick
        )

    # ------------------------------------------------------------- logging

    def _append_log(self, kind: str, peer: int, msg_type: str) -> LogEntry:
        payload = f"{kind}|{peer}|{msg_type}|{len(self.log_entries)}".encode()
        self._chain_head = hashlib.sha256(self._chain_head + payload).digest()
        entry = LogEntry(
            seq=len(self.log_entries),
            kind=kind,
            peer=peer,
            msg_type=msg_type,
            digest=self._chain_head,
        )
        self.log_entries.append(entry)
        return entry

    def send(self, peer, msg_type, payload, body_bytes, is_overhead=True):
        if msg_type.startswith("flood/"):
            # Reference-protocol messages carry an authenticator and are
            # logged; PeerReview-internal traffic is not double-wrapped.
            self._append_log("send", peer, msg_type)
            body_bytes += AUTH_BYTES
        super().send(peer, msg_type, payload, body_bytes, is_overhead)

    def on_message(self, message: Message) -> None:
        if message.msg_type.startswith("flood/"):
            self._append_log("recv", message.sender, message.msg_type)
            # Acknowledge with an authenticator (signed log head).
            self.send(message.sender, "pr/ack", self._chain_head, AUTH_BYTES)
            super().on_message(message)
            return
        if message.msg_type == "pr/ack":
            return  # authenticators are stored by witnesses, nothing to do
        if message.msg_type == "pr/log_request":
            since = message.payload
            entries = tuple(self.log_entries[since:])
            self.send(
                message.sender, "pr/log_reply", (self.node_id, since, entries),
                LOG_ENTRY_WIRE_BYTES * max(1, len(entries)),
            )
            return
        if message.msg_type == "pr/log_reply":
            self._check_log(message.payload)
            return
        super().on_message(message)

    # ------------------------------------------------------------ witnessing

    def _audit_tick(self) -> None:
        self.loop.call_later(AUDIT_INTERVAL_S, self._audit_tick)
        # This node acts as witness for everyone who picked it; witness
        # assignment is deterministic, so recompute the reverse mapping
        # lazily from the audited side: each node audits the peers it
        # witnesses by asking for fresh log segments.
        for audited in self._audited_nodes():
            since = self._witness_cursor.get(audited, 0)
            self.send(audited, "pr/log_request", since, 8)

    def _audited_nodes(self) -> List[int]:
        """Nodes this node witnesses (reverse of _pick_witnesses)."""
        if not hasattr(self, "_audited_cache"):
            audited = []
            for candidate in range(self.num_nodes):
                if candidate == self.node_id:
                    continue
                seed = hashlib.sha256(f"witnesses-{candidate}".encode()).digest()
                picks: List[int] = []
                counter = 0
                while len(picks) < min(NUM_WITNESSES, self.num_nodes - 1):
                    pick = int.from_bytes(
                        hashlib.sha256(
                            seed + counter.to_bytes(4, "big")
                        ).digest()[:4],
                        "big",
                    ) % self.num_nodes
                    counter += 1
                    if pick != candidate and pick not in picks:
                        picks.append(pick)
                if self.node_id in picks:
                    audited.append(candidate)
            self._audited_cache = audited
        return self._audited_cache

    def _check_log(self, payload: Tuple[int, int, Tuple[LogEntry, ...]]) -> None:
        """Replay a fetched log segment: verify the tamper-evident chain.

        Each entry's digest must equal H(previous digest || entry payload);
        the witness keeps the digest where its last audit stopped, so any
        history rewrite or fork in the continuation is caught (PeerReview's
        tamper-evidence property).  Sequence numbers must also be gap-free.
        """
        audited, since, entries = payload
        cursor = self._witness_cursor.get(audited, 0)
        if since != cursor:
            return  # stale reply
        expected_seq = cursor
        head = self._witness_head.get(audited, b"\x00" * 32)
        for entry in entries:
            if entry.seq != expected_seq:
                self.audit_failures += 1
                return
            payload_bytes = (
                f"{entry.kind}|{entry.peer}|{entry.msg_type}|{entry.seq}"
            ).encode()
            head = hashlib.sha256(head + payload_bytes).digest()
            if entry.digest != head:
                self.audit_failures += 1
                return
            expected_seq += 1
        self._witness_cursor[audited] = expected_seq
        self._witness_head[audited] = head
