"""Flood: classical inventory-announcement mempool exchange.

The Fig. 9 'Flood' baseline: "miners relay a 'Mempool' message listing
their current transaction hashes.  Receivers subsequently request any
transactions they don't recognize."  This is Bitcoin's INV/GETDATA/TX
pattern: every transaction id is announced on every overlay edge, so
overhead scales with (tx rate) x (edges), which is what makes LO "at least
four times more bandwidth efficient" under the paper's workload.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.baselines.common import BaseMempoolNode, TX_HASH_BYTES
from repro.mempool.transaction import Transaction
from repro.net.message import Message

# Announcements are batched briefly (Bitcoin trickles inventories too);
# keeps the message count realistic without changing byte totals much.
ANNOUNCE_DELAY_S = 0.1


class FloodNode(BaseMempoolNode):
    """INV/GETDATA flooding relay."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._announce_queue: List[Tuple[int, int]] = []  # (sketch_id, skip_peer)
        self._flush_scheduled = False

    def on_new_local_tx(self, tx: Transaction) -> None:
        self._queue_announce(tx.sketch_id, skip_peer=-1)

    def _queue_announce(self, sketch_id: int, skip_peer: int) -> None:
        self._announce_queue.append((sketch_id, skip_peer))
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.loop.call_later(ANNOUNCE_DELAY_S, self._flush_announcements)

    def _flush_announcements(self) -> None:
        self._flush_scheduled = False
        queue, self._announce_queue = self._announce_queue, []
        if not queue:
            return
        for peer in self.neighbors:
            ids = [sid for sid, skip in queue if skip != peer]
            if ids:
                self.send(peer, "flood/inv", tuple(ids),
                          TX_HASH_BYTES * len(ids))

    def on_message(self, message: Message) -> None:
        if message.msg_type == "flood/inv":
            unknown = [i for i in message.payload if i not in self.known_ids]
            if unknown:
                self.send(message.sender, "flood/getdata", tuple(unknown),
                          TX_HASH_BYTES * len(unknown))
        elif message.msg_type == "flood/getdata":
            txs = tuple(
                self.txs[i] for i in message.payload if i in self.txs
            )
            if txs:
                self.send(
                    message.sender, "flood/tx", txs,
                    sum(tx.wire_size() for tx in txs), is_overhead=False,
                )
        elif message.msg_type == "flood/tx":
            for tx in message.payload:
                if self._store(tx):
                    self._queue_announce(tx.sketch_id, skip_peer=message.sender)
