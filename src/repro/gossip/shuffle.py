"""Periodic neighbour shuffling.

"Each peer periodically rotates its neighbors, and the peer discovery
process continues until it is provided with a sufficient number of
non-suspected and non-exposed peers" (section 5.1).  The shuffler swaps a
configurable number of a node's overlay neighbours for fresh samples each
period, respecting the out-degree budget, and drops suspected/exposed
neighbours first.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Set

from repro.gossip.sampler import PeerSampler
from repro.sim.loop import EventLoop
from repro.sim.process import PeriodicProcess


class NeighborShuffler(PeriodicProcess):
    """Rotates one node's neighbour set against the sampler."""

    def __init__(
        self,
        loop: EventLoop,
        node_id: int,
        neighbors: Set[int],
        sampler: PeerSampler,
        rng: random.Random,
        period: float = 10.0,
        swaps_per_round: int = 1,
        target_degree: int = 8,
        blocklist: Optional[Callable[[], Set[int]]] = None,
        on_change: Optional[Callable[[Set[int], Set[int]], None]] = None,
    ):
        super().__init__(
            loop, period, phase=rng.uniform(0, period), jitter=period * 0.1,
            jitter_rng=rng,
        )
        self.node_id = node_id
        self.neighbors = neighbors
        self.sampler = sampler
        self.rng = rng
        self.swaps_per_round = swaps_per_round
        self.target_degree = target_degree
        self.blocklist = blocklist or (lambda: set())
        self.on_change = on_change
        self.total_swaps = 0

    def tick(self) -> None:
        """One shuffle round: evict bad/random neighbours, refill to target."""
        blocked = self.blocklist()
        added: Set[int] = set()
        removed: Set[int] = set()
        # Evict blocked neighbours unconditionally.
        for peer in [p for p in self.neighbors if p in blocked]:
            self.neighbors.discard(peer)
            removed.add(peer)
        # Rotate a few healthy neighbours to keep the overlay mixing.
        rotatable = sorted(self.neighbors)
        for _ in range(min(self.swaps_per_round, len(rotatable))):
            peer = self.rng.choice(rotatable)
            rotatable.remove(peer)
            self.neighbors.discard(peer)
            removed.add(peer)
        # Refill from the sampler up to the degree target.
        needed = self.target_degree - len(self.neighbors)
        if needed > 0:
            fresh = self.sampler.sample(
                self.node_id, needed, exclude=blocked | self.neighbors | removed
            )
            for peer in fresh:
                self.neighbors.add(peer)
                added.add(peer)
        self.total_swaps += len(added)
        if self.on_change is not None and (added or removed):
            self.on_change(added, removed)
