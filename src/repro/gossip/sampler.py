"""Uniform Byzantine-resilient peer sampling (interface-level model).

The sampler owns the membership list and hands any node a uniform sample
over it.  Exclusion filters (per-caller blocklists of suspected/exposed
peers plus global departures) model the paper's requirement that "the peer
discovery process continues until it is provided with a sufficient number
of non-suspected and non-exposed peers" (section 5.1).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Set


class PeerSampler:
    """Uniform sampling over live membership with exclusions.

    >>> sampler = PeerSampler(range(10), random.Random(1))
    >>> peers = sampler.sample(0, 3)
    >>> len(peers), 0 in peers
    (3, False)
    """

    def __init__(self, members: Iterable[int], rng: random.Random):
        self._members: List[int] = sorted(set(members))
        if len(self._members) < 2:
            raise ValueError("sampler needs at least 2 members")
        self._departed: Set[int] = set()
        self.rng = rng

    # ------------------------------------------------------------ membership

    @property
    def members(self) -> List[int]:
        """Live members (excluding departed)."""
        return [m for m in self._members if m not in self._departed]

    def join(self, node_id: int) -> None:
        """Add (or re-add) a member."""
        if node_id not in self._members:
            self._members.append(node_id)
            self._members.sort()
        self._departed.discard(node_id)

    def leave(self, node_id: int) -> None:
        """Mark a member as departed; it stops being sampled."""
        self._departed.add(node_id)

    # --------------------------------------------------------------- sampling

    def sample(
        self,
        caller: int,
        k: int,
        exclude: Optional[Set[int]] = None,
        predicate: Optional[Callable[[int], bool]] = None,
    ) -> List[int]:
        """Up to ``k`` distinct peers, uniform over eligible membership.

        Never includes the caller or departed members; ``exclude`` is the
        caller's suspected/exposed blocklist, ``predicate`` an optional
        extra filter.  Returns fewer than ``k`` peers when the eligible
        pool is small.
        """
        if k < 0:
            raise ValueError(f"negative sample size: {k}")
        pool = [
            m
            for m in self._members
            if m != caller
            and m not in self._departed
            and (exclude is None or m not in exclude)
            and (predicate is None or predicate(m))
        ]
        if len(pool) <= k:
            return pool
        return self.rng.sample(pool, k)

    def sample_one(
        self, caller: int, exclude: Optional[Set[int]] = None
    ) -> Optional[int]:
        """A single uniform peer, or None when none is eligible."""
        picked = self.sample(caller, 1, exclude)
        return picked[0] if picked else None
