"""Brahms: Byzantine-resilient random membership sampling.

LO's system model assumes "a Byzantine-resilient uniform sampling
algorithm, such as those detailed in [Brahms, Basalt]" (section 3).  The
harness's :class:`~repro.gossip.sampler.PeerSampler` provides that
algorithm's *guarantees* directly; this module additionally provides the
algorithm itself -- a faithful single-process implementation of Brahms
(Bortnikov et al., Computer Networks 2009) -- so the assumption can be
exercised and attacked rather than merely granted.

Brahms in brief: each node keeps

* a **view** ``V`` of size ``l1``, refreshed every round by mixing
  ``alpha*l1`` pushed ids, ``beta*l1`` ids pulled from random view members,
  and ``gamma*l1`` ids from the sampler (history);
* a **sample list** ``S`` of ``l2`` :class:`MinWiseSampler` cells, each
  remembering the id with the smallest value of a private random hash over
  every id ever observed -- a uniform sample over the *union* of streams,
  immune to adversarial over-representation in any single round;
* a limited **push** budget, which (with the min-wise samplers) is what
  bounds the fraction of faulty ids that can infiltrate views.

Attack resistance hinges on the sample list: even if faulty nodes flood
pushes, a cell only adopts a faulty id if that id's private hash beats
every correct id ever seen -- probability ``f/(f+c)`` per cell,
independent of the flooding volume.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.net.message import ENVELOPE_BYTES, Message
from repro.net.network import Endpoint, Network
from repro.sim.loop import EventLoop


class MinWiseSampler:
    """One uniform-sample cell: keeps the min-hash id of the stream."""

    __slots__ = ("_salt", "_best_value", "sample")

    def __init__(self, salt: bytes):
        self._salt = salt
        self._best_value: Optional[bytes] = None
        self.sample: Optional[int] = None

    def offer(self, node_id: int) -> None:
        """Observe one id; keep it if its salted hash is the minimum."""
        value = hashlib.sha256(
            self._salt + node_id.to_bytes(8, "big", signed=False)
        ).digest()
        if self._best_value is None or value < self._best_value:
            self._best_value = value
            self.sample = node_id

    def invalidate(self) -> None:
        """Drop the current sample (e.g. the node was found dead)."""
        self._best_value = None
        self.sample = None


class BrahmsNode(Endpoint):
    """One Brahms participant on the simulated network.

    Parameters follow the paper's notation: view size ``l1``, sample-list
    size ``l2``, and the (alpha, beta, gamma) mixing weights.
    """

    def __init__(
        self,
        node_id: int,
        loop: EventLoop,
        network: Network,
        bootstrap: Iterable[int],
        rng: random.Random,
        l1: int = 16,
        l2: int = 16,
        alpha: float = 0.45,
        beta: float = 0.45,
        gamma: float = 0.10,
        round_interval_s: float = 1.0,
    ):
        if not 0.999 <= alpha + beta + gamma <= 1.001:
            raise ValueError("alpha + beta + gamma must be 1")
        self.node_id = node_id
        self.loop = loop
        self.network = network
        self.rng = rng
        self.l1 = l1
        self.l2 = l2
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.round_interval_s = round_interval_s
        self.view: List[int] = [p for p in bootstrap if p != node_id][:l1]
        self.samplers = [
            MinWiseSampler(
                hashlib.sha256(f"brahms-{node_id}-{i}-{rng.random()}".encode()).digest()
            )
            for i in range(l2)
        ]
        for peer in self.view:
            self._observe(peer)
        self._pushes_received: List[int] = []
        self._pulls_received: List[List[int]] = []
        self.rounds = 0
        self._running = False
        network.register(self)

    # ----------------------------------------------------------------- API

    def start(self) -> None:
        """Begin periodic rounds with a random phase."""
        if self._running:
            return
        self._running = True
        self.loop.call_later(
            self.rng.uniform(0, self.round_interval_s), self._round
        )

    def stop(self) -> None:
        self._running = False

    def sample(self, k: int, exclude: Optional[Set[int]] = None) -> List[int]:
        """Up to ``k`` distinct ids from the sample list."""
        pool = {
            cell.sample
            for cell in self.samplers
            if cell.sample is not None
            and cell.sample != self.node_id
            and (exclude is None or cell.sample not in exclude)
        }
        pool = sorted(pool)
        if len(pool) <= k:
            return pool
        return self.rng.sample(pool, k)

    def sample_ids(self) -> Set[int]:
        """The distinct ids currently held by the sample list."""
        return {
            cell.sample for cell in self.samplers if cell.sample is not None
        }

    # -------------------------------------------------------------- rounds

    def _observe(self, node_id: int) -> None:
        for cell in self.samplers:
            cell.offer(node_id)

    def _round(self) -> None:
        if not self._running:
            return
        self.rounds += 1
        pushes, pulls = self._pushes_received, self._pulls_received
        self._pushes_received, self._pulls_received = [], []

        # Defence: a push flood (more pushes than the slice can hold times
        # a safety factor) voids the round's view update -- Brahms's attack
        # detection rule.  Samplers still observe everything.
        for pushed in pushes:
            self._observe(pushed)
        for view in pulls:
            for peer in view:
                self._observe(peer)

        alpha_slots = int(round(self.alpha * self.l1))
        beta_slots = int(round(self.beta * self.l1))
        gamma_slots = self.l1 - alpha_slots - beta_slots
        flooded = len(pushes) > 2 * alpha_slots
        if not flooded and (pushes or pulls):
            new_view: List[int] = []
            push_pool = [p for p in pushes if p != self.node_id]
            self.rng.shuffle(push_pool)
            new_view.extend(push_pool[:alpha_slots])
            pull_pool = [
                p for view in pulls for p in view if p != self.node_id
            ]
            self.rng.shuffle(pull_pool)
            new_view.extend(pull_pool[:beta_slots])
            history = self.sample(gamma_slots)
            new_view.extend(history)
            if new_view:
                self.view = self._dedupe(new_view)[: self.l1]

        # Send this round's pushes and pulls.
        for target in self._pick(self.view, alpha_slots):
            self._send(target, "brahms/push", self.node_id, 8)
        for target in self._pick(self.view, beta_slots):
            self._send(target, "brahms/pull_req", self.node_id, 8)
        self.loop.call_later(self.round_interval_s, self._round)

    def _pick(self, pool: List[int], k: int) -> List[int]:
        pool = [p for p in pool if p != self.node_id]
        if len(pool) <= k:
            return list(pool)
        return self.rng.sample(pool, k)

    @staticmethod
    def _dedupe(ids: List[int]) -> List[int]:
        seen: Set[int] = set()
        out = []
        for i in ids:
            if i not in seen:
                seen.add(i)
                out.append(i)
        return out

    # ------------------------------------------------------------ messages

    def _send(self, peer: int, msg_type: str, payload, body: int) -> None:
        self.network.send(
            self.node_id, peer, msg_type, payload,
            wire_bytes=body + ENVELOPE_BYTES,
        )

    def on_message(self, message: Message) -> None:
        if message.msg_type == "brahms/push":
            self._pushes_received.append(message.payload)
        elif message.msg_type == "brahms/pull_req":
            self._send(
                message.sender, "brahms/pull_resp", list(self.view),
                8 * len(self.view),
            )
        elif message.msg_type == "brahms/pull_resp":
            self._pulls_received.append(list(message.payload))


class ByzantinePusher(BrahmsNode):
    """A faulty Brahms participant that floods pushes of faulty ids.

    Models the membership-poisoning attacker Brahms defends against: every
    round it pushes (itself and its accomplices) to ``flood_factor`` times
    the normal budget of targets.
    """

    def __init__(self, *args, accomplices: Optional[Set[int]] = None,
                 flood_factor: int = 8, **kwargs):
        super().__init__(*args, **kwargs)
        self.accomplices = set(accomplices or set()) | {self.node_id}
        self.flood_factor = flood_factor

    def _round(self) -> None:
        if not self._running:
            return
        self.rounds += 1
        self._pushes_received = []
        self._pulls_received = []
        budget = self.flood_factor * max(1, int(self.alpha * self.l1))
        targets = self._pick(self.view, min(budget, len(self.view)))
        for target in targets:
            for accomplice in self.accomplices:
                self._send(target, "brahms/push", accomplice, 8)
        self.loop.call_later(self.round_interval_s, self._round)

    def on_message(self, message: Message) -> None:
        if message.msg_type == "brahms/pull_req":
            # Answer pulls with an all-faulty view.
            self._send(
                message.sender, "brahms/pull_resp",
                sorted(self.accomplices), 8 * len(self.accomplices),
            )
        # Ignore everything else.
