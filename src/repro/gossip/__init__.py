"""Peer sampling and neighbour shuffling.

LO assumes a Byzantine-resilient uniform peer sampler (Brahms / Basalt) as
a given building block: "It presumes that the peer sampling algorithm
ensures interaction between any correct node within a finite time frame"
(section 3) and requires (i) the honest subgraph to stay connected and
(ii) unbiased uniform sampling (section 5.1).  We implement a sampler that
*provides* those guarantees directly (uniform over the live membership,
with exclusion of suspected/exposed peers), rather than re-deriving them
from a gossip exchange -- the paper treats the sampler's guarantees, not
its internals, as the interface.
"""

from repro.gossip.sampler import PeerSampler
from repro.gossip.shuffle import NeighborShuffler

__all__ = ["PeerSampler", "NeighborShuffler"]
