"""Suspicion and exposure bookkeeping (sections 3.2 and 5.2).

Blames come in two strengths: an *exposure* is a transferable, verifiable
proof of misbehaviour (equivocation evidence or a block policy violation);
a *suspicion* is the unprovable-but-shareable observation that a node is
ignoring requests.  The :class:`AccountabilityState` tracks both per node,
implements the request/timeout/retry machinery ("The request timeout was
set to 1 second.  If a request was not fulfilled within this time, it was
resent three times, after which the node was suspected", section 6.1), and
evaluates the Fig. 4 consistency-check rules when third-party blames
arrive.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chain.block import Block
from repro.core.commitment import (
    CommitmentHeader,
    CommitmentStore,
    EquivocationEvidence,
    bundle_digest,
    chain_digest,
    GENESIS_DIGEST,
)
from repro.core.inspection import Violation
from repro.core.policies import STALE_SEQ_SLACK, ViolationKind
from repro.crypto.keys import PublicKey

_request_ids = itertools.count()


@dataclass
class PendingRequest:
    """A request awaiting a response, subject to the suspicion timeout."""

    request_id: int
    target: PublicKey
    kind: str                   # "sync" | "content" | "commitment"
    detail: Tuple[int, ...]     # e.g. the requested tx ids
    sent_at: float
    retries_left: int
    resend_count: int = 0


@dataclass(frozen=True)
class SuspicionBlame:
    """Shareable notice that ``accused`` ignored ``kind`` requests.

    Carries the accuser's last known commitment of the accused so that
    better-informed peers can run the Fig. 4 consistency check.
    """

    accuser: PublicKey
    accused: PublicKey
    kind: str
    detail: Tuple[int, ...]
    last_known: Optional[CommitmentHeader]
    raised_at: float

    def wire_size(self) -> int:
        """On-wire size: keys + timestamp + detail ids + header + signature."""
        header = self.last_known.wire_size() if self.last_known else 0
        return 32 + 32 + 8 + 4 * len(self.detail) + header + 64


@dataclass(frozen=True)
class BlockViolationEvidence:
    """Proof that a creator's block violates LO's policies.

    Bundles are carried as explicit id tuples; a verifier checks that the
    digest chain of those bundles matches the creator's *signed* commitment
    header, then re-runs the structural inspection.  Content-dependent
    clauses (fee threshold, validity of an allegedly censored transaction)
    verify when the verifier holds the contents.
    """

    accused: PublicKey
    block: Block
    header: CommitmentHeader
    bundle_ids: Tuple[Tuple[int, ...], ...]
    violation: Violation

    def chain_matches_header(self) -> bool:
        """The carried bundles must hash-chain to the signed header."""
        if self.header.signer != self.accused:
            return False
        if not self.header.signature_valid():
            return False
        if len(self.bundle_ids) < self.header.seq:
            return False
        digest = GENESIS_DIGEST
        for index in range(self.header.seq):
            digest = chain_digest(digest, bundle_digest(self.bundle_ids[index]))
            if self.header.digests[index] != digest:
                return False
        return True

    def verify_structure(self) -> bool:
        """Signature and digest-chain checks (content-independent)."""
        if self.block.creator != self.accused:
            return False
        if not self.block.signature_valid():
            return False
        if self.violation.kind is ViolationKind.STALE_COMMITMENT_SEQ:
            # Proof: the creator signed a commitment far newer than the
            # prefix its block pins; no bundle data needed.
            if self.header.signer != self.accused or not self.header.signature_valid():
                return False
            return self.header.seq - self.block.commit_seq > STALE_SEQ_SLACK
        return self.chain_matches_header()

    def wire_size(self) -> int:
        """On-wire size: the full block, the violated header, ids, signature."""
        ids = sum(len(b) for b in self.bundle_ids)
        return self.block.wire_size() + self.header.wire_size() + 4 * ids + 64


@dataclass(frozen=True)
class ExposureBlame:
    """A verifiable exposure: equivocation or a block policy violation."""

    accused: PublicKey
    equivocation: Optional[EquivocationEvidence] = None
    block_violation: Optional[BlockViolationEvidence] = None

    def verify(self) -> bool:
        """Check the embedded proof; at least one must be present and valid."""
        if self.equivocation is not None:
            return (
                self.equivocation.accused == self.accused
                and self.equivocation.verify()
            )
        if self.block_violation is not None:
            return (
                self.block_violation.accused == self.accused
                and self.block_violation.verify_structure()
            )
        return False

    def wire_size(self) -> int:
        """On-wire size of the accused key plus whichever proof is attached."""
        if self.equivocation is not None:
            return 32 + 2 * self.equivocation.header_a.wire_size() + 64
        if self.block_violation is not None:
            return 32 + self.block_violation.wire_size()
        return 32

    def key(self) -> Tuple:
        """Deduplication key for gossip."""
        if self.equivocation is not None:
            return (
                self.accused.raw,
                "equivocation",
                self.equivocation.header_a.seq,
                self.equivocation.header_b.seq,
            )
        if self.block_violation is not None:
            return (
                self.accused.raw,
                "block",
                self.block_violation.block.block_hash,
                self.block_violation.violation.kind.value,
            )
        return (self.accused.raw, "empty")


@dataclass
class SuspicionRecord:
    """Local suspicion state for one remote node."""

    since: float
    kinds: Set[str] = field(default_factory=set)
    secondhand: bool = False


class AccountabilityState:
    """Per-node accountability bookkeeping: Alg. 1's S and E sets."""

    def __init__(self, owner: PublicKey):
        self.owner = owner
        self.exposed: Dict[PublicKey, ExposureBlame] = {}
        self.suspected: Dict[PublicKey, SuspicionRecord] = {}
        self.pending: Dict[int, PendingRequest] = {}
        self.stores: Dict[PublicKey, CommitmentStore] = {}
        self._seen_blame_keys: Set[Tuple] = set()

    # ------------------------------------------------------------- requests

    def open_request(
        self,
        target: PublicKey,
        kind: str,
        detail: Sequence[int],
        now: float,
        retries: int,
    ) -> PendingRequest:
        """Register an outgoing request for timeout tracking."""
        request = PendingRequest(
            request_id=next(_request_ids),
            target=target,
            kind=kind,
            detail=tuple(detail),
            sent_at=now,
            retries_left=retries,
        )
        self.pending[request.request_id] = request
        return request

    def close_request(self, request_id: int) -> Optional[PendingRequest]:
        """A response arrived; drop the pending entry."""
        return self.pending.pop(request_id, None)

    def close_requests_to(self, target: PublicKey, kind: Optional[str] = None) -> int:
        """Close all pending requests to a node (e.g. satisfied indirectly)."""
        to_close = [
            rid
            for rid, req in self.pending.items()
            if req.target == target and (kind is None or req.kind == kind)
        ]
        for rid in to_close:
            del self.pending[rid]
        return len(to_close)

    def on_timeout(self, request_id: int, now: float) -> Optional[str]:
        """Handle a request timeout.

        Returns ``"resend"`` while retries remain, ``"suspect"`` when they
        are exhausted (the request stays pending: correct nodes "retain all
        pending requests"), or None when the request was already satisfied.
        """
        request = self.pending.get(request_id)
        if request is None:
            return None
        if request.retries_left > 0:
            request.retries_left -= 1
            request.resend_count += 1
            request.sent_at = now
            return "resend"
        self._suspect(request.target, request.kind, now, secondhand=False)
        return "suspect"

    # ------------------------------------------------------------ suspicion

    def _suspect(
        self, target: PublicKey, kind: str, now: float, secondhand: bool
    ) -> bool:
        """Mark a node suspected; returns True when newly suspected."""
        record = self.suspected.get(target)
        if record is None:
            self.suspected[target] = SuspicionRecord(
                since=now, kinds={kind}, secondhand=secondhand
            )
            return True
        record.kinds.add(kind)
        return False

    def is_suspected(self, target: PublicKey) -> bool:
        """True while ``target`` has an unanswered suspicion against it."""
        return target in self.suspected

    def clear_suspicion(self, target: PublicKey) -> bool:
        """The node answered (directly or via a relayed commitment)."""
        return self.suspected.pop(target, None) is not None

    def adopt_suspicion(self, blame: SuspicionBlame, now: float) -> bool:
        """Adopt a third-party suspicion; returns True when newly adopted.

        Exposed nodes stay exposed; a node we hold fresher evidence about
        (a commitment covering the blamed detail) is not re-suspected --
        the Fig. 4 "share the latest commitment" branch handles that at the
        node layer.
        """
        if blame.accused in self.exposed:
            return False
        if blame.accused == self.owner:
            return False
        return self._suspect(blame.accused, blame.kind, now, secondhand=True)

    # ------------------------------------------------------------- exposure

    def store_for(self, signer: PublicKey) -> CommitmentStore:
        """Commitment store for a remote signer (created on demand)."""
        if signer not in self.stores:
            self.stores[signer] = CommitmentStore(signer)
        return self.stores[signer]

    def observe_header(
        self, header: CommitmentHeader
    ) -> Optional[EquivocationEvidence]:
        """Record a commitment header, returning evidence on inconsistency."""
        if not header.signature_valid():
            return None  # unauthenticated headers are ignored, not evidence
        return self.store_for(header.signer).observe(header)

    def expose(self, blame: ExposureBlame) -> bool:
        """Verify and record an exposure; returns True when newly adopted.

        An exposed node is removed from the suspected set (exposure is the
        stronger state) and all pending requests to it are abandoned.
        """
        if not blame.verify():
            return False
        key = blame.key()
        if key in self._seen_blame_keys and blame.accused in self.exposed:
            return False
        self._seen_blame_keys.add(key)
        if blame.accused in self.exposed:
            return False
        self.exposed[blame.accused] = blame
        self.suspected.pop(blame.accused, None)
        self.close_requests_to(blame.accused)
        return True

    def is_exposed(self, target: PublicKey) -> bool:
        """True once a verified exposure proof against ``target`` is held."""
        return target in self.exposed

    def blocklist(self) -> Set[PublicKey]:
        """Nodes to avoid when sampling peers: suspected or exposed."""
        return set(self.suspected) | set(self.exposed)

    # ------------------------------------------------------ Fig. 4 machinery

    def evaluate_suspicion(
        self, blame: SuspicionBlame
    ) -> Tuple[str, Optional[CommitmentHeader], Optional[EquivocationEvidence]]:
        """Run the Fig. 4 consistency check against local knowledge.

        Returns ``(action, header, evidence)`` with action one of:

        * ``"expose"``     -- our stored headers conflict with the blame's
                              ``last_known`` header: equivocation proof.
        * ``"relay"``      -- we hold a newer consistent commitment that
                              covers the blamed detail; send it back to the
                              accuser so it can clear the suspicion.
        * ``"investigate"``-- our newer commitment does not cover the
                              detail either; forward the request ourselves
                              (and suspect on timeout).
        * ``"adopt"``      -- no better information; adopt the suspicion.
        """
        store = self.stores.get(blame.accused)
        latest = store.latest if store is not None else None
        if blame.last_known is not None and blame.last_known.signature_valid():
            evidence = self.observe_header(blame.last_known)
            if evidence is not None:
                return "expose", None, evidence
        if latest is None:
            return "adopt", None, None
        if blame.last_known is not None and latest.seq <= blame.last_known.seq:
            return "adopt", None, None
        covered = blame.kind == "content" and all(
            detail in store.known_ids for detail in blame.detail
        )
        if covered or blame.kind == "sync":
            return "relay", latest, None
        return "investigate", latest, None
