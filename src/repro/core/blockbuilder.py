"""Deterministic block building (section 4.3, Fig. 3).

Steps: select every committed transaction (step 1), reject invalid and
below-fee-threshold transactions (step 2), order the survivors canonically
(step 3), assemble and sign the block (step 4).  The builder may append its
own brand-new transactions *after* all committed bundles ("The new
transaction can only be appended after all committed transaction bundles",
section 5.2); those become the builder's next committed bundle.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro import obs
from repro.chain.block import Block, sign_block
from repro.chain.ledger import Ledger
from repro.core.commitment import BundleInfo
from repro.core.config import LOConfig
from repro.core.ordering import canonical_order, fee_priority_order
from repro.crypto.keys import KeyPair
from repro.mempool.txlog import TransactionLog


class BlockBuilder:
    """Builds blocks for one miner from its transaction log."""

    def __init__(self, keypair: KeyPair, config: LOConfig):
        self.keypair = keypair
        self.config = config

    def exclusion_predicate(
        self, log: TransactionLog, ledger: Ledger
    ) -> Callable[[int], bool]:
        """Ids a block must not contain: settled, invalid, or low-fee.

        Ids whose content is unknown are also excluded -- a block cannot
        carry a transaction the builder cannot produce bytes for.  Correct
        builders pin ``commit_seq`` to a prefix whose contents they hold,
        so for them this clause never fires.
        """

        def exclude(sketch_id: int) -> bool:
            if ledger.is_settled(sketch_id):
                return True
            tx = log.content_of(sketch_id)
            if tx is None:
                return True
            if log.is_invalid(sketch_id):
                return True
            return tx.fee < self.config.min_fee

        return exclude

    def coverable_seq(self, log: TransactionLog, bundles: Sequence[BundleInfo]) -> int:
        """Largest commitment seq whose bundles' contents are all held.

        A correct builder pins the block to this prefix: everything up to
        it can be included (or provably excluded), so inspection can demand
        full inclusion without false positives.
        """
        covered = 0
        for bundle in bundles:
            if all(
                log.content_of(i) is not None or log.is_invalid(i)
                for i in bundle.ids
            ):
                covered = bundle.index + 1
            else:
                break
        return covered

    def build(
        self,
        log: TransactionLog,
        bundles: Sequence[BundleInfo],
        ledger: Ledger,
        created_at: float,
        commit_seq: Optional[int] = None,
        appended_ids: Sequence[int] = (),
    ) -> Block:
        """Build and sign the canonical block for the current tip.

        ``appended_ids`` are the builder's own new transactions, placed
        after all committed bundles; the caller is responsible for
        committing them as the next bundle.
        """
        seq = self.coverable_seq(log, bundles) if commit_seq is None else commit_seq
        exclude = self.exclusion_predicate(log, ledger)
        ordered = canonical_order(bundles, seq, ledger.tip_hash, exclude)
        ordered.extend(i for i in appended_ids if not exclude(i))
        ordered = ordered[: self.config.max_block_txs]
        _t = obs.TRACER
        if _t.enabled:
            _t.registry.counter("blocks.built").inc()
            _t.registry.histogram("blocks.txs").observe(len(ordered))
        return sign_block(
            self.keypair,
            height=ledger.height + 1,
            prev_hash=ledger.tip_hash,
            tx_ids=ordered,
            commit_seq=seq,
            created_at=created_at,
        )

    def build_highest_fee(
        self,
        log: TransactionLog,
        ledger: Ledger,
        created_at: float,
    ) -> Block:
        """The Fig. 8 'Highest Fee' baseline: fee-priority selection.

        Not a valid LO block (inspection would flag it); used to compare
        transaction latency under today's dominant policy.
        """
        exclude = self.exclusion_predicate(log, ledger)

        def fee_of(sketch_id: int) -> int:
            tx = log.content_of(sketch_id)
            return tx.fee if tx is not None else 0

        ordered = fee_priority_order(log.order, fee_of, exclude)
        ordered = ordered[: self.config.max_block_txs]
        return sign_block(
            self.keypair,
            height=ledger.height + 1,
            prev_hash=ledger.tip_hash,
            tx_ids=ordered,
            commit_seq=0,
            created_at=created_at,
        )
