"""The LO node: Alg. 1, accountability, block building and inspection.

Wire protocol (message types on the simulated network):

==================  =======================================================
``lo/sync_req``     :class:`~repro.core.reconciliation.SyncRequest`
``lo/sync_resp``    :class:`~repro.core.reconciliation.SyncResponse`
``lo/content_req``  :class:`~repro.core.reconciliation.ContentRequest`
``lo/content_resp`` :class:`~repro.core.reconciliation.ContentResponse`
                    (transaction payload; excluded from overhead accounting)
``lo/suspicion``    :class:`~repro.core.accountability.SuspicionBlame`
``lo/exposure``     :class:`~repro.core.accountability.ExposureBlame`
``lo/commit_upd``   :class:`~repro.core.commitment.CommitmentHeader` relay
``lo/block``        :class:`~repro.core.reconciliation.BlockAnnounce`
``lo/block_req``    missing-ancestor fetch (rejoin catch-up), height int
``lo/client_submit``:class:`~repro.mempool.Transaction` from a light client
``lo/submit_ack``   :class:`~repro.core.client.SubmitAck` back to the client
``lo/status_query`` (client_id, sketch_id) status probe
``lo/status_reply`` :class:`~repro.core.client.StatusReply`
==================  =======================================================
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.bloomclock import BloomClock
from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.core.accountability import (
    AccountabilityState,
    BlockViolationEvidence,
    ExposureBlame,
    SuspicionBlame,
)
from repro.core.blockbuilder import BlockBuilder
from repro.core.commitment import (
    BundleInfo,
    CommitmentHeader,
    GENESIS_DIGEST,
    bundle_digest,
    chain_digest,
    sign_header,
)
from repro.core.config import LOConfig
from repro.core.inspection import BlockInspector, InspectionResult, Violation
from repro.core.policies import ViolationKind
from repro.core.reconciliation import (
    BlockAnnounce,
    ContentRequest,
    ContentResponse,
    SplitSpec,
    SyncRequest,
    SyncResponse,
    adaptive_capacity,
    decode_difference,
    ids_for_spec,
    sketch_for_spec,
)
from repro.core.wire import PeerQuarantine, validate_payload
from repro.crypto.keys import KeyPair, PublicKey
from repro.mempool.admission import Mempool
from repro.mempool.transaction import Transaction, make_transaction, prevalidate
from repro.mempool.txlog import TransactionLog
from repro.metrics import EventCounter, LatencyTracker
from repro.net.message import ENVELOPE_BYTES, Message
from repro.net.network import Endpoint, Network
from repro.sim.loop import Event, EventLoop


class Directory:
    """Shared node-id <-> public-key mapping (the PKI assumption)."""

    def __init__(self) -> None:
        self._by_id: Dict[int, PublicKey] = {}
        self._by_key: Dict[PublicKey, int] = {}

    def register(self, node_id: int, key: PublicKey) -> None:
        """Record one node's identity."""
        self._by_id[node_id] = key
        self._by_key[key] = node_id

    def key_of(self, node_id: int) -> PublicKey:
        """The public key registered for ``node_id`` (KeyError if unknown)."""
        return self._by_id[node_id]

    def id_of(self, key: PublicKey) -> int:
        """The node id registered for ``key`` (KeyError if unknown)."""
        return self._by_key[key]


class _Session:
    """Requester-side state for one outstanding sync request."""

    __slots__ = ("peer", "spec", "capacity", "depth", "pushed_counts",
                 "timer", "acct_id", "span")

    def __init__(self, peer: int, spec: SplitSpec, capacity: int, depth: int,
                 pushed_counts: Dict[int, int], timer: Event, acct_id: int,
                 span=None):
        self.peer = peer
        self.spec = spec
        self.capacity = capacity
        self.depth = depth
        self.pushed_counts = pushed_counts  # cell -> own item count in spec
        self.timer = timer
        self.acct_id = acct_id
        self.span = span  # open "reconcile.round" trace span, if tracing


class LONode(Endpoint):
    """One miner running the LO accountable base layer."""

    #: Ingress reads the envelope synchronously (handlers keep payload
    #: references, never the :class:`Message` itself), so the network may
    #: recycle delivered envelopes through its pool.
    RETAINS_ENVELOPES = False

    def __init__(
        self,
        node_id: int,
        loop: EventLoop,
        network: Network,
        config: LOConfig,
        directory: Directory,
        neighbors: Set[int],
        rng: random.Random,
        mempool_tracker: Optional[LatencyTracker] = None,
        block_tracker: Optional[LatencyTracker] = None,
        counter: Optional[EventCounter] = None,
    ):
        self.node_id = node_id
        self.loop = loop
        self.network = network
        self.config = config
        self.directory = directory
        self.neighbors = set(neighbors)
        self.rng = rng
        self.keypair = KeyPair.generate(seed=f"lo-node-{node_id}".encode())
        directory.register(node_id, self.keypair.public_key)

        self.log = TransactionLog(
            clock_cells=config.clock_cells,
            sketch_capacity=config.sketch_capacity,
            sketch_bits=config.sketch_bits,
        )
        self.bundles: List[BundleInfo] = []
        self._digest_chain: List[bytes] = []
        self._headers_by_seq: Dict[int, CommitmentHeader] = {}
        self._header_dirty = True
        self._cached_header: Optional[CommitmentHeader] = None

        self.acct = AccountabilityState(self.keypair.public_key)
        self.ledger = Ledger()
        self.builder = BlockBuilder(self.keypair, config)
        self.inspector = BlockInspector(config)

        self._sessions: Dict[int, _Session] = {}
        self._content_timers: Dict[int, Event] = {}
        self._pending_blocks: Dict[int, BlockAnnounce] = {}
        self._announces_by_height: Dict[int, BlockAnnounce] = {}
        self._pending_inspections: List[BlockAnnounce] = []
        self._seen_blocks: Set[bytes] = set()
        self._seen_suspicions: Set[Tuple] = set()
        self._relayed_updates: Set[Tuple] = set()
        self._sync_event: Optional[Event] = None
        # Per-tick reconciliation cache, live only inside one _sync_tick
        # callback: (spec, capacity) -> (sketch, own counts, wire size).
        self._sketch_cache: Optional[Dict[Tuple, Tuple]] = None
        self._nonce = 0
        self.quarantine = PeerQuarantine(
            threshold=config.quarantine_threshold,
            base_s=config.quarantine_base_s,
            max_s=config.quarantine_max_s,
        )
        self.restarts = 0
        # Client-edge admission pipeline (None keeps commit-on-receipt).
        self.mempool: Optional[Mempool] = (
            Mempool(config.admission) if config.admission is not None else None
        )

        self.mempool_tracker = mempool_tracker
        self.block_tracker = block_tracker
        self.counter = counter
        self.on_block_created: Optional[Callable[[Block], None]] = None
        # "fifo" (LO's canonical policy) or "highest_fee" (the Fig. 8
        # baseline); highest-fee blocks are not canonical and are only used
        # with inspection-free latency experiments.
        self.block_policy = "fifo"
        # Fig. 8's policy-comparison runs disable inspection so that the
        # deliberately non-canonical baseline blocks do not flood the
        # network with (correct) exposures mid-measurement.
        self.inspection_enabled = True

        network.register(self)

    # ------------------------------------------------------------ properties

    @property
    def public_key(self) -> PublicKey:
        """This node's long-term identity key."""
        return self.keypair.public_key

    @property
    def seq(self) -> int:
        """Current commitment sequence number (bundle count)."""
        return len(self.bundles)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.loop.now

    def header(self) -> CommitmentHeader:
        """The node's current signed commitment header (cached)."""
        if self._header_dirty or self._cached_header is None:
            self._cached_header = sign_header(
                self.keypair,
                seq=self.seq,
                tx_count=len(self.log),
                digests=self._digest_chain,
                clock=self.log.clock,
            )
            self._headers_by_seq[self.seq] = self._cached_header
            self._header_dirty = False
        return self._cached_header

    def header_at(self, seq: int) -> Optional[CommitmentHeader]:
        """Previously signed header at an exact seq, if retained."""
        if seq == self.seq:
            return self.header()
        return self._headers_by_seq.get(seq)

    # ---------------------------------------------------------------- control

    def start(self) -> None:
        """Begin the periodic NeighborsSync with a random phase."""
        phase = self.rng.uniform(0, self.config.sync_interval_s)
        self._sync_event = self.loop.call_later(phase, self._sync_tick)

    def stop(self) -> None:
        """Stop periodic syncing."""
        if self._sync_event is not None:
            self._sync_event.cancel()
            self._sync_event = None

    def restart(self) -> None:
        """Rebuild volatile session state after a crash and rejoin.

        Models a process restart: the durable state (commitment log, chain,
        accountability stores) survives, but every in-flight request,
        timer and half-open session is gone.  Outstanding accountability
        requests are abandoned so that the fresh sessions opened by the
        next sync tick drive reconvergence instead of stale timeouts.
        """
        self.stop()
        _t = obs.TRACER
        for session in self._sessions.values():
            session.timer.cancel()
            if _t.enabled:
                _t.end_span(session.span, self.now, outcome="restart")
        self._sessions.clear()
        for timer in self._content_timers.values():
            timer.cancel()
        self._content_timers.clear()
        self.acct.pending.clear()
        self.restarts += 1
        self.start()

    # ----------------------------------------------------- transaction entry

    def create_transaction(
        self, fee: int, size_bytes: int = 250, payload: bytes = b""
    ) -> Transaction:
        """Create, sign and commit a new local transaction (stage I)."""
        self._nonce += 1
        tx = make_transaction(
            self.keypair, self._nonce, fee, self.now, size_bytes, payload
        )
        self.receive_client_transaction(tx)
        return tx

    def receive_client_transaction(self, tx: Transaction,
                                   peer=None) -> bool:
        """Accept a client-submitted transaction at the ingress edge.

        Without an admission config this prevalidates and commits on
        receipt (the original stage-I behaviour).  With admission
        enabled the transaction instead runs the full pipeline --
        rate limit, fee floor, nonce FIFO, watermarks -- and, if
        admitted, waits in the pending pool until a sync tick drains
        it into a commitment bundle.  ``peer`` is the opaque ingress
        identity the rate limiter meters (``None`` skips metering,
        e.g. for the node's own transactions).

        Returns False when the transaction was rejected (it is then
        neither stored nor committed).
        """
        if self.mempool is not None:
            result = self.mempool.admit(tx, self.now, peer=peer)
            if not result.accepted:
                if self.counter is not None:
                    self.counter.increment("admission_rejects",
                                           node=self.node_id)
                return False
            return True
        if not prevalidate(tx):
            return False
        if tx.sketch_id in self.log:
            return False
        self._commit_bundle([tx.sketch_id], source_peer=None)
        self.log.add_content(tx, valid=True)
        if self.mempool_tracker is not None:
            self.mempool_tracker.record_created(tx.sketch_id, self.now)
            self.mempool_tracker.record_seen(tx.sketch_id, self.node_id, self.now)
        if self.block_tracker is not None:
            self.block_tracker.record_created(tx.sketch_id, self.now)
        return True

    def _drain_mempool(self) -> None:
        """Commit one drain batch from the admission pool (sync tick)."""
        assert self.mempool is not None
        batch = self.mempool.drain(self.now)
        if not batch:
            return
        self._commit_bundle([tx.sketch_id for tx in batch], source_peer=None)
        for tx in batch:
            if tx.sketch_id in self.log:
                self.log.add_content(tx, valid=True)
                # Trackers register at drain time, not admit time: a
                # transaction enters the protocol when it is committed,
                # so RBF-replaced or evicted entries never count as
                # "created" for convergence/latency purposes.
                if self.mempool_tracker is not None:
                    self.mempool_tracker.record_created(tx.sketch_id, self.now)
                    self.mempool_tracker.record_seen(
                        tx.sketch_id, self.node_id, self.now
                    )
                if self.block_tracker is not None:
                    self.block_tracker.record_created(tx.sketch_id, self.now)

    def _commit_bundle(
        self, ids: Sequence[int], source_peer: Optional[int]
    ) -> Optional[BundleInfo]:
        """Append a bundle of new ids to the commitment log."""
        fresh = self.log.append_many(ids)
        if not fresh:
            return None
        bundle = BundleInfo(
            index=self.seq,
            ids=tuple(fresh),
            source_peer=source_peer,
            committed_at=self.now,
        )
        self.bundles.append(bundle)
        prev = self._digest_chain[-1] if self._digest_chain else GENESIS_DIGEST
        self._digest_chain.append(chain_digest(prev, bundle.digest))
        self._header_dirty = True
        _t = obs.TRACER
        if _t.enabled:
            _t.event("commit.append", t=self.now, node_id=self.node_id,
                     seq=bundle.index, ids=len(bundle.ids),
                     source=source_peer)
        return bundle

    # -------------------------------------------------------- NeighborsSync

    def _sync_tick(self) -> None:
        self._sync_event = self.loop.call_later(
            self.config.sync_interval_s, self._sync_tick
        )
        if self.mempool is not None:
            # Drain admitted transactions into a commitment bundle before
            # reconciling, so this round's sketches already cover them.
            self._drain_mempool()
        peers = self._eligible_neighbors()
        if not peers:
            return
        fanout = min(self.config.sync_fanout, len(peers))
        sampled = self.rng.sample(peers, fanout)
        # Per-tick reconciliation batching: the log cannot change inside
        # this callback, so peers sharing a (spec, capacity) reuse one
        # sketch build / own-count scan / wire-size computation, and the
        # k sync requests leave as one delay-grouped network fan-out.
        self._sketch_cache = {}
        deferred: List[Tuple[int, str, Any, int, bool]] = []
        try:
            for peer in sampled:
                if self._peer_outdated(peer):
                    self._send_sync_request(peer, spec=None, depth=0,
                                            defer=deferred)
                else:
                    # Alg. 1 line 18: the peer is up to date, drop suspicion.
                    peer_key = self.directory.key_of(peer)
                    if self.acct.is_suspected(peer_key):
                        self.acct.clear_suspicion(peer_key)
            if deferred:
                self.network.send_many(self.node_id, deferred)
            # Heal content holes: ids committed (possibly second-hand) whose
            # bytes never arrived are re-requested from a random neighbour.
            missing = self.log.missing_content()
            if missing:
                self._send_content_request(self.rng.choice(sampled),
                                           missing[:64])
            # Heal chain gaps: keep fetching missing ancestor blocks while
            # any buffered successor is waiting (rejoin catch-up).
            if self._pending_blocks:
                self._request_missing_blocks()
            # Temporal accuracy under lossy networks: the clear-on-response
            # paths above only cover sampled neighbours, so a suspicion
            # adopted about a distant node could outlive the fault that
            # caused it.  Re-probe one suspected node per tick; its response
            # (or a relayed commitment) clears the suspicion once the
            # network heals.
            self._probe_one_suspect()
        finally:
            self._sketch_cache = None

    def _probe_one_suspect(self) -> None:
        suspects: List[int] = []
        for key in self.acct.suspected:
            try:
                peer = self.directory.id_of(key)
            except KeyError:
                continue
            if not self.quarantine.is_quarantined(peer, self.now):
                suspects.append(peer)
        if suspects:
            self._send_sync_request(
                self.rng.choice(sorted(suspects)), spec=None, depth=0
            )

    def _eligible_neighbors(self) -> List[int]:
        """Neighbours that are not exposed or quarantined.

        Suspected peers are still probed (temporal accuracy); quarantined
        ones are skipped until their backoff window expires.
        """
        out = []
        for peer in self.neighbors:
            if self.quarantine.is_quarantined(peer, self.now):
                continue
            key = self.directory.key_of(peer)
            if not self.acct.is_exposed(key):
                out.append(peer)
        return sorted(out)

    def _peer_outdated(self, peer: int) -> bool:
        """Alg. 1 line 13: do we hold ids the peer has not committed to?"""
        store = self.acct.store_for(self.directory.key_of(peer))
        if store.latest is None:
            return len(self.log) > 0
        if len(self.log) > len(store.known_ids):
            return True
        known = store.known_ids
        return any(i not in known for i in self.log.order)

    def _flagged_spec(self, peer: int) -> SplitSpec:
        """Cells that look out of date versus the peer's last known clock."""
        store = self.acct.store_for(self.directory.key_of(peer))
        if not self.config.use_clock_prefilter or store.latest is None:
            return SplitSpec(tuple(range(self.config.clock_cells)))
        flagged = self.log.clock.flagged_cells(store.latest.clock)
        if not flagged:
            # Same counts but our id set may still differ; probe everything.
            return SplitSpec(tuple(range(self.config.clock_cells)))
        return SplitSpec(tuple(flagged))

    def _estimate_for(self, peer: int, spec: SplitSpec) -> int:
        store = self.acct.store_for(self.directory.key_of(peer))
        if store.latest is None:
            return len(self.log)
        return max(1, self.log.clock.estimate_difference(store.latest.clock))

    def _send_sync_request(
        self, peer: int, spec: Optional[SplitSpec], depth: int,
        capacity: Optional[int] = None,
        defer: Optional[List[Tuple[int, str, Any, int, bool]]] = None,
    ) -> None:
        if spec is None:
            spec = self._flagged_spec(peer)
        if capacity is None:
            if self.config.use_clock_prefilter:
                capacity = adaptive_capacity(
                    self._estimate_for(peer, spec), self.config
                )
            else:
                # Without the clock's difference estimate a real
                # implementation must provision the full worst-case sketch
                # every round -- that cost is what the ablation measures.
                capacity = self.config.sketch_capacity
        # Inside one _sync_tick the log is frozen, so peers sharing a
        # (spec, capacity) share one sketch build, own-count scan and
        # wire-size computation.
        cache = self._sketch_cache
        cached = cache.get((spec, capacity)) if cache is not None else None
        if cached is not None:
            sketch, shared_counts, wire_size = cached
            pushed = dict(shared_counts)  # sessions may mutate their copy
        else:
            sketch = sketch_for_spec(self.log, spec, capacity)
            pushed = self._own_counts_for_spec(spec)
            wire_size = None
        request_obj = self.acct.open_request(
            self.directory.key_of(peer), "sync", (), self.now,
            self.config.request_retries,
        )
        timer = self.loop.call_later(
            self.config.request_timeout_s, self._on_sync_timeout,
            request_obj.request_id,
        )
        request = SyncRequest(
            request_id=request_obj.request_id,
            header=self.header(),
            spec=spec,
            sketch=sketch,
        )
        if wire_size is None:
            wire_size = request.wire_size()
            if cache is not None:
                cache[(spec, capacity)] = (sketch, dict(pushed), wire_size)
        _t = obs.TRACER
        span = None
        if _t.enabled:
            # One span per Alg. 1 round: opened at sync_req, closed when the
            # response settles (ok / split / timeout / abort).
            span = _t.begin_span(
                "reconcile.round", self.now, node_id=self.node_id,
                peer=peer, cells=len(spec.cells), bit_level=spec.bit_level,
                capacity=capacity, depth=depth, retries=0,
            )
        self._sessions[request_obj.request_id] = _Session(
            peer, spec, capacity, depth, pushed, timer,
            request_obj.request_id, span,
        )
        if defer is not None:
            defer.append((peer, "lo/sync_req", request,
                          wire_size + ENVELOPE_BYTES, True))
        else:
            self._send(peer, "lo/sync_req", request, wire_size)

    def _own_counts_for_spec(self, spec: SplitSpec) -> Dict[int, int]:
        """Per-cell count of our own items inside a spec (coverage check)."""
        if spec.bit_level == 0:
            # matches() is vacuously true at bit level 0: the count is just
            # the cell population, no item scan needed.
            cell_count = self.log.cell_count
            return {cell: cell_count(cell) for cell in spec.cells}
        counts: Dict[int, int] = {}
        for cell in spec.cells:
            items = self.log.items_in_cells((cell,))
            counts[cell] = sum(1 for i in items if spec.matches(i))
        return counts

    # --------------------------------------------------------- msg dispatch

    _HANDLERS = {
        "lo/sync_req": "_handle_sync_request",
        "lo/sync_resp": "_handle_sync_response",
        "lo/content_req": "_handle_content_request",
        "lo/content_resp": "_handle_content_response",
        "lo/suspicion": "_handle_suspicion",
        "lo/exposure": "_handle_exposure",
        "lo/commit_upd": "_handle_commit_update",
        "lo/block": "_handle_block_announce",
        "lo/block_req": "_handle_block_request",
        "lo/client_submit": "_handle_client_submit",
        "lo/status_query": "_handle_status_query",
    }

    def on_message(self, message: Message) -> None:
        """Byzantine-hardened ingress: validate, contain, attribute.

        A malformed or type-confused payload must never crash the node
        (section 3.1 lets faulty nodes send arbitrary messages): the
        payload is schema-checked against its message type before the
        handler runs, the handler itself is exception-contained, and every
        violation is counted against the (authenticated) sender.  Repeated
        garbage quarantines the peer with exponential backoff.
        """
        sender = message.sender
        if self.quarantine.is_quarantined(sender, self.now):
            if self.counter is not None:
                self.counter.increment("quarantine_drops", node=self.node_id)
            return
        name = self._HANDLERS.get(message.msg_type)
        if not self.config.validate_ingress:
            if name is not None:
                getattr(self, name)(message)
            return
        if name is None:
            self._record_wire_violation(
                message, f"unknown message type {message.msg_type!r}"
            )
            return
        error = validate_payload(message.msg_type, message.payload)
        if error is not None:
            self._record_wire_violation(message, error)
            return
        try:
            getattr(self, name)(message)
        except Exception as exc:
            # Containment: a payload that passed the shallow schema check
            # can still break a handler's deeper assumptions.  The node
            # must survive; the failure is attributed like any violation.
            self._record_wire_violation(
                message, f"handler error: {type(exc).__name__}: {exc}"
            )

    # ------------------------------------------------- ingress hardening

    def _peer_id_of(self, key: PublicKey) -> Optional[int]:
        """Directory lookup that tolerates unregistered keys (clients)."""
        try:
            return self.directory.id_of(key)
        except KeyError:
            return None

    def _record_wire_violation(self, message: Message, reason: str) -> None:
        """Count, attribute and react to one malformed inbound message."""
        sender = message.sender
        if self.counter is not None:
            self.counter.increment("wire_violations", node=self.node_id)
        _t = obs.TRACER
        if _t.enabled:
            _t.event("wire.violation", t=self.now, node_id=self.node_id,
                     sender=sender, msg_type=message.msg_type,
                     reason=reason[:120])
        self._salvage_evidence(message.payload)
        newly_quarantined = self.quarantine.record_violation(sender, self.now)
        if not newly_quarantined:
            return
        if self.counter is not None:
            self.counter.increment("peers_quarantined", node=self.node_id)
        if _t.enabled:
            _t.event("wire.quarantine", t=self.now, node_id=self.node_id,
                     peer=sender)
        try:
            self.directory.key_of(sender)
        except KeyError:
            return  # not a registered miner (e.g. a light client); local only
        self._raise_suspicion(sender, "wire", ())

    def _salvage_evidence(self, payload) -> None:
        """Harvest signed headers out of an otherwise-malformed payload.

        A malformed message can still carry validly-signed commitment
        headers; those are attributable regardless of the envelope, so
        observing them may yield transferable equivocation evidence (the
        "signed-but-malformed message becomes evidence" path).
        """
        from repro.core.commitment import CommitmentHeader

        candidates = []
        if isinstance(payload, CommitmentHeader):
            candidates.append(payload)
        else:
            for attr in ("header", "last_known"):
                value = getattr(payload, attr, None)
                if isinstance(value, CommitmentHeader):
                    candidates.append(value)
        for header in candidates:
            try:
                self._observe_remote_header(header)
            except Exception:
                continue  # hostile header internals; nothing salvageable

    def _send(
        self, peer: int, msg_type: str, payload, body_bytes: int,
        is_overhead: bool = True,
    ) -> None:
        self.network.send(
            self.node_id, peer, msg_type, payload,
            wire_bytes=body_bytes + ENVELOPE_BYTES, is_overhead=is_overhead,
        )

    def _send_fanout(
        self, peers: Sequence[int], msg_type: str, payload, body_bytes: int,
        is_overhead: bool = True,
    ) -> None:
        """One shared payload to many peers as a delay-grouped batch."""
        if not peers:
            return
        self.network.send_fanout(
            self.node_id, peers, msg_type, payload,
            wire_bytes=body_bytes + ENVELOPE_BYTES, is_overhead=is_overhead,
        )

    # --------------------------------------------------- stage I: clients

    def _handle_client_submit(self, message: Message) -> None:
        """A light client shared a transaction (stage I steps 1-3)."""
        from repro.core.client import SubmitAck

        tx: Transaction = message.payload
        accepted = self.receive_client_transaction(tx, peer=message.sender)
        if not accepted and tx.sketch_id in self.log:
            accepted = True  # duplicate submission of a known tx is fine
        unsigned = SubmitAck(
            miner=self.public_key, txid=tx.txid, accepted=accepted,
            at_time=self.now,
        )
        ack = SubmitAck(
            miner=self.public_key, txid=tx.txid, accepted=accepted,
            at_time=unsigned.at_time,
            signature=self.keypair.sign(unsigned.signing_bytes()),
        )
        self._send(message.sender, "lo/submit_ack", ack, ack.wire_size())

    def _handle_status_query(self, message: Message) -> None:
        """A client asked for a transaction's status at this miner."""
        from repro.core.client import StatusReply

        client_id, sketch_id = message.payload
        if self.ledger.is_settled(sketch_id):
            status = "settled"
        elif sketch_id not in self.log:
            status = "unknown"
        elif self.log.content_of(sketch_id) is not None:
            status = "content-held"
        else:
            status = "committed"
        reply = StatusReply(
            miner=self.public_key, sketch_id=sketch_id, status=status,
            at_time=self.now,
        )
        self._send(client_id, "lo/status_reply", reply, reply.wire_size())

    # ------------------------------------------------- responder: sync_req

    def _handle_sync_request(self, message: Message) -> None:
        request: SyncRequest = message.payload
        sender = message.sender
        self._observe_remote_header(request.header)
        if self.acct.is_exposed(request.header.signer):
            return
        capacity = request.sketch.capacity
        # Cheap overload pre-check: the Bloom-Clock gap is a lower bound on
        # the true difference, so a gap beyond the sketch capacity makes the
        # decode certain to fail -- skip straight to the split reply.
        cell_gap = sum(
            abs(self.log.clock.counters[c] - request.header.clock.counters[c])
            for c in request.spec.cells
        )
        if (
            self.config.use_clock_prefilter
            and request.spec.bit_level == 0
            and cell_gap > capacity
        ):
            _t = obs.TRACER
            if _t.enabled:
                _t.event("reconcile.decode", t=self.now, node_id=self.node_id,
                         requester=sender, capacity=capacity,
                         cells=len(request.spec.cells), outcome="overload",
                         cell_gap=cell_gap)
            response = SyncResponse(
                request_id=request.request_id,
                header=self.header(),
                status="split",
                split_specs=request.spec.split(),
            )
            self._send(sender, "lo/sync_resp", response, response.wire_size())
            return
        local = sketch_for_spec(self.log, request.spec, capacity)
        if self.counter is not None:
            self.counter.increment("reconciliations", node=self.node_id)
        diff = decode_difference(local, request.sketch)
        _t = obs.TRACER
        if diff is None:
            if self.counter is not None:
                self.counter.increment("reconciliation_failures", node=self.node_id)
            if _t.enabled:
                _t.event("reconcile.decode", t=self.now, node_id=self.node_id,
                         requester=sender, capacity=capacity,
                         cells=len(request.spec.cells), outcome="fail")
            response = SyncResponse(
                request_id=request.request_id,
                header=self.header(),
                status="split",
                split_specs=request.spec.split(),
            )
            self._send(sender, "lo/sync_resp", response, response.wire_size())
            return
        new_ids = sorted(i for i in diff if i not in self.log)
        offered = tuple(sorted(i for i in diff if i in self.log))
        if _t.enabled:
            _t.event("reconcile.decode", t=self.now, node_id=self.node_id,
                     requester=sender, capacity=capacity,
                     cells=len(request.spec.cells), outcome="ok",
                     diff=len(diff), new=len(new_ids), offered=len(offered))
        if new_ids:
            # Alg. 1 lines 21-23: commit to every previously unknown id, in
            # a fresh bundle ordered after everything already committed.
            self._commit_bundle(new_ids, source_peer=sender)
            if self.mempool_tracker is not None:
                for sketch_id in new_ids:
                    self.mempool_tracker.record_seen(
                        sketch_id, self.node_id, self.now
                    )
        response = SyncResponse(
            request_id=request.request_id,
            header=self.header(),
            status="ok",
            requested_ids=tuple(new_ids),
            offered_ids=offered,
        )
        # After a successful round both parties hold the union over the spec
        # (two updates into the store's set -- no intermediate union set).
        store = self.acct.store_for(request.header.signer)
        store.record_ids(ids_for_spec(self.log, request.spec))
        store.record_ids(diff)
        self._send(sender, "lo/sync_resp", response, response.wire_size())

    # ------------------------------------------------- requester: sync_resp

    def _handle_sync_response(self, message: Message) -> None:
        response: SyncResponse = message.payload
        session = self._sessions.get(response.request_id)
        if session is None:
            return
        session.timer.cancel()
        self._observe_remote_header(response.header)
        peer_key = self.directory.key_of(session.peer)
        _t = obs.TRACER
        if self.acct.is_exposed(peer_key):
            self._sessions.pop(response.request_id, None)
            self.acct.close_request(session.acct_id)
            if _t.enabled:
                _t.end_span(session.span, self.now, outcome="peer_exposed")
            return
        if response.status == "split":
            self._sessions.pop(response.request_id, None)
            self.acct.close_request(session.acct_id)
            if _t.enabled:
                _t.end_span(session.span, self.now, outcome="split",
                            subspecs=len(response.split_specs))
            if session.depth >= self.config.partition_max_depth:
                return
            for sub_spec in response.split_specs:
                self._send_sync_request(
                    session.peer, sub_spec, session.depth + 1, session.capacity
                )
            return
        # Coverage check: the responder's new clock must account for at
        # least our own items in every flagged cell, otherwise it silently
        # dropped transactions -- treat as an unanswered request: keep the
        # session alive and let the timeout/retry/suspect machinery run.
        if not self._response_covers(session, response.header.clock):
            self._on_sync_timeout(session.acct_id)
            return
        self._sessions.pop(response.request_id, None)
        self.acct.close_request(session.acct_id)
        if self.acct.clear_suspicion(peer_key):
            pass  # responded: no longer suspected (temporal accuracy)
        # Commit to what the responder offered (ids we lacked).
        fresh = sorted(i for i in response.offered_ids if i not in self.log)
        if _t.enabled:
            _t.end_span(session.span, self.now, outcome="ok",
                        offered=len(response.offered_ids),
                        requested=len(response.requested_ids),
                        committed=len(fresh))
        if fresh:
            self._commit_bundle(fresh, source_peer=session.peer)
            if self.mempool_tracker is not None:
                for sketch_id in fresh:
                    self.mempool_tracker.record_seen(
                        sketch_id, self.node_id, self.now
                    )
        store = self.acct.store_for(peer_key)
        store.record_ids(ids_for_spec(self.log, session.spec))
        store.record_ids(response.offered_ids)
        # Ship content the responder asked for; ask for content we lack.
        self._send_content(session.peer, response.requested_ids)
        missing = [
            i for i in response.offered_ids if self.log.content_of(i) is None
        ]
        if missing:
            self._send_content_request(session.peer, missing)

    def _response_covers(self, session: _Session, clock: BloomClock) -> bool:
        for cell, own_count in session.pushed_counts.items():
            if clock.counters[cell] < own_count:
                return False
        return True

    # ------------------------------------------------------------- content

    def _send_content(self, peer: int, ids: Sequence[int]) -> None:
        txs = tuple(
            tx for tx in (self.log.content_of(i) for i in ids) if tx is not None
        )
        if not txs:
            return
        response = ContentResponse(request_id=-1, txs=txs)
        self._send(
            peer, "lo/content_resp", response, response.wire_size(),
            is_overhead=False,
        )

    def _send_content_request(self, peer: int, ids: Sequence[int]) -> None:
        request_obj = self.acct.open_request(
            self.directory.key_of(peer), "content", tuple(ids), self.now,
            self.config.request_retries,
        )
        request = ContentRequest(request_id=request_obj.request_id, ids=tuple(ids))
        timer = self.loop.call_later(
            self.config.request_timeout_s, self._on_content_timeout,
            request_obj.request_id, peer, tuple(ids),
        )
        self._content_timers[request_obj.request_id] = timer
        _t = obs.TRACER
        if _t.enabled:
            _t.event("content.request", t=self.now, node_id=self.node_id,
                     peer=peer, ids=len(ids))
        self._send(peer, "lo/content_req", request, request.wire_size())

    def _handle_content_request(self, message: Message) -> None:
        request: ContentRequest = message.payload
        txs = tuple(
            tx
            for tx in (self.log.content_of(i) for i in request.ids)
            if tx is not None
        )
        response = ContentResponse(request_id=request.request_id, txs=txs)
        self._send(
            message.sender, "lo/content_resp", response, response.wire_size(),
            is_overhead=False,
        )

    def _handle_content_response(self, message: Message) -> None:
        response: ContentResponse = message.payload
        if response.request_id >= 0:
            timer = self._content_timers.pop(response.request_id, None)
            if timer is not None:
                timer.cancel()
            self.acct.close_request(response.request_id)
            sender_key = self.directory.key_of(message.sender)
            self.acct.clear_suspicion(sender_key)
        _t = obs.TRACER
        if _t.enabled:
            _t.event("content.recv", t=self.now, node_id=self.node_id,
                     peer=message.sender, txs=len(response.txs))
        for tx in response.txs:
            self._ingest_content(tx)
        if self._pending_inspections:
            self._retry_pending_inspections()

    def _ingest_content(self, tx: Transaction) -> None:
        if tx.sketch_id not in self.log:
            # Content for an uncommitted id: commit then store (the sender
            # vouches for it; it will appear in our next commitments).
            self._commit_bundle([tx.sketch_id], source_peer=None)
        if tx.sketch_id not in self.log:
            return  # a (faulty) subclass refused the commitment
        if self.log.content_of(tx.sketch_id) is not None:
            return
        valid = prevalidate(tx)
        self.log.add_content(tx, valid=valid)

    # ------------------------------------------------------------ timeouts

    def _on_sync_timeout(self, request_id: int) -> None:
        session = self._sessions.get(request_id)
        action = self.acct.on_timeout(request_id, self.now)
        _t = obs.TRACER
        if action is None:
            if session is not None:
                self._sessions.pop(request_id, None)
                if _t.enabled:
                    _t.end_span(session.span, self.now, outcome="stale")
            return
        if action == "resend" and session is not None:
            if _t.enabled and session.span is not None:
                session.span.attrs["retries"] += 1
            sketch = sketch_for_spec(self.log, session.spec, session.capacity)
            request = SyncRequest(
                request_id=request_id,
                header=self.header(),
                spec=session.spec,
                sketch=sketch,
                is_retry=True,
            )
            session.timer = self.loop.call_later(
                self.config.request_timeout_s, self._on_sync_timeout, request_id
            )
            self._send(session.peer, "lo/sync_req", request, request.wire_size())
            return
        if action == "suspect" and session is not None:
            self._sessions.pop(request_id, None)
            if _t.enabled:
                _t.end_span(session.span, self.now, outcome="timeout")
            self._raise_suspicion(session.peer, "sync", ())

    def _on_content_timeout(
        self, request_id: int, peer: int, ids: Tuple[int, ...]
    ) -> None:
        action = self.acct.on_timeout(request_id, self.now)
        if action is None:
            self._content_timers.pop(request_id, None)
            return
        if action == "resend":
            request = ContentRequest(request_id=request_id, ids=ids)
            self._content_timers[request_id] = self.loop.call_later(
                self.config.request_timeout_s, self._on_content_timeout,
                request_id, peer, ids,
            )
            self._send(peer, "lo/content_req", request, request.wire_size())
            return
        if action == "suspect":
            self._content_timers.pop(request_id, None)
            self._raise_suspicion(peer, "content", ids)

    # -------------------------------------------------------------- blaming

    def _raise_suspicion(self, peer: int, kind: str, detail: Tuple[int, ...]) -> None:
        peer_key = self.directory.key_of(peer)
        if self.acct.is_exposed(peer_key):
            return
        store = self.acct.store_for(peer_key)
        blame = SuspicionBlame(
            accuser=self.public_key,
            accused=peer_key,
            kind=kind,
            detail=detail,
            last_known=store.latest,
            raised_at=self.now,
        )
        if self.counter is not None and not self.acct.is_suspected(peer_key):
            self.counter.increment("suspicions_raised", node=self.node_id)
        _t = obs.TRACER
        if _t.enabled:
            _t.event("acct.suspicion", t=self.now, node_id=self.node_id,
                     accused=peer, accused_key=peer_key.raw.hex()[:16],
                     kind=kind, detail_len=len(detail))
        self.acct.adopt_suspicion(blame, self.now)
        self._gossip_suspicion(blame)

    def _gossip_suspicion(self, blame: SuspicionBlame) -> None:
        key = (blame.accuser.raw, blame.accused.raw, blame.kind, blame.raised_at)
        if key in self._seen_suspicions:
            return
        self._seen_suspicions.add(key)
        self._send_fanout(self._gossip_peers(), "lo/suspicion", blame,
                          blame.wire_size())

    def _gossip_peers(self) -> List[int]:
        peers = self._eligible_neighbors()
        fanout = min(self.config.blame_gossip_fanout, len(peers))
        return self.rng.sample(peers, fanout) if fanout else []

    def _handle_suspicion(self, message: Message) -> None:
        blame: SuspicionBlame = message.payload
        if blame.accused == self.public_key:
            # We are being suspected: answer publicly by pushing our latest
            # commitment back through the accuser's path.
            self._send_commit_update(message.sender)
            return
        key = (blame.accuser.raw, blame.accused.raw, blame.kind, blame.raised_at)
        if key in self._seen_suspicions:
            return
        action, header, evidence = self.acct.evaluate_suspicion(blame)
        if action == "expose" and evidence is not None:
            self._broadcast_exposure(
                ExposureBlame(accused=blame.accused, equivocation=evidence)
            )
            return
        if action == "relay" and header is not None:
            accuser_id = self.directory.id_of(blame.accuser)
            self._send(accuser_id, "lo/commit_upd", header, header.wire_size())
        elif action == "investigate":
            accused_id = self.directory.id_of(blame.accused)
            self._send_content_request(accused_id, blame.detail)
        elif (
            self.config.verify_suspicions_locally
            and not self.acct.is_suspected(blame.accused)
            and not self.acct.is_exposed(blame.accused)
        ):
            # Fig. 4: verify the hearsay with our own probe; the timeout /
            # retry machinery turns non-response into our own suspicion.
            accused_id = self.directory.id_of(blame.accused)
            self._send_sync_request(accused_id, spec=None, depth=0)
        else:
            newly = self.acct.adopt_suspicion(blame, self.now)
            if newly and self.counter is not None:
                self.counter.increment("suspicions_adopted", node=self.node_id)
            if newly:
                _t = obs.TRACER
                if _t.enabled:
                    _t.event(
                        "acct.suspicion_adopted", t=self.now,
                        node_id=self.node_id,
                        accused=self._peer_id_of(blame.accused),
                        accused_key=blame.accused.raw.hex()[:16],
                        accuser=self._peer_id_of(blame.accuser),
                        kind=blame.kind,
                    )
        self._gossip_suspicion(blame)

    def _send_commit_update(self, peer: int) -> None:
        header = self.header()
        self._send(peer, "lo/commit_upd", header, header.wire_size())

    def _handle_commit_update(self, message: Message) -> None:
        header: CommitmentHeader = message.payload
        self._observe_remote_header(header)
        signer = header.signer
        if self.acct.is_suspected(signer):
            # The suspected node (or a relay on its behalf) answered.
            self.acct.clear_suspicion(signer)
            self.acct.close_requests_to(signer)
            relay_key = (signer.raw, header.seq)
            if relay_key not in self._relayed_updates:
                self._relayed_updates.add(relay_key)
                self._send_fanout(self._gossip_peers(), "lo/commit_upd",
                                  header, header.wire_size())

    def _observe_remote_header(self, header: CommitmentHeader) -> None:
        evidence = self.acct.observe_header(header)
        if evidence is not None:
            _t = obs.TRACER
            if _t.enabled:
                _t.event(
                    "acct.equivocation", t=self.now, node_id=self.node_id,
                    accused=self._peer_id_of(header.signer),
                    accused_key=header.signer.raw.hex()[:16],
                    seq_a=evidence.header_a.seq, seq_b=evidence.header_b.seq,
                )
            self._broadcast_exposure(
                ExposureBlame(accused=header.signer, equivocation=evidence)
            )

    def _broadcast_exposure(self, blame: ExposureBlame) -> None:
        newly = self.acct.expose(blame)
        if not newly:
            return
        if self.counter is not None:
            self.counter.increment("exposures_adopted", node=self.node_id)
        _t = obs.TRACER
        if _t.enabled:
            if blame.equivocation is not None:
                evidence_kind = "equivocation"
                digest = blame.accused.raw.hex()[:16]
            elif blame.block_violation is not None:
                evidence_kind = (
                    f"block:{blame.block_violation.violation.kind.name.lower()}"
                )
                digest = blame.block_violation.block.block_hash.hex()[:16]
            else:  # pragma: no cover - expose() rejects evidence-free blames
                evidence_kind, digest = "unknown", ""
            _t.event(
                "acct.exposure", t=self.now, node_id=self.node_id,
                accused=self._peer_id_of(blame.accused),
                accused_key=blame.accused.raw.hex()[:16],
                evidence=evidence_kind, evidence_digest=digest,
            )
        self._send_fanout(self._gossip_peers(), "lo/exposure", blame,
                          blame.wire_size())

    def _handle_exposure(self, message: Message) -> None:
        blame: ExposureBlame = message.payload
        self._broadcast_exposure(blame)

    # --------------------------------------------------------------- blocks

    def on_leader_elected(self) -> None:
        """Build and announce a block (called by the leader schedule)."""
        if self._pending_blocks:
            # We know our chain is behind (buffered successors exist); a
            # proposal on a stale tip could not be finalised by any
            # consensus layer, so the slot is skipped.
            return
        _t = obs.TRACER
        span = None
        if _t.enabled:
            span = _t.begin_span("block.build", self.now,
                                 node_id=self.node_id,
                                 policy=self.block_policy)
        if self.block_policy == "highest_fee":
            block = self.builder.build_highest_fee(
                self.log, self.ledger, created_at=self.now
            )
        else:
            block = self.builder.build(
                self.log, self.bundles, self.ledger, created_at=self.now
            )
        if _t.enabled:
            _t.end_span(span, self.now, height=block.height,
                        txs=len(block.tx_ids), commit_seq=block.commit_seq)
        header = self.header_at(block.commit_seq)
        if header is None:
            header = self.header()
        announce = BlockAnnounce(
            block=block,
            header=header,
            bundle_ids=tuple(b.ids for b in self.bundles[: block.commit_seq]),
        )
        self.ledger.append(block)
        self._seen_blocks.add(block.block_hash)
        self._announces_by_height[block.height] = announce
        if self.block_tracker is not None:
            for sketch_id in block.tx_ids:
                self.block_tracker.record_seen(sketch_id, 0, self.now)
        if self.on_block_created is not None:
            self.on_block_created(block)
        self._send_fanout(self._eligible_neighbors(), "lo/block", announce,
                          announce.wire_size(), is_overhead=False)

    def _handle_block_announce(self, message: Message) -> None:
        announce: BlockAnnounce = message.payload
        block: Block = announce.block
        if block.block_hash in self._seen_blocks:
            return
        self._seen_blocks.add(block.block_hash)
        if not block.signature_valid():
            return
        # Forward first: settlement and detection both ride on propagation.
        self._send_fanout(
            [p for p in self._eligible_neighbors() if p != message.sender],
            "lo/block", announce, announce.wire_size(), is_overhead=False,
        )
        self._settle_or_buffer(announce)

    def _settle_or_buffer(self, announce: BlockAnnounce) -> None:
        block: Block = announce.block
        if block.height > self.ledger.height + 1:
            # Chain gap (e.g. we just rejoined after a crash): buffer and
            # fetch the missing ancestors from a random neighbour.
            self._pending_blocks[block.height] = announce
            self._request_missing_blocks()
            return
        settled_before = self.ledger.settled_ids()
        if not self.ledger.append(block):
            return
        self._announces_by_height[block.height] = announce
        self._inspect_announce(announce, settled_before)
        # Drain any buffered successor blocks.
        next_announce = self._pending_blocks.pop(self.ledger.height + 1, None)
        if next_announce is not None:
            self._settle_or_buffer(next_announce)

    def _request_missing_blocks(self) -> None:
        wanted = self.ledger.height + 1
        buffered = self._pending_blocks.pop(wanted, None)
        if buffered is not None:
            # The gap already closed from the buffer side; settle directly.
            self._settle_or_buffer(buffered)
            return
        peers = self._eligible_neighbors()
        if peers:
            peer = self.rng.choice(peers)
            self._send(peer, "lo/block_req", wanted, 8)

    def _handle_block_request(self, message: Message) -> None:
        height = message.payload
        announce = self._announces_by_height.get(height)
        if announce is not None:
            self._send(
                message.sender, "lo/block", announce, announce.wire_size(),
                is_overhead=False,
            )

    def _inspect_announce(
        self, announce: BlockAnnounce, settled_before: Set[int]
    ) -> None:
        if not self.inspection_enabled:
            return
        block: Block = announce.block
        evidence_ctx = self._verify_announce_context(announce)
        if not evidence_ctx:
            # Malformed inspection context: cannot judge, suspect the creator.
            creator_id = self.directory.id_of(block.creator)
            self._raise_suspicion(creator_id, "announce", ())
            return
        self._observe_remote_header(announce.header)
        self._check_stale_seq(announce)
        _t = obs.TRACER
        span = None
        if _t.enabled:
            span = _t.begin_span(
                "block.inspect", self.now, node_id=self.node_id,
                height=block.height,
                creator=self._peer_id_of(block.creator),
            )
        result = self._run_inspection(announce, settled_before)
        if not result.conclusive:
            if _t.enabled:
                _t.end_span(span, self.now, conclusive=False,
                            missing=len(result.missing_content))
            if result.missing_content:
                self._pending_inspections.append(announce)
                self._send_content_request(
                    self.directory.id_of(block.creator),
                    result.missing_content[:64],
                )
            return
        if self.counter is not None:
            self.counter.increment("blocks_inspected", node=self.node_id)
        if _t.enabled:
            _t.end_span(span, self.now, conclusive=True,
                        violations=len(result.violations))
        for violation in result.violations:
            if _t.enabled:
                _t.event(
                    "inspect.violation", t=self.now, node_id=self.node_id,
                    creator=self._peer_id_of(block.creator),
                    kind=violation.kind.name.lower(),
                    block_hash=block.block_hash.hex()[:16],
                )
            evidence = BlockViolationEvidence(
                accused=block.creator,
                block=block,
                header=announce.header,
                bundle_ids=announce.bundle_ids,
                violation=violation,
            )
            self._broadcast_exposure(
                ExposureBlame(accused=block.creator, block_violation=evidence)
            )

    def _check_stale_seq(self, announce: BlockAnnounce) -> None:
        """Lagging-censorship check: the pinned prefix must be recent.

        A creator that signs ever-newer commitments but pins its blocks to
        a far older prefix escapes the inclusion policy; any of its signed
        headers more than STALE_SEQ_SLACK bundles ahead of the pinned seq
        is transferable proof (policies.py).
        """
        from repro.core.policies import STALE_SEQ_SLACK

        block: Block = announce.block
        store = self.acct.store_for(block.creator)
        freshest = announce.header
        if store.latest is not None and store.latest.seq > freshest.seq:
            freshest = store.latest
        if freshest.seq - block.commit_seq <= STALE_SEQ_SLACK:
            return
        violation = Violation(
            ViolationKind.STALE_COMMITMENT_SEQ,
            block.block_hash,
            f"block pins seq {block.commit_seq} while the creator signed"
            f" seq {freshest.seq}",
        )
        evidence = BlockViolationEvidence(
            accused=block.creator,
            block=block,
            header=freshest,
            bundle_ids=(),
            violation=violation,
        )
        self._broadcast_exposure(
            ExposureBlame(accused=block.creator, block_violation=evidence)
        )

    def _verify_announce_context(self, announce: BlockAnnounce) -> bool:
        header: CommitmentHeader = announce.header
        block: Block = announce.block
        if header.signer != block.creator or not header.signature_valid():
            return False
        if header.seq < block.commit_seq or len(announce.bundle_ids) < block.commit_seq:
            return False
        digest = GENESIS_DIGEST
        for index in range(block.commit_seq):
            digest = chain_digest(digest, bundle_digest(announce.bundle_ids[index]))
            if header.digests[index] != digest:
                return False
        return True

    def _run_inspection(
        self, announce: BlockAnnounce, settled_before: Set[int]
    ) -> InspectionResult:
        block: Block = announce.block
        bundles = [
            BundleInfo(index=i, ids=ids, source_peer=None, committed_at=0.0)
            for i, ids in enumerate(announce.bundle_ids)
        ]
        prev_hash = block.prev_hash
        return self.inspector.inspect(
            block,
            bundles,
            prev_hash,
            settled_before,
            content_known=lambda i: self.log.content_of(i) is not None,
            is_invalid=self.log.is_invalid,
            fee_of=lambda i: (
                self.log.content_of(i).fee
                if self.log.content_of(i) is not None
                else None
            ),
        )

    def _retry_pending_inspections(self) -> None:
        pending = self._pending_inspections
        self._pending_inspections = []
        for announce in pending:
            block: Block = announce.block
            height = block.height
            if height > self.ledger.height:
                self._pending_inspections.append(announce)
                continue
            settled_before: Set[int] = set()
            for h in range(height):
                settled_before.update(self.ledger.block_at(h).tx_ids)
            result = self._run_inspection(announce, settled_before)
            if not result.conclusive:
                self._pending_inspections.append(announce)
                continue
            for violation in result.violations:
                evidence = BlockViolationEvidence(
                    accused=block.creator,
                    block=block,
                    header=announce.header,
                    bundle_ids=announce.bundle_ids,
                    violation=violation,
                )
                self._broadcast_exposure(
                    ExposureBlame(accused=block.creator, block_violation=evidence)
                )
