"""Signed mempool commitments and per-peer commitment tracking.

A commitment "acts as a cryptographic verification of the incorporated
mempool transactions" and "comprises both the miner's Bloom Clock and
Minisketch" (section 4.2).  Commitments are append-only: each reconciling
interaction appends a *bundle* (an ordered batch of newly observed
transaction ids) to the signer's log, and the commitment header at sequence
``n`` binds the entire bundle history up to ``n`` through a digest chain.

Two signed headers from the same signer are *consistent* iff one's digest
chain is a prefix of the other's.  Inconsistency is transferable proof of
misbehaviour (equivocation / history rewriting) -- the evidence behind
Alg. 1 line 31's exposure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bloomclock import BloomClock
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair, PublicKey, verify

# Wire cost of a commitment header: bloom clock (68 B at 32 cells) + seq
# counter (8) + chained digest (32) + tx count (4) + signature (64).
def header_wire_size(clock_cells: int = 32) -> int:
    """Bytes a commitment header occupies on the wire."""
    return (2 * clock_cells + 4) + 8 + 32 + 4 + 64


def bundle_digest(ids: Sequence[int]) -> bytes:
    """Digest of one bundle's id *set*.

    Bundles order transactions at bundle granularity only ("commitment is
    recorded on a whole transaction bundle", section 1); the order inside a
    bundle is canonicalised by the deterministic shuffle at block-building
    time, so the digest sorts ids to be representation-independent.
    """
    return sha256(b",".join(str(i).encode() for i in sorted(ids)))


def chain_digest(prev: bytes, bundle: bytes) -> bytes:
    """Extend the commitment digest chain by one bundle."""
    return sha256(prev + bundle)


GENESIS_DIGEST = b"\x00" * 32


def sketch_history_consistent(
    older_sketch, newer_sketch, older_count: int, newer_count: int
) -> bool:
    """Section 5.2's Minisketch-based commitment consistency check.

    "When a node has two commitments, it can easily detect any
    inconsistency between the previous commitment n and the latest
    commitment n+1 by reconciling two Minisketches."

    An append-only history can only *add* items, so the decoded symmetric
    difference between the two sketches must consist purely of additions:
    its size must equal ``newer_count - older_count`` exactly.  Any
    removal (hiding a previously committed transaction) inflates the
    difference beyond the count delta -- even when paired with a fresh
    addition to keep the counts plausible -- and a decode failure on
    honestly-sized histories is itself suspicious.

    Returns True when the pair is consistent; False on proof of a
    non-append-only history.  Raises
    :class:`~repro.sketch.SketchDecodeError` when the difference exceeds
    the sketch capacity (the caller falls back to the digest-chain check).
    """
    delta = newer_count - older_count
    if delta < 0:
        return False  # histories cannot shrink
    difference = (older_sketch ^ newer_sketch).decode()
    return len(difference) == delta


@dataclass(frozen=True)
class BundleInfo:
    """One committed bundle: its ids (in order) and provenance.

    Provenance records where the bundle's transactions were learned from
    (``source_peer`` is None for locally created transactions) -- this is
    the "commitment chain" that section 5.3's collusion tracing follows
    from a block back to a transaction's creator.
    """

    index: int
    ids: Tuple[int, ...]
    source_peer: Optional[int]
    committed_at: float

    @property
    def digest(self) -> bytes:
        """The bundle digest chained into the commitment sequence."""
        return bundle_digest(self.ids)


@dataclass(frozen=True)
class CommitmentHeader:
    """A signed, self-contained commitment at one sequence number.

    ``digests`` is the full bundle digest chain (one entry per bundle); the
    signature covers the chain tip, the clock and the count, so any two
    headers from one signer can be checked for prefix consistency offline.
    """

    signer: PublicKey
    seq: int                      # number of committed bundles
    tx_count: int                 # total committed transaction ids
    digests: Tuple[bytes, ...]    # cumulative digest chain, len == seq
    clock: BloomClock
    signature: bytes = b""

    def signing_bytes(self) -> bytes:
        """Canonical bytes covered by the miner's commitment signature."""
        tip = self.digests[-1] if self.digests else GENESIS_DIGEST
        return b"|".join(
            (
                b"lo-commitment",
                self.signer.raw,
                str(self.seq).encode(),
                str(self.tx_count).encode(),
                tip,
                self.clock.serialize(),
            )
        )

    def signature_valid(self) -> bool:
        """Verify the signer's signature (memoized per instance).

        Headers are immutable snapshots -- every field is frozen and the
        clock is copied at signing time -- so the verdict cannot change.
        The same header object is observed once per peer per exchange, and
        re-verifying dominated the accountability profile before this memo.
        """
        cached = self.__dict__.get("_sig_ok")
        if cached is None:
            cached = verify(self.signer, self.signing_bytes(), self.signature)
            object.__setattr__(self, "_sig_ok", cached)
        return cached

    def tip_digest(self) -> bytes:
        """Chain tip digest (genesis constant at seq 0)."""
        return self.digests[-1] if self.digests else GENESIS_DIGEST

    @property
    def has_full_chain(self) -> bool:
        """Whether interior chain digests are present (vs tip-only wire form).

        Headers decoded from :meth:`from_bytes` carry only the signed tip;
        prefix/consistency checks need the full chain, which peers exchange
        on demand.  Signature verification works either way.
        """
        return all(len(d) == 32 for d in self.digests)

    def wire_size(self) -> int:
        """On-wire size (constant-size header; chain is fetched on demand)."""
        return header_wire_size(self.clock.cells)

    def to_bytes(self) -> bytes:
        """Wire encoding: signer, seq, count, chain tip, clock, signature.

        Matches :meth:`wire_size`: the digest *chain* is not shipped (the
        tip commits to it; interior digests travel on demand), so two
        deserialized headers support signature checks and clock-based
        consistency checks, while prefix proofs fetch the chain separately.
        """
        return b"".join(
            (
                self.signer.raw,
                self.seq.to_bytes(8, "big"),
                self.tx_count.to_bytes(4, "big"),
                self.tip_digest(),
                self.clock.serialize(),
                self.signature,
            )
        )

    @classmethod
    def from_bytes(cls, data: bytes, clock_cells: int = 32) -> "CommitmentHeader":
        """Decode :meth:`to_bytes` output (chain carries only the tip)."""
        expected = header_wire_size(clock_cells)
        if len(data) != expected:
            raise ValueError(f"expected {expected} bytes, got {len(data)}")
        offset = 0
        signer = PublicKey(data[offset : offset + 32]); offset += 32
        seq = int.from_bytes(data[offset : offset + 8], "big"); offset += 8
        tx_count = int.from_bytes(data[offset : offset + 4], "big"); offset += 4
        tip = data[offset : offset + 32]; offset += 32
        clock_len = 2 * clock_cells + 4
        clock = BloomClock.deserialize(
            data[offset : offset + clock_len], cells=clock_cells
        )
        offset += clock_len
        signature = data[offset : offset + 64]
        digests = (tip,) if seq > 0 else ()
        return cls(
            signer=signer,
            seq=seq,
            tx_count=tx_count,
            digests=digests if seq <= 1 else (b"",) * (seq - 1) + (tip,),
            clock=clock,
            signature=signature,
        )

    def is_prefix_of(self, other: "CommitmentHeader") -> bool:
        """Digest-chain prefix test (both headers must share a signer)."""
        if self.seq > other.seq:
            return False
        return tuple(other.digests[: self.seq]) == tuple(self.digests)

    def consistent_with(self, other: "CommitmentHeader") -> bool:
        """True iff one header extends the other (append-only histories)."""
        if self.signer != other.signer:
            raise ValueError("consistency is defined per signer")
        if self.seq <= other.seq:
            return self.is_prefix_of(other) and other.clock.dominates(self.clock)
        return other.is_prefix_of(self) and self.clock.dominates(other.clock)


def sign_header(
    keypair: KeyPair,
    seq: int,
    tx_count: int,
    digests: Sequence[bytes],
    clock: BloomClock,
) -> CommitmentHeader:
    """Create a signed commitment header."""
    unsigned = CommitmentHeader(
        signer=keypair.public_key,
        seq=seq,
        tx_count=tx_count,
        digests=tuple(digests),
        clock=clock.copy(),
    )
    signature = keypair.sign(unsigned.signing_bytes())
    return CommitmentHeader(
        signer=unsigned.signer,
        seq=seq,
        tx_count=tx_count,
        digests=unsigned.digests,
        clock=unsigned.clock,
        signature=signature,
    )


@dataclass(frozen=True)
class EquivocationEvidence:
    """Two signed, mutually inconsistent headers from the same signer.

    Verifiable by any third party: both signatures check out and the digest
    chains are not prefix-ordered (or a clock cell decreased).  This is the
    transferable proof behind exposures.
    """

    accused: PublicKey
    header_a: CommitmentHeader
    header_b: CommitmentHeader

    def verify(self) -> bool:
        """Check both signatures and the inconsistency claim."""
        if self.header_a.signer != self.accused or self.header_b.signer != self.accused:
            return False
        if not self.header_a.signature_valid() or not self.header_b.signature_valid():
            return False
        return not self.header_a.consistent_with(self.header_b)


class CommitmentStore:
    """All commitments a node has observed from one remote signer.

    Maintains the latest header, a per-seq header index for equivocation
    detection, and the observer's reconstruction of the signer's committed
    id set (populated through reconciliation), which Alg. 1 needs for the
    ``C_i \\ C_hat_j`` test.
    """

    def __init__(self, signer: PublicKey):
        self.signer = signer
        self.latest: Optional[CommitmentHeader] = None
        self.by_seq: Dict[int, CommitmentHeader] = {}
        self.known_ids: set = set()
        self.bundles: List[BundleInfo] = []  # when the full log was shared

    def observe(
        self, header: CommitmentHeader
    ) -> Optional[EquivocationEvidence]:
        """Record a header; returns evidence when it conflicts with history.

        Conflicts: same seq, different digest chain; or any stored header
        that fails the prefix/clock consistency test against the new one.
        A conflicting header is *not* stored (the first one stands as our
        view), but both are embedded in the returned evidence.
        """
        if header.signer != self.signer:
            raise ValueError("header from a different signer")
        existing = self.by_seq.get(header.seq)
        if existing is not None and existing.digests != header.digests:
            return EquivocationEvidence(self.signer, existing, header)
        for stored in self._anchors():
            if not stored.consistent_with(header):
                return EquivocationEvidence(self.signer, stored, header)
        self.by_seq[header.seq] = header
        if self.latest is None or header.seq > self.latest.seq:
            self.latest = header
        return None

    def _anchors(self) -> List[CommitmentHeader]:
        """Headers used for consistency checks (latest plus the extremes)."""
        if not self.by_seq:
            return []
        seqs = sorted(self.by_seq)
        picked = {seqs[0], seqs[-1]}
        return [self.by_seq[s] for s in picked]

    def record_ids(self, ids: Iterable[int]) -> None:
        """Extend the local reconstruction of the signer's committed ids."""
        self.known_ids.update(ids)

    @property
    def seq(self) -> int:
        """Latest observed sequence number (0 when nothing observed)."""
        return self.latest.seq if self.latest is not None else 0
