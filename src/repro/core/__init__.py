"""LO: the accountable base-layer protocol (the paper's contribution).

Public surface:

* :class:`~repro.core.node.LONode` -- a full miner: Alg. 1 reconciliation,
  accountability (suspicions/exposures), canonical block building and
  block inspection.
* :class:`~repro.core.config.LOConfig` -- protocol parameters (defaults
  follow the paper's evaluation setup).
* :mod:`repro.core.policies` -- the three explicit policies of Table 1.
* Commitments, ordering, inspection and accountability primitives for
  building custom nodes (the attack implementations subclass LONode).
"""

from repro.core.accountability import (
    AccountabilityState,
    BlockViolationEvidence,
    ExposureBlame,
    PendingRequest,
    SuspicionBlame,
)
from repro.core.blockbuilder import BlockBuilder
from repro.core.client import LightClient, StatusReply, SubmitAck
from repro.core.enforcement import (
    BlockRejection,
    EnforcementManager,
    NetworkEviction,
    StakeSlashing,
)
from repro.core.commitment import (
    BundleInfo,
    CommitmentHeader,
    CommitmentStore,
    EquivocationEvidence,
    sign_header,
)
from repro.core.config import LOConfig
from repro.core.inspection import BlockInspector, InspectionResult, Violation
from repro.core.node import Directory, LONode
from repro.core.ordering import canonical_order, fee_priority_order, shuffle_bundle
from repro.core.policies import Manipulation, Policy, ViolationKind
from repro.core.wire import PeerQuarantine, validate_payload

__all__ = [
    "AccountabilityState",
    "BlockBuilder",
    "BlockInspector",
    "BlockRejection",
    "EnforcementManager",
    "LightClient",
    "NetworkEviction",
    "StakeSlashing",
    "StatusReply",
    "SubmitAck",
    "BlockViolationEvidence",
    "BundleInfo",
    "CommitmentHeader",
    "CommitmentStore",
    "Directory",
    "EquivocationEvidence",
    "ExposureBlame",
    "InspectionResult",
    "LOConfig",
    "LONode",
    "Manipulation",
    "PeerQuarantine",
    "PendingRequest",
    "Policy",
    "SuspicionBlame",
    "Violation",
    "ViolationKind",
    "canonical_order",
    "fee_priority_order",
    "shuffle_bundle",
    "sign_header",
    "validate_payload",
]
