"""Mempool reconciliation: messages, adaptive sketch sizing, split recursion.

One reconciliation round between a requester ``i`` and responder ``j``
(Alg. 1 plus the section 4.2 implementation details):

1. ``i`` sends a :class:`SyncRequest`: its signed commitment header (Bloom
   Clock inside) plus a Minisketch of its transactions in the cells that
   look out of date, sized from the clock-gap estimate.
2. ``j`` XORs the sketch with its own over the same id subset and decodes
   the symmetric difference.  On success it commits to every transaction it
   was missing ("an assurance to process them immediately following all
   known local transactions") and answers with a :class:`SyncResponse`
   carrying its updated header, the ids it wants content for, and the ids
   ``i`` appears to be missing.
3. On decode failure ``j`` answers with ``status="split"`` and two
   :class:`SplitSpec` halves; ``i`` re-issues one SyncRequest per half
   ("we divide the data into two subsets and attempt the reconciliation
   process on each subset").  Recursion is depth-limited by the config.

Content then flows via :class:`ContentRequest`/:class:`ContentResponse`;
content bytes are *not* protocol overhead (Fig. 9 excludes them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.commitment import CommitmentHeader
from repro.core.config import LOConfig
from repro.mempool.txlog import TransactionLog
from repro.sketch import PinSketch, SketchDecodeError


@dataclass(frozen=True)
class SplitSpec:
    """A slice of the id space: Bloom-Clock cells, then low id bits.

    ``bit_level == 0`` selects all ids in ``cells``.  Deeper levels keep
    only ids with ``id & ((1 << bit_level) - 1) == bit_index``; used when a
    single cell still exceeds sketch capacity.
    """

    cells: Tuple[int, ...]
    bit_level: int = 0
    bit_index: int = 0

    def matches(self, sketch_id: int) -> bool:
        """Whether an id falls inside this slice (cell check excluded)."""
        if self.bit_level == 0:
            return True
        return sketch_id & ((1 << self.bit_level) - 1) == self.bit_index

    def split(self) -> Tuple["SplitSpec", "SplitSpec"]:
        """Bisect: halve the cell list, or descend one id bit for one cell."""
        if len(self.cells) > 1 and self.bit_level == 0:
            mid = len(self.cells) // 2
            return (
                SplitSpec(self.cells[:mid], 0, 0),
                SplitSpec(self.cells[mid:], 0, 0),
            )
        return (
            SplitSpec(self.cells, self.bit_level + 1, self.bit_index),
            SplitSpec(
                self.cells, self.bit_level + 1, self.bit_index | (1 << self.bit_level)
            ),
        )

    def wire_size(self) -> int:
        """On-wire size: one byte per cell index plus the bit refinement."""
        return len(self.cells) + 2


def sketch_for_spec(
    log: TransactionLog, spec: SplitSpec, capacity: int
) -> PinSketch:
    """The log's sketch restricted to a split spec.

    Pure cell slices reuse the incrementally maintained per-cell sketches
    (cheap XOR); bit-refined slices sketch the filtered items ad hoc.
    """
    if spec.bit_level == 0:
        return log.sketch_for_cells(spec.cells, capacity)
    items = [i for i in log.items_in_cells(spec.cells) if spec.matches(i)]
    return log.subset_sketch(items, capacity)


def ids_for_spec(log: TransactionLog, spec: SplitSpec) -> List[int]:
    """All local ids inside a split spec."""
    if spec.bit_level == 0:
        # matches() is vacuously true at bit level 0; skip the filter.
        return log.items_in_cells(spec.cells)
    return [i for i in log.items_in_cells(spec.cells) if spec.matches(i)]


def adaptive_capacity(estimate: int, config: LOConfig) -> int:
    """Sketch capacity for an estimated difference.

    The Bloom-Clock estimate is a lower bound, so it is inflated by the
    configured safety factor and rounded up to a power of two (stable wire
    sizes), clamped to [min_sketch_capacity, sketch_capacity].
    """
    scaled = max(1, int(math.ceil(estimate * config.sketch_safety_factor)))
    capacity = 1 << (scaled - 1).bit_length()
    return max(config.min_sketch_capacity, min(capacity, config.sketch_capacity))


def decode_difference(
    local: PinSketch, remote: PinSketch
) -> Optional[Set[int]]:
    """XOR-combine and decode; None signals capacity overflow (split)."""
    from repro import obs

    try:
        diff = (local ^ remote).decode()
    except SketchDecodeError:
        diff = None
    _t = obs.TRACER
    if _t.enabled:
        reg = _t.registry
        if diff is None:
            reg.counter("reconcile.decode_fail").inc()
        else:
            reg.counter("reconcile.decode_ok").inc()
            reg.histogram("reconcile.diff_size").observe(len(diff))
    return diff


# --------------------------------------------------------------------------
# Message payloads.  ``wire_size`` states the realistic on-wire cost; the
# network layer adds the fixed envelope.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SyncRequest:
    """Step 1: commitment request with the requester's sketch."""

    request_id: int
    header: CommitmentHeader
    spec: SplitSpec
    sketch: PinSketch
    is_retry: bool = False

    def wire_size(self) -> int:
        """On-wire size: header + split spec + sketch syndromes."""
        return self.header.wire_size() + self.spec.wire_size() + self.sketch.wire_size()


@dataclass(frozen=True)
class SyncResponse:
    """Step 2/3: the responder's commitment plus the decoded difference.

    ``status`` is ``"ok"`` or ``"split"``.  On ok, ``requested_ids`` are
    ids the responder just committed to and needs content for, and
    ``offered_ids`` are ids the requester appears to lack.  On split,
    ``split_specs`` carries the two halves to retry.
    """

    request_id: int
    header: CommitmentHeader
    status: str
    requested_ids: Tuple[int, ...] = ()
    offered_ids: Tuple[int, ...] = ()
    split_specs: Tuple[SplitSpec, ...] = ()

    def wire_size(self) -> int:
        """On-wire size: header, status byte, id lists, split specs."""
        size = self.header.wire_size() + 1
        size += 4 * (len(self.requested_ids) + len(self.offered_ids))
        size += sum(spec.wire_size() for spec in self.split_specs)
        return size


@dataclass(frozen=True)
class ContentRequest:
    """Ask a peer for the transaction bytes of committed ids."""

    request_id: int
    ids: Tuple[int, ...]

    def wire_size(self) -> int:
        """On-wire size: request id plus 4 bytes per requested id."""
        return 8 + 4 * len(self.ids)


@dataclass(frozen=True)
class ContentResponse:
    """Transaction bytes; counted as payload, not protocol overhead."""

    request_id: int
    txs: Tuple  # tuple of Transaction

    def wire_size(self) -> int:
        """On-wire size: request id plus the transaction payloads."""
        return 8 + sum(tx.wire_size() for tx in self.txs)


@dataclass(frozen=True)
class BlockAnnounce:
    """A freshly built block with its inspection context.

    Carries the creator's signed header at the pinned seq and the bundle id
    lists for the pinned prefix.  Wire accounting charges only the block,
    the header and the bundle *boundaries*: inspectors already hold the ids
    through reconciliation, so a real implementation ships offsets, not id
    lists (DESIGN.md).
    """

    block: object  # Block
    header: CommitmentHeader
    bundle_ids: Tuple[Tuple[int, ...], ...]

    def wire_size(self) -> int:
        """On-wire size: block + header + 2 bytes per bundle boundary."""
        return self.block.wire_size() + self.header.wire_size() + 2 * len(self.bundle_ids)
