"""Defensive wire-format validation and peer quarantine for `lo/*` ingress.

A real deployment deserializes untrusted bytes; this simulator passes
Python objects, so a Byzantine peer (or the chaos injector's corruption
fault) can hand a handler *any* object.  Sections 3.1-3.2 demand that
correct nodes survive that: a malformed payload must never crash the node
and must never cause a correct peer to be blamed.  The counterpart is that
garbage is *attributable* -- the network layer authenticates the sender --
so repeated garbage from one peer is itself accountable behaviour.

Two pieces:

* :func:`validate_payload` -- a per-message-type structural schema check
  returning ``None`` when the payload is well-formed or a human-readable
  reason string when it is not.  Checks are deliberately shallow (types,
  shapes, enum values); cryptographic verification stays in the handlers.
* :class:`PeerQuarantine` -- per-peer violation accounting with
  exponential-backoff quarantine: after ``threshold`` violations in one
  admission window the peer is ignored for ``base_s * 2**(episode-1)``
  seconds (capped at ``max_s``), then re-admitted on probation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.bloomclock import BloomClock
from repro.chain.block import Block
from repro.core.commitment import CommitmentHeader
from repro.core.reconciliation import (
    BlockAnnounce,
    ContentRequest,
    ContentResponse,
    SplitSpec,
    SyncRequest,
    SyncResponse,
)
from repro.crypto.keys import PublicKey
from repro.mempool.transaction import Transaction
from repro.sketch import PinSketch

Validator = Callable[[Any], Optional[str]]


# --------------------------------------------------------------------------
# Small shape helpers.  Each returns a reason string or None.
# --------------------------------------------------------------------------


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _int_field(value: Any, name: str, minimum: Optional[int] = None) -> Optional[str]:
    if not _is_int(value):
        return f"{name}: expected int, got {type(value).__name__}"
    if minimum is not None and value < minimum:
        return f"{name}: {value} below minimum {minimum}"
    return None


def _float_field(value: Any, name: str) -> Optional[str]:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return f"{name}: expected number, got {type(value).__name__}"
    if value != value:  # NaN poisons timeout arithmetic
        return f"{name}: NaN"
    return None


def _int_tuple(value: Any, name: str) -> Optional[str]:
    if not isinstance(value, tuple):
        return f"{name}: expected tuple, got {type(value).__name__}"
    if not all(map(_is_int, value)):
        return f"{name}: non-integer element"
    return None


def _typed(value: Any, kind: type, name: str) -> Optional[str]:
    if not isinstance(value, kind):
        return f"{name}: expected {kind.__name__}, got {type(value).__name__}"
    return None


def _check_header(header: Any, name: str = "header") -> Optional[str]:
    error = _typed(header, CommitmentHeader, name)
    if error:
        return error
    # Headers are frozen snapshots shared across many messages (a node
    # reuses its cached signed header until its log advances), so a clean
    # verdict is memoized per object.  Only validity is cached: failure
    # reasons embed ``name``, which varies between call sites.
    if header.__dict__.get("_schema_ok"):
        return None
    verdict = _check_header_fields(header, name)
    if verdict is None:
        object.__setattr__(header, "_schema_ok", True)
    return verdict


def _check_header_fields(header: Any, name: str) -> Optional[str]:
    for reason in (
        _typed(header.signer, PublicKey, f"{name}.signer"),
        _int_field(header.seq, f"{name}.seq", minimum=0),
        _int_field(header.tx_count, f"{name}.tx_count", minimum=0),
        _typed(header.digests, tuple, f"{name}.digests"),
        _typed(header.clock, BloomClock, f"{name}.clock"),
        _typed(header.signature, bytes, f"{name}.signature"),
    ):
        if reason:
            return reason
    if not all(isinstance(d, bytes) for d in header.digests):
        return f"{name}.digests: non-bytes element"
    if len(header.digests) > header.seq:
        return f"{name}.digests: {len(header.digests)} entries for seq {header.seq}"
    return None


def _check_spec(spec: Any, name: str = "spec") -> Optional[str]:
    error = _typed(spec, SplitSpec, name)
    if error:
        return error
    # Specs are frozen and echoed back verbatim in responses/splits; cache
    # clean verdicts per object like _check_header does.
    if spec.__dict__.get("_schema_ok"):
        return None
    verdict = _check_spec_fields(spec, name)
    if verdict is None:
        object.__setattr__(spec, "_schema_ok", True)
    return verdict


def _check_spec_fields(spec: Any, name: str) -> Optional[str]:
    for reason in (
        _int_tuple(spec.cells, f"{name}.cells"),
        _int_field(spec.bit_level, f"{name}.bit_level", minimum=0),
        _int_field(spec.bit_index, f"{name}.bit_index", minimum=0),
    ):
        if reason:
            return reason
    if not spec.cells:
        return f"{name}.cells: empty"
    if any(cell < 0 for cell in spec.cells):
        return f"{name}.cells: negative cell"
    return None


# --------------------------------------------------------------------------
# Per-message-type validators
# --------------------------------------------------------------------------


def _validate_sync_req(payload: Any) -> Optional[str]:
    error = _typed(payload, SyncRequest, "payload")
    if error:
        return error
    return (
        _int_field(payload.request_id, "request_id", minimum=0)
        or _check_header(payload.header)
        or _check_spec(payload.spec)
        or _typed(payload.sketch, PinSketch, "sketch")
        or _typed(payload.is_retry, bool, "is_retry")
    )


def _validate_sync_resp(payload: Any) -> Optional[str]:
    error = _typed(payload, SyncResponse, "payload")
    if error:
        return error
    error = (
        _int_field(payload.request_id, "request_id", minimum=0)
        or _check_header(payload.header)
        or _int_tuple(payload.requested_ids, "requested_ids")
        or _int_tuple(payload.offered_ids, "offered_ids")
        or _typed(payload.split_specs, tuple, "split_specs")
    )
    if error:
        return error
    if payload.status not in ("ok", "split"):
        return f"status: {payload.status!r} not in ('ok', 'split')"
    for index, spec in enumerate(payload.split_specs):
        error = _check_spec(spec, f"split_specs[{index}]")
        if error:
            return error
    return None


def _validate_content_req(payload: Any) -> Optional[str]:
    error = _typed(payload, ContentRequest, "payload")
    if error:
        return error
    return _int_field(payload.request_id, "request_id", minimum=0) or _int_tuple(
        payload.ids, "ids"
    )


def _validate_content_resp(payload: Any) -> Optional[str]:
    error = _typed(payload, ContentResponse, "payload")
    if error:
        return error
    error = _typed(payload.txs, tuple, "txs")
    if error:
        return error
    if not _is_int(payload.request_id):
        return f"request_id: expected int, got {type(payload.request_id).__name__}"
    for index, tx in enumerate(payload.txs):
        error = _typed(tx, Transaction, f"txs[{index}]")
        if error:
            return error
    return None


def _validate_suspicion(payload: Any) -> Optional[str]:
    from repro.core.accountability import SuspicionBlame

    error = _typed(payload, SuspicionBlame, "payload")
    if error:
        return error
    error = (
        _typed(payload.accuser, PublicKey, "accuser")
        or _typed(payload.accused, PublicKey, "accused")
        or _typed(payload.kind, str, "kind")
        or _int_tuple(payload.detail, "detail")
        or _float_field(payload.raised_at, "raised_at")
    )
    if error:
        return error
    if payload.last_known is not None:
        return _check_header(payload.last_known, "last_known")
    return None


def _validate_exposure(payload: Any) -> Optional[str]:
    from repro.core.accountability import (
        BlockViolationEvidence,
        ExposureBlame,
    )
    from repro.core.commitment import EquivocationEvidence

    error = _typed(payload, ExposureBlame, "payload")
    if error:
        return error
    error = _typed(payload.accused, PublicKey, "accused")
    if error:
        return error
    if payload.equivocation is None and payload.block_violation is None:
        return "exposure carries no evidence"
    if payload.equivocation is not None:
        error = _typed(payload.equivocation, EquivocationEvidence, "equivocation")
        if error:
            return error
        error = _check_header(payload.equivocation.header_a, "equivocation.header_a")
        if error:
            return error
        return _check_header(payload.equivocation.header_b, "equivocation.header_b")
    error = _typed(payload.block_violation, BlockViolationEvidence, "block_violation")
    if error:
        return error
    evidence = payload.block_violation
    error = (
        _typed(evidence.block, Block, "block_violation.block")
        or _check_header(evidence.header, "block_violation.header")
        or _typed(evidence.bundle_ids, tuple, "block_violation.bundle_ids")
    )
    if error:
        return error
    for index, bundle in enumerate(evidence.bundle_ids):
        error = _int_tuple(bundle, f"block_violation.bundle_ids[{index}]")
        if error:
            return error
    return None


def _validate_commit_update(payload: Any) -> Optional[str]:
    return _check_header(payload, "payload")


def _validate_block_announce(payload: Any) -> Optional[str]:
    error = _typed(payload, BlockAnnounce, "payload")
    if error:
        return error
    error = (
        _typed(payload.block, Block, "block")
        or _check_header(payload.header)
        or _typed(payload.bundle_ids, tuple, "bundle_ids")
    )
    if error:
        return error
    block = payload.block
    error = (
        _int_field(block.height, "block.height", minimum=0)
        or _int_field(block.commit_seq, "block.commit_seq", minimum=0)
        or _int_tuple(block.tx_ids, "block.tx_ids")
        or _typed(block.creator, PublicKey, "block.creator")
        or _typed(block.prev_hash, bytes, "block.prev_hash")
    )
    if error:
        return error
    for index, bundle in enumerate(payload.bundle_ids):
        error = _int_tuple(bundle, f"bundle_ids[{index}]")
        if error:
            return error
    return None


def _validate_block_request(payload: Any) -> Optional[str]:
    return _int_field(payload, "payload", minimum=0)


def _validate_client_submit(payload: Any) -> Optional[str]:
    error = _typed(payload, Transaction, "payload")
    if error:
        return error
    return (
        _typed(payload.sender, PublicKey, "sender")
        or _int_field(payload.nonce, "nonce")
        or _int_field(payload.fee, "fee", minimum=0)
        or _int_field(payload.size_bytes, "size_bytes", minimum=1)
        or _typed(payload.payload, bytes, "tx payload")
        or _typed(payload.signature, bytes, "signature")
    )


def _validate_status_query(payload: Any) -> Optional[str]:
    if not isinstance(payload, tuple) or len(payload) != 2:
        return f"payload: expected (client_id, sketch_id), got {type(payload).__name__}"
    client_id, sketch_id = payload
    return _int_field(client_id, "client_id", minimum=0) or _int_field(
        sketch_id, "sketch_id"
    )


VALIDATORS: Dict[str, Validator] = {
    "lo/sync_req": _validate_sync_req,
    "lo/sync_resp": _validate_sync_resp,
    "lo/content_req": _validate_content_req,
    "lo/content_resp": _validate_content_resp,
    "lo/suspicion": _validate_suspicion,
    "lo/exposure": _validate_exposure,
    "lo/commit_upd": _validate_commit_update,
    "lo/block": _validate_block_announce,
    "lo/block_req": _validate_block_request,
    "lo/client_submit": _validate_client_submit,
    "lo/status_query": _validate_status_query,
}


def validate_payload(msg_type: str, payload: Any) -> Optional[str]:
    """Check a payload against its message type's schema.

    Returns ``None`` for a well-formed payload, a reason string otherwise.
    An unregistered message type is itself a violation ("unknown message
    type"): correct peers only ever send the types in :data:`VALIDATORS`.
    Validators are defensive -- any exception they raise on a hostile
    object is converted into a violation rather than propagated.
    """
    validator = VALIDATORS.get(msg_type)
    if validator is None:
        return f"unknown message type {msg_type!r}"
    try:
        return validator(payload)
    except Exception as exc:  # hostile payloads can break any assumption
        return f"validator error: {type(exc).__name__}: {exc}"


# --------------------------------------------------------------------------
# Quarantine
# --------------------------------------------------------------------------


class PeerQuarantine:
    """Violation accounting plus exponential-backoff peer quarantine.

    A peer accumulates violations; hitting ``threshold`` within one
    admission window opens a quarantine episode during which its messages
    are dropped at ingress and it is skipped for outbound sync.  Episode
    ``n`` lasts ``min(max_s, base_s * 2**(n-1))`` seconds.  On expiry the
    peer is re-admitted with a cleared window (but its lifetime violation
    and episode counts persist, so the next episode doubles again).
    """

    def __init__(
        self, threshold: int = 3, base_s: float = 5.0, max_s: float = 300.0
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if base_s <= 0 or max_s < base_s:
            raise ValueError(f"need 0 < base_s <= max_s, got {base_s}, {max_s}")
        self.threshold = threshold
        self.base_s = base_s
        self.max_s = max_s
        self.total_violations: Dict[int, int] = {}
        self.episodes: Dict[int, int] = {}
        self._window: Dict[int, int] = {}
        self._until: Dict[int, float] = {}

    def record_violation(self, peer: int, now: float) -> bool:
        """Count one violation; returns True when quarantine newly opens."""
        self.total_violations[peer] = self.total_violations.get(peer, 0) + 1
        if self.is_quarantined(peer, now):
            return False  # already serving an episode; don't extend per hit
        self._window[peer] = self._window.get(peer, 0) + 1
        if self._window[peer] < self.threshold:
            return False
        episode = self.episodes.get(peer, 0) + 1
        self.episodes[peer] = episode
        duration = min(self.max_s, self.base_s * (2 ** (episode - 1)))
        self._until[peer] = now + duration
        self._window[peer] = 0
        return True

    def is_quarantined(self, peer: int, now: float) -> bool:
        """Whether the peer is currently serving a quarantine episode."""
        until = self._until.get(peer)
        if until is None:
            return False
        if now >= until:
            del self._until[peer]  # lazily re-admit on probation
            return False
        return True

    def release_time(self, peer: int) -> Optional[float]:
        """End of the peer's current episode, if one is open."""
        return self._until.get(peer)

    def violations_of(self, peer: int) -> int:
        """Lifetime violation count for a peer."""
        return self.total_violations.get(peer, 0)

    def snapshot(self) -> Dict[int, Tuple[int, int]]:
        """Per-peer (violations, episodes) map -- for metrics/reports."""
        peers = set(self.total_violations) | set(self.episodes)
        return {
            peer: (
                self.total_violations.get(peer, 0),
                self.episodes.get(peer, 0),
            )
            for peer in sorted(peers)
        }
