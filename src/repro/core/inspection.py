"""Block inspection (section 4.3, Fig. 3 steps 5-6).

"Given the mempool commitments, any node can verify the produced block by
inspecting its content with respect to the LO reference protocol ...  Any
violation exposes the block creator, by comparing the block content with
the known commitments."

Inspection is a pure comparison: recompute the canonical order from the
creator's committed bundle history (pinned by the block's ``commit_seq``),
apply the deterministic exclusion rules, and diff against the block body.
The result is either a (possibly empty) list of violations or
*inconclusive* when the inspector is still missing transaction contents it
needs for the exclusion rules -- a real inspector requests those and
re-inspects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.chain.block import Block
from repro.core.commitment import BundleInfo
from repro.core.config import LOConfig
from repro.core.ordering import canonical_order
from repro.core.policies import ViolationKind


@dataclass(frozen=True)
class Violation:
    """One detected policy violation, attributable to the block creator."""

    kind: ViolationKind
    block_hash: bytes
    detail: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Violation({self.kind.value}: {self.detail})"


@dataclass
class InspectionResult:
    """Outcome of inspecting one block."""

    conclusive: bool
    violations: List[Violation]
    missing_content: List[int]  # ids whose content the inspector still needs

    @property
    def clean(self) -> bool:
        """Conclusively free of violations."""
        return self.conclusive and not self.violations


class BlockInspector:
    """Inspects blocks against a creator's committed bundle history."""

    def __init__(self, config: LOConfig):
        self.config = config

    def inspect(
        self,
        block: Block,
        bundles: Sequence[BundleInfo],
        prev_hash: bytes,
        settled: Set[int],
        content_known: Callable[[int], bool],
        is_invalid: Callable[[int], bool],
        fee_of: Callable[[int], Optional[int]],
    ) -> InspectionResult:
        """Compare a block body against the canonical expectation.

        ``bundles`` must be the creator's bundle history as reconstructed by
        the inspector (it is exchanged during reconciliation); ``settled``
        is the set of ids already in the chain *before* this block.
        """
        result = self._inspect(block, bundles, prev_hash, settled,
                               content_known, is_invalid, fee_of)
        _t = obs.TRACER
        if _t.enabled:
            reg = _t.registry
            if result.conclusive:
                reg.counter("inspection.conclusive").inc()
                if result.violations:
                    reg.counter("inspection.violations").inc(
                        len(result.violations)
                    )
            else:
                reg.counter("inspection.inconclusive").inc()
        return result

    def _inspect(
        self,
        block: Block,
        bundles: Sequence[BundleInfo],
        prev_hash: bytes,
        settled: Set[int],
        content_known: Callable[[int], bool],
        is_invalid: Callable[[int], bool],
        fee_of: Callable[[int], Optional[int]],
    ) -> InspectionResult:
        if block.commit_seq > len(bundles):
            # The inspector has not yet learned the pinned commitment
            # prefix; it cannot judge the block either way.
            return InspectionResult(False, [], [])

        committed_prefix: List[int] = []
        for bundle in bundles[: block.commit_seq]:
            committed_prefix.extend(bundle.ids)

        unknown = [
            i for i in committed_prefix
            if not content_known(i) and not is_invalid(i) and i not in settled
        ]
        if unknown:
            return InspectionResult(False, [], unknown)

        def exclude(sketch_id: int) -> bool:
            if sketch_id in settled:
                return True
            if is_invalid(sketch_id):
                return True
            fee = fee_of(sketch_id)
            return fee is None or fee < self.config.min_fee

        expected = canonical_order(bundles, block.commit_seq, prev_hash, exclude)
        expected = expected[: self.config.max_block_txs]
        violations = self._diff(block, expected, set(committed_prefix), settled)
        return InspectionResult(True, violations, [])

    def _diff(
        self,
        block: Block,
        expected: List[int],
        committed: Set[int],
        settled: Set[int],
    ) -> List[Violation]:
        violations: List[Violation] = []
        body = list(block.tx_ids)
        prefix_len = min(len(expected), len(body))

        # 1. The body must start with the canonical sequence.
        for position in range(prefix_len):
            if body[position] != expected[position]:
                violations.append(
                    self._classify_mismatch(
                        block, position, body, expected, committed
                    )
                )
                break
        else:
            # 2. Canonical prefix matched; every committed tx must be there.
            if len(body) < len(expected):
                missing = expected[len(body)]
                violations.append(
                    Violation(
                        ViolationKind.MISSING_COMMITTED_TX,
                        block.block_hash,
                        f"committed tx {missing} absent from block body",
                    )
                )
            else:
                # 3. Suffix may only hold the creator's own new (never
                #    previously committed, unsettled) transactions.
                for extra in body[len(expected):]:
                    if extra in committed or extra in settled:
                        violations.append(
                            Violation(
                                ViolationKind.ORDER_DEVIATION,
                                block.block_hash,
                                f"tx {extra} duplicated outside canonical order",
                            )
                        )
                        break
        return violations

    def _classify_mismatch(
        self,
        block: Block,
        position: int,
        body: List[int],
        expected: List[int],
        committed: Set[int],
    ) -> Violation:
        """Label the first canonical-prefix mismatch with its primitive."""
        found = body[position]
        wanted = expected[position]
        if found not in committed:
            return Violation(
                ViolationKind.UNCOMMITTED_TX_IN_BODY,
                block.block_hash,
                f"tx {found} at position {position} was never committed"
                f" (expected {wanted})",
            )
        if wanted not in set(body):
            # The canonical tx is absent from the whole body: blockspace
            # censorship rather than a permutation.
            return Violation(
                ViolationKind.MISSING_COMMITTED_TX,
                block.block_hash,
                f"committed tx {wanted} absent from block body"
                f" (displaced at position {position})",
            )
        return Violation(
            ViolationKind.ORDER_DEVIATION,
            block.block_hash,
            f"tx {found} at position {position} deviates from canonical"
            f" order (expected {wanted})",
        )
