"""The three explicit base-layer policies (Table 1).

| Addressed manipulation | Implicit policy today            | LO's explicit policy                    |
|------------------------|----------------------------------|-----------------------------------------|
| Censorship             | Unreliable transaction gossip    | Inclusion of All Transactions           |
| Injection              | Out-of-order tx selection        | Transaction Selection in Received Order |
| Reordering             | Arbitrary order in a block       | Verifiable Canonical Order in a Block   |

Each policy is expressed as a checkable predicate over protocol state, and
every violation maps to one manipulation primitive (section 2.2).  Block
inspection (:mod:`repro.core.inspection`) reports violations in these
terms.
"""

from __future__ import annotations

import enum


class Manipulation(enum.Enum):
    """Transaction manipulation primitives (section 2.2)."""

    CENSORSHIP = "censorship"
    INJECTION = "injection"
    REORDERING = "reordering"


class Policy(enum.Enum):
    """LO's explicit base-layer policies (Table 1)."""

    INCLUSION_OF_ALL_TRANSACTIONS = "inclusion-of-all-transactions"
    SELECTION_IN_RECEIVED_ORDER = "selection-in-received-order"
    VERIFIABLE_CANONICAL_ORDER = "verifiable-canonical-order"


# Which manipulation each policy violation evidences (Table 1 rows).
POLICY_ADDRESSES = {
    Policy.INCLUSION_OF_ALL_TRANSACTIONS: Manipulation.CENSORSHIP,
    Policy.SELECTION_IN_RECEIVED_ORDER: Manipulation.INJECTION,
    Policy.VERIFIABLE_CANONICAL_ORDER: Manipulation.REORDERING,
}


# Protocol constant: a block may pin a commitment prefix at most this many
# bundles behind the creator's newest *signed* commitment.  A correct
# builder only lags by bundles whose contents are still in flight (a few
# seconds' worth); pinning far behind -- the degenerate case being
# commit_seq 0 with a fee-sorted body -- is lagging censorship.  The value
# is a protocol-wide constant so that every correct node reaches the same
# verdict on the same evidence (exposure completeness).
STALE_SEQ_SLACK = 64


class ViolationKind(enum.Enum):
    """Concrete violations block inspection can attribute to a creator."""

    MISSING_COMMITTED_TX = "missing-committed-tx"       # blockspace censorship
    UNCOMMITTED_TX_IN_BODY = "uncommitted-tx-in-body"   # injection
    ORDER_DEVIATION = "order-deviation"                 # reordering
    STALE_COMMITMENT_SEQ = "stale-commitment-seq"       # lagging censorship

    @property
    def policy(self) -> Policy:
        """The explicit policy this violation breaks."""
        return {
            ViolationKind.MISSING_COMMITTED_TX: Policy.INCLUSION_OF_ALL_TRANSACTIONS,
            ViolationKind.UNCOMMITTED_TX_IN_BODY: Policy.SELECTION_IN_RECEIVED_ORDER,
            ViolationKind.ORDER_DEVIATION: Policy.VERIFIABLE_CANONICAL_ORDER,
            ViolationKind.STALE_COMMITMENT_SEQ: Policy.INCLUSION_OF_ALL_TRANSACTIONS,
        }[self]

    @property
    def manipulation(self) -> Manipulation:
        """The manipulation primitive the violation evidences."""
        return POLICY_ADDRESSES[self.policy]
