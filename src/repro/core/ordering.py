"""Verifiable canonical transaction ordering (section 4.3).

"Committed transaction bundles are first assembled following a sequential
order.  The order inside a bundle is then pseudo-random: transactions are
shuffled using a known shuffling algorithm and an *order seed* value.  The
order seed value is based on the hash of the last created block."

The canonical order is a pure function of (bundle history prefix, previous
block hash, exclusion predicate), so the block creator and every inspector
compute the same sequence independently.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence

from repro.chain.block import block_order_seed
from repro.core.commitment import BundleInfo


def shuffle_bundle(ids: Sequence[int], prev_hash: bytes, bundle_index: int) -> List[int]:
    """Deterministic pseudo-random permutation of one bundle's ids.

    Fisher-Yates driven by a PRNG seeded from the previous block hash and
    the bundle index -- the "known shuffling algorithm and an order seed".
    The input is sorted first so the permutation depends only on the
    bundle's id *set* (any reconstruction of the bundle yields the same
    canonical order).
    """
    shuffled = sorted(ids)
    random.Random(block_order_seed(prev_hash, bundle_index)).shuffle(shuffled)
    return shuffled


def canonical_order(
    bundles: Sequence[BundleInfo],
    seq: int,
    prev_hash: bytes,
    exclude: Callable[[int], bool],
) -> List[int]:
    """The full canonical tx-id sequence for a block.

    * ``bundles``: the creator's committed bundle history.
    * ``seq``: the commitment sequence number the block pins; only bundles
      with ``index < seq`` participate.
    * ``prev_hash``: previous block hash, the order seed.
    * ``exclude``: predicate for ids that must *not* appear (invalid, fee
      below threshold, already settled).  Exclusion is applied after the
      shuffle so the relative order of survivors is still the canonical
      one.
    """
    if seq > len(bundles):
        raise ValueError(
            f"seq {seq} exceeds available bundle history {len(bundles)}"
        )
    ordered: List[int] = []
    for bundle in bundles[:seq]:
        for sketch_id in shuffle_bundle(bundle.ids, prev_hash, bundle.index):
            if not exclude(sketch_id):
                ordered.append(sketch_id)
    return ordered


def fee_priority_order(
    ids: Sequence[int],
    fee_of: Callable[[int], int],
    exclude: Callable[[int], bool],
) -> List[int]:
    """The 'Highest Fee' baseline policy of Fig. 8.

    "Creating a block with the highest-fee transactions of the mempool" --
    sort eligible ids by descending fee, ties broken by id for determinism.
    """
    eligible = [i for i in ids if not exclude(i)]
    return sorted(eligible, key=lambda i: (-fee_of(i), i))
