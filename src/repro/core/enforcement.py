"""Enforcement policies on top of detection (section 5.4).

The paper deliberately leaves enforcement to the deployment: "in
Proof-of-Stake consensus algorithms, various slashing strategies can be
applied ... Misbehaving nodes can also be penalized at the network layer
level, such as temporary disconnection from the network.  In addition ...
detection allows the implementation of mechanisms for the rejection of
blocks that deviate from the canonical transaction order."

This module implements those three levers as composable policies over the
simulation:

* :class:`StakeSlashing` -- a stake ledger debited on exposure;
* :class:`NetworkEviction` -- exposed nodes are dropped from overlay
  neighbour sets and barred from leader election;
* :class:`BlockRejection` -- blocks from exposed creators are rejected
  before settlement (this one changes consensus-visible state, which is
  why the paper keeps it optional).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.node import LONode
from repro.crypto.keys import PublicKey


@dataclass
class StakeSlashing:
    """Debit a validator's stake when it is exposed (PoS slashing).

    Stake is tracked per public key; each distinct exposure evidence slashes
    ``slash_fraction`` of the remaining stake, once per (victim, evidence
    key) pair.
    """

    initial_stake: int = 1000
    slash_fraction: float = 0.5
    stakes: Dict[PublicKey, float] = field(default_factory=dict)
    _slashed: Set[tuple] = field(default_factory=set)

    def register(self, key: PublicKey) -> None:
        """Give a validator its initial stake."""
        self.stakes.setdefault(key, float(self.initial_stake))

    def stake_of(self, key: PublicKey) -> float:
        """Current stake (initial if never registered explicitly)."""
        return self.stakes.get(key, float(self.initial_stake))

    def on_exposure(self, accused: PublicKey, evidence_key: tuple) -> float:
        """Apply one slash; returns the amount slashed (0 for duplicates)."""
        self.register(accused)
        dedup = (accused.raw, evidence_key)
        if dedup in self._slashed:
            return 0.0
        self._slashed.add(dedup)
        amount = self.stakes[accused] * self.slash_fraction
        self.stakes[accused] -= amount
        return amount


class NetworkEviction:
    """Temporary disconnection: drop exposed peers from the overlay.

    Applied per node: every time the node adopts an exposure, the exposed
    peer is removed from its neighbour set (the eligible-neighbour filter
    in LONode already excludes exposed peers from gossip; eviction also
    frees the slot for the shuffler to refill).
    """

    def __init__(self) -> None:
        self.evictions = 0

    def apply(self, node: LONode, directory) -> int:
        """Evict every currently-exposed neighbour of ``node``."""
        evicted = 0
        for peer in sorted(node.neighbors):
            key = directory.key_of(peer)
            if node.acct.is_exposed(key):
                node.neighbors.discard(peer)
                evicted += 1
        self.evictions += evicted
        return evicted


class BlockRejection:
    """Reject blocks from exposed creators before settlement.

    Wraps a node's ledger-append path: a block whose creator the node has
    *already* exposed is not settled.  (Blocks that themselves carry the
    first evidence still settle -- inspection is post-hoc, section 4.3 --
    so only repeat offenders are filtered.)
    """

    def __init__(self) -> None:
        self.rejected = 0

    def install(self, node: LONode) -> None:
        """Monkey-patch the node's settle path with the rejection filter."""
        original = node._settle_or_buffer

        def filtered(announce) -> None:
            creator = announce.block.creator
            if node.acct.is_exposed(creator):
                self.rejected += 1
                return
            original(announce)

        node._settle_or_buffer = filtered  # type: ignore[method-assign]


@dataclass
class EnforcementReport:
    """Summary of enforcement actions across a run."""

    total_slashed: float = 0.0
    evictions: int = 0
    rejected_blocks: int = 0
    leader_elections_denied: int = 0


class EnforcementManager:
    """Wires the three policies into a simulation.

    Usage::

        manager = EnforcementManager(sim.directory)
        for node in sim.nodes.values():
            manager.attach(node)
        # make exposed nodes ineligible for leadership:
        schedule.eligible = manager.leader_eligible
    """

    def __init__(self, directory, slashing: Optional[StakeSlashing] = None):
        self.directory = directory
        self.slashing = slashing or StakeSlashing()
        self.eviction = NetworkEviction()
        self.rejection = BlockRejection()
        self.report = EnforcementReport()
        self._nodes: Dict[int, LONode] = {}

    def attach(self, node: LONode) -> None:
        """Install all policies on one node."""
        self._nodes[node.node_id] = node
        self.slashing.register(node.public_key)
        self.rejection.install(node)
        original = node._broadcast_exposure

        def hooked(blame) -> None:
            before = blame.accused in node.acct.exposed
            original(blame)
            if not before and blame.accused in node.acct.exposed:
                slashed = self.slashing.on_exposure(blame.accused, blame.key())
                self.report.total_slashed += slashed
                self.report.evictions += self.eviction.apply(
                    node, self.directory
                )

        node._broadcast_exposure = hooked  # type: ignore[method-assign]

    def leader_eligible(self, node_id: int) -> bool:
        """Eligibility filter: denied once a majority of nodes exposed it.

        Counting adopters keeps the filter consistent with exposure
        completeness: once evidence spreads, every correct node reaches the
        same verdict.
        """
        key = self.directory.key_of(node_id)
        exposers = sum(
            1 for node in self._nodes.values() if node.acct.is_exposed(key)
        )
        eligible = exposers <= len(self._nodes) // 2
        if not eligible:
            self.report.leader_elections_denied += 1
        return eligible

    def finalize_report(self) -> EnforcementReport:
        """Collect final counters into the report."""
        self.report.rejected_blocks = self.rejection.rejected
        return self.report
