"""Protocol configuration, defaulting to the paper's evaluation setup.

Section 6.1: 8 outgoing / up to 125 incoming connections, reconciliation
with 3 random neighbours every second, 1 s request timeout resent 3 times,
1,000-byte Minisketch good for ~100-transaction differences, 32-cell
(68-byte) Bloom Clocks.  Section 6.3: 12 s mean block time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mempool.admission import AdmissionConfig


@dataclass
class LOConfig:
    """Tunable parameters of the LO protocol."""

    # --- mempool reconciliation (section 6.1) ---
    sync_interval_s: float = 1.0        # NeighborsSync period
    sync_fanout: int = 3                # random neighbours per round
    request_timeout_s: float = 1.0      # suspicion timeout per request
    request_retries: int = 3            # resends before suspecting

    # --- commitments / sketches ---
    clock_cells: int = 32               # Bloom Clock cells (68 B serialized)
    sketch_capacity: int = 100          # max decodable set difference
    sketch_bits: int = 32               # field element width
    # Ablation knob: when False, reconciliation skips the Bloom-Clock cell
    # pre-filter and overload pre-check, sketching the whole id space every
    # round (what plain Minisketch-only reconciliation would do).
    use_clock_prefilter: bool = True
    sketch_safety_factor: float = 2.0   # sketch size = factor * clock estimate
    # Floor for adaptive sketch sizing.  Kept >= 16 because an overloaded
    # capacity-t sketch aliases to a wrong (but verification-passing)
    # <=t-element set with probability ~1/t!; at t=16 that is ~5e-14,
    # making silent decode corruption a non-issue (see tests/sketch).
    min_sketch_capacity: int = 16
    partition_max_depth: int = 8        # bisection limit on decode failure

    # --- block building (sections 4.3, 6.3) ---
    mean_block_time_s: float = 12.0     # network-wide average block interval
    max_block_txs: int = 256            # blockspace cap
    min_fee: int = 1                    # fee threshold for block inclusion

    # --- admission pipeline (client-edge ingress) ---
    # When set, client-submitted transactions pass through the production
    # admission pipeline (repro.mempool.admission.Mempool): per-peer rate
    # limiting, the dynamic fee floor with replace-by-fee, per-sender
    # nonce FIFOs and watermark eviction.  Admitted transactions wait in
    # the pending pool and are drained into log commitments on each sync
    # tick.  None (the default) keeps the original commit-on-receipt
    # behaviour, byte-identical with earlier versions.
    admission: Optional[AdmissionConfig] = None

    # --- ingress hardening (Byzantine message tolerance) ---
    # When True every inbound lo/* payload is schema-checked before its
    # handler runs and handler exceptions are contained instead of killing
    # the event loop (repro.core.wire).
    validate_ingress: bool = True
    # Wire violations within one admission window before the peer is
    # quarantined; episode n lasts base * 2**(n-1) seconds, capped at max.
    quarantine_threshold: int = 3
    quarantine_base_s: float = 5.0
    quarantine_max_s: float = 300.0

    # --- accountability ---
    blame_gossip_fanout: int = 8        # neighbours a blame is forwarded to
    # Fig. 4 semantics: a third-party suspicion with no local corroboration
    # triggers the receiver's *own* probe of the accused (suspect on
    # timeout) rather than instant adoption -- suspicion therefore
    # converges slower than exposure, as in the paper's Fig. 6.  Set False
    # to adopt hearsay immediately (faster, less accurate under churn).
    verify_suspicions_locally: bool = True

    def __post_init__(self) -> None:
        if self.sync_interval_s <= 0:
            raise ValueError("sync_interval_s must be > 0")
        if self.sync_fanout < 1:
            raise ValueError("sync_fanout must be >= 1")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0")
        if self.request_retries < 0:
            raise ValueError("request_retries must be >= 0")
        if not 1 <= self.min_sketch_capacity <= self.sketch_capacity:
            raise ValueError(
                "need 1 <= min_sketch_capacity <= sketch_capacity"
            )
        if self.sketch_safety_factor < 1.0:
            raise ValueError("sketch_safety_factor must be >= 1.0")
        if self.max_block_txs < 1:
            raise ValueError("max_block_txs must be >= 1")
        if self.quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be >= 1")
        if not 0 < self.quarantine_base_s <= self.quarantine_max_s:
            raise ValueError("need 0 < quarantine_base_s <= quarantine_max_s")
