"""Light clients: stage-I transaction submission and status queries.

Section 2.3, stage I: "The client shares the transaction with a subset of
peers that it personally knows ... Optionally, miners might respond to the
client with the transaction status, to acknowledge inclusion of a
transaction in a mempool.  Also optionally, a client can query a miner to
get an acknowledging of transaction inclusion in a mempool."  Section 3
notes the model covers light clients without modification.

:class:`LightClient` implements exactly that: it owns a key pair but no
mempool, submits signed transactions to chosen miners, collects signed
acknowledgements, and can later query any miner for a transaction's status
(unknown / committed / content-held / settled).  Comparing acks against
later status answers is the client-side evidence trail for the stage-I
censorship scenario (a miner that acked but never committed).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.crypto.keys import KeyPair, PublicKey, verify
from repro.mempool.transaction import Transaction, make_transaction
from repro.net.message import ENVELOPE_BYTES, Message
from repro.net.network import Endpoint, Network
from repro.sim.loop import EventLoop

_client_ids = itertools.count(1_000_000)  # clients live above miner ids


@dataclass(frozen=True)
class SubmitAck:
    """A miner's signed acknowledgement of a client submission."""

    miner: PublicKey
    txid: bytes
    accepted: bool
    at_time: float
    signature: bytes = b""

    def signing_bytes(self) -> bytes:
        """Canonical bytes the miner signs: miner, txid, verdict, timestamp."""
        return b"|".join(
            (b"lo-ack", self.miner.raw, self.txid,
             b"1" if self.accepted else b"0", repr(self.at_time).encode())
        )

    def verify(self) -> bool:
        """Check the miner's signature over the acknowledgement."""
        return verify(self.miner, self.signing_bytes(), self.signature)

    def wire_size(self) -> int:
        """On-wire size: two keys, verdict byte, timestamp, signature."""
        return 32 + 32 + 1 + 8 + 64


@dataclass(frozen=True)
class StatusReply:
    """A miner's answer to a status query."""

    miner: PublicKey
    sketch_id: int
    status: str  # "unknown" | "committed" | "content-held" | "settled"
    at_time: float

    def wire_size(self) -> int:
        """On-wire size: key, sketch id, status byte, timestamp."""
        return 32 + 4 + 1 + 8


class LightClient(Endpoint):
    """A non-mining participant that submits and tracks transactions."""

    def __init__(self, loop: EventLoop, network: Network,
                 seed: Optional[bytes] = None):
        self.node_id = next(_client_ids)
        self.loop = loop
        self.network = network
        self.keypair = KeyPair.generate(
            seed=seed or f"light-client-{self.node_id}".encode()
        )
        self.acks: Dict[bytes, List[SubmitAck]] = {}
        self.status_replies: Dict[int, List[StatusReply]] = {}
        self._nonce = 0
        network.register(self)

    # ------------------------------------------------------------ submitting

    def make_transaction(self, fee: int, size_bytes: int = 250,
                         payload: bytes = b"") -> Transaction:
        """Create and sign a transaction without submitting it."""
        self._nonce += 1
        return make_transaction(
            self.keypair, self._nonce, fee, self.loop.now, size_bytes, payload
        )

    def submit(self, tx: Transaction, miners: Sequence[int]) -> None:
        """Share a transaction with a subset of miners (stage I, step 1)."""
        for miner in miners:
            self.network.send(
                self.node_id, miner, "lo/client_submit", tx,
                wire_bytes=tx.wire_size() + ENVELOPE_BYTES, is_overhead=False,
            )

    def query_status(self, sketch_id: int, miner: int) -> None:
        """Ask a miner whether it holds/committed/settled a transaction."""
        self.network.send(
            self.node_id, miner, "lo/status_query",
            (self.node_id, sketch_id),
            wire_bytes=12 + ENVELOPE_BYTES,
        )

    # -------------------------------------------------------------- receiving

    def on_message(self, message: Message) -> None:
        if message.msg_type == "lo/submit_ack":
            ack: SubmitAck = message.payload
            if ack.verify():
                self.acks.setdefault(ack.txid, []).append(ack)
        elif message.msg_type == "lo/status_reply":
            reply: StatusReply = message.payload
            self.status_replies.setdefault(reply.sketch_id, []).append(reply)

    # -------------------------------------------------------------- evidence

    def acks_for(self, tx: Transaction) -> List[SubmitAck]:
        """Verified acknowledgements collected for a transaction."""
        return list(self.acks.get(tx.txid, ()))

    def latest_status(self, sketch_id: int) -> Optional[StatusReply]:
        """Most recent status reply for a transaction id."""
        replies = self.status_replies.get(sketch_id)
        return replies[-1] if replies else None

    def contradicted_acks(self, tx: Transaction) -> List[SubmitAck]:
        """Acks from miners that later reported the tx as unknown.

        This is the client-side red flag of stage-I censorship: "a faulty
        miner either provides a fake transaction reception acknowledgement,
        or does not acknowledge it at all" (section 2.2).  The ack is
        signed, so the pair (ack, status=unknown) is the client's evidence
        when it escalates.
        """
        suspicious = []
        for ack in self.acks_for(tx):
            if not ack.accepted:
                continue
            for reply in self.status_replies.get(tx.sketch_id, ()):
                if reply.miner == ack.miner and reply.status == "unknown":
                    suspicious.append(ack)
                    break
        return suspicious
