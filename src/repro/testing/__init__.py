"""Reusable correctness harnesses for robustness and chaos runs."""

from repro.testing.invariants import (
    InvariantMonitor,
    InvariantViolation,
    assert_append_only_logs,
    assert_mempool_convergence,
    assert_no_false_exposures,
    assert_suspicions_cleared,
    check_chaos_invariants,
)

__all__ = [
    "InvariantMonitor",
    "InvariantViolation",
    "assert_append_only_logs",
    "assert_mempool_convergence",
    "assert_no_false_exposures",
    "assert_suspicions_cleared",
    "check_chaos_invariants",
]
