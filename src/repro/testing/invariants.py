"""Safety invariants that must survive ANY fault schedule.

The chaos subsystem (:mod:`repro.net.chaos`) can drop, duplicate,
reorder and corrupt messages and crash-restart nodes -- none of which is
allowed to break accountability's safety promises (section 3.2):

* **No false positives** -- a correct node is never *exposed*, no matter
  how hostile the network was.
* **Temporal accuracy** -- suspicions of correct nodes are transient:
  once the faults heal and the network quiesces, they have cleared.
* **Append-only commitments** -- a node's bundle digest chain only ever
  grows; no rewrite survives a crash/restart.
* **Convergence after heal** -- every injected transaction reaches every
  correct node once faults stop.

:class:`InvariantMonitor` samples the append-only invariant *during* the
run (an end-state check could miss a rewrite-then-regrow); the
``assert_*`` helpers check end-state properties.  All helpers raise
:class:`InvariantViolation` with a readable account of what broke.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class InvariantViolation(AssertionError):
    """A chaos-run safety invariant did not hold."""


class InvariantMonitor:
    """Periodically samples per-node commitment chains for append-only-ness.

    Usage::

        monitor = InvariantMonitor(sim, period_s=2.0)
        monitor.start()
        sim.run(60.0)
        monitor.verify()   # raises InvariantViolation on any regression
    """

    def __init__(self, sim, period_s: float = 2.0):
        if period_s <= 0:
            raise ValueError(f"period must be > 0, got {period_s}")
        self.sim = sim
        self.period_s = period_s
        self.violations: List[str] = []
        self._last_chain: Dict[int, Tuple[bytes, ...]] = {}
        self._samples = 0

    def start(self) -> "InvariantMonitor":
        """Schedule the first periodic check; returns self for chaining."""
        self.sim.loop.call_later(self.period_s, self._tick)
        return self

    def _tick(self) -> None:
        self._samples += 1
        for node_id, node in self.sim.nodes.items():
            chain = tuple(node._digest_chain)
            previous = self._last_chain.get(node_id, ())
            if chain[: len(previous)] != previous:
                self.violations.append(
                    f"node {node_id}: digest chain rewrote history at"
                    f" t={self.sim.loop.now:.2f} (had {len(previous)}"
                    f" bundles, now {len(chain)})"
                )
            self._last_chain[node_id] = chain
        self.sim.loop.call_later(self.period_s, self._tick)

    def verify(self) -> None:
        """Raise if any sampled node ever rewrote its commitment chain."""
        if self._samples == 0:
            raise InvariantViolation("monitor never sampled; was it started?")
        if self.violations:
            raise InvariantViolation(
                "append-only violated:\n  " + "\n  ".join(self.violations)
            )


def _correct_pairs(sim):
    """(observer node, observed id, observed key) over correct nodes only."""
    for observer_id in sim.correct_ids:
        observer = sim.nodes[observer_id]
        for observed_id in sim.correct_ids:
            if observed_id == observer_id:
                continue
            yield observer, observed_id, sim.directory.key_of(observed_id)


def assert_no_false_exposures(sim) -> None:
    """No correct node may hold an exposure of another correct node."""
    broken = [
        f"node {observer.node_id} exposed correct node {observed_id}"
        for observer, observed_id, key in _correct_pairs(sim)
        if observer.acct.is_exposed(key)
    ]
    if broken:
        raise InvariantViolation(
            "false exposures (no-false-positives broken):\n  "
            + "\n  ".join(broken)
        )


def assert_suspicions_cleared(sim) -> None:
    """After heal + quiescence, no correct node still suspects a correct one."""
    broken = [
        f"node {observer.node_id} still suspects correct node {observed_id}"
        for observer, observed_id, key in _correct_pairs(sim)
        if observer.acct.is_suspected(key)
    ]
    if broken:
        raise InvariantViolation(
            "stale suspicions (temporal accuracy broken):\n  "
            + "\n  ".join(broken)
        )


def assert_append_only_logs(sim) -> None:
    """End-state cross-check: bundles, digest chain and log sizes agree."""
    broken = []
    for node_id, node in sim.nodes.items():
        if len(node._digest_chain) != len(node.bundles):
            broken.append(
                f"node {node_id}: {len(node.bundles)} bundles vs"
                f" {len(node._digest_chain)} chain digests"
            )
        committed = sum(len(b.ids) for b in node.bundles)
        if committed != len(node.log):
            broken.append(
                f"node {node_id}: bundles commit {committed} ids but log"
                f" holds {len(node.log)}"
            )
    if broken:
        raise InvariantViolation(
            "commitment bookkeeping diverged:\n  " + "\n  ".join(broken)
        )


def assert_mempool_convergence(
    sim,
    items: Optional[Sequence[int]] = None,
    min_fraction: float = 1.0,
) -> None:
    """Every tracked transaction reached >= min_fraction of correct nodes."""
    tracked = list(items) if items is not None else sim.mempool_tracker.items()
    broken = []
    for item in tracked:
        fraction = sim.convergence_fraction(item)
        if fraction < min_fraction:
            broken.append(f"tx {item}: coverage {fraction:.2f} < {min_fraction:.2f}")
    if broken:
        raise InvariantViolation(
            "mempool did not converge after heal:\n  " + "\n  ".join(broken)
        )


def check_chaos_invariants(
    sim,
    monitor: Optional[InvariantMonitor] = None,
    min_fraction: float = 1.0,
) -> None:
    """The full post-chaos battery, one call."""
    assert_no_false_exposures(sim)
    assert_suspicions_cleared(sim)
    assert_append_only_logs(sim)
    assert_mempool_convergence(sim, min_fraction=min_fraction)
    if monitor is not None:
        monitor.verify()
