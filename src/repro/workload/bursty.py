"""Bursty open-loop arrivals: a two-state Markov-modulated Poisson process.

Real transaction flow is not Poisson: NFT mints, liquidation cascades
and airdrops produce arrival bursts an order of magnitude above the
background rate, and it is exactly during those bursts that admission
policy (fee floors, eviction, rate limits) earns its keep.  The
standard telecom model for this is the **MMPP**: a continuous-time
Markov chain modulates the instantaneous Poisson rate.

:class:`MMPPTraceGenerator` implements the two-state case -- *calm*
(the configured base rate) and *burst* (base rate times
``burst_multiplier``) -- with exponentially distributed dwell times in
each state.  Because exponential inter-arrivals are memoryless,
re-drawing the next-arrival gap at each modulation boundary reproduces
the MMPP exactly rather than approximately.  The resulting count
process is *overdispersed* (variance-to-mean ratio of per-window counts
well above 1), which the workload tests assert.

Everything downstream of arrival times -- fees, sizes, sender accounts,
origin nodes -- reuses the calibrated marginals of
:class:`repro.workload.ethtrace.EthereumTraceGenerator`, so a bursty
trace differs from the Poisson baseline only in its timing.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.workload.ethtrace import EthereumTraceGenerator, TraceTransaction


class MMPPTraceGenerator(EthereumTraceGenerator):
    """Two-state MMPP arrivals over the Ethereum-like trace marginals.

    ``rate_per_s`` is the *calm*-state rate; bursts run at
    ``rate_per_s * burst_multiplier``.  With the defaults (calm 8 s,
    burst 2 s dwell, 8x multiplier) roughly 20% of simulated time is
    burst, carrying ~2/3 of all transactions.
    """

    def __init__(
        self,
        num_nodes: int,
        rate_per_s: float,
        rng: random.Random,
        burst_multiplier: float = 8.0,
        mean_calm_s: float = 8.0,
        mean_burst_s: float = 2.0,
        **kwargs,
    ):
        super().__init__(num_nodes, rate_per_s, rng, **kwargs)
        if burst_multiplier < 1.0:
            raise ValueError(
                f"burst_multiplier must be >= 1, got {burst_multiplier}"
            )
        if mean_calm_s <= 0 or mean_burst_s <= 0:
            raise ValueError("dwell times must be > 0")
        self.burst_multiplier = burst_multiplier
        self.mean_calm_s = mean_calm_s
        self.mean_burst_s = mean_burst_s

    @property
    def mean_rate_per_s(self) -> float:
        """Long-run average arrival rate of the modulated process."""
        calm, burst = self.mean_calm_s, self.mean_burst_s
        burst_share = burst / (calm + burst)
        return self.rate_per_s * (
            (1.0 - burst_share) + self.burst_multiplier * burst_share
        )

    def stream(self, duration_s: float) -> Iterator[TraceTransaction]:
        """Yield MMPP-arrival transactions over ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError(f"duration must be > 0, got {duration_s}")
        now = 0.0
        in_burst = False
        phase_end = self.rng.expovariate(1.0 / self.mean_calm_s)
        while True:
            rate = self.rate_per_s
            if in_burst:
                rate *= self.burst_multiplier
            gap = self.rng.expovariate(rate)
            if now + gap >= phase_end:
                # Cross the modulation boundary: flip state and re-draw
                # the gap at the new rate (exact by memorylessness).
                now = phase_end
                in_burst = not in_burst
                dwell = self.mean_burst_s if in_burst else self.mean_calm_s
                phase_end = now + self.rng.expovariate(1.0 / dwell)
                continue
            now += gap
            if now >= duration_s:
                return
            yield self._emit(now)

    def _spawn(self, rng: random.Random) -> "MMPPTraceGenerator":
        """Replica for :meth:`replay_scaled` keeping the burst shape."""
        return MMPPTraceGenerator(
            num_nodes=self.num_nodes,
            rate_per_s=self.rate_per_s,
            rng=rng,
            burst_multiplier=self.burst_multiplier,
            mean_calm_s=self.mean_calm_s,
            mean_burst_s=self.mean_burst_s,
            mean_size_bytes=self.mean_size_bytes,
            num_accounts=self.num_accounts,
            zipf_exponent=self.zipf_exponent,
        )
