"""Workload generation: synthetic Ethereum-like transaction traces.

The paper injects transactions "based on a realistic dataset of Ethereum
transactions [Pierro & Rocha 2019]" at 20 tx/s with 250-byte transactions
(section 6.1).  That dataset is not available offline, so
:class:`EthereumTraceGenerator` synthesises a trace with the same marginals
the experiments consume: Poisson arrivals at a configurable rate, log-normal
gas-price-like fees with a heavy low-fee tail (which drives the Highest-Fee
starvation in Fig. 8), sizes concentrated around 250 bytes, and a Zipfian
sender population.  See DESIGN.md section 3 (substitutions).

Heavy-traffic variants layer on top of the same marginals:
:class:`MMPPTraceGenerator` (bursty Markov-modulated arrivals),
:class:`HotKeySampler` (hot-key sender skew via the generator's
``account_sampler`` hook) and
:meth:`EthereumTraceGenerator.replay_scaled` (superposed replicas for
scaled-up replay).  All are pure functions of their seeded rngs.
"""

from repro.workload.bursty import MMPPTraceGenerator
from repro.workload.ethtrace import EthereumTraceGenerator, TraceTransaction
from repro.workload.hotkey import HotKeySampler

__all__ = [
    "EthereumTraceGenerator",
    "HotKeySampler",
    "MMPPTraceGenerator",
    "TraceTransaction",
]
