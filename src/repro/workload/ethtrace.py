"""Synthetic Ethereum-like transaction trace generation.

Fee model: Ethereum gas prices are roughly log-normal with occasional
spikes; Pierro & Rocha (2019) report heavy-tailed fee distributions with a
large mass of low-fee transactions.  We draw fees from a log-normal whose
parameters give a median of ~20 gwei-like units with a long upper tail, so
fee-priority block building leaves a persistent low-fee backlog -- the
behaviour Fig. 8 measures.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceTransaction:
    """One scheduled transaction injection."""

    at_time: float       # simulated injection time (seconds)
    origin: int          # node index that first receives it (the "client edge")
    fee: int             # fee in abstract gwei-like units
    size_bytes: int
    sender_account: int  # account index (Zipfian popularity)


class EthereumTraceGenerator:
    """Seeded generator of :class:`TraceTransaction` streams.

    >>> gen = EthereumTraceGenerator(num_nodes=10, rate_per_s=5.0,
    ...                              rng=random.Random(42))
    >>> trace = gen.generate(duration_s=10.0)
    >>> all(0 <= t.origin < 10 for t in trace)
    True
    """

    # Log-normal fee parameters: median exp(mu) ~ 20 units, sigma gives a
    # 99th percentile ~40x the median -- a realistic gas-price spread.
    FEE_MU = math.log(20.0)
    FEE_SIGMA = 1.1

    def __init__(
        self,
        num_nodes: int,
        rate_per_s: float,
        rng: random.Random,
        mean_size_bytes: int = 250,
        num_accounts: int = 1000,
        zipf_exponent: float = 1.1,
        account_sampler: Optional[Callable[[], int]] = None,
    ):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
        self.num_nodes = num_nodes
        self.rate_per_s = rate_per_s
        self.rng = rng
        self.mean_size_bytes = mean_size_bytes
        self.num_accounts = num_accounts
        self.zipf_exponent = zipf_exponent
        self._zipf_weights = self._build_zipf(num_accounts, zipf_exponent)
        #: Optional override for sender selection -- e.g. a
        #: :class:`repro.workload.hotkey.HotKeySampler` sharing this
        #: generator's rng.  ``None`` keeps the default Zipf draw.
        self.account_sampler = account_sampler

    @staticmethod
    def _build_zipf(n: int, exponent: float) -> List[float]:
        weights = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
        total = sum(weights)
        return [w / total for w in weights]

    def _sample_fee(self) -> int:
        fee = self.rng.lognormvariate(self.FEE_MU, self.FEE_SIGMA)
        return max(1, int(round(fee)))

    def _sample_size(self) -> int:
        # Sizes cluster tightly around the mean with a mild upper tail
        # (contract calls); floor of 100 bytes for a minimal transfer.
        size = self.rng.gauss(self.mean_size_bytes, self.mean_size_bytes * 0.15)
        if self.rng.random() < 0.05:
            size *= self.rng.uniform(1.5, 4.0)
        return max(100, int(size))

    def _sample_account(self) -> int:
        if self.account_sampler is not None:
            return self.account_sampler()
        return self.rng.choices(
            range(self.num_accounts), weights=self._zipf_weights
        )[0]

    def _emit(self, at_time: float) -> TraceTransaction:
        """Draw one transaction's marginals at a fixed arrival time."""
        return TraceTransaction(
            at_time=at_time,
            origin=self.rng.randrange(self.num_nodes),
            fee=self._sample_fee(),
            size_bytes=self._sample_size(),
            sender_account=self._sample_account(),
        )

    def stream(self, duration_s: float) -> Iterator[TraceTransaction]:
        """Yield Poisson-arrival transactions over ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError(f"duration must be > 0, got {duration_s}")
        now = 0.0
        while True:
            now += self.rng.expovariate(self.rate_per_s)
            if now >= duration_s:
                return
            yield self._emit(now)

    def generate(self, duration_s: float) -> List[TraceTransaction]:
        """Materialised :meth:`stream`."""
        return list(self.stream(duration_s))

    def _spawn(self, rng: random.Random) -> "EthereumTraceGenerator":
        """A replica of this generator driven by an independent rng.

        Subclasses override this so :meth:`replay_scaled` superposes
        replicas of the *same* arrival process, not the base one.
        """
        return EthereumTraceGenerator(
            num_nodes=self.num_nodes,
            rate_per_s=self.rate_per_s,
            rng=rng,
            mean_size_bytes=self.mean_size_bytes,
            num_accounts=self.num_accounts,
            zipf_exponent=self.zipf_exponent,
        )

    def replay_scaled(self, duration_s: float,
                      scale: int) -> Iterator[TraceTransaction]:
        """Superpose ``scale`` independent replicas of this trace.

        Each replica gets its own rng (seeded deterministically from
        this generator's rng) and a disjoint account range (replica
        ``i`` maps account ``a`` to ``a + i * num_accounts``), so the
        merged trace looks like ``scale`` times the user population
        submitting at ``scale`` times the aggregate rate -- the cheap
        way to push a calibrated 20 tx/s trace into heavy-traffic
        territory without re-fitting its marginals.  Replicas are
        merged in arrival-time order (stable, hence deterministic).
        """
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")

        def _shifted(index: int, rng: random.Random
                     ) -> Iterator[TraceTransaction]:
            offset = index * self.num_accounts
            for tx in self._spawn(rng).stream(duration_s):
                yield TraceTransaction(
                    at_time=tx.at_time,
                    origin=tx.origin,
                    fee=tx.fee,
                    size_bytes=tx.size_bytes,
                    sender_account=tx.sender_account + offset,
                )

        replicas = [
            _shifted(i, random.Random(self.rng.getrandbits(64)))
            for i in range(scale)
        ]
        return heapq.merge(*replicas, key=lambda tx: tx.at_time)
