"""Hot-key sender skew: a handful of accounts dominating submission.

The base trace's Zipf sender population is skewed, but its head is
still broad.  Real adversarial flow is narrower: one arbitrage bot, one
mint contract or one exchange hot wallet can originate a large fraction
of all pending transactions, which is precisely the regime that
stresses per-sender nonce FIFOs (deep queues, replace-by-fee churn) and
per-peer rate limiting.

:class:`HotKeySampler` models this as a two-component mixture: with
probability ``hot_fraction`` the sender is drawn uniformly from the
``num_hot`` *hot* accounts (indices ``0..num_hot-1``); otherwise it is
a Zipf draw over the remaining *cold* population.  Plug an instance
into :class:`repro.workload.ethtrace.EthereumTraceGenerator` via its
``account_sampler`` hook -- sharing the generator's rng keeps the whole
trace a function of one seed.
"""

from __future__ import annotations

import random
from typing import List


class HotKeySampler:
    """Mixture sampler: uniform hot head plus Zipf cold tail.

    >>> rng = random.Random(7)
    >>> sampler = HotKeySampler(rng, num_accounts=100, num_hot=4,
    ...                         hot_fraction=1.0)
    >>> all(sampler() < 4 for _ in range(50))
    True
    """

    def __init__(
        self,
        rng: random.Random,
        num_accounts: int = 1000,
        num_hot: int = 8,
        hot_fraction: float = 0.6,
        zipf_exponent: float = 1.1,
    ):
        if not 1 <= num_hot < num_accounts:
            raise ValueError(
                f"need 1 <= num_hot < num_accounts, got {num_hot}"
                f"/{num_accounts}"
            )
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1]: {hot_fraction}")
        self.rng = rng
        self.num_accounts = num_accounts
        self.num_hot = num_hot
        self.hot_fraction = hot_fraction
        cold = num_accounts - num_hot
        weights = [1.0 / (rank ** zipf_exponent)
                   for rank in range(1, cold + 1)]
        total = sum(weights)
        self._cold_weights: List[float] = [w / total for w in weights]

    def __call__(self) -> int:
        """Draw one sender account index."""
        if self.rng.random() < self.hot_fraction:
            return self.rng.randrange(self.num_hot)
        return self.num_hot + self.rng.choices(
            range(self.num_accounts - self.num_hot),
            weights=self._cold_weights,
        )[0]
