"""Micro-benchmark runner with a stable JSON output schema.

The runner exists so the performance trajectory of the hot paths (GF
arithmetic, sketch add/decode, full reconciliation rounds) is *tracked*,
not anecdotal: every run emits ``BENCH_<suite>.json`` files in the
``repro.bench/1`` schema below, and CI uploads them as artifacts so
successive PRs can be compared.

Schema ``repro.bench/1`` (one file per suite)::

    {
      "schema": "repro.bench/1",       # schema id; bump on shape changes
      "suite": "sketch",               # suite name (file is BENCH_<suite>.json)
      "created_unix": 1720000000,      # wall-clock seconds at write time
      "python": "3.11.7",              # interpreter version
      "numpy": "2.4.6" | null,         # numpy version, null when absent
      "fast_path": true,               # vectorised kernels active for the run
      "params": {...},                 # suite-level knobs (quick, seed, sizes)
      "results": [                     # one entry per timed case
        {
          "name": "decode/m=16/cap=64/fast",
          "params": {...},             # case-specific parameters
          "iterations": 10,            # timed calls per repeat
          "repeats": 3,                # repeats (best one is reported)
          "ops_per_call": 1,           # inner operations per timed call
          "seconds_per_op": 0.0021,    # best repeat, per inner operation
          "ops_per_second": 476.2
        }, ...
      ],
      "derived": {                     # cross-case ratios (speedups etc.)
        "decode_speedup_m16_cap64": 5.1, ...
      }
    }

``seconds_per_op`` is the *minimum* over repeats -- the standard
micro-benchmark estimator, least contaminated by scheduler noise.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

SCHEMA = "repro.bench/1"


@dataclass
class BenchResult:
    """One timed case, in the shape serialised into ``results``."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    iterations: int = 1
    repeats: int = 1
    ops_per_call: int = 1
    seconds_per_op: float = 0.0

    @property
    def ops_per_second(self) -> float:
        """Throughput implied by the best repeat (0.0 for a zero timing)."""
        return 1.0 / self.seconds_per_op if self.seconds_per_op > 0 else 0.0

    def to_json(self) -> Dict[str, Any]:
        """The ``results``-entry dict for this case."""
        return {
            "name": self.name,
            "params": self.params,
            "iterations": self.iterations,
            "repeats": self.repeats,
            "ops_per_call": self.ops_per_call,
            "seconds_per_op": self.seconds_per_op,
            "ops_per_second": self.ops_per_second,
        }


def bench_case(
    name: str,
    fn: Callable[[], Any],
    *,
    params: Optional[Dict[str, Any]] = None,
    ops_per_call: int = 1,
    iterations: Optional[int] = None,
    repeats: int = 3,
    target_seconds: float = 0.15,
    max_iterations: int = 1_000_000,
) -> BenchResult:
    """Time ``fn`` and return a :class:`BenchResult`.

    When ``iterations`` is not given it is calibrated from one warm-up call
    so each repeat takes roughly ``target_seconds``.  The warm-up also
    primes lazily-built tables so they are not charged to the measurement.
    ``ops_per_call`` declares how many inner operations one ``fn()``
    performs (e.g. the length of a batch), and per-op numbers divide by it.
    """
    start = time.perf_counter()
    fn()  # warm-up; also calibration sample
    warm = time.perf_counter() - start
    if iterations is None:
        iterations = max(1, min(max_iterations, int(target_seconds / max(warm, 1e-9))))
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / iterations)
    return BenchResult(
        name=name,
        params=dict(params or {}),
        iterations=iterations,
        repeats=repeats,
        ops_per_call=ops_per_call,
        seconds_per_op=best / max(1, ops_per_call),
    )


def bench_payload(
    suite: str,
    results: List[BenchResult],
    *,
    derived: Optional[Dict[str, float]] = None,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the full ``repro.bench/1`` document for one suite."""
    from repro.sketch.gf import fast_path_active

    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy present in CI images
        numpy_version = None
    return {
        "schema": SCHEMA,
        "suite": suite,
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "fast_path": fast_path_active(),
        "params": dict(params or {}),
        "results": [r.to_json() for r in results],
        "derived": dict(derived or {}),
    }


def write_bench_json(
    path: str,
    suite: str,
    results: List[BenchResult],
    *,
    derived: Optional[Dict[str, float]] = None,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write one suite's ``BENCH_*.json`` file; returns the payload."""
    payload = bench_payload(suite, results, derived=derived, params=params)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return payload
