"""The ``mempool`` bench suite: admission-pipeline throughput.

Tracks the cost of the production admission path
(:class:`repro.mempool.admission.Mempool`) under the workloads it was
built for:

* ``admit/hotkey`` -- raw admission throughput over a hot-key-skewed
  transaction stream (pre-signed outside the timed region), the
  pipeline's front-door cost: prevalidation, rate limiting, fee floor,
  nonce bookkeeping, priority-index insert;
* ``admit_drain/hotkey`` -- the same stream interleaved with periodic
  drain ticks, measuring the full admit -> price-and-nonce drain cycle
  a node performs between commitments;
* ``evict/pressure`` -- admission into a deliberately tiny pool with
  ever-rising fees, so nearly every admit triggers a pool-full eviction
  episode (the watermark hysteresis + rollback machinery under
  sustained pressure).

Emits ``BENCH_mempool.json`` in the ``repro.bench/1`` schema; the
headline derived metric is ``admissions_per_second``, trend-gated by
``tools/check_bench_trend.py``.  Case names carry no sizes (sizes live
in ``params``) so the CI quick run and the committed full run share
case identities.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from repro.bench.runner import BenchResult, bench_case
from repro.crypto.keys import KeyPair
from repro.mempool.admission import AdmissionConfig, Mempool
from repro.mempool.transaction import Transaction, make_transaction
from repro.mempool.watermark import WatermarkConfig
from repro.workload.hotkey import HotKeySampler

SuiteOutput = Tuple[List[BenchResult], Dict[str, float], Dict[str, Any]]


def _hotkey_stream(
    count: int, seed: int, num_accounts: int, rate_per_s: float
) -> List[Transaction]:
    """Pre-signed hot-key-skewed transactions with per-account nonces."""
    rnd = random.Random(seed)
    sampler = HotKeySampler(
        rnd, num_accounts=num_accounts, num_hot=8, hot_fraction=0.6
    )
    keys: Dict[int, KeyPair] = {}
    nonces: Dict[int, int] = {}
    txs: List[Transaction] = []
    for i in range(count):
        account = sampler()
        keypair = keys.get(account)
        if keypair is None:
            keypair = keys[account] = KeyPair.generate(
                seed=f"bench-acct-{account}".encode()
            )
        nonce = nonces.get(account, 1)
        nonces[account] = nonce + 1
        fee = max(1, int(rnd.lognormvariate(3.0, 1.1)))
        txs.append(make_transaction(
            keypair, nonce, fee, created_at=i / rate_per_s
        ))
    return txs


def _pressure_stream(count: int, seed: int) -> List[Transaction]:
    """Distinct-sender transactions with steadily climbing fees.

    Each transaction outbids the pool's tail, so under a tiny byte
    ceiling nearly every admission runs an eviction episode.
    """
    rnd = random.Random(seed)
    txs: List[Transaction] = []
    for i in range(count):
        keypair = KeyPair.generate(seed=f"bench-pressure-{i}".encode())
        fee = 100 + i + rnd.randrange(50)
        txs.append(make_transaction(keypair, 1, fee, created_at=float(i)))
    return txs


def mempool_suite(quick: bool = False, seed: int = 42) -> SuiteOutput:
    """Admission-pipeline throughput benchmarks.

    Returns ``(results, derived, params)`` like the other suites.  The
    headline derived number is ``admissions_per_second`` (hot-key
    stream through a fresh pool).
    """
    count = 2_000 if quick else 10_000
    pressure_count = 500 if quick else 2_000
    rate_per_s = 200.0
    repeats = 2 if quick else 3
    results: List[BenchResult] = []
    derived: Dict[str, float] = {}

    # Hot accounts queue far more than the default 16-nonce lookahead
    # between drains; widen the gap so the cases time the pipeline, not
    # the gap cutoff.
    admit_config = AdmissionConfig(max_nonce_gap=1_000_000)
    txs = _hotkey_stream(count, seed, num_accounts=1_000,
                         rate_per_s=rate_per_s)

    def admit_all():
        pool = Mempool(admit_config)
        for i, tx in enumerate(txs):
            pool.admit(tx, now=i / rate_per_s, peer=tx.sender.raw)
        return pool

    # Verification pass: the stream must mostly clear admission, or the
    # benchmark would be timing the rejection fast-exit instead.
    probe = admit_all()
    accepted = probe.counters["accepted"] + probe.counters["replaced"]
    assert accepted > count // 2, "hot-key stream mostly rejected"

    case = bench_case(
        "admit/hotkey", admit_all,
        params={"txs": count, "accounts": 1_000, "rate_per_s": rate_per_s,
                "seed": seed},
        iterations=1, repeats=repeats, ops_per_call=count,
    )
    results.append(case)
    derived["admissions_per_second"] = case.ops_per_second
    derived["admit_accept_fraction"] = accepted / count

    # --- admit + drain cycle -------------------------------------------
    drain_every = 100  # submissions per simulated drain tick

    def admit_and_drain():
        pool = Mempool(admit_config)
        drained = 0
        for i, tx in enumerate(txs):
            now = i / rate_per_s
            pool.admit(tx, now=now, peer=tx.sender.raw)
            if i % drain_every == drain_every - 1:
                drained += len(pool.drain(now))
        drained += len(pool.drain(count / rate_per_s))
        return drained

    drained_total = admit_and_drain()
    drain_case = bench_case(
        "admit_drain/hotkey", admit_and_drain,
        params={"txs": count, "drain_every": drain_every,
                "rate_per_s": rate_per_s, "seed": seed},
        iterations=1, repeats=repeats, ops_per_call=count,
    )
    results.append(drain_case)
    derived["admit_drain_per_second"] = drain_case.ops_per_second
    derived["drain_fraction"] = drained_total / count

    # --- eviction under pressure ---------------------------------------
    tight = AdmissionConfig(
        watermarks=WatermarkConfig(max_pool_bytes=50_000, low_fraction=0.9,
                                   max_age_s=1e9, max_pool_txs=50_000),
    )
    pressure = _pressure_stream(pressure_count, seed)

    def evict_pressure():
        pool = Mempool(tight)
        for i, tx in enumerate(pressure):
            pool.admit(tx, now=float(i), peer=None)
        return pool

    evict_probe = evict_pressure()
    evictions = evict_probe.counters["evicted_pool_full"]
    assert evictions > pressure_count // 4, "pressure stream barely evicted"

    evict_case = bench_case(
        "evict/pressure", evict_pressure,
        params={"txs": pressure_count, "pool_bytes": 50_000, "seed": seed},
        iterations=1, repeats=repeats, ops_per_call=pressure_count,
    )
    results.append(evict_case)
    derived["evict_admissions_per_second"] = evict_case.ops_per_second
    derived["evictions_per_admission"] = evictions / pressure_count

    params = {"quick": quick, "seed": seed, "txs": count,
              "pressure_txs": pressure_count, "rate_per_s": rate_per_s}
    return results, derived, params
