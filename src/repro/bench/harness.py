"""The ``harness`` bench suite: whole-system simulation throughput.

The ``sketch``/``reconcile`` suites track the hot *kernels*; this suite
tracks the *end-to-end* harness -- how fast a full LO simulation advances
(simulation events per wall second, wall seconds per simulated second)
and how well the :mod:`repro.exec` sweep engine converts extra cores into
sweep throughput (serial vs N-worker wall clock over an identical task
matrix, with the byte-identity of the merged results checked as part of
the run).  Emits ``BENCH_harness.json`` in the ``repro.bench/1`` schema,
giving the repo its first whole-system performance trajectory.

Derived metrics:

* ``events_per_second`` -- simulation events executed per wall second in
  one representative run;
* ``wall_seconds_per_sim_second`` -- wall cost of one simulated second;
* ``large_events_per_second`` -- the same throughput probe on a
  1000-node topology (``sim/run/nodes=1000``), where per-event cost is
  dominated by large-overlay bookkeeping rather than kernel math;
* ``paper_scale_events_per_second`` -- the same probe at the paper's
  cluster size (``sim/run/nodes=10000``); completing this row at all is
  the paper-scale acceptance gate, its throughput tracks the batched
  delivery engine;
* ``fanout_messages_per_second`` -- the ``sim/run/fanout`` micro-case:
  pure ``Network.send_fanout`` + delivery over no-op endpoints, so
  send-path regressions are attributable without protocol noise;
* ``sweep_speedup_workersN`` -- serial wall / N-worker wall for the task
  matrix (bounded by the machine's core count; ~1x or below on one core);
* ``sweep_workers`` -- the N used (min(4, cpu count));
* ``sweep_results_identical`` -- 1.0 iff the parallel merge was
  byte-identical to the serial document (a 0.0 is a bug, not a perf
  regression);
* ``spool_resume_overhead_s`` -- wall cost of resuming a fully drained
  spool (``repro.exec.spool``): the fixed scan-and-merge price an
  interrupted sweep pays on restart, with zero task re-execution;
* ``spool_results_identical`` -- 1.0 iff the spool-backed merge matched
  the serial document byte for byte.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Tuple

from repro.bench.runner import BenchResult, bench_case

SuiteOutput = Tuple[List[BenchResult], Dict[str, float], Dict[str, Any]]


def _sim_params(quick: bool) -> Dict[str, Any]:
    return {
        "num_nodes": 12 if quick else 24,
        "rate_per_s": 5.0 if quick else 10.0,
        "duration_s": 4.0 if quick else 8.0,
        "drain_s": 2.0,
    }


def _large_sim_params(quick: bool) -> Dict[str, Any]:
    # The node count is the point; the tx workload stays small because
    # per-event cost at 1000 nodes is ~10x the 24-node run's.
    return {
        "num_nodes": 1000,
        "rate_per_s": 5.0 if quick else 20.0,
        "duration_s": 1.0 if quick else 2.0,
        "drain_s": 0.5 if quick else 1.0,
    }


def _paper_scale_params(quick: bool) -> Dict[str, Any]:
    # The paper's evaluation ran on a 10,000-node cluster; this row proves
    # the engine completes a seeded run at that scale.  The simulated
    # horizon stays short: 10,000 nodes ticking once a second already
    # yields tens of thousands of events per simulated second.
    return {
        "num_nodes": 10000,
        "rate_per_s": 2.0 if quick else 20.0,
        "duration_s": 0.5 if quick else 1.0,
        "drain_s": 0.25 if quick else 0.5,
    }


def _task_grid(quick: bool) -> Dict[str, Any]:
    # 4 (quick) / 8 tasks of a small but non-trivial simulation each.
    return {"num_nodes": [8, 10] if quick else [8, 10, 12, 14]}


def harness_suite(quick: bool = False, seed: int = 42) -> SuiteOutput:
    """End-to-end simulation + sweep-engine benchmarks.

    Returns ``(results, derived, params)`` like the other suites.  The
    headline derived numbers are ``events_per_second`` (single-run
    throughput) and ``sweep_speedup_workersN`` (multiprocess scaling of
    the experiment executor).
    """
    from repro.exec import derive_tasks, run_sweep
    from repro.exec.tasks import run_plain

    results: List[BenchResult] = []
    derived: Dict[str, float] = {}
    repeats = 1 if quick else 2

    # --- one full simulation run ---------------------------------------
    sim_kwargs = _sim_params(quick)
    sim_seconds = sim_kwargs["duration_s"] + sim_kwargs["drain_s"]
    probe = run_plain(seed=seed, **sim_kwargs)
    events = int(probe["events_processed"])

    def one_run():
        run_plain(seed=seed, **sim_kwargs)

    case = bench_case(
        f"sim/run/nodes={sim_kwargs['num_nodes']}", one_run,
        params=dict(sim_kwargs, seed=seed, events=events,
                    sim_seconds=sim_seconds),
        iterations=1, repeats=repeats, ops_per_call=events,
    )
    results.append(case)
    run_seconds = case.seconds_per_op * events  # whole-run wall seconds
    derived["events_per_second"] = case.ops_per_second
    derived["wall_seconds_per_sim_second"] = (
        run_seconds / sim_seconds if sim_seconds else 0.0
    )

    # --- large topology: 1000 nodes ------------------------------------
    # Same probe at the paper-scale node count; the workload is kept small
    # (events scale with rate x duration x overlay fan-out) so the full
    # suite stays in the tens of seconds while still exercising the
    # large-overlay hot path end to end.
    large_kwargs = _large_sim_params(quick)
    large_seconds = large_kwargs["duration_s"] + large_kwargs["drain_s"]
    large_probe = run_plain(seed=seed, **large_kwargs)
    large_events = int(large_probe["events_processed"])

    def one_large_run():
        run_plain(seed=seed, **large_kwargs)

    large_case = bench_case(
        f"sim/run/nodes={large_kwargs['num_nodes']}", one_large_run,
        params=dict(large_kwargs, seed=seed, events=large_events,
                    sim_seconds=large_seconds),
        iterations=1, repeats=repeats, ops_per_call=large_events,
    )
    results.append(large_case)
    derived["large_events_per_second"] = large_case.ops_per_second

    # --- paper scale: 10,000 nodes -------------------------------------
    # The committed row CI requires via --require-case: a seeded run at
    # the paper's cluster size must complete, and its throughput tracks
    # the batched delivery engine (batched fan-outs, pooled envelopes,
    # struct-of-arrays overlay state).
    paper_kwargs = _paper_scale_params(quick)
    paper_seconds = paper_kwargs["duration_s"] + paper_kwargs["drain_s"]
    paper_probe = run_plain(seed=seed, **paper_kwargs)
    paper_events = int(paper_probe["events_processed"])

    def one_paper_run():
        run_plain(seed=seed, **paper_kwargs)

    paper_case = bench_case(
        f"sim/run/nodes={paper_kwargs['num_nodes']}", one_paper_run,
        params=dict(paper_kwargs, seed=seed, events=paper_events,
                    sim_seconds=paper_seconds),
        iterations=1, repeats=repeats, ops_per_call=paper_events,
    )
    results.append(paper_case)
    derived["paper_scale_events_per_second"] = paper_case.ops_per_second

    # --- send-path micro-case: fan-outs over no-op endpoints -----------
    # Isolates Network.send_fanout + EventLoop delivery from all protocol
    # work, so a batching/pooling regression shows up here even when the
    # end-to-end rows hide it behind handler cost.
    import random as _random

    from repro.net.latency import CityLatencyModel
    from repro.net.network import Endpoint, Network
    from repro.sim.loop import EventLoop

    class _Sink(Endpoint):
        RETAINS_ENVELOPES = False  # envelopes recycle through the pool

        def __init__(self, node_id: int):
            self.node_id = node_id

        def on_message(self, message) -> None:
            pass

    fanout_nodes = 64 if quick else 256
    fanout_k = 8
    fanout_rounds = 500 if quick else 2000
    fanout_messages = fanout_rounds * fanout_k

    def one_fanout_run():
        loop = EventLoop()
        network = Network(
            loop, CityLatencyModel(fanout_nodes, _random.Random(seed))
        )
        for node_id in range(fanout_nodes):
            network.register(_Sink(node_id))
        recipients = list(range(1, fanout_k + 1))
        for _ in range(fanout_rounds):
            network.send_fanout(0, recipients, "bench/fanout", None, 64)
            loop.run_until(loop.now + 0.5)

    fanout_case = bench_case(
        "sim/run/fanout", one_fanout_run,
        params={"nodes": fanout_nodes, "fanout": fanout_k,
                "rounds": fanout_rounds, "seed": seed},
        iterations=1, repeats=repeats, ops_per_call=fanout_messages,
    )
    results.append(fanout_case)
    derived["fanout_messages_per_second"] = fanout_case.ops_per_second

    # --- sweep engine: serial vs N workers -----------------------------
    grid = _task_grid(quick)
    repetitions = 2
    tasks = derive_tasks("run", grid, base_seed=seed,
                         repetitions=repetitions)
    workers = min(4, os.cpu_count() or 1)
    merged: Dict[int, bytes] = {}

    def sweep_with(n: int):
        def run():
            merged[n] = run_sweep(tasks, workers=n).results_bytes()
        return run

    serial_case = bench_case(
        f"sweep/serial/tasks={len(tasks)}", sweep_with(1),
        params={"tasks": len(tasks), "grid": grid,
                "repetitions": repetitions, "workers": 1},
        iterations=1, repeats=repeats, ops_per_call=len(tasks),
    )
    results.append(serial_case)
    parallel_case = bench_case(
        f"sweep/workers={workers}/tasks={len(tasks)}", sweep_with(workers),
        params={"tasks": len(tasks), "grid": grid,
                "repetitions": repetitions, "workers": workers},
        iterations=1, repeats=repeats, ops_per_call=len(tasks),
    )
    results.append(parallel_case)

    derived["sweep_workers"] = float(workers)
    derived["sweep_tasks"] = float(len(tasks))
    derived["sweep_serial_wall_s"] = serial_case.seconds_per_op * len(tasks)
    derived[f"sweep_workers{workers}_wall_s"] = (
        parallel_case.seconds_per_op * len(tasks)
    )
    if parallel_case.seconds_per_op > 0:
        derived[f"sweep_speedup_workers{workers}"] = (
            serial_case.seconds_per_op / parallel_case.seconds_per_op
        )
    derived["sweep_results_identical"] = float(merged[1] == merged[workers])

    # --- spool backend: durable-run overhead + resume cost -------------
    # A completed spool makes ``resume`` a pure skip-and-merge pass (scan
    # the directory, read every result, reassemble the document) -- the
    # fixed price an interrupted sweep pays on restart, with zero task
    # re-execution.  ``spool_resume_overhead_s`` tracks that price.
    import tempfile

    from repro.exec.spool import run_spool_sweep

    with tempfile.TemporaryDirectory() as spool_root:
        spool_dir = os.path.join(spool_root, "spool")
        spool_outcome = run_spool_sweep(spool_dir, tasks, workers=1)
        resume_case = bench_case(
            f"sweep/spool_resume/tasks={len(tasks)}",
            lambda: run_spool_sweep(spool_dir, tasks, workers=1,
                                    resume=True),
            params={"tasks": len(tasks), "grid": grid,
                    "repetitions": repetitions},
            iterations=1, repeats=repeats, ops_per_call=len(tasks),
        )
    results.append(resume_case)
    derived["spool_resume_overhead_s"] = (
        resume_case.seconds_per_op * len(tasks)
    )
    derived["spool_results_identical"] = float(
        spool_outcome.results_bytes() == merged[1]
    )

    params = {"quick": quick, "seed": seed, "sim": sim_kwargs,
              "sim_large": large_kwargs, "sim_paper": paper_kwargs,
              "fanout": {"nodes": fanout_nodes, "fanout": fanout_k,
                         "rounds": fanout_rounds},
              "grid": grid, "repetitions": repetitions, "workers": workers}
    return results, derived, params
