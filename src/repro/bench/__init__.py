"""``repro.bench``: the performance-tracking benchmark subsystem.

Entry points:

* ``python -m repro bench`` -- run the suites from a shell; writes
  ``BENCH_sketch.json``, ``BENCH_reconcile.json`` and
  ``BENCH_harness.json`` (schema ``repro.bench/1``, documented in
  :mod:`repro.bench.runner` and in README "Benchmarks").
* :func:`run_suites` -- the same programmatically.
* :func:`bench_case` / :func:`write_bench_json` -- building blocks for
  ad-hoc measurements.

Distinct from the top-level ``benchmarks/`` pytest tree, which regenerates
the *paper's* tables and figures; this package tracks the *implementation's*
hot-path performance (GF kernels, sketch decode, reconciliation rounds)
across PRs.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, Optional

from repro.bench.runner import (
    SCHEMA,
    BenchResult,
    bench_case,
    bench_payload,
    write_bench_json,
)
from repro.bench.harness import harness_suite
from repro.bench.obs import obs_suite
from repro.bench.suites import SUITES, reconcile_suite, sketch_suite

__all__ = [
    "SCHEMA",
    "SUITES",
    "BenchResult",
    "bench_case",
    "bench_payload",
    "harness_suite",
    "obs_suite",
    "reconcile_suite",
    "run_suites",
    "sketch_suite",
    "write_bench_json",
]


def run_suites(
    names: Optional[Iterable[str]] = None,
    *,
    quick: bool = False,
    seed: int = 42,
    out_dir: str = ".",
    profile: bool = False,
    profile_top: int = 25,
    phases: bool = False,
) -> Dict[str, Dict[str, Any]]:
    """Run the named suites (default: all) and write ``BENCH_<name>.json``.

    Returns ``{suite: payload}`` with each payload in the ``repro.bench/1``
    schema, including the output ``path`` it was written to.

    With ``profile=True`` each suite additionally runs under
    :mod:`cProfile` and a ``BENCH_<name>.profile.txt`` with the top
    ``profile_top`` functions (by cumulative and by internal time) lands
    next to the JSON; its path is exposed as ``payload["profile_path"]``.
    Profiling adds interpreter overhead, so the JSON numbers from a
    profiled run are for *shape* (where the time goes), not for trend
    comparison.

    With ``phases=True`` each suite runs with a
    :class:`repro.obs.PhaseProfiler` installed and its per-phase
    wall-clock attribution is exposed as ``payload["phases"]`` (not
    written to the JSON file -- wall-clock phase numbers are run-local,
    while the file feeds the cross-PR trend check).
    """
    selected = list(names) if names is not None else sorted(SUITES)
    unknown = [n for n in selected if n not in SUITES]
    if unknown:
        raise ValueError(f"unknown bench suite(s): {unknown}; have {sorted(SUITES)}")
    os.makedirs(out_dir, exist_ok=True)
    payloads: Dict[str, Dict[str, Any]] = {}
    for name in selected:
        profiler = None
        if profile:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
        phase_profiler = None
        try:
            if phases:
                from repro import obs as _obs

                phase_profiler = _obs.PhaseProfiler()
                with _obs.use_profiler(phase_profiler):
                    results, derived, params = SUITES[name](quick=quick,
                                                            seed=seed)
            else:
                results, derived, params = SUITES[name](quick=quick,
                                                        seed=seed)
        finally:
            if profiler is not None:
                profiler.disable()
        path = os.path.join(out_dir, f"BENCH_{name}.json")
        payload = write_bench_json(
            path, name, results, derived=derived, params=params
        )
        payload["path"] = path
        if phase_profiler is not None:
            payload["phases"] = phase_profiler.as_dict()
        if profiler is not None:
            profile_path = os.path.join(out_dir, f"BENCH_{name}.profile.txt")
            _write_profile(profile_path, name, profiler, profile_top)
            payload["profile_path"] = profile_path
        payloads[name] = payload
    return payloads


def _write_profile(path: str, suite: str, profiler, top: int) -> None:
    """Render a cProfile run as a two-section top-``top`` text table."""
    import io
    import pstats

    stream = io.StringIO()
    stream.write(f"# cProfile of bench suite {suite!r}"
                 f" (top {top}; profiled runs measure shape, not speed)\n\n")
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    stats.sort_stats("tottime").print_stats(top)
    with open(path, "w", encoding="utf-8") as out:
        out.write(stream.getvalue())
