"""The ``obs`` bench suite: what telemetry costs when on -- and off.

The observability layer's contract is "zero cost when off": tracing,
timeline recording and phase profiling all hide behind module-level
guards, so a run without telemetry should be indistinguishable from one
on a build that never had the instrumentation.  This suite pins that
contract to numbers, emitting ``BENCH_obs.json``:

* ``sim/run/telemetry=off`` -- the end-to-end harness probe with every
  telemetry layer disabled.  Deliberately the exact simulation shape of
  the ``harness`` suite's ``sim/run/nodes=24`` case, so the two files'
  events/sec stay directly comparable across PRs: a drift between them
  is overhead leaking into the off path.
* ``sim/run/telemetry=trace`` / ``=timeline`` / ``=phases`` -- the same
  run with one layer enabled, giving each layer's real end-to-end cost.
* ``tracer/message_event`` and ``timeline/sample`` -- microbenchmarks of
  the two per-record hot calls behind those costs.

Derived metrics:

* ``telemetry_off_events_per_second`` -- the headline off-path
  throughput (compare against ``BENCH_harness.json``'s
  ``events_per_second``);
* ``trace_overhead_fraction`` / ``timeline_overhead_fraction`` /
  ``phases_overhead_fraction`` -- per-layer slowdown of the whole run,
  as (on - off) / off wall time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro import obs
from repro.bench.harness import _sim_params
from repro.bench.runner import BenchResult, bench_case

SuiteOutput = Tuple[List[BenchResult], Dict[str, float], Dict[str, Any]]


def obs_suite(quick: bool = False, seed: int = 42) -> SuiteOutput:
    """Telemetry on/off overhead benchmarks.

    Returns ``(results, derived, params)`` like the other suites.  The
    headline derived numbers are ``telemetry_off_events_per_second``
    (must track the ``harness`` suite's ``events_per_second``) and the
    per-layer ``*_overhead_fraction`` values.
    """
    from repro.exec.tasks import run_plain

    results: List[BenchResult] = []
    derived: Dict[str, float] = {}
    repeats = 1 if quick else 2

    sim_kwargs = _sim_params(quick)
    probe = run_plain(seed=seed, **sim_kwargs)
    events = int(probe["events_processed"])

    def run_off():
        run_plain(seed=seed, **sim_kwargs)

    def run_traced():
        with obs.use_tracer(obs.Tracer()):
            run_plain(seed=seed, **sim_kwargs)

    def run_timelined():
        with obs.use_timeline(obs.TimelineRecorder(interval_s=0.5,
                                                   bins=256)):
            run_plain(seed=seed, **sim_kwargs)

    def run_phased():
        with obs.use_profiler(obs.PhaseProfiler()):
            run_plain(seed=seed, **sim_kwargs)

    cases = {}
    for label, fn in (("off", run_off), ("trace", run_traced),
                      ("timeline", run_timelined), ("phases", run_phased)):
        case = bench_case(
            f"sim/run/telemetry={label}", fn,
            params=dict(sim_kwargs, seed=seed, events=events),
            iterations=1, repeats=repeats, ops_per_call=events,
        )
        results.append(case)
        cases[label] = case

    derived["telemetry_off_events_per_second"] = cases["off"].ops_per_second
    off_s = cases["off"].seconds_per_op
    if off_s > 0:
        for label in ("trace", "timeline", "phases"):
            derived[f"{label}_overhead_fraction"] = (
                (cases[label].seconds_per_op - off_s) / off_s
            )

    # --- per-record micro costs ----------------------------------------
    batch = 2_000 if quick else 20_000

    tracer = obs.Tracer()

    def message_events():
        tracer.records.clear()
        tracer._msg_counts.clear()
        emit = tracer.message_event
        for i in range(batch):
            emit("net.send", 0.001 * i, "tx", 1, 2, 250)

    results.append(bench_case(
        "tracer/message_event", message_events,
        params={"batch": batch}, ops_per_call=batch, repeats=repeats,
    ))

    registry = obs.MetricsRegistry()
    counter = registry.counter("bench.events")
    gauge = registry.gauge("bench.depth")
    samples = 200 if quick else 1_000
    recorder_bins = 64

    def timeline_samples():
        recorder = obs.TimelineRecorder(registry=registry, interval_s=0.5,
                                        bins=recorder_bins)
        for i in range(samples):
            counter.inc(3)
            gauge.set(float(i % 7))
            recorder.sample(0.5 * i)

    results.append(bench_case(
        "timeline/sample", timeline_samples,
        params={"samples": samples, "bins": recorder_bins},
        ops_per_call=samples, repeats=repeats,
    ))

    params = {"quick": quick, "seed": seed, "sim": sim_kwargs,
              "events": events, "batch": batch, "samples": samples}
    return results, derived, params
