"""The benchmark suites behind ``python -m repro bench``.

Three suites, each emitting one ``BENCH_*.json`` file (schema documented
in :mod:`repro.bench.runner`); the kernel-level pair lives here, the
whole-system ``harness`` suite in :mod:`repro.bench.harness`:

* ``sketch`` -- GF(2^m) multiply/inverse (scalar and batched), syndrome
  generation (``PinSketch.add_all``), and sketch decode at the paper's
  capacities, with the fast numpy path measured against the pure-Python
  fallback so the speedup is tracked over time.
* ``reconcile`` -- one full pairwise reconciliation round over the
  hash-partitioned reconciler of section 6.5, at a paper-shaped set
  difference, reporting decode counts and sketch bytes alongside latency.
* ``harness`` -- end-to-end simulation throughput and serial-vs-parallel
  sweep-engine scaling (events/sec, wall per sim-second, N-worker
  speedup).

``quick=True`` shrinks every size so the whole run finishes in a few
seconds; CI uses it as a smoke test and artifact generator.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from repro.bench.runner import BenchResult, bench_case
from repro.sketch import PinSketch
from repro.sketch.gf import default_field, have_numpy, set_fast_path
from repro.sketch.partition import PartitionedReconciler
from repro.sketch.pinsketch import clear_decode_cache, clear_syndrome_cache

SuiteOutput = Tuple[List[BenchResult], Dict[str, float], Dict[str, Any]]


def _with_fast_path(enabled: bool, fn):
    """Run ``fn`` with the fast path forced on/off, restoring the setting."""
    previous = set_fast_path(enabled)
    try:
        return fn()
    finally:
        set_fast_path(previous)


def _derive_speedups(
    results: List[BenchResult], derived: Dict[str, float]
) -> None:
    """For every ``<name>/fallback`` case with a ``<name>/fast`` twin,
    record ``speedup_<name>`` = fallback seconds / fast seconds."""
    by_name = {r.name: r for r in results}
    for result in results:
        if not result.name.endswith("/fallback"):
            continue
        stem = result.name[: -len("/fallback")]
        fast = by_name.get(stem + "/fast")
        if fast is not None and fast.seconds_per_op > 0:
            key = "speedup_" + stem.replace("/", "_").replace("=", "")
            derived[key] = result.seconds_per_op / fast.seconds_per_op


def sketch_suite(quick: bool = False, seed: int = 42) -> SuiteOutput:
    """GF kernels + sketch add/decode micro-benchmarks.

    Returns ``(results, derived, params)``.  The headline derived number is
    ``speedup_decode_m16_cap64`` -- the fast-path decode speedup over the
    scalar baseline at the acceptance point m=16, capacity=64 (reduced
    sizes under ``quick``).
    """
    rnd = random.Random(seed)
    batch_n = 1024 if quick else 8192
    cap = 32 if quick else 64
    diff = 3 * cap // 4
    repeats = 2 if quick else 3
    results: List[BenchResult] = []
    derived: Dict[str, float] = {}

    # --- raw field arithmetic ------------------------------------------
    for m in (16, 32):
        field = default_field(m)
        xs = [rnd.randrange(1, 1 << m) for _ in range(batch_n)]
        ys = [rnd.randrange(1, 1 << m) for _ in range(batch_n)]

        def scalar_mul(field=field, xs=xs, ys=ys):
            mul = field.mul
            for x, y in zip(xs, ys):
                mul(x, y)

        def batch_mul(field=field, xs=xs, ys=ys):
            field.mul_batch(xs, ys)

        def scalar_inv(field=field, xs=xs):
            inv = field.inv
            for x in xs:
                inv(x)

        def batch_inv(field=field, xs=xs):
            field.inv_batch(xs)

        results.append(bench_case(
            f"gf_mul/m={m}/scalar", scalar_mul,
            params={"m": m, "n": batch_n}, ops_per_call=batch_n,
            repeats=repeats,
        ))
        if have_numpy():
            results.append(bench_case(
                f"gf_mul/m={m}/fast",
                lambda f=batch_mul: _with_fast_path(True, f),
                params={"m": m, "n": batch_n}, ops_per_call=batch_n,
                repeats=repeats,
            ))
            results.append(bench_case(
                f"gf_mul/m={m}/fallback",
                lambda f=batch_mul: _with_fast_path(False, f),
                params={"m": m, "n": batch_n}, ops_per_call=batch_n,
                repeats=repeats,
            ))
        results.append(bench_case(
            f"gf_inv/m={m}/scalar", scalar_inv,
            params={"m": m, "n": batch_n}, ops_per_call=batch_n,
            repeats=repeats,
        ))
        if have_numpy():
            results.append(bench_case(
                f"gf_inv/m={m}/fast",
                lambda f=batch_inv: _with_fast_path(True, f),
                params={"m": m, "n": batch_n}, ops_per_call=batch_n,
                repeats=repeats,
            ))

    # --- syndrome generation (sketch add) ------------------------------
    for m in (16, 32):
        ids = rnd.sample(range(1, (1 << m) - 1), diff)

        def add_cold(m=m, ids=ids):
            clear_syndrome_cache()
            sketch = PinSketch(cap, m)
            sketch.add_all(ids)

        def add_warm(m=m, ids=ids):
            sketch = PinSketch(cap, m)
            sketch.add_all(ids)

        for label, fn in (("cold", add_cold), ("warm", add_warm)):
            results.append(bench_case(
                f"sketch_add/m={m}/cap={cap}/{label}", fn,
                params={"m": m, "capacity": cap, "elements": diff},
                ops_per_call=diff, repeats=repeats,
            ))

    # --- decode at the acceptance point --------------------------------
    for m in (16, 32):
        items = rnd.sample(range(1, (1 << m) - 1), diff)
        sketch = PinSketch(cap, m)
        sketch.add_all(items)

        def decode(sketch=sketch):
            clear_decode_cache()
            sketch.decode()

        variants = [("fast", True), ("fallback", False)] if have_numpy() \
            else [("fallback", False)]
        for label, fast in variants:
            results.append(bench_case(
                f"decode/m={m}/cap={cap}/{label}",
                lambda fast=fast, f=decode: _with_fast_path(fast, f),
                params={"m": m, "capacity": cap, "difference": diff},
                repeats=repeats,
            ))

    _derive_speedups(results, derived)
    params = {"quick": quick, "seed": seed, "batch_n": batch_n,
              "capacity": cap, "difference": diff}
    return results, derived, params


def reconcile_suite(quick: bool = False, seed: int = 42) -> SuiteOutput:
    """One full pairwise reconciliation round (section 6.5 recursion).

    Builds two overlapping id sets with a known symmetric difference and
    times :meth:`PartitionedReconciler.reconcile_sets` end to end --
    sketch construction, XOR combine, decode, bisection on failure --
    with caches cleared per call so the cost is the real pipeline, not the
    memoisation layer.  ``derived`` reports decode counts and wire bytes
    from a verification run.
    """
    rnd = random.Random(seed)
    diff = 32 if quick else 128
    common = 100 if quick else 400
    capacity = 16
    repeats = 2 if quick else 3
    universe = rnd.sample(range(1, 1 << 31), diff + common)
    half = diff // 2
    shared = set(universe[diff:])
    set_a = set(universe[:half]) | shared
    set_b = set(universe[half:diff]) | shared
    reconciler = PartitionedReconciler(capacity=capacity, m=32)

    # Verification pass: the decoded difference must be exact.
    difference, stats = reconciler.reconcile_sets(set_a, set_b)
    assert difference == set_a ^ set_b, "reconciliation must recover the diff"

    def round_trip():
        clear_decode_cache()
        reconciler.reconcile_sets(set_a, set_b)

    def round_trip_cold():
        clear_decode_cache()
        clear_syndrome_cache()
        reconciler.reconcile_sets(set_a, set_b)

    results = [
        bench_case(
            f"reconcile/diff={diff}/cap={capacity}/warm", round_trip,
            params={"difference": diff, "common": common,
                    "capacity": capacity, "m": 32},
            repeats=repeats,
        ),
        bench_case(
            f"reconcile/diff={diff}/cap={capacity}/cold", round_trip_cold,
            params={"difference": diff, "common": common,
                    "capacity": capacity, "m": 32},
            repeats=repeats,
        ),
    ]
    derived = {
        "sketches_decoded": float(stats.sketches_decoded),
        "decode_failures": float(stats.decode_failures),
        "max_depth_reached": float(stats.max_depth_reached),
        "bytes_transferred": float(stats.bytes_transferred),
    }
    params = {"quick": quick, "seed": seed, "difference": diff,
              "common": common, "capacity": capacity}
    return results, derived, params


from repro.bench.harness import harness_suite  # noqa: E402  (suite registry)
from repro.bench.mempool import mempool_suite  # noqa: E402  (suite registry)
from repro.bench.obs import obs_suite  # noqa: E402  (suite registry)

SUITES = {
    "sketch": sketch_suite,
    "reconcile": reconcile_suite,
    "harness": harness_suite,
    "mempool": mempool_suite,
    "obs": obs_suite,
}
