"""Overlay topology construction.

Section 6.1: "We constructed a connected topology where each node had eight
outgoing connections and up to 125 incoming connections, in line with the
default Bitcoin parameters."  The builder samples outgoing peers uniformly
while honouring the inbound cap, then patches connectivity if the undirected
graph came out disconnected (possible at small sizes).

For the resilience experiments (section 6.2) the builder can also produce a
topology where a set of malicious nodes is interconnected but "for every
pair of correct nodes, there exists at least one path between them
consisting solely of correct nodes".
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set


class TopologyError(RuntimeError):
    """Raised when a requested topology cannot be constructed."""


class TopologyBuilder:
    """Random overlay graphs with Bitcoin-like degree constraints."""

    def __init__(
        self,
        num_nodes: int,
        rng: random.Random,
        out_degree: int = 8,
        max_in_degree: int = 125,
    ):
        if num_nodes < 2:
            raise TopologyError(f"need at least 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes
        self.rng = rng
        self.out_degree = min(out_degree, num_nodes - 1)
        self.max_in_degree = max_in_degree

    # ------------------------------------------------------------- building

    def build(self) -> Dict[int, Set[int]]:
        """Undirected adjacency from random outgoing connections.

        Returns node -> set of neighbours.  Each node picks ``out_degree``
        distinct targets with available inbound capacity; the final graph is
        undirected because connections are bidirectional channels.
        """
        in_degree = [0] * self.num_nodes
        adjacency: Dict[int, Set[int]] = {i: set() for i in range(self.num_nodes)}
        order = list(range(self.num_nodes))
        self.rng.shuffle(order)
        for node in order:
            candidates = [
                peer
                for peer in range(self.num_nodes)
                if peer != node
                and peer not in adjacency[node]
                and in_degree[peer] < self.max_in_degree
            ]
            self.rng.shuffle(candidates)
            for peer in candidates[: self.out_degree]:
                adjacency[node].add(peer)
                adjacency[peer].add(node)
                in_degree[peer] += 1
        self._ensure_connected(adjacency, set(range(self.num_nodes)))
        return adjacency

    def build_with_adversaries(
        self, malicious: Sequence[int]
    ) -> Dict[int, Set[int]]:
        """Topology for section 6.2: malicious clique, correct core connected.

        "All malicious miners are assumed to be interconnected" and every
        pair of correct nodes stays connected through correct-only paths.
        """
        malicious_set = set(malicious)
        if not malicious_set <= set(range(self.num_nodes)):
            raise TopologyError("malicious ids out of range")
        correct = [i for i in range(self.num_nodes) if i not in malicious_set]
        if len(correct) < 2:
            raise TopologyError("need at least 2 correct nodes")
        adjacency = self.build()
        # Interconnect the malicious nodes (clique for small counts, ring +
        # random chords beyond that to keep degree sane).
        malicious_list = sorted(malicious_set)
        if len(malicious_list) > 1:
            if len(malicious_list) <= 24:
                for i, a in enumerate(malicious_list):
                    for b in malicious_list[i + 1 :]:
                        adjacency[a].add(b)
                        adjacency[b].add(a)
            else:
                for i, a in enumerate(malicious_list):
                    b = malicious_list[(i + 1) % len(malicious_list)]
                    adjacency[a].add(b)
                    adjacency[b].add(a)
                    chord = self.rng.choice(malicious_list)
                    if chord != a:
                        adjacency[a].add(chord)
                        adjacency[chord].add(a)
        # Guarantee a correct-only connected subgraph.
        self._ensure_connected(adjacency, set(correct))
        return adjacency

    # ------------------------------------------------------------- utilities

    def _ensure_connected(
        self, adjacency: Dict[int, Set[int]], within: Set[int]
    ) -> None:
        """Add random edges inside ``within`` until it is internally connected."""
        components = self._components(adjacency, within)
        while len(components) > 1:
            a = self.rng.choice(sorted(components[0]))
            b = self.rng.choice(sorted(components[1]))
            adjacency[a].add(b)
            adjacency[b].add(a)
            components = self._components(adjacency, within)

    @staticmethod
    def _components(
        adjacency: Dict[int, Set[int]], within: Set[int]
    ) -> List[Set[int]]:
        """Connected components of the subgraph induced by ``within``."""
        remaining = set(within)
        components: List[Set[int]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for peer in adjacency[node]:
                    if peer in within and peer not in seen:
                        seen.add(peer)
                        frontier.append(peer)
            components.append(seen)
            remaining -= seen
        return components


def is_connected(adjacency: Dict[int, Set[int]], within: Set[int]) -> bool:
    """True when the subgraph induced by ``within`` is connected."""
    return len(TopologyBuilder._components(adjacency, within)) <= 1
