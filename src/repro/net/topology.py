"""Overlay topology construction.

Section 6.1: "We constructed a connected topology where each node had eight
outgoing connections and up to 125 incoming connections, in line with the
default Bitcoin parameters."  The builder samples outgoing peers uniformly
while honouring the inbound cap, then patches connectivity if the undirected
graph came out disconnected (possible at small sizes).

For the resilience experiments (section 6.2) the builder can also produce a
topology where a set of malicious nodes is interconnected but "for every
pair of correct nodes, there exists at least one path between them
consisting solely of correct nodes".
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set


class TopologyError(RuntimeError):
    """Raised when a requested topology cannot be constructed."""


class TopologyBuilder:
    """Random overlay graphs with Bitcoin-like degree constraints."""

    #: At or above this node count :meth:`build` switches from the legacy
    #: full-candidate-shuffle (O(n) list + shuffle per node, O(n^2) total
    #: -- around a second of pure ``random.shuffle`` at 1,000 nodes and
    #: minutes at 10,000) to rejection sampling, which draws only the
    #: ``out_degree`` peers actually used.  The threshold keeps every
    #: small seeded topology (all tests run well below it) byte-for-byte
    #: what the legacy path produced.
    FAST_SAMPLING_MIN_NODES = 512

    def __init__(
        self,
        num_nodes: int,
        rng: random.Random,
        out_degree: int = 8,
        max_in_degree: int = 125,
    ):
        if num_nodes < 2:
            raise TopologyError(f"need at least 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes
        self.rng = rng
        self.out_degree = min(out_degree, num_nodes - 1)
        self.max_in_degree = max_in_degree

    # ------------------------------------------------------------- building

    def build(self) -> Dict[int, Set[int]]:
        """Undirected adjacency from random outgoing connections.

        Returns node -> set of neighbours.  Each node picks ``out_degree``
        distinct targets with available inbound capacity; the final graph is
        undirected because connections are bidirectional channels.
        """
        in_degree = [0] * self.num_nodes
        adjacency: Dict[int, Set[int]] = {i: set() for i in range(self.num_nodes)}
        order = list(range(self.num_nodes))
        self.rng.shuffle(order)
        fast = self.num_nodes >= self.FAST_SAMPLING_MIN_NODES
        for node in order:
            if fast:
                self._sample_out_peers(node, adjacency, in_degree)
                continue
            candidates = [
                peer
                for peer in range(self.num_nodes)
                if peer != node
                and peer not in adjacency[node]
                and in_degree[peer] < self.max_in_degree
            ]
            self.rng.shuffle(candidates)
            for peer in candidates[: self.out_degree]:
                adjacency[node].add(peer)
                adjacency[peer].add(node)
                in_degree[peer] += 1
        self._ensure_connected(adjacency, set(range(self.num_nodes)))
        return adjacency

    def _sample_out_peers(
        self,
        node: int,
        adjacency: Dict[int, Set[int]],
        in_degree: List[int],
    ) -> None:
        """Rejection-sampled outgoing picks for large overlays.

        Uniform draws with retry: at paper scale almost every draw is
        admissible (self-loops, existing neighbours and inbound-saturated
        peers are rare), so picking 8 peers costs ~8 RNG draws instead of
        an O(n) candidate list plus a full shuffle.  A bounded attempt
        budget guards the saturated corner; any remainder falls back to
        the exact candidate scan, so the degree guarantees are unchanged.
        """
        rng = self.rng
        neighbors = adjacency[node]
        n = self.num_nodes
        cap = self.max_in_degree
        wanted = self.out_degree
        attempts = 64 * wanted + 64
        while wanted and attempts:
            attempts -= 1
            peer = rng.randrange(n)
            if peer == node or peer in neighbors or in_degree[peer] >= cap:
                continue
            neighbors.add(peer)
            adjacency[peer].add(node)
            in_degree[peer] += 1
            wanted -= 1
        if wanted:
            candidates = [
                peer
                for peer in range(n)
                if peer != node
                and peer not in neighbors
                and in_degree[peer] < cap
            ]
            self.rng.shuffle(candidates)
            for peer in candidates[:wanted]:
                neighbors.add(peer)
                adjacency[peer].add(node)
                in_degree[peer] += 1

    def build_with_adversaries(
        self, malicious: Sequence[int]
    ) -> Dict[int, Set[int]]:
        """Topology for section 6.2: malicious clique, correct core connected.

        "All malicious miners are assumed to be interconnected" and every
        pair of correct nodes stays connected through correct-only paths.
        """
        malicious_set = set(malicious)
        if not malicious_set <= set(range(self.num_nodes)):
            raise TopologyError("malicious ids out of range")
        correct = [i for i in range(self.num_nodes) if i not in malicious_set]
        if len(correct) < 2:
            raise TopologyError("need at least 2 correct nodes")
        adjacency = self.build()
        # Interconnect the malicious nodes (clique for small counts, ring +
        # random chords beyond that to keep degree sane).
        malicious_list = sorted(malicious_set)
        if len(malicious_list) > 1:
            if len(malicious_list) <= 24:
                for i, a in enumerate(malicious_list):
                    for b in malicious_list[i + 1 :]:
                        adjacency[a].add(b)
                        adjacency[b].add(a)
            else:
                for i, a in enumerate(malicious_list):
                    b = malicious_list[(i + 1) % len(malicious_list)]
                    adjacency[a].add(b)
                    adjacency[b].add(a)
                    chord = self.rng.choice(malicious_list)
                    if chord != a:
                        adjacency[a].add(chord)
                        adjacency[chord].add(a)
        # Guarantee a correct-only connected subgraph.
        self._ensure_connected(adjacency, set(correct))
        return adjacency

    # ------------------------------------------------------------- utilities

    def _ensure_connected(
        self, adjacency: Dict[int, Set[int]], within: Set[int]
    ) -> None:
        """Add random edges inside ``within`` until it is internally connected."""
        components = self._components(adjacency, within)
        while len(components) > 1:
            a = self.rng.choice(sorted(components[0]))
            b = self.rng.choice(sorted(components[1]))
            adjacency[a].add(b)
            adjacency[b].add(a)
            components = self._components(adjacency, within)

    @staticmethod
    def _components(
        adjacency: Dict[int, Set[int]], within: Set[int]
    ) -> List[Set[int]]:
        """Connected components of the subgraph induced by ``within``."""
        remaining = set(within)
        components: List[Set[int]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for peer in adjacency[node]:
                    if peer in within and peer not in seen:
                        seen.add(peer)
                        frontier.append(peer)
            components.append(seen)
            remaining -= seen
        return components


def is_connected(adjacency: Dict[int, Set[int]], within: Set[int]) -> bool:
    """True when the subgraph induced by ``within`` is connected."""
    return len(TopologyBuilder._components(adjacency, within)) <= 1
