"""The simulated network: endpoints, delivery, and bandwidth accounting.

Nodes implement the :class:`Endpoint` interface and register with a
:class:`Network`.  ``send`` schedules an ``on_message`` callback on the
recipient after the latency-model delay.  The network tracks per-node and
per-message-type byte counters, split into protocol overhead vs transaction
payload, which is exactly the accounting Fig. 9 needs.

Fault injection: nodes can be crashed (drop everything), partitioned
(drop messages crossing the partition), or have per-link drops installed --
used by the accountability experiments where faulty miners "avoid
interacting with some other nodes" (section 3.1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.net.latency import ConstantLatencyModel, LatencyModel
from repro.net.message import Message
from repro.sim.loop import EventLoop

NodeId = int


class Endpoint:
    """Interface every simulated node implements."""

    node_id: NodeId

    def on_message(self, message: Message) -> None:
        """Handle a delivered message."""
        raise NotImplementedError


class BandwidthMeter:
    """Byte counters for one node, split by direction and overhead flag."""

    __slots__ = ("sent_overhead", "sent_payload", "recv_overhead", "recv_payload",
                 "sent_messages", "recv_messages", "by_type")

    def __init__(self) -> None:
        self.sent_overhead = 0
        self.sent_payload = 0
        self.recv_overhead = 0
        self.recv_payload = 0
        self.sent_messages = 0
        self.recv_messages = 0
        self.by_type: Dict[str, int] = defaultdict(int)

    def record_send(self, message: Message) -> None:
        self.sent_messages += 1
        if message.is_overhead:
            # by_type is an *overhead* breakdown (feeds Fig. 9); payload
            # bytes are tracked in aggregate only.
            self.by_type[message.msg_type] += message.wire_bytes
            self.sent_overhead += message.wire_bytes
        else:
            self.sent_payload += message.wire_bytes

    def record_recv(self, message: Message) -> None:
        self.recv_messages += 1
        if message.is_overhead:
            self.recv_overhead += message.wire_bytes
        else:
            self.recv_payload += message.wire_bytes

    @property
    def total_overhead(self) -> int:
        """Overhead bytes crossing this node's interface, both directions."""
        return self.sent_overhead + self.recv_overhead


class Network:
    """Message router over an event loop.

    >>> from repro.sim import EventLoop
    >>> loop = EventLoop()
    >>> net = Network(loop)
    >>> class Echo(Endpoint):
    ...     def __init__(self, node_id):
    ...         self.node_id = node_id
    ...         self.seen = []
    ...     def on_message(self, message):
    ...         self.seen.append(message.payload)
    >>> a, b = Echo(0), Echo(1)
    >>> net.register(a); net.register(b)
    >>> net.send(0, 1, "ping", {"x": 1}, wire_bytes=64)
    >>> loop.run_for(1.0); b.seen
    [{'x': 1}]
    """

    def __init__(
        self,
        loop: EventLoop,
        latency_model: Optional[LatencyModel] = None,
    ):
        self.loop = loop
        self.latency_model = latency_model or ConstantLatencyModel(0.05)
        self.nodes: Dict[NodeId, Endpoint] = {}
        self.meters: Dict[NodeId, BandwidthMeter] = {}
        self._crashed: Set[NodeId] = set()
        self._blocked_links: Set[Tuple[NodeId, NodeId]] = set()
        self._partition: Optional[List[Set[NodeId]]] = None
        self.dropped_messages = 0
        self.delivered_messages = 0
        self._delivery_hooks: List[Callable[[Message], bool]] = []

    # ----------------------------------------------------------- membership

    def register(self, endpoint: Endpoint) -> None:
        """Attach an endpoint; its ``node_id`` must be unique."""
        node_id = endpoint.node_id
        if node_id in self.nodes:
            raise ValueError(f"node id {node_id} already registered")
        self.nodes[node_id] = endpoint
        self.meters[node_id] = BandwidthMeter()

    def unregister(self, node_id: NodeId) -> None:
        """Detach a node (it stops receiving); meter is retained."""
        self.nodes.pop(node_id, None)

    # ------------------------------------------------------- fault injection

    def crash(self, node_id: NodeId) -> None:
        """Silently drop all traffic to and from ``node_id``."""
        self._crashed.add(node_id)

    def recover(self, node_id: NodeId) -> None:
        """Undo :meth:`crash`."""
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: NodeId) -> bool:
        """Whether a node is currently crashed (offline)."""
        return node_id in self._crashed

    def block_link(self, sender: NodeId, recipient: NodeId) -> None:
        """Drop messages on one directed link."""
        self._blocked_links.add((sender, recipient))

    def unblock_link(self, sender: NodeId, recipient: NodeId) -> None:
        """Undo :meth:`block_link`."""
        self._blocked_links.discard((sender, recipient))

    def partition(self, groups: List[Set[NodeId]]) -> None:
        """Install a partition: messages between different groups are dropped."""
        self._partition = groups

    def heal_partition(self) -> None:
        """Remove any installed partition."""
        self._partition = None

    def add_delivery_hook(self, hook: Callable[[Message], bool]) -> None:
        """Register a predicate consulted per message; ``False`` drops it."""
        self._delivery_hooks.append(hook)

    def _crosses_partition(self, sender: NodeId, recipient: NodeId) -> bool:
        if self._partition is None:
            return False
        for group in self._partition:
            if sender in group:
                return recipient not in group
        return False

    # --------------------------------------------------------------- sending

    def send(
        self,
        sender: NodeId,
        recipient: NodeId,
        msg_type: str,
        payload: Any,
        wire_bytes: int,
        is_overhead: bool = True,
    ) -> None:
        """Queue a message for delivery after the modelled latency.

        Sends are never errors: unknown or crashed recipients just lose the
        message, as over UDP.  Sender-side bytes are metered even when the
        message is dropped downstream (the bytes left the sender's NIC).
        """
        message = Message(sender, recipient, msg_type, payload, wire_bytes,
                          is_overhead)
        meter = self.meters.get(sender)
        if meter is not None:
            meter.record_send(message)
        if sender in self._crashed or recipient in self._crashed:
            self.dropped_messages += 1
            return
        if (sender, recipient) in self._blocked_links:
            self.dropped_messages += 1
            return
        if self._crosses_partition(sender, recipient):
            self.dropped_messages += 1
            return
        for hook in self._delivery_hooks:
            if not hook(message):
                self.dropped_messages += 1
                return
        delay = self.latency_model.delay(sender, recipient)
        self.loop.call_later(delay, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        if message.recipient in self._crashed:
            self.dropped_messages += 1
            return
        endpoint = self.nodes.get(message.recipient)
        if endpoint is None:
            self.dropped_messages += 1
            return
        meter = self.meters.get(message.recipient)
        if meter is not None:
            meter.record_recv(message)
        self.delivered_messages += 1
        endpoint.on_message(message)

    # ------------------------------------------------------------ statistics

    def total_overhead_bytes(self) -> int:
        """Sum of overhead bytes sent by all nodes."""
        return sum(meter.sent_overhead for meter in self.meters.values())

    def total_payload_bytes(self) -> int:
        """Sum of transaction-payload bytes sent by all nodes."""
        return sum(meter.sent_payload for meter in self.meters.values())

    def overhead_by_type(self) -> Dict[str, int]:
        """Overhead bytes aggregated per message type across all nodes."""
        totals: Dict[str, int] = defaultdict(int)
        for meter in self.meters.values():
            for msg_type, count in meter.by_type.items():
                totals[msg_type] += count
        return dict(totals)
