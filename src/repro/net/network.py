"""The simulated network: endpoints, delivery, and bandwidth accounting.

Nodes implement the :class:`Endpoint` interface and register with a
:class:`Network`.  ``send`` schedules an ``on_message`` callback on the
recipient after the latency-model delay.  The network tracks per-node and
per-message-type byte counters, split into protocol overhead vs transaction
payload, which is exactly the accounting Fig. 9 needs.

Fault injection: nodes can be crashed (drop everything), partitioned
(drop messages crossing the partition), or have per-link drops installed --
used by the accountability experiments where faulty miners "avoid
interacting with some other nodes" (section 3.1).  Richer fault models
(probabilistic drop, duplication, reordering, payload corruption) plug in
through :meth:`Network.set_fault_injector`; see :mod:`repro.net.chaos`.

Every dropped message is attributed to a reason in ``drop_reasons``
(``crashed`` / ``blocked_link`` / ``partition`` / ``hook`` / ``chaos`` /
``no_endpoint``); ``dropped_messages`` remains the running total.

Hot path: when no fault of any kind is installed (no crashes, blocked
links, partition, delivery hooks or chaos injector -- the common case for
clean runs), ``send`` takes a precomputed fast path that skips the whole
branch chain, reads the modelled delay from a per-ordered-pair memo and
schedules delivery without allocating a cancellation handle.  Installing
*any* fault flips the flag off; clearing them all flips it back on.  The
tracer guard is likewise hoisted: a module-level ``_TRACE`` binding is
rebound by :func:`repro.obs.on_tracer_change` and is ``None`` whenever
tracing is off, so the per-message tracing cost with tracing disabled is
one global load and branch.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.net.latency import ConstantLatencyModel, LatencyModel
from repro.net.message import Message
from repro.sim.loop import EventLoop

NodeId = int

#: The installed tracer when tracing is enabled, ``None`` otherwise.
#: Rebound by :func:`_rebind_tracer` on every ``obs.set_tracer``; hot
#: call sites test ``_TRACE is not None`` instead of re-reading
#: ``obs.TRACER.enabled`` per message.
_TRACE = None


def _rebind_tracer(tracer) -> None:
    """Keep the module-level ``_TRACE`` fast-path guard current."""
    global _TRACE
    _TRACE = tracer if tracer.enabled else None


obs.on_tracer_change(_rebind_tracer)


class Endpoint:
    """Interface every simulated node implements."""

    node_id: NodeId

    def on_message(self, message: Message) -> None:
        """Handle a delivered message."""
        raise NotImplementedError


class BandwidthMeter:
    """Byte counters for one node, split by direction and overhead flag."""

    __slots__ = ("sent_overhead", "sent_payload", "recv_overhead", "recv_payload",
                 "sent_messages", "recv_messages", "by_type")

    def __init__(self) -> None:
        self.sent_overhead = 0
        self.sent_payload = 0
        self.recv_overhead = 0
        self.recv_payload = 0
        self.sent_messages = 0
        self.recv_messages = 0
        self.by_type: Dict[str, int] = defaultdict(int)

    def record_send(self, message: Message) -> None:
        self.sent_messages += 1
        if message.is_overhead:
            # by_type is an *overhead* breakdown (feeds Fig. 9); payload
            # bytes are tracked in aggregate only.
            self.by_type[message.msg_type] += message.wire_bytes
            self.sent_overhead += message.wire_bytes
        else:
            self.sent_payload += message.wire_bytes

    def record_recv(self, message: Message) -> None:
        self.recv_messages += 1
        if message.is_overhead:
            self.recv_overhead += message.wire_bytes
        else:
            self.recv_payload += message.wire_bytes

    @property
    def total_overhead(self) -> int:
        """Overhead bytes crossing this node's interface, both directions."""
        return self.sent_overhead + self.recv_overhead


class Network:
    """Message router over an event loop.

    >>> from repro.sim import EventLoop
    >>> loop = EventLoop()
    >>> net = Network(loop)
    >>> class Echo(Endpoint):
    ...     def __init__(self, node_id):
    ...         self.node_id = node_id
    ...         self.seen = []
    ...     def on_message(self, message):
    ...         self.seen.append(message.payload)
    >>> a, b = Echo(0), Echo(1)
    >>> net.register(a); net.register(b)
    >>> net.send(0, 1, "ping", {"x": 1}, wire_bytes=64)
    >>> loop.run_for(1.0); b.seen
    [{'x': 1}]
    """

    def __init__(
        self,
        loop: EventLoop,
        latency_model: Optional[LatencyModel] = None,
    ):
        self.loop = loop
        self.latency_model = latency_model or ConstantLatencyModel(0.05)
        self.nodes: Dict[NodeId, Endpoint] = {}
        self.meters: Dict[NodeId, BandwidthMeter] = {}
        # (endpoint, meter) per registered node, bound once at register
        # time so delivery costs one dict lookup instead of two.
        self._routes: Dict[NodeId, Tuple[Endpoint, BandwidthMeter]] = {}
        self._crashed: Set[NodeId] = set()
        self._blocked_links: Set[Tuple[NodeId, NodeId]] = set()
        self._partition: Optional[List[Set[NodeId]]] = None
        self.dropped_messages = 0
        self.delivered_messages = 0
        self.drop_reasons: Dict[str, int] = defaultdict(int)
        self._delivery_hooks: List[Callable[[Message], bool]] = []
        # Optional injector consulted at scheduling time; maps one logical
        # send to zero or more (delay, message) deliveries (repro.net.chaos).
        self._fault_injector: Optional[
            Callable[[Message, float], List[Tuple[float, Message]]]
        ] = None
        # Per-ordered-pair delay memo; only for models declaring their
        # delays stable per pair (all bundled models do).
        self._delay_cache: Optional[Dict[Tuple[NodeId, NodeId], float]] = (
            {} if getattr(self.latency_model, "PAIR_STABLE", False) else None
        )
        # True while no fault of any kind is installed; send() then skips
        # the crashed/blocked/partition/hook/injector branch chain.
        self._fast_send = True

    # ----------------------------------------------------------- membership

    def register(self, endpoint: Endpoint) -> None:
        """Attach an endpoint; its ``node_id`` must be unique."""
        node_id = endpoint.node_id
        if node_id in self.nodes:
            raise ValueError(f"node id {node_id} already registered")
        self.nodes[node_id] = endpoint
        meter = BandwidthMeter()
        self.meters[node_id] = meter
        self._routes[node_id] = (endpoint, meter)

    def unregister(self, node_id: NodeId) -> None:
        """Detach a node (it stops receiving); meter is retained.

        Any fault state referring to the id is cleared as well, so a later
        :meth:`register` under the same id starts from a clean slate instead
        of silently inheriting old crashes, blocked links or partitions.
        """
        self.nodes.pop(node_id, None)
        self._routes.pop(node_id, None)
        self._crashed.discard(node_id)
        self._blocked_links = {
            link for link in self._blocked_links if node_id not in link
        }
        if self._partition is not None:
            for group in self._partition:
                group.discard(node_id)
        self._refresh_fast_path()

    # ------------------------------------------------------- fault injection

    def _refresh_fast_path(self) -> None:
        """Recompute the no-faults flag after any fault-state mutation."""
        self._fast_send = not (
            self._crashed
            or self._blocked_links
            or self._partition is not None
            or self._delivery_hooks
            or self._fault_injector is not None
        )

    def crash(self, node_id: NodeId) -> None:
        """Silently drop all traffic to and from ``node_id``."""
        self._crashed.add(node_id)
        self._fast_send = False

    def recover(self, node_id: NodeId) -> None:
        """Undo :meth:`crash`."""
        self._crashed.discard(node_id)
        self._refresh_fast_path()

    def is_crashed(self, node_id: NodeId) -> bool:
        """Whether a node is currently crashed (offline)."""
        return node_id in self._crashed

    def block_link(self, sender: NodeId, recipient: NodeId) -> None:
        """Drop messages on one directed link."""
        self._blocked_links.add((sender, recipient))
        self._fast_send = False

    def unblock_link(self, sender: NodeId, recipient: NodeId) -> None:
        """Undo :meth:`block_link`."""
        self._blocked_links.discard((sender, recipient))
        self._refresh_fast_path()

    def partition(self, groups: List[Set[NodeId]]) -> None:
        """Install a partition: messages between different groups are dropped."""
        self._partition = groups
        self._fast_send = False

    def heal_partition(self) -> None:
        """Remove any installed partition."""
        self._partition = None
        self._refresh_fast_path()

    def add_delivery_hook(self, hook: Callable[[Message], bool]) -> None:
        """Register a predicate consulted per message; ``False`` drops it."""
        self._delivery_hooks.append(hook)
        self._fast_send = False

    def set_fault_injector(
        self,
        injector: Optional[Callable[[Message, float], List[Tuple[float, Message]]]],
    ) -> None:
        """Install (or clear, with ``None``) the chaos fault injector.

        The injector sees every message that survived the crash / link /
        partition / hook checks, together with its modelled delay, and
        returns the deliveries that should actually happen: an empty list
        drops the message (counted under ``chaos``), several entries
        duplicate it, altered delays reorder it and altered payloads
        corrupt it.
        """
        self._fault_injector = injector
        self._refresh_fast_path()

    def _drop(self, reason: str, message: Optional[Message] = None) -> None:
        self.dropped_messages += 1
        self.drop_reasons[reason] += 1
        if _TRACE is not None:
            attrs = {"reason": reason}
            if message is not None:
                attrs["msg_type"] = message.msg_type
                attrs["sender"] = message.sender
                attrs["recipient"] = message.recipient
            _TRACE.event("net.drop", t=self.loop.now,
                         node_id=message.recipient if message else None,
                         **attrs)

    def drop_breakdown(self) -> Dict[str, int]:
        """Per-reason drop counts (copy); reasons never hit are absent."""
        return dict(self.drop_reasons)

    def _crosses_partition(self, sender: NodeId, recipient: NodeId) -> bool:
        if self._partition is None:
            return False
        for group in self._partition:
            if sender in group:
                return recipient not in group
        return False

    # --------------------------------------------------------------- sending

    def _pair_delay(self, sender: NodeId, recipient: NodeId) -> float:
        """Modelled one-way delay, memoized per ordered pair when stable."""
        cache = self._delay_cache
        if cache is None:
            return self.latency_model.delay(sender, recipient)
        key = (sender, recipient)
        delay = cache.get(key)
        if delay is None:
            delay = self.latency_model.delay(sender, recipient)
            cache[key] = delay
        return delay

    def send(
        self,
        sender: NodeId,
        recipient: NodeId,
        msg_type: str,
        payload: Any,
        wire_bytes: int,
        is_overhead: bool = True,
    ) -> None:
        """Queue a message for delivery after the modelled latency.

        Sends are never errors: unknown or crashed recipients just lose the
        message, as over UDP.  Sender-side bytes are metered even when the
        message is dropped downstream (the bytes left the sender's NIC).
        """
        message = Message(sender, recipient, msg_type, payload, wire_bytes,
                          is_overhead)
        meter = self.meters.get(sender)
        if meter is not None:
            meter.record_send(message)
        if _TRACE is not None:
            _TRACE.message_event("net.send", self.loop.now, msg_type, sender,
                                 recipient, message.wire_bytes)
        if self._fast_send:
            # No faults installed anywhere: skip the whole branch chain.
            self.loop.schedule_later(
                self._pair_delay(sender, recipient), self._deliver, message
            )
            return
        if sender in self._crashed or recipient in self._crashed:
            self._drop("crashed", message)
            return
        if (sender, recipient) in self._blocked_links:
            self._drop("blocked_link", message)
            return
        if self._crosses_partition(sender, recipient):
            self._drop("partition", message)
            return
        for hook in self._delivery_hooks:
            if not hook(message):
                self._drop("hook", message)
                return
        delay = self._pair_delay(sender, recipient)
        if self._fault_injector is not None:
            deliveries = self._fault_injector(message, delay)
            if not deliveries:
                self._drop("chaos", message)
                return
            for when, mutated in deliveries:
                self.loop.schedule_later(when, self._deliver, mutated)
            return
        self.loop.schedule_later(delay, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        recipient = message.recipient
        if self._crashed and recipient in self._crashed:
            self._drop("crashed", message)
            return
        route = self._routes.get(recipient)
        if route is None:
            self._drop("no_endpoint", message)
            return
        endpoint, meter = route
        meter.record_recv(message)
        self.delivered_messages += 1
        if _TRACE is not None:
            _TRACE.message_event("net.deliver", self.loop.now,
                                 message.msg_type, message.sender, recipient,
                                 message.wire_bytes)
        endpoint.on_message(message)

    # ------------------------------------------------------------ statistics

    def total_overhead_bytes(self) -> int:
        """Sum of overhead bytes sent by all nodes."""
        return sum(meter.sent_overhead for meter in self.meters.values())

    def total_payload_bytes(self) -> int:
        """Sum of transaction-payload bytes sent by all nodes."""
        return sum(meter.sent_payload for meter in self.meters.values())

    def overhead_by_type(self) -> Dict[str, int]:
        """Overhead bytes aggregated per message type across all nodes."""
        totals: Dict[str, int] = defaultdict(int)
        for meter in self.meters.values():
            for msg_type, count in meter.by_type.items():
                totals[msg_type] += count
        return dict(totals)

    def collect_metrics(self) -> Dict[str, int]:
        """Flat counter dict for the unified metrics registry (``net.*``).

        Absorbs the message totals, per-reason drop counters and the
        per-type byte meters into one snapshot-friendly namespace.
        """
        out: Dict[str, int] = {
            "delivered": self.delivered_messages,
            "dropped": self.dropped_messages,
            "bytes.overhead": self.total_overhead_bytes(),
            "bytes.payload": self.total_payload_bytes(),
        }
        for reason, count in self.drop_reasons.items():
            out[f"drop.{reason}"] = count
        for msg_type, total in self.overhead_by_type().items():
            out[f"bytes.type.{msg_type}"] = total
        return out
