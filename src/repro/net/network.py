"""The simulated network: endpoints, delivery, and bandwidth accounting.

Nodes implement the :class:`Endpoint` interface and register with a
:class:`Network`.  ``send`` schedules an ``on_message`` callback on the
recipient after the latency-model delay.  The network tracks per-node and
per-message-type byte counters, split into protocol overhead vs transaction
payload, which is exactly the accounting Fig. 9 needs.

Fault injection: nodes can be crashed (drop everything), partitioned
(drop messages crossing the partition), or have per-link drops installed --
used by the accountability experiments where faulty miners "avoid
interacting with some other nodes" (section 3.1).  Richer fault models
(probabilistic drop, duplication, reordering, payload corruption) plug in
through :meth:`Network.set_fault_injector`; see :mod:`repro.net.chaos`.

Every dropped message is attributed to a reason in ``drop_reasons``
(``crashed`` / ``blocked_link`` / ``partition`` / ``hook`` / ``chaos`` /
``no_endpoint``); ``dropped_messages`` remains the running total.

Hot path: when no fault of any kind is installed (no crashes, blocked
links, partition, delivery hooks or chaos injector -- the common case for
clean runs), ``send`` takes a precomputed fast path that skips the whole
branch chain.  Installing *any* fault flips the flag off; clearing them
all flips it back on.  The tracer guard is likewise hoisted: a
module-level ``_TRACE`` binding is rebound by
:func:`repro.obs.on_tracer_change` and is ``None`` whenever tracing is
off, so the per-message tracing cost with tracing disabled is one global
load and branch.

Batched delivery engine (paper-scale overlays)
----------------------------------------------

Three structural optimisations keep a 10,000-node overlay affordable
while preserving same-seed byte-identity with the per-message path
(``tests/integration/test_fastpath_identity.py`` and the batched-vs-
unbatched property in ``tests/net/test_batching.py`` are the gates):

* **Batched fan-outs** -- :meth:`send_many` / :meth:`send_fanout` group a
  whole fan-out by modelled delay and push one
  :meth:`repro.sim.loop.EventLoop.schedule_batch_later` entry per
  distinct delivery time, collapsing heap traffic from O(messages) to
  O(distinct delays); with a city latency model that is at most 32
  groups no matter the fan-out.  Delays for the whole fan-out come from
  one vectorised :meth:`LatencyModel.delays_batch` call when the model
  declares ``CHEAP_DELAY``.
* **Pooled envelopes** -- the fault-free path recycles
  :class:`~repro.net.message.Message` instances through a free list.  An
  envelope returns to the pool after ``on_message`` unless the endpoint
  class sets ``RETAINS_ENVELOPES = True`` (the safe default) to declare
  it holds references across callbacks.  Recycled envelopes re-stamp
  ``msg_id`` from the global counter, so ids stay identical to fresh
  allocation.
* **Struct-of-arrays overlay state** -- routes, meters, crash flags and
  partition membership for ids below :data:`DENSE_ID_LIMIT` live in
  index-addressed arrays, so the send/deliver path does a bounds check
  plus list index instead of hashing every message.  Sparse ids (light
  clients register above one million) fall back to the original dicts.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.net.latency import ConstantLatencyModel, LatencyModel
from repro.net.message import Message, _message_counter
from repro.sim.loop import EventLoop

NodeId = int

#: Node ids below this bound get struct-of-arrays state (index-addressed
#: routes/meters/crash/partition); ids at or above it -- light clients
#: start at 1,000,000 -- use the dict fallback.  Covers 10,000-node
#: overlays with room to spare while bounding array memory.
DENSE_ID_LIMIT = 1 << 18

#: The installed tracer when tracing is enabled, ``None`` otherwise.
#: Rebound by :func:`_rebind_tracer` on every ``obs.set_tracer``; hot
#: call sites test ``_TRACE is not None`` instead of re-reading
#: ``obs.TRACER.enabled`` per message.
_TRACE = None


def _rebind_tracer(tracer) -> None:
    """Keep the module-level ``_TRACE`` fast-path guard current."""
    global _TRACE
    _TRACE = tracer if tracer.enabled else None


obs.on_tracer_change(_rebind_tracer)


class Endpoint:
    """Interface every simulated node implements."""

    node_id: NodeId

    #: Whether this endpoint may keep a reference to a delivered
    #: :class:`Message` after ``on_message`` returns.  ``True`` (the safe
    #: default) exempts its deliveries from envelope pooling; endpoints
    #: that only read the envelope synchronously override with ``False``
    #: to let the network recycle it.
    RETAINS_ENVELOPES = True

    def on_message(self, message: Message) -> None:
        """Handle a delivered message."""
        raise NotImplementedError


class BandwidthMeter:
    """Byte counters for one node, split by direction and overhead flag."""

    __slots__ = ("sent_overhead", "sent_payload", "recv_overhead", "recv_payload",
                 "sent_messages", "recv_messages", "by_type")

    def __init__(self) -> None:
        self.sent_overhead = 0
        self.sent_payload = 0
        self.recv_overhead = 0
        self.recv_payload = 0
        self.sent_messages = 0
        self.recv_messages = 0
        self.by_type: Dict[str, int] = defaultdict(int)

    def record_send(self, message: Message) -> None:
        self.sent_messages += 1
        if message.is_overhead:
            # by_type is an *overhead* breakdown (feeds Fig. 9); payload
            # bytes are tracked in aggregate only.
            self.by_type[message.msg_type] += message.wire_bytes
            self.sent_overhead += message.wire_bytes
        else:
            self.sent_payload += message.wire_bytes

    def record_recv(self, message: Message) -> None:
        self.recv_messages += 1
        if message.is_overhead:
            self.recv_overhead += message.wire_bytes
        else:
            self.recv_payload += message.wire_bytes

    @property
    def total_overhead(self) -> int:
        """Overhead bytes crossing this node's interface, both directions."""
        return self.sent_overhead + self.recv_overhead


class Network:
    """Message router over an event loop.

    >>> from repro.sim import EventLoop
    >>> loop = EventLoop()
    >>> net = Network(loop)
    >>> class Echo(Endpoint):
    ...     def __init__(self, node_id):
    ...         self.node_id = node_id
    ...         self.seen = []
    ...     def on_message(self, message):
    ...         self.seen.append(message.payload)
    >>> a, b = Echo(0), Echo(1)
    >>> net.register(a); net.register(b)
    >>> net.send(0, 1, "ping", {"x": 1}, wire_bytes=64)
    >>> loop.run_for(1.0); b.seen
    [{'x': 1}]
    """

    #: Free-list bound: beyond this many idle envelopes, released ones
    #: are left to the garbage collector instead.
    POOL_MAX = 1024

    def __init__(
        self,
        loop: EventLoop,
        latency_model: Optional[LatencyModel] = None,
        batching_enabled: bool = True,
    ):
        self.loop = loop
        self.latency_model = latency_model or ConstantLatencyModel(0.05)
        #: When ``False``, :meth:`send_many` / :meth:`send_fanout` degrade
        #: to per-message :meth:`send` loops -- the unbatched reference the
        #: equivalence tests compare against.
        self.batching_enabled = batching_enabled
        self.nodes: Dict[NodeId, Endpoint] = {}
        self.meters: Dict[NodeId, BandwidthMeter] = {}
        # (endpoint, meter, releasable) per registered node, bound once at
        # register time so delivery costs one lookup instead of three.
        self._routes: Dict[
            NodeId, Tuple[Endpoint, BandwidthMeter, bool]
        ] = {}
        # Struct-of-arrays mirrors of the dicts above for dense ids; grown
        # on registration, indexed by node id.
        self._route_a: List[
            Optional[Tuple[Endpoint, BandwidthMeter, bool]]
        ] = []
        self._meter_a: List[Optional[BandwidthMeter]] = []
        self._crashed: Set[NodeId] = set()
        self._crashed_a = bytearray()
        self._blocked_links: Set[Tuple[NodeId, NodeId]] = set()
        self._partition: Optional[List[Set[NodeId]]] = None
        # Dense partition encoding: _group_a[id] is the group index or -1,
        # or None when no partition is installed / ids are not all dense.
        self._group_a: Optional[List[int]] = None
        self.dropped_messages = 0
        self.delivered_messages = 0
        self.drop_reasons: Dict[str, int] = defaultdict(int)
        self._delivery_hooks: List[Callable[[Message], bool]] = []
        # Optional injector consulted at scheduling time; maps one logical
        # send to zero or more (delay, message) deliveries (repro.net.chaos).
        self._fault_injector: Optional[
            Callable[[Message, float], List[Tuple[float, Message]]]
        ] = None
        # Models declaring CHEAP_DELAY are pure lookups: memoizing them
        # per ordered pair would cost more (and, at 10k nodes, hold
        # millions of tuple keys) than calling straight through.
        cheap = bool(getattr(self.latency_model, "CHEAP_DELAY", False))
        self._cheap_delay = cheap
        # Per-ordered-pair delay memo; only for models declaring their
        # delays stable per pair but not cheap (e.g. first-call RNG draws).
        self._delay_cache: Optional[Dict[Tuple[NodeId, NodeId], float]] = (
            {}
            if getattr(self.latency_model, "PAIR_STABLE", False) and not cheap
            else None
        )
        # Envelope free list (see module docstring).
        self._pool: List[Message] = []
        # True while no fault of any kind is installed; send() then skips
        # the crashed/blocked/partition/hook/injector branch chain.
        self._fast_send = True

    # ----------------------------------------------------------- membership

    def _grow_dense(self, node_id: NodeId) -> None:
        """Extend the dense arrays to cover ``node_id`` (id already vetted)."""
        old = len(self._route_a)
        pad = node_id + 1 - old
        if pad > 0:
            self._route_a.extend([None] * pad)
            self._meter_a.extend([None] * pad)
            self._crashed_a.extend(b"\x00" * pad)
            # An id can be crashed before any registration grows the
            # arrays over it; mirror those flags into the new range.
            for member in self._crashed:
                if type(member) is int and old <= member <= node_id:
                    self._crashed_a[member] = 1

    def register(self, endpoint: Endpoint) -> None:
        """Attach an endpoint; its ``node_id`` must be unique."""
        node_id = endpoint.node_id
        if node_id in self.nodes:
            raise ValueError(f"node id {node_id} already registered")
        self.nodes[node_id] = endpoint
        meter = BandwidthMeter()
        self.meters[node_id] = meter
        releasable = not getattr(endpoint, "RETAINS_ENVELOPES", True)
        route = (endpoint, meter, releasable)
        self._routes[node_id] = route
        if type(node_id) is int and 0 <= node_id < DENSE_ID_LIMIT:
            self._grow_dense(node_id)
            self._route_a[node_id] = route
            self._meter_a[node_id] = meter

    def unregister(self, node_id: NodeId) -> None:
        """Detach a node (it stops receiving); meter is retained.

        Any fault state referring to the id is cleared as well, so a later
        :meth:`register` under the same id starts from a clean slate instead
        of silently inheriting old crashes, blocked links or partitions.
        """
        self.nodes.pop(node_id, None)
        self._routes.pop(node_id, None)
        self._crashed.discard(node_id)
        if type(node_id) is int and 0 <= node_id < len(self._route_a):
            self._route_a[node_id] = None
            self._meter_a[node_id] = None
            self._crashed_a[node_id] = 0
        self._blocked_links = {
            link for link in self._blocked_links if node_id not in link
        }
        if self._partition is not None:
            for group in self._partition:
                group.discard(node_id)
            self._rebuild_partition_dense()
        self._refresh_fast_path()

    # ------------------------------------------------------- fault injection

    def _refresh_fast_path(self) -> None:
        """Recompute the no-faults flag after any fault-state mutation."""
        self._fast_send = not (
            self._crashed
            or self._blocked_links
            or self._partition is not None
            or self._delivery_hooks
            or self._fault_injector is not None
        )

    def crash(self, node_id: NodeId) -> None:
        """Silently drop all traffic to and from ``node_id``."""
        self._crashed.add(node_id)
        if type(node_id) is int and 0 <= node_id < len(self._crashed_a):
            self._crashed_a[node_id] = 1
        self._fast_send = False

    def recover(self, node_id: NodeId) -> None:
        """Undo :meth:`crash`."""
        self._crashed.discard(node_id)
        if type(node_id) is int and 0 <= node_id < len(self._crashed_a):
            self._crashed_a[node_id] = 0
        self._refresh_fast_path()

    def is_crashed(self, node_id: NodeId) -> bool:
        """Whether a node is currently crashed (offline)."""
        return node_id in self._crashed

    def _is_crashed_fast(self, node_id: NodeId) -> bool:
        """Set-equivalent crash membership via the dense byte array."""
        arr = self._crashed_a
        if type(node_id) is int and 0 <= node_id < len(arr):
            return arr[node_id] != 0
        return node_id in self._crashed

    def block_link(self, sender: NodeId, recipient: NodeId) -> None:
        """Drop messages on one directed link."""
        self._blocked_links.add((sender, recipient))
        self._fast_send = False

    def unblock_link(self, sender: NodeId, recipient: NodeId) -> None:
        """Undo :meth:`block_link`."""
        self._blocked_links.discard((sender, recipient))
        self._refresh_fast_path()

    def _rebuild_partition_dense(self) -> None:
        """Re-derive ``_group_a`` from ``_partition`` (or disable it)."""
        groups = self._partition
        self._group_a = None
        if not groups:
            return
        size = len(self._route_a)
        for group in groups:
            for member in group:
                if not (type(member) is int and 0 <= member < DENSE_ID_LIMIT):
                    return  # sparse member: keep the set-based check
                if member >= size:
                    size = member + 1
        arr = [-1] * size
        for index, group in enumerate(groups):
            for member in group:
                arr[member] = index
        self._group_a = arr

    def partition(self, groups: List[Set[NodeId]]) -> None:
        """Install a partition: messages between different groups are dropped."""
        self._partition = groups
        self._rebuild_partition_dense()
        self._fast_send = False

    def heal_partition(self) -> None:
        """Remove any installed partition."""
        self._partition = None
        self._group_a = None
        self._refresh_fast_path()

    def add_delivery_hook(self, hook: Callable[[Message], bool]) -> None:
        """Register a predicate consulted per message; ``False`` drops it."""
        self._delivery_hooks.append(hook)
        self._fast_send = False

    def set_fault_injector(
        self,
        injector: Optional[Callable[[Message, float], List[Tuple[float, Message]]]],
    ) -> None:
        """Install (or clear, with ``None``) the chaos fault injector.

        The injector sees every message that survived the crash / link /
        partition / hook checks, together with its modelled delay, and
        returns the deliveries that should actually happen: an empty list
        drops the message (counted under ``chaos``), several entries
        duplicate it, altered delays reorder it and altered payloads
        corrupt it.
        """
        self._fault_injector = injector
        self._refresh_fast_path()

    def _drop(self, reason: str, message: Optional[Message] = None) -> None:
        self.dropped_messages += 1
        self.drop_reasons[reason] += 1
        if _TRACE is not None:
            attrs = {"reason": reason}
            if message is not None:
                attrs["msg_type"] = message.msg_type
                attrs["sender"] = message.sender
                attrs["recipient"] = message.recipient
            _TRACE.event("net.drop", t=self.loop.now,
                         node_id=message.recipient if message else None,
                         **attrs)

    def drop_breakdown(self) -> Dict[str, int]:
        """Per-reason drop counts (copy); reasons never hit are absent."""
        return dict(self.drop_reasons)

    def _crosses_partition(self, sender: NodeId, recipient: NodeId) -> bool:
        if self._partition is None:
            return False
        arr = self._group_a
        if arr is not None and type(sender) is int and type(recipient) is int:
            size = len(arr)
            sender_group = arr[sender] if 0 <= sender < size else -1
            if sender_group < 0:
                return False
            recipient_group = arr[recipient] if 0 <= recipient < size else -1
            return recipient_group != sender_group
        for group in self._partition:
            if sender in group:
                return recipient not in group
        return False

    # --------------------------------------------------------------- sending

    def _pair_delay(self, sender: NodeId, recipient: NodeId) -> float:
        """Modelled one-way delay, memoized per ordered pair when stable."""
        cache = self._delay_cache
        if cache is None:
            return self.latency_model.delay(sender, recipient)
        key = (sender, recipient)
        delay = cache.get(key)
        if delay is None:
            delay = self.latency_model.delay(sender, recipient)
            cache[key] = delay
        return delay

    def _delays(self, sender: NodeId, recipients: Sequence[NodeId]) -> List[float]:
        """Delays for a whole fan-out; identical values to ``_pair_delay``."""
        if self._cheap_delay:
            return self.latency_model.delays_batch(sender, recipients)
        return [self._pair_delay(sender, recipient) for recipient in recipients]

    def _acquire(
        self,
        sender: NodeId,
        recipient: NodeId,
        msg_type: str,
        payload: Any,
        wire_bytes: int,
        is_overhead: bool,
    ) -> Message:
        """A pooled envelope: recycled when available, fresh otherwise.

        Recycling re-stamps ``msg_id`` from the same global counter a
        fresh construction would draw from, so id sequences are identical
        either way (the byte-identity tests rely on this).
        """
        pool = self._pool
        if pool:
            if wire_bytes < 0:
                raise ValueError(f"negative wire_bytes: {wire_bytes}")
            message = pool.pop()
            message.sender = sender
            message.recipient = recipient
            message.msg_type = msg_type
            message.payload = payload
            message.wire_bytes = wire_bytes
            message.is_overhead = is_overhead
            message.msg_id = next(_message_counter)
            return message
        message = Message(sender, recipient, msg_type, payload, wire_bytes,
                          is_overhead)
        message.pooled = True
        return message

    def _sender_meter(self, sender: NodeId) -> Optional[BandwidthMeter]:
        arr = self._meter_a
        if type(sender) is int and 0 <= sender < len(arr):
            return arr[sender]
        return self.meters.get(sender)

    def send(
        self,
        sender: NodeId,
        recipient: NodeId,
        msg_type: str,
        payload: Any,
        wire_bytes: int,
        is_overhead: bool = True,
    ) -> None:
        """Queue a message for delivery after the modelled latency.

        Sends are never errors: unknown or crashed recipients just lose the
        message, as over UDP.  Sender-side bytes are metered even when the
        message is dropped downstream (the bytes left the sender's NIC).
        """
        if self._fast_send:
            # No faults installed anywhere: skip the whole branch chain
            # and draw the envelope from the pool.
            message = self._acquire(sender, recipient, msg_type, payload,
                                    wire_bytes, is_overhead)
            meter = self._sender_meter(sender)
            if meter is not None:
                meter.record_send(message)
            if _TRACE is not None:
                _TRACE.message_event("net.send", self.loop.now, msg_type,
                                     sender, recipient, wire_bytes)
            self.loop.schedule_later(
                self._pair_delay(sender, recipient), self._deliver, message
            )
            return
        message = Message(sender, recipient, msg_type, payload, wire_bytes,
                          is_overhead)
        meter = self._sender_meter(sender)
        if meter is not None:
            meter.record_send(message)
        if _TRACE is not None:
            _TRACE.message_event("net.send", self.loop.now, msg_type, sender,
                                 recipient, message.wire_bytes)
        if self._is_crashed_fast(sender) or self._is_crashed_fast(recipient):
            self._drop("crashed", message)
            return
        if (sender, recipient) in self._blocked_links:
            self._drop("blocked_link", message)
            return
        if self._crosses_partition(sender, recipient):
            self._drop("partition", message)
            return
        for hook in self._delivery_hooks:
            if not hook(message):
                self._drop("hook", message)
                return
        delay = self._pair_delay(sender, recipient)
        if self._fault_injector is not None:
            deliveries = self._fault_injector(message, delay)
            if not deliveries:
                self._drop("chaos", message)
                return
            for when, mutated in deliveries:
                self.loop.schedule_later(when, self._deliver, mutated)
            return
        self.loop.schedule_later(delay, self._deliver, message)

    def send_many(
        self,
        sender: NodeId,
        sends: Sequence[Tuple[NodeId, str, Any, int, bool]],
    ) -> None:
        """Send a fan-out of per-recipient messages as delay-grouped batches.

        ``sends`` is a sequence of ``(recipient, msg_type, payload,
        wire_bytes, is_overhead)`` tuples.  On the fault-free fast path
        with batching enabled, delays for the whole fan-out come from one
        :meth:`LatencyModel.delays_batch` call and messages sharing a
        delay collapse into a single batch heap entry; otherwise this
        degrades to per-message :meth:`send` calls.  Both paths meter,
        trace, allocate ids and deliver in ``sends`` order, so they are
        byte-identical under the same seed.
        """
        if not (self.batching_enabled and self._fast_send):
            for recipient, msg_type, payload, wire_bytes, is_overhead in sends:
                self.send(sender, recipient, msg_type, payload, wire_bytes,
                          is_overhead)
            return
        delays = self._delays(sender, [entry[0] for entry in sends])
        meter = self._sender_meter(sender)
        trace = _TRACE
        now = self.loop.now
        groups: Dict[float, List[tuple]] = {}
        for (recipient, msg_type, payload, wire_bytes, is_overhead), delay \
                in zip(sends, delays):
            message = self._acquire(sender, recipient, msg_type, payload,
                                    wire_bytes, is_overhead)
            if meter is not None:
                meter.record_send(message)
            if trace is not None:
                trace.message_event("net.send", now, msg_type, sender,
                                    recipient, wire_bytes)
            group = groups.get(delay)
            if group is None:
                groups[delay] = [(message,)]
            else:
                group.append((message,))
        self._schedule_groups(groups)

    def send_fanout(
        self,
        sender: NodeId,
        recipients: Sequence[NodeId],
        msg_type: str,
        payload: Any,
        wire_bytes: int,
        is_overhead: bool = True,
    ) -> None:
        """:meth:`send_many` for one shared payload to many recipients."""
        if not (self.batching_enabled and self._fast_send):
            for recipient in recipients:
                self.send(sender, recipient, msg_type, payload, wire_bytes,
                          is_overhead)
            return
        delays = self._delays(sender, recipients)
        meter = self._sender_meter(sender)
        trace = _TRACE
        now = self.loop.now
        groups: Dict[float, List[tuple]] = {}
        for recipient, delay in zip(recipients, delays):
            message = self._acquire(sender, recipient, msg_type, payload,
                                    wire_bytes, is_overhead)
            if meter is not None:
                meter.record_send(message)
            if trace is not None:
                trace.message_event("net.send", now, msg_type, sender,
                                    recipient, wire_bytes)
            group = groups.get(delay)
            if group is None:
                groups[delay] = [(message,)]
            else:
                group.append((message,))
        self._schedule_groups(groups)

    def _schedule_groups(self, groups: Dict[float, List[tuple]]) -> None:
        """One heap entry per distinct delay, in first-occurrence order.

        First-occurrence order matters: it makes each group's sequence
        number fall exactly where its first message's would have under
        per-message scheduling, so ties at equal delivery times resolve
        identically to the unbatched path.
        """
        loop = self.loop
        deliver = self._deliver
        for delay, items in groups.items():
            if len(items) == 1:
                loop.schedule_later(delay, deliver, items[0][0])
            else:
                loop.schedule_batch_later(delay, deliver, items)

    def _deliver(self, message: Message) -> None:
        recipient = message.recipient
        if self._crashed and self._is_crashed_fast(recipient):
            self._drop("crashed", message)
            return
        arr = self._route_a
        if type(recipient) is int and 0 <= recipient < len(arr):
            route = arr[recipient]
        else:
            route = self._routes.get(recipient)
        if route is None:
            self._drop("no_endpoint", message)
            return
        endpoint, meter, releasable = route
        meter.record_recv(message)
        self.delivered_messages += 1
        if _TRACE is not None:
            _TRACE.message_event("net.deliver", self.loop.now,
                                 message.msg_type, message.sender, recipient,
                                 message.wire_bytes)
        endpoint.on_message(message)
        if releasable and message.pooled:
            pool = self._pool
            if len(pool) < self.POOL_MAX:
                message.payload = None  # drop the payload reference now
                pool.append(message)

    # ------------------------------------------------------------ statistics

    def total_overhead_bytes(self) -> int:
        """Sum of overhead bytes sent by all nodes."""
        return sum(meter.sent_overhead for meter in self.meters.values())

    def total_payload_bytes(self) -> int:
        """Sum of transaction-payload bytes sent by all nodes."""
        return sum(meter.sent_payload for meter in self.meters.values())

    def overhead_by_type(self) -> Dict[str, int]:
        """Overhead bytes aggregated per message type across all nodes."""
        totals: Dict[str, int] = defaultdict(int)
        for meter in self.meters.values():
            for msg_type, count in meter.by_type.items():
                totals[msg_type] += count
        return dict(totals)

    def collect_metrics(self) -> Dict[str, int]:
        """Flat counter dict for the unified metrics registry (``net.*``).

        Absorbs the message totals, per-reason drop counters and the
        per-type byte meters into one snapshot-friendly namespace.
        """
        out: Dict[str, int] = {
            "delivered": self.delivered_messages,
            "dropped": self.dropped_messages,
            "bytes.overhead": self.total_overhead_bytes(),
            "bytes.payload": self.total_payload_bytes(),
        }
        for reason, count in self.drop_reasons.items():
            out[f"drop.{reason}"] = count
        for msg_type, total in self.overhead_by_type().items():
            out[f"bytes.type.{msg_type}"] = total
        return out
