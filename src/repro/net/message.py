"""Message envelope used by every protocol in the simulator.

A message is a typed payload plus explicit wire-size accounting.  Payloads
are ordinary Python objects (the simulator never serializes them for
transport); ``wire_bytes`` states what the real implementation would put on
the wire, so bandwidth experiments measure protocol overhead rather than
Python object sizes.  Every protocol computes ``wire_bytes`` from the
serialized sizes of its data structures (sketches, clocks, signatures...).

Envelopes are pooled on the network's fault-free fast path: a hand-rolled
``__slots__`` class (not a dataclass -- ``slots=True`` needs 3.10+) keeps
the instance a fixed-size struct the :class:`repro.net.network.Network`
free list can recycle in place, re-stamping ``msg_id`` from the global
counter so recycled envelopes are indistinguishable from fresh ones.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

# Fixed per-message envelope cost: UDP/IP-style header plus message type tag,
# matching how the paper's prototype (ipv8 over UDP) frames packets.
ENVELOPE_BYTES = 32

_message_counter = itertools.count()


class Message:
    """A typed, size-accounted message.

    ``msg_type`` routes to a handler on the receiving node; ``payload`` is
    protocol-specific; ``wire_bytes`` is the full on-wire cost including the
    envelope.  ``is_overhead`` distinguishes protocol overhead from raw
    transaction payload bytes: Fig. 9 "omit[s] the bandwidth overhead for
    sharing transactions, as it is the same for all protocols".

    ``pooled`` is owned by the network: ``True`` marks an envelope the
    network acquired from its free list (and may reclaim after a
    non-retaining endpoint's ``on_message`` returns).  Envelopes built
    directly -- tests, chaos duplicates, the slow path -- leave it
    ``False`` and are never recycled.
    """

    __slots__ = ("sender", "recipient", "msg_type", "payload", "wire_bytes",
                 "is_overhead", "msg_id", "pooled")

    def __init__(
        self,
        sender: Any,
        recipient: Any,
        msg_type: str,
        payload: Any,
        wire_bytes: int,
        is_overhead: bool = True,
        msg_id: Optional[int] = None,
    ):
        if wire_bytes < 0:
            raise ValueError(f"negative wire_bytes: {wire_bytes}")
        self.sender = sender
        self.recipient = recipient
        self.msg_type = msg_type
        self.payload = payload
        self.wire_bytes = wire_bytes
        self.is_overhead = is_overhead
        self.msg_id = next(_message_counter) if msg_id is None else msg_id
        self.pooled = False

    def __eq__(self, other: Any) -> bool:
        # Field-for-field equality, msg_id included, matching the old
        # dataclass semantics: a chaos-corrupted copy never equals its
        # original even when the corruption round-trips the payload.
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.sender == other.sender
            and self.recipient == other.recipient
            and self.msg_type == other.msg_type
            and self.payload == other.payload
            and self.wire_bytes == other.wire_bytes
            and self.is_overhead == other.is_overhead
            and self.msg_id == other.msg_id
        )

    __hash__ = None  # mutable envelope, same as the eq=True dataclass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.msg_type} {self.sender}->{self.recipient},"
            f" {self.wire_bytes}B)"
        )
