"""Message envelope used by every protocol in the simulator.

A message is a typed payload plus explicit wire-size accounting.  Payloads
are ordinary Python objects (the simulator never serializes them for
transport); ``wire_bytes`` states what the real implementation would put on
the wire, so bandwidth experiments measure protocol overhead rather than
Python object sizes.  Every protocol computes ``wire_bytes`` from the
serialized sizes of its data structures (sketches, clocks, signatures...).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

# Fixed per-message envelope cost: UDP/IP-style header plus message type tag,
# matching how the paper's prototype (ipv8 over UDP) frames packets.
ENVELOPE_BYTES = 32

_message_counter = itertools.count()


@dataclass
class Message:
    """A typed, size-accounted message.

    ``msg_type`` routes to a handler on the receiving node; ``payload`` is
    protocol-specific; ``wire_bytes`` is the full on-wire cost including the
    envelope.  ``is_overhead`` distinguishes protocol overhead from raw
    transaction payload bytes: Fig. 9 "omit[s] the bandwidth overhead for
    sharing transactions, as it is the same for all protocols".
    """

    sender: Any
    recipient: Any
    msg_type: str
    payload: Any
    wire_bytes: int
    is_overhead: bool = True
    msg_id: int = field(default_factory=lambda: next(_message_counter))

    def __post_init__(self) -> None:
        if self.wire_bytes < 0:
            raise ValueError(f"negative wire_bytes: {self.wire_bytes}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.msg_type} {self.sender}->{self.recipient},"
            f" {self.wire_bytes}B)"
        )
