"""One-way delay models for simulated links.

The paper emulates latency with netem using WonderNetwork ping statistics
from 32 cities, assigning miners to cities round-robin (section 6.1).  That
dataset is not redistributable, so :class:`CityLatencyModel` builds a
synthetic 32-city matrix with the same structure: a handful of continental
clusters with small intra-cluster and large inter-cluster RTTs spanning the
~5-300 ms range of the real data (DESIGN.md section 3, substitutions).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

try:  # optional: vectorised batch lookups when numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback path
    _np = None


class LatencyModel:
    """Base class: maps (sender, recipient) to a one-way delay in seconds."""

    #: When ``True``, ``delay(sender, recipient)`` returns the same value
    #: on every call for a given ordered pair (it may draw randomness on
    #: the *first* call, but is fixed afterwards).  The network layer uses
    #: this to memoize delays per ordered pair on its hot send path.
    #: Models whose delay varies call-to-call must override this with
    #: ``False``.
    PAIR_STABLE = True

    #: When ``True``, ``delay`` is a cheap pure lookup (no RNG draw, no
    #: expensive math), so the network layer skips its per-ordered-pair
    #: memo dict entirely: at a 10,000-node overlay the memo would hold
    #: millions of tuple keys while saving nothing over the direct call.
    CHEAP_DELAY = False

    def delay(self, sender: int, recipient: int) -> float:
        """One-way delay for a message between two node indices."""
        raise NotImplementedError

    def delays_batch(self, sender: int, recipients: Sequence[int]) -> List[float]:
        """One-way delays from ``sender`` to every recipient, in order.

        The contract is byte-identity with the scalar path: element ``i``
        must equal ``delay(sender, recipients[i])`` exactly, so a batched
        fan-out schedules deliveries at the same timestamps as per-pair
        calls would.  Subclasses override this when they can vectorise;
        the default simply loops (preserving any first-call RNG draw
        order a stateful model relies on).
        """
        scalar = self.delay
        return [scalar(sender, recipient) for recipient in recipients]


class ConstantLatencyModel(LatencyModel):
    """Every message takes exactly ``delay_s`` seconds; handy in unit tests."""

    CHEAP_DELAY = True

    def __init__(self, delay_s: float = 0.05):
        if delay_s < 0:
            raise ValueError(f"negative delay: {delay_s}")
        self.delay_s = delay_s

    def delay(self, sender: int, recipient: int) -> float:
        return self.delay_s

    def delays_batch(self, sender: int, recipients: Sequence[int]) -> List[float]:
        return [self.delay_s] * len(recipients)


class UniformLatencyModel(LatencyModel):
    """Delays drawn uniformly per *unordered* pair, fixed after first use.

    The link is symmetric: ``delay(a, b) == delay(b, a)``, both directions
    sharing one draw keyed by ``(min, max)`` of the two node ids -- the
    same modelling choice as the symmetric city matrix of
    :class:`CityLatencyModel`.  The first query for a pair draws from
    ``rng``; every later query (either direction) returns the cached
    value.
    """

    def __init__(self, low_s: float, high_s: float, rng: random.Random):
        if not 0 <= low_s <= high_s:
            raise ValueError(f"invalid range [{low_s}, {high_s}]")
        self.low_s = low_s
        self.high_s = high_s
        self._rng = rng
        self._cache: Dict[Tuple[int, int], float] = {}

    def delay(self, sender: int, recipient: int) -> float:
        key = (min(sender, recipient), max(sender, recipient))
        if key not in self._cache:
            self._cache[key] = self._rng.uniform(self.low_s, self.high_s)
        return self._cache[key]


# Synthetic "32 cities" grouped into 6 regional clusters.  Coordinates are
# abstract positions on a latency plane; pairwise one-way delay is
# base + distance-proportional, matching the spread of WonderNetwork pings.
_CLUSTERS: Sequence[Tuple[str, float, float, int]] = (
    # (region, x, y, number of cities)
    ("north-america", 0.0, 0.0, 8),
    ("south-america", 20.0, -60.0, 4),
    ("europe", 80.0, 10.0, 8),
    ("africa", 90.0, -40.0, 3),
    ("asia", 150.0, 15.0, 6),
    ("oceania", 170.0, -45.0, 3),
)


def synthetic_city_table(jitter_rng: random.Random) -> List[Tuple[str, float, float]]:
    """Generate the synthetic 32-city table: (name, x, y) on the latency plane."""
    cities: List[Tuple[str, float, float]] = []
    for region, base_x, base_y, count in _CLUSTERS:
        for i in range(count):
            x = base_x + jitter_rng.uniform(-8.0, 8.0)
            y = base_y + jitter_rng.uniform(-8.0, 8.0)
            cities.append((f"{region}-{i}", x, y))
    return cities


class CityLatencyModel(LatencyModel):
    """Synthetic WonderNetwork-like model; nodes assigned to cities round-robin.

    One-way delay between cities = 2 ms base + 0.9 ms per distance unit +
    up to 10% pair-specific jitter, which yields ~4 ms same-city to ~170 ms
    antipodal one-way delays (8-340 ms RTT), matching the real dataset's
    range.

    Sized for paper-scale networks: the node-to-city assignment is pure
    round-robin arithmetic, so no per-node table is materialized for
    ``delay`` no matter how many nodes the network has (1,000 or 10,000
    alike) -- only the fixed 32x32 city matrix is precomputed, flattened
    row-major so a lookup is a single list index.

    Id handling: any non-negative id is assigned a city by ``id %
    num_cities``.  Overlay-external endpoints (light clients register
    with ids above the miner range) therefore get a stable city of their
    own instead of silently aliasing onto a miner's: the historical
    ``(id % num_nodes) % num_cities`` double-mod collapsed client
    ``1_000_000`` onto whatever miner ``1_000_000 % num_nodes`` happened
    to be.  Negative ids are always a caller bug and raise.
    """

    BASE_DELAY_S = 0.002
    PER_UNIT_S = 0.0009

    def __init__(self, num_nodes: int, rng: random.Random):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self._cities = synthetic_city_table(rng)
        self._num_nodes = num_nodes
        self._rng = rng
        n = len(self._cities)
        self._num_cities = n
        # Flattened row-major city->city delay matrix (32*32 floats).
        flat = [0.0] * (n * n)
        for a in range(n):
            for b in range(a, n):
                _, xa, ya = self._cities[a]
                _, xb, yb = self._cities[b]
                distance = ((xa - xb) ** 2 + (ya - yb) ** 2) ** 0.5
                delay = self.BASE_DELAY_S + self.PER_UNIT_S * distance
                delay *= 1.0 + rng.uniform(0.0, 0.10)
                flat[a * n + b] = delay
                flat[b * n + a] = delay
        self._city_delay_flat = flat
        # Same matrix as a numpy array (row-major), for batch lookups.
        self._city_delay_np = (
            _np.asarray(flat, dtype=_np.float64).reshape(n, n)
            if _np is not None else None
        )
        # Materialized lazily (only if a caller wants the per-node view).
        self._assignment_cache: Optional[List[int]] = None

    CHEAP_DELAY = True

    @property
    def _assignment(self) -> List[int]:
        """Lazily materialized per-node city assignment (round-robin)."""
        if self._assignment_cache is None:
            self._assignment_cache = [
                i % self._num_cities for i in range(self._num_nodes)
            ]
        return self._assignment_cache

    def _city_index(self, node: int) -> int:
        if node < 0:
            raise ValueError(f"negative node id: {node}")
        return node % self._num_cities

    def city_of(self, node: int) -> str:
        """Name of the city a node id is assigned to (round-robin)."""
        return self._cities[self._city_index(node)][0]

    def delay(self, sender: int, recipient: int) -> float:
        if sender < 0 or recipient < 0:
            raise ValueError(f"negative node id: ({sender}, {recipient})")
        n = self._num_cities
        return self._city_delay_flat[(sender % n) * n + recipient % n]

    def delays_batch(self, sender: int, recipients: Sequence[int]) -> List[float]:
        """Vectorised row lookup; byte-identical to per-pair ``delay``.

        With numpy installed the whole fan-out is one fancy-indexing read
        of the sender's matrix row; the float64 values are bit-for-bit
        the floats the scalar path returns, so batched scheduling lands
        deliveries on exactly the same timestamps.
        """
        if sender < 0:
            raise ValueError(f"negative node id: {sender}")
        n = self._num_cities
        if self._city_delay_np is not None and len(recipients) >= 4:
            idx = _np.asarray(recipients)
            if idx.size and int(idx.min()) < 0:
                raise ValueError(f"negative node id in batch: {recipients}")
            return self._city_delay_np[sender % n, idx % n].tolist()
        flat = self._city_delay_flat
        row = (sender % n) * n
        out = []
        for recipient in recipients:
            if recipient < 0:
                raise ValueError(f"negative node id: {recipient}")
            out.append(flat[row + recipient % n])
        return out
