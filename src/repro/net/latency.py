"""One-way delay models for simulated links.

The paper emulates latency with netem using WonderNetwork ping statistics
from 32 cities, assigning miners to cities round-robin (section 6.1).  That
dataset is not redistributable, so :class:`CityLatencyModel` builds a
synthetic 32-city matrix with the same structure: a handful of continental
clusters with small intra-cluster and large inter-cluster RTTs spanning the
~5-300 ms range of the real data (DESIGN.md section 3, substitutions).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple


class LatencyModel:
    """Base class: maps (sender, recipient) to a one-way delay in seconds."""

    #: When ``True``, ``delay(sender, recipient)`` returns the same value
    #: on every call for a given ordered pair (it may draw randomness on
    #: the *first* call, but is fixed afterwards).  The network layer uses
    #: this to memoize delays per ordered pair on its hot send path.
    #: Models whose delay varies call-to-call must override this with
    #: ``False``.
    PAIR_STABLE = True

    def delay(self, sender: int, recipient: int) -> float:
        """One-way delay for a message between two node indices."""
        raise NotImplementedError


class ConstantLatencyModel(LatencyModel):
    """Every message takes exactly ``delay_s`` seconds; handy in unit tests."""

    def __init__(self, delay_s: float = 0.05):
        if delay_s < 0:
            raise ValueError(f"negative delay: {delay_s}")
        self.delay_s = delay_s

    def delay(self, sender: int, recipient: int) -> float:
        return self.delay_s


class UniformLatencyModel(LatencyModel):
    """Delays drawn uniformly per *unordered* pair, fixed after first use.

    The link is symmetric: ``delay(a, b) == delay(b, a)``, both directions
    sharing one draw keyed by ``(min, max)`` of the two node ids -- the
    same modelling choice as the symmetric city matrix of
    :class:`CityLatencyModel`.  The first query for a pair draws from
    ``rng``; every later query (either direction) returns the cached
    value.
    """

    def __init__(self, low_s: float, high_s: float, rng: random.Random):
        if not 0 <= low_s <= high_s:
            raise ValueError(f"invalid range [{low_s}, {high_s}]")
        self.low_s = low_s
        self.high_s = high_s
        self._rng = rng
        self._cache: Dict[Tuple[int, int], float] = {}

    def delay(self, sender: int, recipient: int) -> float:
        key = (min(sender, recipient), max(sender, recipient))
        if key not in self._cache:
            self._cache[key] = self._rng.uniform(self.low_s, self.high_s)
        return self._cache[key]


# Synthetic "32 cities" grouped into 6 regional clusters.  Coordinates are
# abstract positions on a latency plane; pairwise one-way delay is
# base + distance-proportional, matching the spread of WonderNetwork pings.
_CLUSTERS: Sequence[Tuple[str, float, float, int]] = (
    # (region, x, y, number of cities)
    ("north-america", 0.0, 0.0, 8),
    ("south-america", 20.0, -60.0, 4),
    ("europe", 80.0, 10.0, 8),
    ("africa", 90.0, -40.0, 3),
    ("asia", 150.0, 15.0, 6),
    ("oceania", 170.0, -45.0, 3),
)


def synthetic_city_table(jitter_rng: random.Random) -> List[Tuple[str, float, float]]:
    """Generate the synthetic 32-city table: (name, x, y) on the latency plane."""
    cities: List[Tuple[str, float, float]] = []
    for region, base_x, base_y, count in _CLUSTERS:
        for i in range(count):
            x = base_x + jitter_rng.uniform(-8.0, 8.0)
            y = base_y + jitter_rng.uniform(-8.0, 8.0)
            cities.append((f"{region}-{i}", x, y))
    return cities


class CityLatencyModel(LatencyModel):
    """Synthetic WonderNetwork-like model; nodes assigned to cities round-robin.

    One-way delay between cities = 2 ms base + 0.9 ms per distance unit +
    up to 10% pair-specific jitter, which yields ~4 ms same-city to ~170 ms
    antipodal one-way delays (8-340 ms RTT), matching the real dataset's
    range.

    Sized for paper-scale networks: the node-to-city assignment is pure
    round-robin arithmetic, so no per-node table is materialized for
    ``delay`` no matter how many nodes the network has (1,000 or 10,000
    alike) -- only the fixed 32x32 city matrix is precomputed, flattened
    row-major so a lookup is a single list index.
    """

    BASE_DELAY_S = 0.002
    PER_UNIT_S = 0.0009

    def __init__(self, num_nodes: int, rng: random.Random):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self._cities = synthetic_city_table(rng)
        self._num_nodes = num_nodes
        self._rng = rng
        n = len(self._cities)
        self._num_cities = n
        # Flattened row-major city->city delay matrix (32*32 floats).
        flat = [0.0] * (n * n)
        for a in range(n):
            for b in range(a, n):
                _, xa, ya = self._cities[a]
                _, xb, yb = self._cities[b]
                distance = ((xa - xb) ** 2 + (ya - yb) ** 2) ** 0.5
                delay = self.BASE_DELAY_S + self.PER_UNIT_S * distance
                delay *= 1.0 + rng.uniform(0.0, 0.10)
                flat[a * n + b] = delay
                flat[b * n + a] = delay
        self._city_delay_flat = flat
        # Materialized lazily (only if a caller wants the per-node view).
        self._assignment_cache: Optional[List[int]] = None

    @property
    def _assignment(self) -> List[int]:
        """Lazily materialized per-node city assignment (round-robin)."""
        if self._assignment_cache is None:
            self._assignment_cache = [
                i % self._num_cities for i in range(self._num_nodes)
            ]
        return self._assignment_cache

    def city_of(self, node: int) -> str:
        """Name of the city a node index is assigned to."""
        return self._cities[(node % self._num_nodes) % self._num_cities][0]

    def delay(self, sender: int, recipient: int) -> float:
        n = self._num_cities
        ca = (sender % self._num_nodes) % n
        cb = (recipient % self._num_nodes) % n
        return self._city_delay_flat[ca * n + cb]
