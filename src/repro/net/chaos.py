"""Seeded chaos engineering for the simulated network.

The paper's fault model (section 3.1) lets faulty nodes drop or delay
traffic arbitrarily; real deployments additionally see duplicated UDP
datagrams, reordering, bit-flipped payloads and whole-process crashes.
This module injects all of those *deterministically* so that robustness
runs are reproducible bit-for-bit from a seed:

* :class:`ChaosPlan` -- a declarative description of the faults: per-link
  probabilistic drop / duplication / delay jitter (reordering) / payload
  corruption rates plus scripted :class:`CrashWindow` schedules.
* :class:`ChaosInjector` -- the :meth:`repro.net.network.Network.set_fault_injector`
  implementation that turns one logical send into zero or more deliveries.
* :class:`ChaosController` -- schedules the crash windows on the event
  loop, crashing nodes at the network layer and restarting them (session
  rebuild, fresh sync phase) on recovery.
* :func:`corrupt_payload` -- structured payload mangling used both by the
  injector and by the ingress fuzz tests.

Determinism: every per-message decision consumes a fixed number of draws
from one ``random.Random(plan.seed)`` stream, and messages reach the
injector in event-loop order, which is itself deterministic.  Two runs of
the same seeded simulation with the same plan therefore produce identical
fault sequences.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.loop import EventLoop


@dataclass(frozen=True)
class CrashWindow:
    """One scripted crash: offline at ``crash_at``, back at ``recover_at``."""

    node_id: int
    crash_at: float
    recover_at: float

    def __post_init__(self) -> None:
        if self.crash_at < 0:
            raise ValueError(f"crash_at must be >= 0, got {self.crash_at}")
        if self.recover_at <= self.crash_at:
            raise ValueError(
                f"recover_at ({self.recover_at}) must be after"
                f" crash_at ({self.crash_at})"
            )


@dataclass(frozen=True)
class ChaosPlan:
    """Declarative fault schedule; all rates are per-message probabilities.

    ``max_jitter_s`` bounds the extra delivery delay drawn (uniformly) for
    messages selected by ``reorder_rate``; a jittered message can overtake
    or fall behind its neighbours, which is exactly network reordering.
    ``protected_types`` lists message types never corrupted (drop / dup /
    jitter still apply) -- useful to keep a control channel readable.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    max_jitter_s: float = 0.5
    corrupt_rate: float = 0.0
    crash_windows: Tuple[CrashWindow, ...] = ()
    protected_types: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.max_jitter_s < 0:
            raise ValueError(f"max_jitter_s must be >= 0, got {self.max_jitter_s}")

    def crashed_ids(self) -> Tuple[int, ...]:
        """Distinct node ids with at least one scripted crash window."""
        return tuple(sorted({w.node_id for w in self.crash_windows}))


# --------------------------------------------------------------------------
# Payload corruption
# --------------------------------------------------------------------------

_GARBAGE: Tuple[Callable[[random.Random], Any], ...] = (
    lambda rng: None,
    lambda rng: rng.getrandbits(32),
    lambda rng: -rng.getrandbits(16),
    lambda rng: bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 24))),
    lambda rng: "".join(chr(rng.randrange(33, 127)) for _ in range(8)),
    lambda rng: {"junk": rng.getrandbits(8)},
    lambda rng: (rng.getrandbits(8),) * rng.randrange(0, 4),
    lambda rng: float("nan"),
    lambda rng: [],
)


def _garbage_value(rng: random.Random) -> Any:
    return rng.choice(_GARBAGE)(rng)


def corrupt_payload(payload: Any, rng: random.Random) -> Any:
    """Return a structurally corrupted variant of ``payload``.

    Half the time the whole object is replaced with typed garbage (type
    confusion); otherwise, for dataclass payloads, one random field is
    swapped for garbage (field-level corruption), falling back to whole-
    object replacement when the dataclass rejects the mutation.
    """
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        if rng.random() < 0.5:
            fields = dataclasses.fields(payload)
            if fields:
                target = rng.choice(fields).name
                try:
                    return dataclasses.replace(
                        payload, **{target: _garbage_value(rng)}
                    )
                except Exception:
                    pass  # validating constructors refuse; fall through
        return _garbage_value(rng)
    if isinstance(payload, tuple) and payload:
        index = rng.randrange(len(payload))
        return payload[:index] + (_garbage_value(rng),) + payload[index + 1:]
    return _garbage_value(rng)


# --------------------------------------------------------------------------
# The injector
# --------------------------------------------------------------------------


@dataclass
class ChaosCounters:
    """What the injector actually did (drops are also in the network's)."""

    examined: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    corrupted: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Counter snapshot as a plain dict (for assertions and reports)."""
        return dataclasses.asdict(self)


class ChaosInjector:
    """Per-message fault decisions, deterministic from the plan's seed.

    Install with ``network.set_fault_injector(injector)``.  Every message
    consumes the same number of RNG draws regardless of which faults fire,
    so editing one rate does not shift the decisions made for later
    messages of an otherwise identical run.
    """

    def __init__(self, plan: ChaosPlan, rng: Optional[random.Random] = None,
                 clock: Optional[EventLoop] = None):
        self.plan = plan
        self.rng = rng or random.Random(plan.seed)
        # Corruption draws a variable number of values, so it gets its own
        # stream: the decision stream stays at exactly five draws per
        # message no matter which faults fire.
        self._corrupt_rng = random.Random((plan.seed << 1) ^ 0x9E3779B9)
        self.counters = ChaosCounters()
        # Optional event-loop handle so fault events carry simulated time
        # in traces; without one they are stamped t=0.0 (standalone use).
        self.clock = clock

    def _trace_fault(self, kind: str, message: Message) -> None:
        _t = obs.TRACER
        if _t.enabled:
            _t.event(
                f"chaos.{kind}",
                t=self.clock.now if self.clock is not None else 0.0,
                node_id=message.recipient,
                msg_type=message.msg_type,
                sender=message.sender,
                recipient=message.recipient,
            )

    def __call__(
        self, message: Message, delay: float
    ) -> List[Tuple[float, Message]]:
        plan, rng = self.plan, self.rng
        self.counters.examined += 1
        # Fixed draw order: drop, duplicate, jitter, corrupt.
        drop = rng.random() < plan.drop_rate
        duplicate = rng.random() < plan.duplicate_rate
        jitter = rng.uniform(0.0, plan.max_jitter_s)
        reorder = rng.random() < plan.reorder_rate
        corrupt = rng.random() < plan.corrupt_rate
        if drop:
            self.counters.dropped += 1
            self._trace_fault("drop", message)
            return []
        if corrupt and message.msg_type not in plan.protected_types:
            self.counters.corrupted += 1
            self._trace_fault("corrupt", message)
            message = Message(
                sender=message.sender,
                recipient=message.recipient,
                msg_type=message.msg_type,
                payload=corrupt_payload(message.payload, self._corrupt_rng),
                wire_bytes=message.wire_bytes,
                is_overhead=message.is_overhead,
            )
        if reorder:
            self.counters.reordered += 1
            self._trace_fault("reorder", message)
            delay += jitter
        deliveries = [(delay, message)]
        if duplicate:
            self.counters.duplicated += 1
            self._trace_fault("duplicate", message)
            deliveries.append((delay + jitter + 1e-6, message))
        return deliveries


# --------------------------------------------------------------------------
# Crash / recover scheduling
# --------------------------------------------------------------------------


class ChaosController:
    """Runs a plan against a live simulation.

    ``halt`` is invoked with the node id when its crash window opens (the
    process dies: periodic timers should stop); ``restart`` when the
    window closes, *after* the network marks it reachable again.  The LO
    harness passes callbacks that stop the node and rebuild its volatile
    session state (:meth:`repro.core.node.LONode.restart`).
    """

    def __init__(
        self,
        loop: EventLoop,
        network: Network,
        plan: ChaosPlan,
        halt: Optional[Callable[[int], None]] = None,
        restart: Optional[Callable[[int], None]] = None,
    ):
        self.loop = loop
        self.network = network
        self.plan = plan
        self.halt = halt
        self.restart = restart
        self.injector = ChaosInjector(plan, clock=loop)
        self._installed = False

    def install(self) -> "ChaosController":
        """Attach the injector and schedule every crash window; idempotent."""
        if self._installed:
            return self
        self._installed = True
        self.network.set_fault_injector(self.injector)
        for window in self.plan.crash_windows:
            self.loop.call_at(window.crash_at, self._crash, window.node_id)
            self.loop.call_at(window.recover_at, self._recover, window.node_id)
        return self

    def uninstall(self) -> None:
        """Detach the injector (scheduled crash windows still run)."""
        self.network.set_fault_injector(None)
        self._installed = False

    def _crash(self, node_id: int) -> None:
        _t = obs.TRACER
        if _t.enabled:
            _t.event("chaos.crash", t=self.loop.now, node_id=node_id)
        self.network.crash(node_id)
        if self.halt is not None:
            self.halt(node_id)

    def _recover(self, node_id: int) -> None:
        _t = obs.TRACER
        if _t.enabled:
            _t.event("chaos.recover", t=self.loop.now, node_id=node_id)
        self.network.recover(node_id)
        if self.restart is not None:
            self.restart(node_id)
