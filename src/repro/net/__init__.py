"""Simulated message-passing network (substitutes the paper's testbed).

The paper runs 10,000 Python processes on a cluster with netem-emulated
latencies from the WonderNetwork 32-city ping dataset.  We substitute an
in-process network: nodes attached to a :class:`Network` exchange messages
over :class:`Link`-modelled connections whose one-way delays come from a
pluggable :class:`LatencyModel`.  Per-node byte counters feed the bandwidth
experiments (Fig. 9).

Topology follows the evaluation setup (section 6.1): every node keeps eight
outgoing connections and accepts at most 125 incoming ones, the default
Bitcoin parameters.
"""

from repro.net.chaos import (
    ChaosController,
    ChaosInjector,
    ChaosPlan,
    CrashWindow,
    corrupt_payload,
)
from repro.net.latency import (
    CityLatencyModel,
    ConstantLatencyModel,
    LatencyModel,
    UniformLatencyModel,
)
from repro.net.message import Message
from repro.net.network import Endpoint, Network, NodeId
from repro.net.topology import TopologyBuilder, TopologyError

__all__ = [
    "ChaosController",
    "ChaosInjector",
    "ChaosPlan",
    "CityLatencyModel",
    "ConstantLatencyModel",
    "CrashWindow",
    "Endpoint",
    "corrupt_payload",
    "LatencyModel",
    "Message",
    "Network",
    "NodeId",
    "TopologyBuilder",
    "TopologyError",
    "UniformLatencyModel",
]
