"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro run   --nodes 40 --rate 10 --duration 20 --blocks
    python -m repro fig6  --nodes 50 --fractions 0.1 0.2 0.3
    python -m repro fig7  --nodes 80 --rate 20
    python -m repro fig8  --nodes 40 --sizes 20 40 60
    python -m repro fig9  --nodes 60
    python -m repro fig10 --workloads 60 180 420
    python -m repro memory --workloads 120 600
    python -m repro cpu   --difference 128
    python -m repro fig6  --nodes 20 --fractions 0.2 --trace t.jsonl
    python -m repro fig6  --nodes 50 --fractions 0.1 0.2 0.3 --workers 3
    python -m repro sweep fig6_point --param malicious_fraction=0.1,0.2 \
        --param num_nodes=20 --repetitions 4 --workers 4 --out-dir sweep-out
    python -m repro report t.jsonl

Every experiment subcommand accepts ``--json PATH`` to dump the raw
result object, ``--workers N`` to parallelise its internal sweep across
worker processes (results are identical to the serial run; see
``docs/parallelism.md``), and ``--trace PATH`` to write a deterministic
``repro.trace/1`` JSONL trace (``--trace-chrome PATH`` adds a
Perfetto-loadable Chrome trace); ``report`` summarises a trace; ``sweep``
fans an (experiment x seed x grid) task matrix across a process pool with
crash containment and a deterministic merge.
"""

from __future__ import annotations

import argparse
import statistics
import sys
from typing import List, Optional

from repro.metrics.reporting import format_table, write_json


def _add_common(parser: argparse.ArgumentParser, sweeps: bool = True) -> None:
    if sweeps:
        help_text = ("worker processes for the verb's internal sweep"
                     " (1 = serial; results are identical either way)")
    else:
        help_text = ("accepted for interface uniformity; this verb runs a"
                     " single simulation, so extra workers are not used")
    parser.add_argument("--workers", type=int, default=1, help=help_text)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--json", type=str, default=None,
                        help="write the raw result object to this file")
    parser.add_argument("--trace", type=str, default=None, metavar="PATH",
                        help="write a repro.trace/1 JSONL trace of the run")
    parser.add_argument("--trace-chrome", type=str, default=None,
                        metavar="PATH",
                        help="also write a Chrome/Perfetto trace-event JSON")
    parser.add_argument("--trace-sample", type=int, default=1, metavar="N",
                        help="keep every Nth per-message network trace event"
                             " (per message type; other records are never"
                             " sampled)")
    parser.add_argument("--trace-snapshot-s", type=float, default=1.0,
                        help="metrics snapshot interval in simulated seconds")


def _emit(result, args, label: str) -> None:
    if args.json:
        with open(args.json, "w", encoding="utf-8") as stream:
            write_json(result, stream, label=label)
        print(f"[json written to {args.json}]")


# ---------------------------------------------------------------- commands


def cmd_run(args) -> int:
    from repro.core.config import LOConfig
    from repro.experiments.harness import LOSimulation, SimulationParams

    config = LOConfig()
    if args.admission:
        from repro.mempool.admission import AdmissionConfig

        config = LOConfig(admission=AdmissionConfig())
    sim = LOSimulation(
        SimulationParams(
            num_nodes=args.nodes,
            seed=args.seed,
            config=config,
            enable_blocks=args.blocks,
        )
    )
    if args.workload == "node":
        count = sim.inject_workload(rate_per_s=args.rate,
                                    duration_s=args.duration)
    else:
        count = sim.inject_open_loop(
            rate_per_s=args.rate,
            duration_s=args.duration,
            arrivals="bursty" if args.workload == "bursty" else "poisson",
            hot_fraction=args.hot_fraction,
            scale=args.scale,
            rbf_fraction=args.rbf_fraction,
        )
    horizon = args.duration + args.drain
    steady_outcome = None
    if args.until_steady:
        from repro import obs

        monitor = obs.SteadyStateMonitor(
            obs.TIMELINE,
            series=args.steady_series or None,
            window_bins=args.steady_window,
            rel_tol=args.steady_rel_tol,
        )
        steady_outcome = sim.run_until_steady(horizon, monitor=monitor)
    else:
        sim.run(horizon)
    sim.finalize_telemetry()
    latencies = sim.mempool_tracker.all_latencies()
    admission = sim.admission_breakdown()
    rows = [
        ("nodes", args.nodes),
        ("transactions", count),
        ("mean mempool latency (s)",
         f"{statistics.mean(latencies):.2f}" if latencies else "n/a"),
        ("chain height", sim.nodes[0].ledger.height if args.blocks else "off"),
        ("overhead (MB)", f"{sim.total_overhead_bytes() / 1e6:.2f}"),
        ("exposures", sum(len(n.acct.exposed) for n in sim.nodes.values())),
    ]
    if admission:
        from repro.mempool.admission import REJECT_REASONS

        rejected = sum(admission.get(r, 0) for r in REJECT_REASONS)
        rows.append(("admitted", admission.get("accepted", 0)
                     + admission.get("replaced", 0)))
        rows.append(("admission rejects", rejected))
        rows.append(("drained", admission.get("drained", 0)))
    if steady_outcome is not None:
        rows.append(("steady", "yes" if steady_outcome["steady"] else "no"))
        rows.append(("stopped at (s)",
                     f"{steady_outcome['t']:.2f} of"
                     f" {steady_outcome['horizon']:.2f}"))
    print(format_table(("metric", "value"), rows))
    result = {
        "nodes": args.nodes,
        "transactions": count,
        "mean_mempool_latency_s": statistics.mean(latencies) if latencies else None,
        "chain_height": sim.nodes[0].ledger.height if args.blocks else None,
        "overhead_bytes": sim.total_overhead_bytes(),
        "exposures": sum(len(n.acct.exposed) for n in sim.nodes.values()),
        "drop_breakdown": sim.drop_breakdown(),
        "admission_breakdown": admission,
        "wire_violation_totals": sim.wire_violation_totals(),
        "metrics": sim.metrics_snapshot(),
    }
    if steady_outcome is not None:
        result["steady"] = steady_outcome
    profiler = getattr(args, "_profiler", None)
    if profiler is not None:
        result["phases"] = profiler.as_dict()
    _emit(result, args, "run")
    return 0


def cmd_fig6(args) -> int:
    from repro.experiments.fig6_detection import run_fig6

    result = run_fig6(num_nodes=args.nodes, fractions=args.fractions,
                      seed=args.seed, workers=args.workers)
    rows = [
        (
            f"{p.malicious_fraction:.0%}",
            p.num_malicious,
            _s(p.suspicion_convergence_at),
            _s(p.exposure_convergence_at),
            _s(p.exposure_spread_s),
        )
        for p in result.points
    ]
    print(format_table(
        ("malicious", "count", "suspicion_s", "exposure_s", "spread_s"), rows
    ))
    _emit(result, args, "fig6")
    return 0


def cmd_fig7(args) -> int:
    from repro.experiments.fig7_mempool_latency import run_fig7

    result = run_fig7(num_nodes=args.nodes, tx_rate_per_s=args.rate,
                      workload_duration_s=args.duration, seed=args.seed,
                      repetitions=args.repetitions, workers=args.workers)
    rows = [(k, f"{v:.3f}") for k, v in result.summary.items()]
    print(format_table(("metric", "value"), rows))
    _emit(result, args, "fig7")
    return 0


def cmd_fig8(args) -> int:
    from repro.experiments.fig8_block_latency import run_fig8

    result = run_fig8(num_nodes=args.nodes, size_sweep=args.sizes,
                      tx_rate_per_s=args.rate,
                      workload_duration_s=args.duration, seed=args.seed,
                      workers=args.workers)
    rows = []
    for policy in (result.fifo, result.highest_fee):
        s = policy.summary
        rows.append((policy.policy, f"{s['mean']:.2f}", f"{s['p50']:.2f}",
                     f"{s['p90']:.2f}", f"{s['p99']:.2f}", f"{s['std']:.2f}"))
    print(format_table(("policy", "mean", "p50", "p90", "p99", "std"), rows))
    if result.size_sweep:
        print()
        print(format_table(
            ("nodes", "fifo_mean_s"),
            [(n, f"{s['mean']:.2f}") for n, s in sorted(result.size_sweep.items())],
        ))
    _emit(result, args, "fig8")
    return 0


def cmd_fig9(args) -> int:
    from repro.experiments.fig9_bandwidth import run_fig9

    result = run_fig9(num_nodes=args.nodes, tx_rate_per_s=args.rate,
                      workload_duration_s=args.duration, seed=args.seed,
                      workers=args.workers)
    rows = [
        (r.protocol, f"{r.overhead_bytes / 1e6:.2f}",
         f"{r.ratio_vs_lo:.1f}x", f"{r.mean_latency_s:.2f}")
        for r in result.rows
    ]
    print(format_table(("protocol", "overhead_MB", "vs_LO", "latency_s"), rows))
    _emit(result, args, "fig9")
    return 0


def cmd_fig10(args) -> int:
    from repro.experiments.fig10_reconciliations import run_fig10

    result = run_fig10(workloads_tx_per_minute=args.workloads,
                       num_nodes=args.nodes, duration_s=args.duration,
                       seed=args.seed, workers=args.workers)
    rows = [
        (f"{p.tx_per_minute:.0f}",
         f"{p.reconciliations_per_node_per_min:.1f}",
         f"{p.failure_fraction:.1%}")
        for p in result.points
    ]
    print(format_table(("tx/min", "recon/node/min", "failure_frac"), rows))
    _emit(result, args, "fig10")
    return 0


def cmd_memory(args) -> int:
    from repro.experiments.sec65_memory import run_memory_sweep

    result = run_memory_sweep(workloads_tx_per_minute=args.workloads,
                              num_nodes=args.nodes,
                              duration_s=args.duration, seed=args.seed,
                              workers=args.workers)
    rows = [
        (f"{p.tx_per_minute:.0f}", f"{p.avg_commitment_bytes:.0f}",
         f"{p.extrapolated_10k_nodes_mb:.1f}")
        for p in result.points
    ]
    print(format_table(("tx/min", "avg_commitment_B", "10k_nodes_MB"), rows))
    _emit(result, args, "memory")
    return 0


def cmd_cpu(args) -> int:
    from repro.experiments.sec65_cpu import run_cpu_comparison, run_cpu_sweep

    if args.differences:
        result = run_cpu_sweep(args.differences,
                               partition_capacity=args.capacity,
                               seed=args.seed, workers=args.workers)
        points = result.points
    else:
        result = run_cpu_comparison(difference=args.difference,
                                    partition_capacity=args.capacity,
                                    seed=args.seed)
        points = [result]
    rows = [(p.difference, f"{p.naive_seconds:.3f}",
             f"{p.partitioned_seconds:.3f}", f"{p.speedup:.1f}x")
            for p in points]
    print(format_table(
        ("difference", "naive_s", "partitioned_s", "speedup"), rows
    ))
    _emit(result, args, "cpu")
    return 0


def cmd_bench(args) -> int:
    from repro.bench import run_suites

    suites = None if args.suite == "all" else [args.suite]
    payloads = run_suites(suites, quick=args.quick, seed=args.seed,
                          out_dir=args.out_dir, profile=args.profile,
                          profile_top=args.profile_top, phases=args.phases)
    for name, payload in payloads.items():
        rows = [
            (r["name"], r["iterations"],
             f"{r['seconds_per_op'] * 1e6:.1f}",
             f"{r['ops_per_second']:.0f}")
            for r in payload["results"]
        ]
        print(f"suite: {name}  (fast_path={payload['fast_path']})")
        print(format_table(("case", "iters", "us_per_op", "ops_per_s"), rows))
        if payload["derived"]:
            print()
            print(format_table(
                ("derived", "value"),
                [(k, f"{v:.2f}") for k, v in sorted(payload["derived"].items())],
            ))
        if payload.get("phases"):
            print()
            print(format_table(
                ("phase", "calls", "self_s", "incl_s", "self_frac"),
                [(p, d["calls"], f"{d['self_s']:.4f}", f"{d['incl_s']:.4f}",
                  f"{d['self_fraction']:.1%}")
                 for p, d in payload["phases"].items()],
            ))
        print(f"[json written to {payload['path']}]")
        if "profile_path" in payload:
            print(f"[profile written to {payload['profile_path']}]")
        print()
    return 0


def _parse_param_value(text: str):
    """Best-effort scalar literal parsing for ``--param`` grid values."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    return text


def _parse_grid(params: List[str]):
    """``["nodes=10,20", "rate=5.0"]`` -> ``{"nodes": [10, 20], ...}``."""
    grid = {}
    for item in params:
        name, eq, values = item.partition("=")
        if not eq or not name or not values:
            raise SystemExit(
                f"--param must look like name=v1,v2,... (got {item!r})"
            )
        grid[name] = [_parse_param_value(v) for v in values.split(",")]
    return grid


def cmd_sweep(args) -> int:
    from repro.exec import derive_tasks, experiment_names, run_sweep

    if args.experiment not in experiment_names():
        print(f"unknown experiment {args.experiment!r};"
              f" have {experiment_names()}", file=sys.stderr)
        return 2
    if args.task_traces and not args.out_dir:
        print("--task-traces requires --out-dir", file=sys.stderr)
        return 2
    if args.resume and not args.spool:
        print("--resume requires --spool DIR", file=sys.stderr)
        return 2
    grid = _parse_grid(args.param or [])
    tasks = derive_tasks(args.experiment, grid, base_seed=args.seed,
                         repetitions=args.repetitions)
    trace_dir = args.out_dir if args.task_traces else None
    if args.spool:
        from repro.exec import SpoolConfig, SpoolError, run_spool_sweep

        config = SpoolConfig(
            heartbeat_s=args.heartbeat,
            lease_timeout_s=args.lease_timeout,
            max_attempts=args.max_attempts,
        )
        try:
            outcome = run_spool_sweep(
                args.spool, tasks, workers=args.workers, config=config,
                resume=args.resume, timeout_s=args.timeout,
                trace_dir=trace_dir,
                meta={"experiment": args.experiment, "grid": grid,
                      "base_seed": args.seed,
                      "repetitions": args.repetitions},
            )
        except SpoolError as exc:
            print(f"spool error: {exc}", file=sys.stderr)
            return 2
    else:
        outcome = run_sweep(
            tasks, workers=args.workers, timeout_s=args.timeout,
            retries=args.retries, trace_dir=trace_dir,
        )
    rows = [
        (o.task.index, o.task.seed, o.task.repetition,
         " ".join(f"{k}={v}" for k, v in sorted(o.task.params.items())) or "-",
         "ok" if o.ok else ("PARK" if o.parked else "FAIL"),
         f"{o.seconds:.2f}", o.attempts)
        for o in outcome.outcomes
    ]
    print(format_table(
        ("task", "seed", "rep", "params", "status", "task_s", "tries"), rows
    ))
    print(f"[{len(tasks)} tasks, {args.workers} worker(s),"
          f" wall {outcome.wall_seconds:.2f}s,"
          f" {len(outcome.failed())} failed"
          + (f", {outcome.pool_rebuilds} pool rebuild(s)"
             if outcome.pool_rebuilds else "") + "]")
    if outcome.spool is not None:
        s = outcome.spool
        print(f"[spool {args.spool}: {s['completed']}/{s['tasks_total']}"
              f" completed, {s['attempts']} attempt(s),"
              f" {s['reclaims']} reclaim(s), {s['parked']} parked,"
              f" {s.get('worker_restarts', 0)} worker restart(s)]")
    for parked in outcome.parked():
        print(f"  task {parked.task.index} PARKED: {parked.error}",
              file=sys.stderr)
    for failed in outcome.failed():
        if not failed.parked:
            print(f"  task {failed.task.index} failed: {failed.error}",
                  file=sys.stderr)

    if args.out_dir:
        paths = outcome.write_run_dir(args.out_dir)
        print(f"[run directory {args.out_dir}: sweep.json, execution.json"
              + (", task-*.trace.jsonl" if trace_dir else "") + "]")
        del paths
    if args.json:
        with open(args.json, "wb") as stream:
            stream.write(outcome.results_bytes())
        print(f"[json written to {args.json}]")

    code = 1 if outcome.failed() and args.strict else 0
    if args.check_serial:
        import tempfile

        # Tracing perturbs the event count a simulation reports (metric
        # snapshots are loop events), so the serial reference must run
        # with the same tracing configuration -- its artifacts go to a
        # throwaway directory rather than clobbering the run dir's.
        with tempfile.TemporaryDirectory() as scratch:
            serial = run_sweep(
                tasks, workers=1, timeout_s=args.timeout,
                trace_dir=scratch if trace_dir else None,
            )
        identical = serial.results_bytes() == outcome.results_bytes()
        speedup = (serial.wall_seconds / outcome.wall_seconds
                   if outcome.wall_seconds > 0 else 0.0)
        print(f"[serial check: wall {serial.wall_seconds:.2f}s vs"
              f" {outcome.wall_seconds:.2f}s parallel;"
              f" speedup {speedup:.2f}x;"
              f" results {'identical' if identical else 'DIFFER'}]")
        if not identical:
            print("serial and parallel sweep results differ", file=sys.stderr)
            code = 1
        if args.min_speedup and speedup < args.min_speedup:
            print(f"speedup {speedup:.2f}x below required"
                  f" {args.min_speedup:.2f}x", file=sys.stderr)
            code = 1
    return code


def _print_timeline_table(records) -> None:
    """Render ``timeline`` records as one sparkline table."""
    from repro.obs.report import timeline_rows

    rows = timeline_rows(records)
    if not rows:
        print("no timeline series recorded")
        return
    print(f"timeline series ({len(rows)})")
    print(format_table(
        ("series", "kind", "bins", "bin_s", "total/last", "spark"),
        rows,
    ))


def _first_schema(path: str) -> Optional[str]:
    """The ``schema`` tag of a JSONL file's first line, if any."""
    import json

    try:
        with open(path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if isinstance(record, dict):
                    return record.get("schema")
                return None
    except (OSError, ValueError):
        return None
    return None


def cmd_report(args) -> int:
    from repro.obs.report import (
        cache_rows,
        event_counts,
        fault_detection_rows,
        final_metrics,
        load_trace,
        span_rows,
    )
    from repro.obs.schema import validate_trace_file
    from repro.obs.timeline import TIMELINE_SCHEMA, load_timeline

    if _first_schema(args.trace) == TIMELINE_SCHEMA:
        # Standalone timeline export (run --timeline): validate and render
        # the sparkline table -- there are no spans/events to summarise.
        from repro.obs.timeline import validate_timeline_lines

        with open(args.trace, "r", encoding="utf-8") as stream:
            errors = validate_timeline_lines(stream)
        if errors:
            for error in errors[:20]:
                print(error, file=sys.stderr)
            print(f"[{len(errors)} schema error(s) in {args.trace}]",
                  file=sys.stderr)
            return 1
        meta, timeline_records = load_timeline(args.trace)
        print(f"timeline: {args.trace}  (schema {TIMELINE_SCHEMA},"
              f" {len(timeline_records)} series)")
        if meta:
            print(format_table(
                ("meta", "value"), sorted((k, v) for k, v in meta.items())
            ))
        print()
        _print_timeline_table(timeline_records)
        return 0

    errors = validate_trace_file(args.trace)
    if errors:
        for error in errors[:20]:
            print(error, file=sys.stderr)
        print(f"[{len(errors)} schema error(s) in {args.trace}]",
              file=sys.stderr)
        return 1
    meta, records = load_trace(args.trace)
    print(f"trace: {args.trace}  (schema repro.trace/1,"
          f" {len(records)} records)")
    if meta:
        print(format_table(
            ("meta", "value"), sorted((k, v) for k, v in meta.items())
        ))
    print()

    headers = ("span", "node", "count", "total_s", "mean_s", "max_s")
    aggregate = span_rows(records, per_node=False)
    if aggregate:
        print("span durations (all nodes)")
        print(format_table(headers, aggregate))
        print()
    else:
        print("no spans recorded")
        print()
    per_node = span_rows(records, per_node=True)
    if per_node:
        shown = per_node[: args.limit]
        print(f"span durations per node"
              f" ({len(shown)} of {len(per_node)} rows)")
        print(format_table(headers, shown))
        print()

    counts = event_counts(records)
    if counts:
        print("events")
        print(format_table(("event", "count"), counts))
        print()
    else:
        print("no events recorded")
        print()

    faults = fault_detection_rows(records)
    if faults:
        print("fault -> detection latency")
        print(format_table(
            ("node", "fault", "fault_t", "suspicion_t", "exposure_t",
             "latency_s"),
            [(n, k, t, _s(s), _s(e), _s(l)) for n, k, t, s, e, l in faults],
        ))
        print()
    else:
        print("no faults recorded (no chaos crashes, equivocations or"
              " block-policy violations in this trace)")
        print()

    if args.timeline:
        _print_timeline_table(
            [r for r in records if r.get("type") == "timeline"]
        )
        print()

    metrics = final_metrics(records)
    if metrics is None:
        print("no metrics snapshots recorded")
    else:
        caches = cache_rows(metrics)
        if caches:
            print(f"cache effectiveness (t={metrics['t']:.2f}s)")
            print(format_table(("cache counter", "value"), caches))
            print()
        counters = [
            (name, value)
            for name, value in sorted(metrics.get("counters", {}).items())
            if not name.startswith("caches.")
        ]
        if counters:
            print(f"final counters (t={metrics['t']:.2f}s)")
            print(format_table(("counter", "value"), counters))
    return 0


def cmd_watch(args) -> int:
    import time as wall_time

    from repro.obs.live import (
        detect_watch_target,
        read_telemetry,
        spool_is_finished,
        spool_watch_rows,
        telemetry_is_finished,
        telemetry_rows,
    )

    while True:
        kind = detect_watch_target(args.target)
        done = False
        if kind == "spool":
            from repro.exec.spool import spool_status

            status = spool_status(args.target)
            rows = spool_watch_rows(status)
            done = spool_is_finished(status)
        elif kind == "telemetry":
            doc = read_telemetry(args.target)
            if doc is None:
                rows = [("status", "telemetry file not readable yet")]
            else:
                rows = telemetry_rows(doc)
                done = telemetry_is_finished(doc)
        else:
            if args.once:
                print(f"{args.target}: no telemetry.json or spool"
                      " manifest.json found", file=sys.stderr)
                return 2
            rows = [("status", "waiting for target to appear")]
        print(f"[watch {kind or 'pending'}: {args.target}]")
        print(format_table(("field", "value"), rows))
        if args.once or done:
            return 0
        print()
        wall_time.sleep(args.interval)


def _s(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.2f}"


# ------------------------------------------------------------------ parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LO accountable-mempool reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run a plain LO network")
    p.add_argument("--nodes", type=int, default=30)
    p.add_argument("--rate", type=float, default=10.0)
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--drain", type=float, default=10.0)
    p.add_argument("--blocks", action="store_true")
    p.add_argument("--admission", action="store_true",
                   help="enable the production admission pipeline (fee"
                        " floor, RBF, nonce FIFOs, eviction, rate limits)"
                        " at every node's client ingress")
    p.add_argument("--workload", choices=["node", "poisson", "bursty"],
                   default="node",
                   help="'node': legacy node-minted injection;"
                        " 'poisson'/'bursty': open-loop client workload"
                        " with per-account keys and nonces (bursty ="
                        " two-state MMPP arrivals)")
    p.add_argument("--hot-fraction", type=float, default=0.0,
                   help="fraction of open-loop traffic funnelled through"
                        " a handful of hot sender accounts (0 = pure Zipf)")
    p.add_argument("--scale", type=int, default=1,
                   help="superpose this many replicas of the open-loop"
                        " trace (disjoint account ranges) for heavy traffic")
    p.add_argument("--rbf-fraction", type=float, default=0.0,
                   help="probability an open-loop client re-submits its"
                        " previous nonce (exercises replace-by-fee)")
    p.add_argument("--timeline", type=str, default=None, metavar="PATH",
                   help="write a repro.timeline/1 JSONL of fixed-memory"
                        " metric series sampled on the sim clock")
    p.add_argument("--timeline-csv", type=str, default=None, metavar="PATH",
                   help="also write the timeline as a flat CSV")
    p.add_argument("--timeline-bins", type=int, default=256,
                   help="per-series bin budget (power of two; memory stays"
                        " O(bins) regardless of run length)")
    p.add_argument("--timeline-interval", type=float, default=0.5,
                   help="base sampling interval in simulated seconds")
    p.add_argument("--until-steady", action="store_true",
                   help="stop as soon as the watched series stop drifting"
                        " (fee floor + pool occupancy by default) instead"
                        " of always running to duration+drain")
    p.add_argument("--steady-window", type=int, default=12,
                   help="completed timeline bins each watched series must"
                        " hold steady over")
    p.add_argument("--steady-rel-tol", type=float, default=0.05,
                   help="relative spread tolerance for the steady verdict")
    p.add_argument("--steady-series", action="append", metavar="NAME",
                   help="timeline series to watch (repeatable; default:"
                        " mempool.fee_floor_avg + mempool.pool_txs_avg)")
    p.add_argument("--telemetry-dir", type=str, default=None, metavar="DIR",
                   help="publish a live telemetry.json status document into"
                        " DIR (atomic replace; tail it with"
                        " 'python -m repro watch DIR')")
    p.add_argument("--phases", action="store_true",
                   help="profile wall-clock time per phase (net, reconcile,"
                        " mempool, crypto, ...) and print the table")
    _add_common(p, sweeps=False)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("fig6", help="detection times vs malicious fraction")
    p.add_argument("--nodes", type=int, default=50)
    p.add_argument("--fractions", type=float, nargs="+",
                   default=[0.1, 0.2, 0.3])
    _add_common(p)
    p.set_defaults(func=cmd_fig6)

    p = sub.add_parser("fig7", help="mempool inclusion latency density")
    p.add_argument("--nodes", type=int, default=80)
    p.add_argument("--rate", type=float, default=20.0)
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--repetitions", type=int, default=1,
                   help="repeat at derived seeds and pool the samples"
                        " (paper: 10)")
    _add_common(p)
    p.set_defaults(func=cmd_fig7)

    p = sub.add_parser("fig8", help="FIFO vs Highest-Fee block latency")
    p.add_argument("--nodes", type=int, default=40)
    p.add_argument("--rate", type=float, default=5.0)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--sizes", type=int, nargs="*", default=[])
    _add_common(p)
    p.set_defaults(func=cmd_fig8)

    p = sub.add_parser("fig9", help="bandwidth overhead across protocols")
    p.add_argument("--nodes", type=int, default=60)
    p.add_argument("--rate", type=float, default=10.0)
    p.add_argument("--duration", type=float, default=15.0)
    _add_common(p)
    p.set_defaults(func=cmd_fig9)

    p = sub.add_parser("fig10", help="reconciliations per minute vs workload")
    p.add_argument("--nodes", type=int, default=40)
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--workloads", type=float, nargs="+",
                   default=[60, 180, 420])
    _add_common(p)
    p.set_defaults(func=cmd_fig10)

    p = sub.add_parser("memory", help="commitment sizes vs workload")
    p.add_argument("--nodes", type=int, default=30)
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--workloads", type=float, nargs="+",
                   default=[120, 600])
    _add_common(p)
    p.set_defaults(func=cmd_memory)

    p = sub.add_parser("cpu", help="naive vs partitioned decode timing")
    p.add_argument("--difference", type=int, default=128)
    p.add_argument("--differences", type=int, nargs="*", default=[],
                   help="sweep several difference sizes (one row each);"
                        " overrides --difference and honours --workers")
    p.add_argument("--capacity", type=int, default=16)
    _add_common(p)
    p.set_defaults(func=cmd_cpu)

    p = sub.add_parser(
        "sweep",
        help="fan (experiment x seed x grid-point) tasks across worker"
             " processes; the merged results are byte-identical to a"
             " serial run (see docs/parallelism.md)",
    )
    p.add_argument("experiment", type=str,
                   help="registered experiment name (e.g. fig6_point, run,"
                        " fig9, fig10_point, memory_point)")
    p.add_argument("--param", action="append", metavar="NAME=V1,V2,...",
                   help="one grid axis; repeat for a cartesian product")
    p.add_argument("--repetitions", type=int, default=1,
                   help="derived seeds per grid point (paper: 10)")
    p.add_argument("--seed", type=int, default=42,
                   help="base seed for derive_seeds")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = serial)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-task wall-clock budget; timed-out tasks are"
                        " retried, then recorded as failures")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts after a crash/timeout (default 1;"
                        " spool runs use --max-attempts instead)")
    p.add_argument("--spool", type=str, default=None, metavar="DIR",
                   help="durable spool directory: tasks/leases/results live"
                        " as atomically-published files, so the sweep"
                        " survives worker and coordinator crashes and"
                        " multiple hosts can share one directory"
                        " (see docs/parallelism.md)")
    p.add_argument("--resume", action="store_true",
                   help="continue an interrupted --spool run: completed"
                        " task indices are skipped, stale leases reclaimed")
    p.add_argument("--heartbeat", type=float, default=5.0, metavar="S",
                   help="spool lease heartbeat interval (default 5s)")
    p.add_argument("--lease-timeout", type=float, default=None, metavar="S",
                   help="spool lease staleness threshold (default"
                        " 3 x heartbeat)")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="spool per-task attempt budget before the task is"
                        " parked (default 3)")
    p.add_argument("--out-dir", type=str, default=None,
                   help="run directory for sweep.json + execution.json"
                        " (+ per-task traces with --task-traces)")
    p.add_argument("--task-traces", action="store_true",
                   help="write a repro.trace/1 JSONL per task into --out-dir")
    p.add_argument("--json", type=str, default=None,
                   help="write the merged repro.sweep/1 results document")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero if any task failed")
    p.add_argument("--check-serial", action="store_true",
                   help="re-run serially and verify byte-identical results")
    p.add_argument("--min-speedup", type=float, default=None,
                   help="with --check-serial: require at least this"
                        " parallel-over-serial wall-clock speedup")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "report",
        help="validate and summarise a repro.trace/1 JSONL trace"
             " (span durations, fault->detection latency, cache stats)",
    )
    p.add_argument("trace", type=str,
                   help="path to a --trace JSONL file (or a standalone"
                        " --timeline export)")
    p.add_argument("--limit", type=int, default=40,
                   help="max per-node span rows to print")
    p.add_argument("--timeline", action="store_true",
                   help="render embedded timeline series as sparkline"
                        " tables (standalone timeline files always render)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "watch",
        help="tail a running run --telemetry-dir directory or a"
             " sweep --spool directory without disturbing it",
    )
    p.add_argument("target", type=str,
                   help="telemetry directory/file or spool directory")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit (for scripts/CI)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="poll interval in wall seconds (default 2)")
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser(
        "bench",
        help="hot-path micro-benchmarks; writes BENCH_*.json "
             "(schema repro.bench/1)",
    )
    p.add_argument("--suite",
                   choices=["sketch", "reconcile", "harness", "mempool",
                            "obs", "all"],
                   default="all")
    p.add_argument("--quick", action="store_true",
                   help="reduced sizes for CI smoke runs")
    p.add_argument("--out-dir", type=str, default=".",
                   help="directory for the BENCH_*.json files")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--profile", action="store_true",
                   help="run each suite under cProfile and write a "
                        "BENCH_<suite>.profile.txt top-N table next to "
                        "the JSON (numbers then measure shape, not speed)")
    p.add_argument("--profile-top", type=int, default=25,
                   help="functions per section in the profile table")
    p.add_argument("--phases", action="store_true",
                   help="run each suite under the phase profiler and print"
                        " per-phase wall-clock attribution")
    p.set_defaults(func=cmd_bench)

    return parser


def _timeline_requested(args) -> bool:
    """Whether the verb's flags ask for a timeline recorder."""
    return bool(
        getattr(args, "timeline", None)
        or getattr(args, "timeline_csv", None)
        or getattr(args, "until_steady", False)
        or getattr(args, "telemetry_dir", None)
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    When ``--trace`` (or ``--trace-chrome``) is given, a real tracer is
    installed for the duration of the command and the collected records
    are exported afterwards; otherwise the process-wide no-op tracer stays
    in place and tracing costs one attribute check per instrumented site.
    The same pattern covers the other telemetry layers: ``--timeline`` /
    ``--until-steady`` / ``--telemetry-dir`` install a
    :class:`~repro.obs.timeline.TimelineRecorder` and ``--phases`` a
    :class:`~repro.obs.phases.PhaseProfiler` for the command's duration
    (``bench --phases`` manages its own per-suite profiler instead).
    """
    args = build_parser().parse_args(argv)
    if args.command in ("report", "watch", "bench"):
        # report/watch only read artifacts; bench manages its own
        # telemetry (per-suite tracer/timeline/profiler installs).
        return args.func(args)
    trace_path = getattr(args, "trace", None)
    chrome_path = getattr(args, "trace_chrome", None)
    wants_trace = bool(trace_path or chrome_path)
    wants_timeline = _timeline_requested(args)
    wants_phases = getattr(args, "phases", False)
    if not wants_trace and not wants_timeline and not wants_phases:
        return args.func(args)

    from contextlib import ExitStack

    from repro import obs

    meta = {
        "command": args.command,
        "seed": getattr(args, "seed", None),
    }
    tracer = None
    timeline = None
    profiler = None
    with ExitStack() as stack:
        if wants_trace:
            tracer = obs.Tracer(
                sample_every=args.trace_sample,
                snapshot_interval_s=args.trace_snapshot_s,
            )
            meta["sample_every"] = args.trace_sample
            meta["snapshot_interval_s"] = args.trace_snapshot_s
            stack.enter_context(obs.use_tracer(tracer))
        if wants_timeline:
            timeline = obs.TimelineRecorder(
                interval_s=args.timeline_interval,
                bins=args.timeline_bins,
            )
            if args.telemetry_dir:
                timeline.sink = obs.TelemetrySink(args.telemetry_dir)
            stack.enter_context(obs.use_timeline(timeline))
        if wants_phases:
            profiler = obs.PhaseProfiler()
            args._profiler = profiler
            stack.enter_context(obs.use_profiler(profiler))
        code = args.func(args)
    if trace_path and tracer is not None:
        written = obs.export_jsonl(tracer, trace_path, meta,
                                   timeline=timeline)
        print(f"[trace written to {trace_path} ({written} records)]")
    if chrome_path and tracer is not None:
        written = obs.export_chrome(tracer, chrome_path, meta,
                                    timeline=timeline)
        print(f"[chrome trace written to {chrome_path} ({written} events)]")
    if timeline is not None and getattr(args, "timeline", None):
        written = timeline.export_jsonl(args.timeline, meta)
        print(f"[timeline written to {args.timeline} ({written} series)]")
    if timeline is not None and getattr(args, "timeline_csv", None):
        written = timeline.export_csv(args.timeline_csv)
        print(f"[timeline csv written to {args.timeline_csv}"
              f" ({written} rows)]")
    if timeline is not None and timeline.sink is not None:
        print(f"[telemetry published to {timeline.sink.path}"
              f" ({timeline.sink.flushes} flushes)]")
    if profiler is not None:
        print()
        print(format_table(
            ("phase", "calls", "self_s", "incl_s", "self_frac"),
            [(p, c, f"{s:.4f}", f"{i:.4f}", f"{f:.1%}")
             for p, c, s, i, f in profiler.rows()],
        ))
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
