"""Named deterministic random streams.

Each subsystem (topology, workload, per-node jitter, ...) draws from its own
:class:`random.Random` stream derived from a master seed and a label.  This
keeps experiments reproducible even when one subsystem changes how many
random numbers it consumes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, label: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream label."""
    digest = hashlib.sha256(f"{master_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeededRng:
    """Factory of named, independent :class:`random.Random` streams.

    >>> rng = SeededRng(42)
    >>> a1 = rng.stream("workload").random()
    >>> a2 = SeededRng(42).stream("workload").random()
    >>> a1 == a2
    True
    >>> rng.stream("workload") is rng.stream("workload")
    True
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, label: str) -> random.Random:
        """Return the (cached) random stream for ``label``."""
        if label not in self._streams:
            self._streams[label] = random.Random(derive_seed(self.master_seed, label))
        return self._streams[label]

    def fork(self, label: str) -> "SeededRng":
        """Return a child factory whose streams are independent of this one."""
        return SeededRng(derive_seed(self.master_seed, f"fork:{label}"))
