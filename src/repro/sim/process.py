"""Periodic and one-shot process helpers on top of the event loop.

Protocol implementations subclass :class:`PeriodicProcess` for activities
such as "reconcile with 3 random neighbours every second" (paper section
6.1) or "attempt block creation with 12 s mean interval" (section 6.3).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.loop import Event, EventLoop


class Process:
    """Base class for an entity that lives on an event loop."""

    def __init__(self, loop: EventLoop):
        self.loop = loop

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.loop.now


class PeriodicProcess(Process):
    """A process whose :meth:`tick` runs at a fixed period with optional jitter.

    The first tick fires after ``phase`` seconds (default: one full period),
    letting callers de-synchronise many nodes by assigning random phases.
    """

    def __init__(
        self,
        loop: EventLoop,
        period: float,
        phase: Optional[float] = None,
        jitter: float = 0.0,
        jitter_rng=None,
    ):
        super().__init__(loop)
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self.jitter = jitter
        self._jitter_rng = jitter_rng
        self._event: Optional[Event] = None
        self._stopped = True
        self._initial_phase = period if phase is None else phase

    @property
    def running(self) -> bool:
        """Whether the process is currently scheduled."""
        return not self._stopped

    def start(self) -> None:
        """Schedule the first tick; idempotent while running."""
        if not self._stopped:
            return
        self._stopped = False
        self._event = self.loop.call_later(self._initial_phase, self._run)

    def stop(self) -> None:
        """Cancel any pending tick; idempotent."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _next_delay(self) -> float:
        delay = self.period
        if self.jitter > 0 and self._jitter_rng is not None:
            delay += self._jitter_rng.uniform(-self.jitter, self.jitter)
        return max(delay, 1e-9)

    def _run(self) -> None:
        if self._stopped:
            return
        self.tick()
        if not self._stopped:
            self._event = self.loop.call_later(self._next_delay(), self._run)

    def tick(self) -> None:
        """Override with the periodic activity."""
        raise NotImplementedError
