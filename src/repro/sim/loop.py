"""Discrete-event loop with a simulated clock.

The loop maintains a priority queue of timestamped events.  ``run_until``
pops events in (time, sequence) order, advancing the clock to each event's
timestamp before invoking its callback.  Ties are broken by insertion order,
which makes runs fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation engine (e.g. scheduling in the past)."""


class Event:
    """Handle to a scheduled callback.

    Events are returned by :meth:`EventLoop.call_at` /
    :meth:`EventLoop.call_later` and can be cancelled.  A cancelled event
    stays in the heap until it is popped or the owning loop compacts its
    heap (see :meth:`EventLoop._maybe_compact`).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_loop")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any],
                 args: Tuple, loop: Optional["EventLoop"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the callback from running when the event is popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._loop is not None:
            self._loop._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class EventLoop:
    """A deterministic discrete-event scheduler.

    >>> loop = EventLoop()
    >>> seen = []
    >>> _ = loop.call_later(2.0, seen.append, "b")
    >>> _ = loop.call_later(1.0, seen.append, "a")
    >>> loop.run_until(10.0)
    >>> seen
    ['a', 'b']
    >>> loop.now
    10.0
    """

    #: Compaction never triggers below this heap size: rebuilding a tiny
    #: heap costs more bookkeeping than the dead entries it would free.
    COMPACT_MIN_SIZE = 64

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._processed = 0
        self._cancelled = 0
        self._compactions = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events awaiting execution."""
        return len(self._heap) - self._cancelled

    @property
    def heap_size(self) -> int:
        """Raw heap length, cancelled tombstones included (for tests)."""
        return len(self._heap)

    @property
    def compactions(self) -> int:
        """How many times the heap was rebuilt to shed cancelled events."""
        return self._compactions

    @property
    def processed_events(self) -> int:
        """Total number of callbacks executed so far."""
        return self._processed

    def call_at(self, when: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.6f} before now={self._now:.6f}"
            )
        event = Event(when, next(self._seq), callback, args, loop=self)
        heapq.heappush(self._heap, event)
        return event

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts when tombstones dominate.

        Heavy retry/cancel workloads (session timeouts rearmed on every
        round) would otherwise grow the heap without bound: cancelled
        events are only freed when their timestamp is finally popped,
        which for long-timeout timers can be arbitrarily far in the
        future.  Rebuilding once the cancelled fraction passes 50% keeps
        the heap O(live events) at amortised O(1) per cancellation.
        """
        self._cancelled += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if (
            len(self._heap) >= self.COMPACT_MIN_SIZE
            and self._cancelled * 2 > len(self._heap)
        ):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0
            self._compactions += 1

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, *args)

    def run_until(self, deadline: float) -> None:
        """Run all events with ``time <= deadline``, then set the clock to it.

        The deadline is inclusive: events scheduled exactly at the deadline
        run.  Events scheduled by callbacks during the run are honoured if
        they also fall within the deadline.
        """
        if deadline < self._now:
            raise SimulationError(
                f"deadline t={deadline:.6f} is before now={self._now:.6f}"
            )
        self._running = True
        try:
            while self._heap and self._heap[0].time <= deadline:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = event.time
                self._processed += 1
                event.callback(*event.args)
            self._now = deadline
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Run the simulation forward by ``duration`` seconds."""
        self.run_until(self._now + duration)

    def step(self) -> Optional[Event]:
        """Execute the single next pending event, if any.

        Returns the executed event, or ``None`` when the heap is empty.
        Useful in tests that want to observe one delivery at a time.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return event
        return None

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain; returns the number executed.

        ``max_events`` guards against livelock from self-rescheduling
        processes; exceeding it raises :class:`SimulationError`.
        """
        executed = 0
        while self._heap:
            if executed >= max_events:
                raise SimulationError(f"drain exceeded {max_events} events")
            if self.step() is not None:
                executed += 1
        return executed
