"""Discrete-event loop with a simulated clock.

The loop maintains a priority queue of timestamped events.  ``run_until``
pops events in (time, sequence) order, advancing the clock to each event's
timestamp before invoking its callback.  Ties are broken by insertion order,
which makes runs fully deterministic.

Hot-path representation
-----------------------

Heap entries are plain ``[time, seq, callback, args]`` lists rather than
:class:`Event` instances.  ``heapq`` orders entries with ``<``, and list
comparison runs entirely in C: because ``seq`` is unique, a comparison
never proceeds past the ``(time, seq)`` prefix, so ``callback`` and
``args`` are never compared.  The old object-based heap paid a Python
``Event.__lt__`` call for every sift step; this layout removes that cost
while keeping the exact ``(time, seq)`` order, so two runs with the same
seed execute callbacks in byte-identical order.

:class:`Event` remains the public cancellation handle returned by
:meth:`EventLoop.call_at` / :meth:`EventLoop.call_later`; it wraps the
heap entry directly.  Cancellation tombstones an entry in place (the
callback slot becomes ``None``), which the pop loop skips with one ``is
None`` test -- no side table, no hashing.  Fire-and-forget call sites
that never cancel (message delivery, workload injection) can use
:meth:`EventLoop.schedule_at` / :meth:`EventLoop.schedule_later`, which
skip the handle allocation entirely.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro import obs

#: Heap entry layout: ``[time, seq, callback, args]``.  ``callback`` is
#: ``None`` for a cancelled (tombstoned) entry.
_TIME, _SEQ, _CALLBACK, _ARGS = 0, 1, 2, 3

#: Sentinel in the callback slot marking a *batch* entry.  For such an
#: entry ``args`` holds ``(callback, items)`` where ``items`` is a
#: sequence of argument tuples: the dispatch loop invokes
#: ``callback(*item)`` for every item, in order, at the entry's single
#: timestamp, and credits ``len(items)`` processed events -- so event
#: counts are indistinguishable from scheduling each item individually.
_BATCH = object()

#: The installed :class:`repro.obs.PhaseProfiler`, or ``None`` when phase
#: profiling is off.  Rebound by :func:`repro.obs.on_profiler_change`
#: (the same mechanism as the network's ``_TRACE`` guard); ``run_until``
#: reads it once per call, so the unprofiled hot loop is untouched.
_PHASES = None


def _rebind_profiler(profiler) -> None:
    """Hook for :func:`repro.obs.on_profiler_change`."""
    global _PHASES
    _PHASES = profiler if profiler is not None and profiler.enabled else None


obs.on_profiler_change(_rebind_profiler)


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation engine (e.g. scheduling in the past)."""


class Event:
    """Handle to a scheduled callback.

    Events are returned by :meth:`EventLoop.call_at` /
    :meth:`EventLoop.call_later` and can be cancelled.  A cancelled event
    stays in the heap as a tombstone until it is popped or the owning loop
    compacts its heap (see :meth:`EventLoop._maybe_compact`).
    """

    __slots__ = ("_entry", "_loop")

    def __init__(self, entry: List[Any], loop: Optional["EventLoop"] = None):
        self._entry = entry
        self._loop = loop

    @property
    def time(self) -> float:
        """Absolute simulated timestamp the callback is scheduled for."""
        return self._entry[_TIME]

    @property
    def seq(self) -> int:
        """Insertion sequence number (the deterministic tie-breaker)."""
        return self._entry[_SEQ]

    @property
    def callback(self) -> Optional[Callable[..., Any]]:
        """The scheduled callable, or ``None`` once cancelled."""
        return self._entry[_CALLBACK]

    @property
    def args(self) -> tuple:
        """Positional arguments the callback will be invoked with."""
        return self._entry[_ARGS]

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._entry[_CALLBACK] is None

    def cancel(self) -> None:
        """Prevent the callback from running when the event is popped."""
        entry = self._entry
        if entry[_CALLBACK] is None:
            return
        entry[_CALLBACK] = None
        entry[_ARGS] = ()  # release argument references immediately
        if self._loop is not None:
            self._loop._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class EventLoop:
    """A deterministic discrete-event scheduler.

    >>> loop = EventLoop()
    >>> seen = []
    >>> _ = loop.call_later(2.0, seen.append, "b")
    >>> _ = loop.call_later(1.0, seen.append, "a")
    >>> loop.run_until(10.0)
    >>> seen
    ['a', 'b']
    >>> loop.now
    10.0
    """

    #: Compaction never triggers below this heap size: rebuilding a tiny
    #: heap costs more bookkeeping than the dead entries it would free.
    COMPACT_MIN_SIZE = 64

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[List[Any]] = []
        self._seq = itertools.count()
        self._processed = 0
        self._cancelled = 0
        self._compactions = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events awaiting execution."""
        return len(self._heap) - self._cancelled

    @property
    def heap_size(self) -> int:
        """Raw heap length, cancelled tombstones included (for tests)."""
        return len(self._heap)

    @property
    def compactions(self) -> int:
        """How many times the heap was rebuilt to shed cancelled events."""
        return self._compactions

    @property
    def processed_events(self) -> int:
        """Total number of callbacks executed so far."""
        return self._processed

    def call_at(self, when: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.6f} before now={self._now:.6f}"
            )
        entry = [when, next(self._seq), callback, args]
        heapq.heappush(self._heap, entry)
        return Event(entry, self)

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., Any],
                    *args: Any) -> None:
        """:meth:`call_at` without a cancellation handle (hot path).

        Fire-and-forget call sites (network delivery, workload injection)
        schedule millions of events and never cancel them; skipping the
        :class:`Event` allocation makes those sites one heap push.
        Scheduling order, and therefore execution order, is identical to
        :meth:`call_at`.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.6f} before now={self._now:.6f}"
            )
        heapq.heappush(self._heap, [when, next(self._seq), callback, args])

    def schedule_later(self, delay: float, callback: Callable[..., Any],
                       *args: Any) -> None:
        """:meth:`call_later` without a cancellation handle (hot path)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        heapq.heappush(
            self._heap, [self._now + delay, next(self._seq), callback, args]
        )

    def schedule_batch_at(self, when: float, callback: Callable[..., Any],
                          items: List[tuple]) -> None:
        """Schedule ``callback(*item)`` for every item at one timestamp.

        The whole batch is a *single* heap entry, so a fan-out of ``n``
        messages sharing a delivery time costs one push and one pop
        instead of ``n`` -- the core of the batched delivery engine.
        Items run in list order at time ``when``, and each counts as one
        processed event, so :attr:`processed_events` (and therefore every
        same-seed identity check) matches per-item scheduling exactly.

        Batches are fire-and-forget: there is no cancellation handle,
        matching :meth:`schedule_at`.  Note :attr:`pending_events` counts
        a pending batch as one entry, not ``len(items)``.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.6f} before now={self._now:.6f}"
            )
        heapq.heappush(
            self._heap, [when, next(self._seq), _BATCH, (callback, items)]
        )

    def schedule_batch_later(self, delay: float, callback: Callable[..., Any],
                             items: List[tuple]) -> None:
        """:meth:`schedule_batch_at` with a relative delay (hot path)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        heapq.heappush(
            self._heap,
            [self._now + delay, next(self._seq), _BATCH, (callback, items)],
        )

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts when tombstones dominate.

        Heavy retry/cancel workloads (session timeouts rearmed on every
        round) would otherwise grow the heap without bound: cancelled
        events are only freed when their timestamp is finally popped,
        which for long-timeout timers can be arbitrarily far in the
        future.  Rebuilding once the cancelled fraction passes 50% keeps
        the heap O(live events) at amortised O(1) per cancellation.
        """
        self._cancelled += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        heap = self._heap
        if len(heap) >= self.COMPACT_MIN_SIZE and self._cancelled * 2 > len(heap):
            # In-place rebuild: ``run_until``/``step`` hold a reference to
            # the heap list across callbacks, so the object identity must
            # survive compaction.
            heap[:] = [e for e in heap if e[_CALLBACK] is not None]
            heapq.heapify(heap)
            self._cancelled = 0
            self._compactions += 1

    def run_until(self, deadline: float) -> None:
        """Run all events with ``time <= deadline``, then set the clock to it.

        The deadline is inclusive: events scheduled exactly at the deadline
        run.  Events scheduled by callbacks during the run are honoured if
        they also fall within the deadline.

        When a phase profiler is installed (``_PHASES``), every callback
        runs inside an enter/exit pair attributing its wall time to a
        phase; the guard is read once per call, so with profiling off the
        dispatch loop is byte-for-byte the unprofiled one.
        """
        if deadline < self._now:
            raise SimulationError(
                f"deadline t={deadline:.6f} is before now={self._now:.6f}"
            )
        self._running = True
        heap = self._heap  # identity survives compaction (see above)
        pop = heapq.heappop
        profiler = _PHASES
        try:
            if profiler is None:
                while heap and heap[0][0] <= deadline:
                    entry = pop(heap)
                    callback = entry[_CALLBACK]
                    if callback is None:
                        self._cancelled -= 1
                        continue
                    self._now = entry[_TIME]
                    if callback is _BATCH:
                        fn, items = entry[_ARGS]
                        self._processed += len(items)
                        for args in items:
                            fn(*args)
                        continue
                    self._processed += 1
                    callback(*entry[_ARGS])
            else:
                classify = profiler.classify
                enter = profiler.enter
                leave = profiler.exit
                while heap and heap[0][0] <= deadline:
                    entry = pop(heap)
                    callback = entry[_CALLBACK]
                    if callback is None:
                        self._cancelled -= 1
                        continue
                    self._now = entry[_TIME]
                    if callback is _BATCH:
                        fn, items = entry[_ARGS]
                        self._processed += len(items)
                        phase = classify(fn)
                        for args in items:
                            enter(phase)
                            try:
                                fn(*args)
                            finally:
                                leave()
                        continue
                    self._processed += 1
                    enter(classify(callback))
                    try:
                        callback(*entry[_ARGS])
                    finally:
                        leave()
            self._now = deadline
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Run the simulation forward by ``duration`` seconds."""
        self.run_until(self._now + duration)

    def step(self) -> Optional[Event]:
        """Execute the single next pending event, if any.

        Returns the executed event, or ``None`` when the heap is empty.
        Useful in tests that want to observe one delivery at a time.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            callback = entry[_CALLBACK]
            if callback is None:
                self._cancelled -= 1
                continue
            self._now = entry[_TIME]
            if callback is _BATCH:
                # A batch entry is a single step: all items run before
                # control returns, mirroring ``run_until`` semantics.
                fn, items = entry[_ARGS]
                self._processed += len(items)
                for args in items:
                    fn(*args)
                return Event(entry, self)
            self._processed += 1
            callback(*entry[_ARGS])
            return Event(entry, self)
        return None

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain; returns the number executed.

        ``max_events`` guards against livelock from self-rescheduling
        processes; exceeding it raises :class:`SimulationError`.
        """
        executed = 0
        while self._heap:
            if executed >= max_events:
                raise SimulationError(f"drain exceeded {max_events} events")
            if self.step() is not None:
                executed += 1
        return executed
