"""Deterministic discrete-event simulation substrate.

All LO protocol code runs against this simulated clock rather than wall-clock
time.  The paper evaluates LO on a research cluster with netem-emulated
latencies; we substitute a deterministic event-driven simulator so that every
experiment is reproducible bit-for-bit from a seed (see DESIGN.md section 3).

Public API:

* :class:`~repro.sim.loop.EventLoop` -- the scheduler.
* :class:`~repro.sim.loop.Event` -- a scheduled callback handle.
* :class:`~repro.sim.process.Process` -- base class for periodic activities.
* :class:`~repro.sim.rng.SeededRng` -- named deterministic random streams.
"""

from repro.sim.loop import Event, EventLoop, SimulationError
from repro.sim.process import PeriodicProcess, Process
from repro.sim.rng import SeededRng

__all__ = [
    "Event",
    "EventLoop",
    "PeriodicProcess",
    "Process",
    "SeededRng",
    "SimulationError",
]
