"""Recursive hash-partitioned set reconciliation (paper section 6.5).

Decoding a PinSketch costs superlinearly in the size of the set difference;
the paper reports ~10 s for a 1,000-item difference and introduces an
optimisation: "when reconciliation fails ... the node divides it into two
partitions and generates an additional Minisketch for each segment",
bringing the cost under 100 ms.

:class:`PartitionedReconciler` implements that recursion over a binary
partition tree keyed by the low bits of the (hash-derived) element ids.
It is written against an abstract *remote sketch provider* so the same code
drives both the in-simulator protocol (where each provider call is an extra
network round trip) and the offline CPU benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Set, Tuple

from repro.sketch.pinsketch import PinSketch, SketchDecodeError


def partition_index(element: int, level: int) -> int:
    """Partition id of ``element`` at ``level`` (low ``level`` bits).

    Elements are already hash-derived (32-bit truncations of transaction
    hashes), so their low bits are uniform and make a fair splitter.
    """
    return element & ((1 << level) - 1)


def elements_in_partition(
    elements: Iterable[int], level: int, index: int
) -> List[int]:
    """Subset of ``elements`` that falls into partition ``index`` at ``level``."""
    mask = (1 << level) - 1
    return [e for e in elements if e & mask == index]


@dataclass
class ReconcileStats:
    """Bookkeeping for one (possibly recursive) reconciliation.

    ``sketches_decoded`` counts decode attempts -- the quantity Fig. 10
    reports per minute.  ``bytes_transferred`` counts sketch bytes that
    would cross the wire (both directions).
    """

    sketches_decoded: int = 0
    decode_failures: int = 0
    max_depth_reached: int = 0
    bytes_transferred: int = 0
    failed: bool = False
    unresolved_partitions: List[Tuple[int, int]] = field(default_factory=list)


class PartitionedReconciler:
    """Reconcile two sets with capacity-bounded sketches and bisection.

    Parameters mirror the paper's setup: ``capacity`` is the per-sketch
    decode limit (default 100 transactions for a 1,000-byte UDP-sized
    sketch), ``max_depth`` bounds the recursion.
    """

    def __init__(self, capacity: int = 100, m: int = 32, max_depth: int = 12):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        self.capacity = capacity
        self.m = m
        self.max_depth = max_depth

    def local_sketch(self, elements: Iterable[int], level: int, index: int) -> PinSketch:
        """Sketch of the local elements falling in one partition."""
        sketch = PinSketch(self.capacity, self.m)
        sketch.add_all(elements_in_partition(elements, level, index))
        return sketch

    def reconcile(
        self,
        local_elements: Set[int],
        remote_sketch_provider: Callable[[int, int], Optional[PinSketch]],
        stats: Optional[ReconcileStats] = None,
    ) -> Tuple[Set[int], ReconcileStats]:
        """Compute the symmetric difference against a remote set.

        ``remote_sketch_provider(level, index)`` must return the remote
        party's sketch of its elements in that partition (or ``None`` if it
        refuses / is unreachable, which marks the reconciliation failed).

        Returns ``(difference, stats)``; ``stats.failed`` is set when some
        partition could not be resolved within ``max_depth``.
        """
        if stats is None:
            stats = ReconcileStats()
        difference: Set[int] = set()
        self._reconcile_partition(
            local_elements, remote_sketch_provider, 0, 0, difference, stats
        )
        return difference, stats

    def _reconcile_partition(
        self,
        local_elements: Set[int],
        provider: Callable[[int, int], Optional[PinSketch]],
        level: int,
        index: int,
        difference: Set[int],
        stats: ReconcileStats,
    ) -> None:
        remote = provider(level, index)
        if remote is None:
            stats.failed = True
            stats.unresolved_partitions.append((level, index))
            return
        stats.max_depth_reached = max(stats.max_depth_reached, level)
        stats.bytes_transferred += remote.wire_size()
        local = self.local_sketch(local_elements, level, index)
        combined = local ^ remote
        stats.sketches_decoded += 1
        try:
            difference.update(combined.decode())
            return
        except SketchDecodeError:
            stats.decode_failures += 1
        if level >= self.max_depth:
            stats.failed = True
            stats.unresolved_partitions.append((level, index))
            return
        # Bisect: children at level+1 share this partition's low bits and
        # differ in the next bit.
        for child in (index, index | (1 << level)):
            self._reconcile_partition(
                local_elements, provider, level + 1, child, difference, stats
            )

    def reconcile_sets(
        self, local_elements: Set[int], remote_elements: Set[int]
    ) -> Tuple[Set[int], ReconcileStats]:
        """Offline convenience: reconcile two in-memory sets.

        Used by tests and by the section 6.5 CPU benchmark, where both sides
        live in the same process and the "provider" just sketches the remote
        set's partitions on demand.
        """

        def provider(level: int, index: int) -> PinSketch:
            return self.local_sketch(remote_elements, level, index)

        return self.reconcile(local_elements, provider)
