"""Binary finite fields GF(2^m) and polynomial arithmetic over them.

Elements are Python ints in ``[0, 2^m)`` interpreted as polynomials over
GF(2).  Multiplication is carry-less multiplication followed by reduction
modulo an irreducible polynomial.  For small fields (m <= 16) log/exp tables
make multiplication two lookups; for larger fields a nibble-windowed
carry-less multiply plus a precomputed per-field reduction table keeps
pure-Python cost low.

Polynomials over GF(2^m) are represented as lists of coefficients in
ascending degree order, normalised so the last coefficient is nonzero (the
zero polynomial is the empty list).

Fast path
---------

When numpy is importable the field objects additionally expose *batched*
kernels -- :meth:`GF2m.mul_batch`, :meth:`GF2m.sqr_batch`,
:meth:`GF2m.inv_batch`, :meth:`GF2m.dot` and :meth:`GF2m.find_roots_scan` --
that vectorise the log/exp table lookups (m <= 16) or the tower-subfield
lookups (m == 32) over whole arrays.  Every batched kernel has a
pure-Python scalar fallback producing bit-identical results, selected
automatically when numpy is absent or the fast path is disabled via
:func:`set_fast_path`.  ``tests/sketch/test_fastpath.py`` property-tests the
equality; ``python -m repro bench`` measures the speedup.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

try:  # The fast path is optional; the library must work without numpy.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via set_fast_path(False)
    _np = None

_FAST_ENABLED = True


def have_numpy() -> bool:
    """Whether numpy is importable in this process."""
    return _np is not None


def fast_path_active() -> bool:
    """Whether the vectorised kernels are currently in use."""
    return _np is not None and _FAST_ENABLED


def set_fast_path(enabled: bool) -> bool:
    """Enable/disable the numpy kernels; returns the previous setting.

    Disabling forces every batched API through the pure-Python scalar
    fallback -- used by the equality property tests and by the benchmark
    runner to measure the scalar baseline.  A no-op (always "disabled")
    when numpy is not installed.
    """
    global _FAST_ENABLED
    previous = _FAST_ENABLED
    _FAST_ENABLED = bool(enabled)
    return previous


# Irreducible polynomials (without the leading x^m term) for supported m,
# matching the moduli used by libminisketch where applicable.
IRREDUCIBLE_POLY = {
    8: 0x1B,        # x^8 + x^4 + x^3 + x + 1
    12: 0x9,        # x^12 + x^3 + 1
    16: 0x2B,       # x^16 + x^5 + x^3 + x + 1
    24: 0x1B,       # x^24 + x^4 + x^3 + x + 1
    32: 0x8D,       # x^32 + x^7 + x^3 + x^2 + 1
    48: 0x2D,       # x^48 + x^5 + x^3 + x^2 + 1
    64: 0x1B,       # x^64 + x^4 + x^3 + x + 1
}

# Log/exp tables shared across every GF2m instance of the same (m, modulus):
# the tables are a pure function of the field, and partitioned sketches can
# construct many field objects (see default_field for instance sharing too).
_TABLE_CACHE: Dict[
    Tuple[int, int], Tuple[Optional[List[int]], Optional[List[int]]]
] = {}


class GF2m:
    """The finite field GF(2^m).

    >>> f = GF2m(16)
    >>> a, b = 0x1234, 0x5678
    >>> f.mul(a, f.inv(a))
    1
    >>> f.mul(a, b) == f.mul(b, a)
    True
    """

    def __init__(self, m: int, modulus: Optional[int] = None):
        if modulus is None:
            if m not in IRREDUCIBLE_POLY:
                raise ValueError(f"no built-in modulus for GF(2^{m})")
            modulus = IRREDUCIBLE_POLY[m]
        self.m = m
        self.order = 1 << m
        self.mask = self.order - 1
        # Full modulus polynomial including the x^m term.
        self.modulus = modulus | self.order
        self._low_modulus = modulus
        self._log: Optional[List[int]] = None
        self._exp: Optional[List[int]] = None
        self._np_exp = None
        self._np_log = None
        self._np_chien_ii = None
        self._reduce_table: Optional[List[int]] = None
        if m <= 16:
            self._build_tables()

    # ------------------------------------------------------------------ setup

    def _build_tables(self) -> None:
        """Build log/exp tables over a primitive element.

        ``x`` itself need not be primitive for every irreducible modulus
        (it is not for the GF(2^16) modulus used here), so candidate
        generators are tried until one whose powers enumerate the whole
        multiplicative group is found.  Tables are shared process-wide per
        (m, modulus) through a module cache: building the GF(2^16) tables
        walks 65,535 multiplications, far too costly to repeat per sketch.
        """
        cache_key = (self.m, self.modulus)
        cached = _TABLE_CACHE.get(cache_key)
        if cached is not None:
            self._exp, self._log = cached
            return
        size = self.order
        for generator in range(2, 64):
            exp = [0] * (2 * size)
            log = [0] * size
            value = 1
            primitive = True
            for i in range(size - 1):
                if value == 1 and i > 0:
                    primitive = False  # cycled early: not a generator
                    break
                exp[i] = value
                log[value] = i
                value = self._mul_notable(value, generator)
            if primitive and value == 1:
                for i in range(size - 1, 2 * size):
                    exp[i] = exp[i - (size - 1)]
                self._exp = exp
                self._log = log
                _TABLE_CACHE[cache_key] = (exp, log)
                return
        self._log = None
        self._exp = None
        _TABLE_CACHE[cache_key] = (None, None)

    def _np_tables(self):
        """Numpy mirrors of the log/exp tables, or None off the fast path."""
        if self._log is None or not fast_path_active():
            return None
        if self._np_exp is None:
            self._np_exp = _np.asarray(self._exp, dtype=_np.int64)
            self._np_log = _np.asarray(self._log, dtype=_np.int64)
        return self._np_exp, self._np_log

    # ------------------------------------------------------------- arithmetic

    def add(self, a: int, b: int) -> int:
        """Addition (== subtraction) is XOR in characteristic 2."""
        return a ^ b

    def _mul_notable(self, a: int, b: int) -> int:
        """Reference shift-and-add multiply (used to bootstrap the tables)."""
        result = 0
        while a:
            if a & 1:
                result ^= b
            a >>= 1
            b <<= 1
        return self._reduce(result)

    def _build_reduce_table(self) -> List[int]:
        """Precompute ``x^(m+k) mod f`` for k in [0, m): one XOR per high bit.

        Carry-less products are at most 2m-1 bits wide, so reduction only
        ever needs these m precomputed rows; the shift-and-test loop of the
        naive reduction is replaced by table lookups (the "multiplication
        window" structure for fields too large for log/exp tables).
        """
        table = []
        row = self._low_modulus  # x^m == low part of the modulus
        for _ in range(self.m):
            table.append(row)
            row <<= 1
            if row & self.order:
                row ^= self.modulus  # clears the x^m bit
        self._reduce_table = table
        return table

    def _reduce(self, value: int) -> int:
        """Reduce an up-to-(2m-1)-bit carry-less product modulo the field."""
        if value < self.order:
            return value
        table = self._reduce_table
        if table is None:
            table = self._build_reduce_table()
        out = value & self.mask
        high = value >> self.m
        if high >> self.m:
            # Defensive: wider than any carry-less product; fall back to
            # the shift-based reduction for the out-of-contract top bits.
            top = value.bit_length()
            while top > 2 * self.m - 1:
                value ^= self.modulus << (top - self.m - 1)
                top = value.bit_length()
            out = value & self.mask
            high = value >> self.m
        k = 0
        while high:
            if high & 1:
                out ^= table[k]
            high >>= 1
            k += 1
        return out

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        if a == 0 or b == 0:
            return 0
        if self._log is not None:
            return self._exp[self._log[a] + self._log[b]]
        # Nibble-windowed carry-less multiply for large fields.
        table = [0, b]
        for i in range(1, 8):
            table.append(table[i] << 1)
            table.append((table[i] << 1) ^ b)
        result = 0
        shift = 0
        while a:
            nib = a & 0xF
            if nib:
                result ^= table[nib] << shift
            a >>= 4
            shift += 4
        return self._reduce(result)

    def sqr(self, a: int) -> int:
        """Field squaring (linear in characteristic 2; bit-spread then reduce)."""
        if self._log is not None and a != 0:
            return self._exp[2 * self._log[a]]
        result = 0
        bit = 0
        while a:
            if a & 1:
                result ^= 1 << (2 * bit)
            a >>= 1
            bit += 1
        return self._reduce(result)

    def pow(self, a: int, e: int) -> int:
        """Field exponentiation by squaring."""
        if e < 0:
            return self.pow(self.inv(a), -e)
        result = 1
        base = a
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.sqr(base)
            e >>= 1
        return result

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in GF(2^m)")
        if self._log is not None:
            return self._exp[(self.order - 1) - self._log[a]]
        # a^(2^m - 2) by square-and-multiply.
        return self.pow(a, self.order - 2)

    # ------------------------------------------------------ batched kernels

    def mul_batch(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """Elementwise field products of two equal-length sequences.

        Vectorised through the log/exp tables on the fast path; otherwise a
        scalar loop with identical results.
        """
        tables = self._np_tables()
        if tables is None:
            mul = self.mul
            return [mul(x, y) for x, y in zip(a, b)]
        exp, log = tables
        av = _np.asarray(a, dtype=_np.int64)
        bv = _np.asarray(b, dtype=_np.int64)
        out = _np.zeros(av.shape, dtype=_np.int64)
        nz = (av != 0) & (bv != 0)
        out[nz] = exp[log[av[nz]] + log[bv[nz]]]
        return out.tolist()

    def mul_scalar_batch(self, scalar: int, vec: Sequence[int]) -> List[int]:
        """``[scalar * v for v in vec]`` with the per-scalar setup hoisted.

        For table fields this broadcasts a single log lookup; for larger
        fields the nibble window table of ``scalar`` is built once and
        reused across the whole vector instead of once per product.
        """
        if scalar == 0 or not vec:
            return [0] * len(vec)
        tables = self._np_tables()
        if tables is not None:
            exp, log = tables
            vv = _np.asarray(vec, dtype=_np.int64)
            out = _np.zeros(vv.shape, dtype=_np.int64)
            nz = vv != 0
            out[nz] = exp[log[vv[nz]] + int(log[scalar])]
            return out.tolist()
        if self._log is not None:
            exp_t, log_t = self._exp, self._log
            log_s = log_t[scalar]
            return [exp_t[log_t[v] + log_s] if v else 0 for v in vec]
        # Large field: hoist the window table of the *scalar* operand.
        window = [0, scalar]
        for i in range(1, 8):
            window.append(window[i] << 1)
            window.append((window[i] << 1) ^ scalar)
        reduce = self._reduce
        out = []
        for v in vec:
            result = 0
            shift = 0
            while v:
                nib = v & 0xF
                if nib:
                    result ^= window[nib] << shift
                v >>= 4
                shift += 4
            out.append(reduce(result))
        return out

    def sqr_batch(self, a: Sequence[int]) -> List[int]:
        """Elementwise field squares of a sequence."""
        tables = self._np_tables()
        if tables is None:
            sqr = self.sqr
            return [sqr(x) for x in a]
        exp, log = tables
        av = _np.asarray(a, dtype=_np.int64)
        out = _np.zeros(av.shape, dtype=_np.int64)
        nz = av != 0
        out[nz] = exp[2 * log[av[nz]]]
        return out.tolist()

    def inv_batch(self, a: Sequence[int]) -> List[int]:
        """Elementwise inverses; raises ZeroDivisionError on any zero."""
        tables = self._np_tables()
        if tables is None:
            inv = self.inv
            return [inv(x) for x in a]
        exp, log = tables
        av = _np.asarray(a, dtype=_np.int64)
        if bool((av == 0).any()):
            raise ZeroDivisionError("inverse of 0 in GF(2^m)")
        return exp[(self.order - 1) - log[av]].tolist()

    def dot(self, a: Sequence[int], b: Sequence[int]) -> int:
        """XOR-accumulated inner product ``a[0]b[0] ^ a[1]b[1] ^ ...``.

        The Berlekamp--Massey discrepancy is exactly this shape; on the
        fast path the products and the XOR reduction both vectorise.
        """
        tables = self._np_tables()
        if tables is None:
            mul = self.mul
            acc = 0
            for x, y in zip(a, b):
                if x and y:
                    acc ^= mul(x, y)
            return acc
        exp, log = tables
        av = _np.asarray(a, dtype=_np.int64)
        bv = _np.asarray(b, dtype=_np.int64)
        out = _np.zeros(av.shape, dtype=_np.int64)
        nz = (av != 0) & (bv != 0)
        out[nz] = exp[log[av[nz]] + log[bv[nz]]]
        return int(_np.bitwise_xor.reduce(out)) if out.size else 0

    def find_roots_scan(self, poly: Sequence[int]) -> Optional[List[int]]:
        """All distinct roots of ``poly`` by a vectorised full-field scan.

        A Chien search in the log domain: the polynomial is evaluated at
        every nonzero element ``g^i`` simultaneously, one table-gather pass
        per nonzero coefficient.  The exponent array ``(j * i) mod (q-1)``
        is maintained incrementally (add, conditional subtract), so the
        inner loop is four branch-free numpy passes and never needs
        zero-masking.  Only available for table fields (m <= 16) on the
        fast path; returns None otherwise so callers fall back to
        Berlekamp-trace splitting.  Repeated roots are reported once, which
        matches the decoder's distinct-roots contract.
        """
        tables = self._np_tables()
        if tables is None:
            return None
        exp, log = tables
        p = self.poly_trim(list(poly))
        if not p or len(p) == 1:
            return []
        n = self.order - 1  # multiplicative group order
        if self._np_chien_ii is None:
            # int32 workspace: indices stay below 2n < 2^31 and the halved
            # memory traffic is worth ~1.5x on the 64-pass inner loop.
            self._np_chien_ii = (
                _np.arange(n, dtype=_np.int32),
                _np.asarray(self._exp, dtype=_np.int32),
            )
        ii, exp32 = self._np_chien_ii
        # acc[i] accumulates poly(g^i); jpow[i] tracks (j*i) mod n.
        acc = _np.full(n, p[0], dtype=_np.int32)
        jpow = _np.zeros(n, dtype=_np.int32)
        idx = _np.empty(n, dtype=_np.int32)
        for coeff in p[1:]:
            jpow += ii
            _np.subtract(jpow, n, out=jpow, where=jpow >= n)
            if coeff:
                # exp is double-length (periodic), so log[c] + jpow needs
                # no second reduction.
                _np.add(jpow, int(log[coeff]), out=idx)
                acc ^= exp32[idx]
        root_exponents = _np.nonzero(acc == 0)[0]
        roots = exp[root_exponents].tolist()
        if p[0] == 0:
            roots.insert(0, 0)
        return roots

    def trace(self, a: int) -> int:
        """Absolute trace down to GF(2): sum of the m Frobenius conjugates."""
        total = 0
        term = a
        for _ in range(self.m):
            total ^= term
            term = self.sqr(term)
        return total

    def artin_schreier_solve(self, u: int) -> Optional[int]:
        """A solution ``y`` of ``y^2 + y = u``, or None when none exists.

        The map ``f(y) = y^2 + y`` is GF(2)-linear with image of dimension
        m-1 (exactly the trace-zero elements).  A row-reduced form of f is
        precomputed once per field, making each solve m XOR steps; used by
        the closed-form quadratic root finder in PinSketch decoding.
        """
        if self._as_rows is None:
            self._build_artin_schreier()
        rows = self._as_rows
        y = 0
        for pivot_bit, image, preimage in rows:
            if u & pivot_bit:
                u ^= image
                y ^= preimage
        return y if u == 0 else None

    _as_rows: Optional[List[Tuple[int, int, int]]] = None

    def _build_artin_schreier(self) -> None:
        """Row-reduce the basis images of ``y -> y^2 + y`` over GF(2)."""
        pairs = []
        for bit in range(self.m):
            basis = 1 << bit
            pairs.append((self.sqr(basis) ^ basis, basis))
        rows: List[Tuple[int, int, int]] = []
        for image, preimage in pairs:
            for pivot_bit, row_image, row_pre in rows:
                if image & pivot_bit:
                    image ^= row_image
                    preimage ^= row_pre
            if image:
                pivot = 1 << (image.bit_length() - 1)
                rows.append((pivot, image, preimage))
        rows.sort(key=lambda r: -r[0])
        self._as_rows = rows

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        return self.mul(a, self.inv(b))

    # ------------------------------------------------------- polynomial layer

    @staticmethod
    def poly_trim(p: List[int]) -> List[int]:
        """Drop trailing zero coefficients in place and return the list."""
        while p and p[-1] == 0:
            p.pop()
        return p

    def poly_add(self, p: Sequence[int], q: Sequence[int]) -> List[int]:
        """Polynomial addition (coefficient-wise XOR)."""
        if len(p) < len(q):
            p, q = q, p
        out = list(p)
        for i, coeff in enumerate(q):
            out[i] ^= coeff
        return self.poly_trim(out)

    def poly_mul(self, p: Sequence[int], q: Sequence[int]) -> List[int]:
        """Polynomial multiplication (schoolbook)."""
        if not p or not q:
            return []
        out = [0] * (len(p) + len(q) - 1)
        mul = self.mul
        for i, a in enumerate(p):
            if a == 0:
                continue
            for j, b in enumerate(q):
                if b:
                    out[i + j] ^= mul(a, b)
        return self.poly_trim(out)

    def poly_mod(self, p: Sequence[int], q: Sequence[int]) -> List[int]:
        """Polynomial remainder ``p mod q``; ``q`` must be nonzero."""
        if not q:
            raise ZeroDivisionError("polynomial mod by zero")
        rem = list(p)
        self.poly_trim(rem)
        dq = len(q) - 1
        inv_lead = self.inv(q[-1])
        mul = self.mul
        # Each elimination step multiplies every coefficient of q by the
        # same factor; batch that scalar-vector product when q is big
        # enough for the hoisted-window/vector kernels to pay off.
        batch = len(q) >= 16
        while len(rem) - 1 >= dq and rem:
            shift = len(rem) - 1 - dq
            factor = mul(rem[-1], inv_lead)
            if batch:
                products = self.mul_scalar_batch(factor, q)
                for i, prod in enumerate(products):
                    if prod:
                        rem[i + shift] ^= prod
            else:
                for i, coeff in enumerate(q):
                    if coeff:
                        rem[i + shift] ^= mul(factor, coeff)
            self.poly_trim(rem)
        return rem

    def poly_gcd(self, p: Sequence[int], q: Sequence[int]) -> List[int]:
        """Monic polynomial greatest common divisor."""
        a, b = list(p), list(q)
        self.poly_trim(a)
        self.poly_trim(b)
        while b:
            a, b = b, self.poly_mod(a, b)
        if a and a[-1] != 1:
            inv_lead = self.inv(a[-1])
            a = [self.mul(c, inv_lead) for c in a]
        return a

    def poly_monic(self, p: Sequence[int]) -> List[int]:
        """Return the monic scalar multiple of ``p``."""
        p = self.poly_trim(list(p))
        if not p or p[-1] == 1:
            return p
        inv_lead = self.inv(p[-1])
        return [self.mul(c, inv_lead) for c in p]

    def poly_eval(self, p: Sequence[int], x: int) -> int:
        """Evaluate ``p`` at ``x`` with Horner's rule."""
        acc = 0
        mul = self.mul
        for coeff in reversed(p):
            acc = mul(acc, x) ^ coeff
        return acc

    def poly_sqr_mod(self, p: Sequence[int], q: Sequence[int]) -> List[int]:
        """Square a polynomial modulo ``q`` (cheap in characteristic 2)."""
        if not p:
            return []
        out = [0] * (2 * len(p) - 1)
        sqr = self.sqr
        for i, coeff in enumerate(p):
            if coeff:
                out[2 * i] = sqr(coeff)
        return self.poly_mod(out, q)

    def poly_frobenius_mod(self, q: Sequence[int]) -> List[int]:
        """Compute ``x^(2^m) mod q`` by m modular squarings."""
        result: List[int] = [0, 1]  # the polynomial x
        result = self.poly_mod(result, q)
        for _ in range(self.m):
            result = self.poly_sqr_mod(result, q)
        return result


class GF2Tower32(GF2m):
    """GF(2^32) as the tower GF((2^16)^2): fast pure-Python arithmetic.

    Elements are 32-bit ints ``(hi << 16) | lo`` representing ``hi*y + lo``
    in GF(2^16)[y] / (y^2 + y + c), with ``c`` chosen so the quadratic is
    irreducible (trace of c over GF(2) equals 1).  Multiplication becomes
    three-and-a-bit GF(2^16) table multiplications (Karatsuba), roughly an
    order of magnitude faster than windowed carry-less multiplication --
    the same trick libminisketch uses with CPU-specific field backends.

    The tower field is isomorphic to, but not identical with, the
    polynomial-basis GF(2^32); sketches must be built and decoded with the
    same representation on both sides, which holds process-wide via
    :func:`default_field`.

    On the fast path the batched kernels vectorise the subfield table
    lookups over numpy arrays, so ``mul_batch``/``sqr_batch``/``inv_batch``
    process whole syndrome vectors per call.
    """

    def __init__(self):
        # Intentionally no super().__init__: the base attributes are set up
        # manually around the GF(2^16) subfield.
        self.m = 32
        self.order = 1 << 32
        self.mask = self.order - 1
        self.modulus = 0  # not meaningful in tower representation
        self.sub = GF2m(16)
        if self.sub._log is None:  # pragma: no cover - defensive
            raise RuntimeError("GF(2^16) tables unavailable")
        self._log = None
        self._exp = None
        self._np_exp = None
        self._np_log = None
        self._np_chien_ii = None
        self._reduce_table = None
        # y^2 + y + c must be irreducible over GF(2^16), which holds exactly
        # when the GF(2)-trace of c is 1; pick the smallest such c.
        self.QUAD_C = next(
            c for c in range(1, 1 << 16) if self._subfield_trace(c) == 1
        )

    def _subfield_trace(self, value: int) -> int:
        """Trace of a GF(2^16) element down to GF(2)."""
        total = 0
        term = value
        for _ in range(16):
            total ^= term
            term = self.sub.sqr(term)
        return total

    def _np_sub_tables(self):
        """Numpy mirrors of the *subfield* tables, or None off the fast path."""
        if not fast_path_active():
            return None
        if self._np_exp is None:
            self._np_exp = _np.asarray(self.sub._exp, dtype=_np.int64)
            self._np_log = _np.asarray(self.sub._log, dtype=_np.int64)
        return self._np_exp, self._np_log

    def mul(self, a: int, b: int) -> int:
        """Tower-field multiplication (Karatsuba over GF(2^16))."""
        if a == 0 or b == 0:
            return 0
        sub = self.sub
        exp, log = sub._exp, sub._log
        a1, a0 = a >> 16, a & 0xFFFF
        b1, b0 = b >> 16, b & 0xFFFF
        m1 = exp[log[a1] + log[b1]] if a1 and b1 else 0
        m0 = exp[log[a0] + log[b0]] if a0 and b0 else 0
        sa, sb = a1 ^ a0, b1 ^ b0
        mx = exp[log[sa] + log[sb]] if sa and sb else 0
        hi = mx ^ m0                     # (a1b0 + a0b1) + a1b1
        lo = m0 ^ (exp[log[m1] + log[self.QUAD_C]] if m1 else 0)
        return (hi << 16) | lo

    def sqr(self, a: int) -> int:
        """Tower-field squaring (two subfield squares + one constant mul)."""
        if a == 0:
            return 0
        sub = self.sub
        a1, a0 = a >> 16, a & 0xFFFF
        s1 = sub.sqr(a1)
        s0 = sub.sqr(a0)
        lo = s0 ^ (sub.mul(s1, self.QUAD_C) if s1 else 0)
        return (s1 << 16) | lo

    def inv(self, a: int) -> int:
        """Tower-field inverse via the GF(2^16) norm; raises on zero."""
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in GF(2^32)")
        sub = self.sub
        a1, a0 = a >> 16, a & 0xFFFF
        # Norm over GF(2^16): a0^2 + a0*a1 + c*a1^2 (never zero for a != 0).
        norm = sub.sqr(a0) ^ sub.mul(a0, a1) ^ sub.mul(self.QUAD_C, sub.sqr(a1))
        inv_norm = sub.inv(norm)
        # inverse = conjugate(a) / norm, conj(a) = a1*y + (a0 + a1).
        hi = sub.mul(a1, inv_norm)
        lo = sub.mul(a0 ^ a1, inv_norm)
        return (hi << 16) | lo

    # ------------------------------------------------------ batched kernels

    @staticmethod
    def _tab_mul(exp, log, x, y):
        """Vectorised subfield product of two int64 arrays (zeros handled)."""
        out = _np.zeros(x.shape, dtype=_np.int64)
        nz = (x != 0) & (y != 0)
        out[nz] = exp[log[x[nz]] + log[y[nz]]]
        return out

    def mul_batch(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """Elementwise tower products of two equal-length sequences."""
        tables = self._np_sub_tables()
        if tables is None:
            mul = self.mul
            return [mul(x, y) for x, y in zip(a, b)]
        exp, log = tables
        av = _np.asarray(a, dtype=_np.int64)
        bv = _np.asarray(b, dtype=_np.int64)
        a1, a0 = av >> 16, av & 0xFFFF
        b1, b0 = bv >> 16, bv & 0xFFFF
        m1 = self._tab_mul(exp, log, a1, b1)
        m0 = self._tab_mul(exp, log, a0, b0)
        mx = self._tab_mul(exp, log, a1 ^ a0, b1 ^ b0)
        hi = mx ^ m0
        log_c = int(log[self.QUAD_C])
        cm = _np.zeros(m1.shape, dtype=_np.int64)
        nz = m1 != 0
        cm[nz] = exp[log[m1[nz]] + log_c]
        lo = m0 ^ cm
        return ((hi << 16) | lo).tolist()

    def mul_scalar_batch(self, scalar: int, vec: Sequence[int]) -> List[int]:
        """``[scalar * v for v in vec]`` over the tower field."""
        if scalar == 0 or not vec:
            return [0] * len(vec)
        if self._np_sub_tables() is None:
            mul = self.mul
            return [mul(scalar, v) for v in vec]
        return self.mul_batch([scalar] * len(vec), vec)

    def sqr_batch(self, a: Sequence[int]) -> List[int]:
        """Elementwise tower squares of a sequence."""
        tables = self._np_sub_tables()
        if tables is None:
            sqr = self.sqr
            return [sqr(x) for x in a]
        exp, log = tables
        av = _np.asarray(a, dtype=_np.int64)
        a1, a0 = av >> 16, av & 0xFFFF
        s1 = _np.zeros(a1.shape, dtype=_np.int64)
        nz1 = a1 != 0
        s1[nz1] = exp[2 * log[a1[nz1]]]
        s0 = _np.zeros(a0.shape, dtype=_np.int64)
        nz0 = a0 != 0
        s0[nz0] = exp[2 * log[a0[nz0]]]
        log_c = int(log[self.QUAD_C])
        cm = _np.zeros(s1.shape, dtype=_np.int64)
        nz = s1 != 0
        cm[nz] = exp[log[s1[nz]] + log_c]
        return ((s1 << 16) | (s0 ^ cm)).tolist()

    def inv_batch(self, a: Sequence[int]) -> List[int]:
        """Elementwise tower inverses; raises ZeroDivisionError on any zero."""
        tables = self._np_sub_tables()
        if tables is None:
            inv = self.inv
            return [inv(x) for x in a]
        exp, log = tables
        av = _np.asarray(a, dtype=_np.int64)
        if bool((av == 0).any()):
            raise ZeroDivisionError("inverse of 0 in GF(2^32)")
        a1, a0 = av >> 16, av & 0xFFFF
        sq0 = _np.zeros(a0.shape, dtype=_np.int64)
        nz0 = a0 != 0
        sq0[nz0] = exp[2 * log[a0[nz0]]]
        sq1 = _np.zeros(a1.shape, dtype=_np.int64)
        nz1 = a1 != 0
        sq1[nz1] = exp[2 * log[a1[nz1]]]
        log_c = int(log[self.QUAD_C])
        c_sq1 = _np.zeros(sq1.shape, dtype=_np.int64)
        nz = sq1 != 0
        c_sq1[nz] = exp[log[sq1[nz]] + log_c]
        norm = sq0 ^ self._tab_mul(exp, log, a0, a1) ^ c_sq1
        inv_norm = exp[(0xFFFF) - log[norm]]  # norm != 0 for nonzero input
        hi = self._tab_mul(exp, log, a1, inv_norm)
        lo = self._tab_mul(exp, log, a0 ^ a1, inv_norm)
        return ((hi << 16) | lo).tolist()

    def dot(self, a: Sequence[int], b: Sequence[int]) -> int:
        """XOR-accumulated inner product over the tower field."""
        if self._np_sub_tables() is None:
            mul = self.mul
            acc = 0
            for x, y in zip(a, b):
                if x and y:
                    acc ^= mul(x, y)
            return acc
        products = self.mul_batch(a, b)
        acc = 0
        for p in products:
            acc ^= p
        return acc


# Field instances shared per (m, modulus); see default_field.
_FIELDS: Dict[Tuple[int, Optional[int]], GF2m] = {}


def default_field(m: int = 32, modulus: Optional[int] = None) -> GF2m:
    """Shared per-process field instances (table construction is amortised).

    ``m == 32`` with the default modulus returns the fast tower-field
    implementation; other sizes use the generic polynomial-basis field.
    Explicit-modulus fields are cached too, keyed by ``(m, modulus)``, so
    partitioned sketches over a custom modulus share one table set instead
    of rebuilding log/exp tables per instance.
    """
    key = (m, modulus)
    field = _FIELDS.get(key)
    if field is None:
        if modulus is None:
            field = GF2Tower32() if m == 32 else GF2m(m)
        else:
            field = GF2m(m, modulus)
        _FIELDS[key] = field
    return field
