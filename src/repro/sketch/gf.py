"""Binary finite fields GF(2^m) and polynomial arithmetic over them.

Elements are Python ints in ``[0, 2^m)`` interpreted as polynomials over
GF(2).  Multiplication is carry-less multiplication followed by reduction
modulo an irreducible polynomial.  For small fields (m <= 16) log/exp tables
make multiplication two lookups; for larger fields a nibble-windowed
carry-less multiply keeps pure-Python cost low.

Polynomials over GF(2^m) are represented as lists of coefficients in
ascending degree order, normalised so the last coefficient is nonzero (the
zero polynomial is the empty list).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

# Irreducible polynomials (without the leading x^m term) for supported m,
# matching the moduli used by libminisketch where applicable.
IRREDUCIBLE_POLY = {
    8: 0x1B,        # x^8 + x^4 + x^3 + x + 1
    12: 0x9,        # x^12 + x^3 + 1
    16: 0x2B,       # x^16 + x^5 + x^3 + x + 1
    24: 0x1B,       # x^24 + x^4 + x^3 + x + 1
    32: 0x8D,       # x^32 + x^7 + x^3 + x^2 + 1
    48: 0x2D,       # x^48 + x^5 + x^3 + x^2 + 1
    64: 0x1B,       # x^64 + x^4 + x^3 + x + 1
}


class GF2m:
    """The finite field GF(2^m).

    >>> f = GF2m(16)
    >>> a, b = 0x1234, 0x5678
    >>> f.mul(a, f.inv(a))
    1
    >>> f.mul(a, b) == f.mul(b, a)
    True
    """

    def __init__(self, m: int, modulus: Optional[int] = None):
        if modulus is None:
            if m not in IRREDUCIBLE_POLY:
                raise ValueError(f"no built-in modulus for GF(2^{m})")
            modulus = IRREDUCIBLE_POLY[m]
        self.m = m
        self.order = 1 << m
        self.mask = self.order - 1
        # Full modulus polynomial including the x^m term.
        self.modulus = modulus | self.order
        self._low_modulus = modulus
        self._log: Optional[List[int]] = None
        self._exp: Optional[List[int]] = None
        if m <= 16:
            self._build_tables()

    # ------------------------------------------------------------------ setup

    def _build_tables(self) -> None:
        """Build log/exp tables over a primitive element.

        ``x`` itself need not be primitive for every irreducible modulus
        (it is not for the GF(2^16) modulus used here), so candidate
        generators are tried until one whose powers enumerate the whole
        multiplicative group is found.
        """
        size = self.order
        for generator in range(2, 64):
            exp = [0] * (2 * size)
            log = [0] * size
            value = 1
            primitive = True
            for i in range(size - 1):
                if value == 1 and i > 0:
                    primitive = False  # cycled early: not a generator
                    break
                exp[i] = value
                log[value] = i
                value = self._mul_notable(value, generator)
            if primitive and value == 1:
                for i in range(size - 1, 2 * size):
                    exp[i] = exp[i - (size - 1)]
                self._exp = exp
                self._log = log
                return
        self._log = None
        self._exp = None

    # ------------------------------------------------------------- arithmetic

    def add(self, a: int, b: int) -> int:
        """Addition (== subtraction) is XOR in characteristic 2."""
        return a ^ b

    def _mul_notable(self, a: int, b: int) -> int:
        result = 0
        while a:
            if a & 1:
                result ^= b
            a >>= 1
            b <<= 1
        return self._reduce(result)

    def _reduce(self, value: int) -> int:
        """Reduce an up-to-(2m-1)-bit carry-less product modulo the field."""
        m = self.m
        modulus = self.modulus
        top = value.bit_length()
        while top > m:
            value ^= modulus << (top - m - 1)
            top = value.bit_length()
        return value

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        if a == 0 or b == 0:
            return 0
        if self._log is not None:
            return self._exp[self._log[a] + self._log[b]]
        # Nibble-windowed carry-less multiply for large fields.
        table = [0, b]
        for i in range(1, 8):
            table.append(table[i] << 1)
            table.append((table[i] << 1) ^ b)
        result = 0
        shift = 0
        while a:
            nib = a & 0xF
            if nib:
                result ^= table[nib] << shift
            a >>= 4
            shift += 4
        return self._reduce(result)

    def sqr(self, a: int) -> int:
        """Field squaring (linear in characteristic 2; bit-spread then reduce)."""
        if self._log is not None and a != 0:
            return self._exp[2 * self._log[a]]
        result = 0
        bit = 0
        while a:
            if a & 1:
                result ^= 1 << (2 * bit)
            a >>= 1
            bit += 1
        return self._reduce(result)

    def pow(self, a: int, e: int) -> int:
        """Field exponentiation by squaring."""
        if e < 0:
            return self.pow(self.inv(a), -e)
        result = 1
        base = a
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.sqr(base)
            e >>= 1
        return result

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in GF(2^m)")
        if self._log is not None:
            return self._exp[(self.order - 1) - self._log[a]]
        # a^(2^m - 2) by square-and-multiply.
        return self.pow(a, self.order - 2)

    def trace(self, a: int) -> int:
        """Absolute trace down to GF(2): sum of the m Frobenius conjugates."""
        total = 0
        term = a
        for _ in range(self.m):
            total ^= term
            term = self.sqr(term)
        return total

    def artin_schreier_solve(self, u: int) -> Optional[int]:
        """A solution ``y`` of ``y^2 + y = u``, or None when none exists.

        The map ``f(y) = y^2 + y`` is GF(2)-linear with image of dimension
        m-1 (exactly the trace-zero elements).  A row-reduced form of f is
        precomputed once per field, making each solve m XOR steps; used by
        the closed-form quadratic root finder in PinSketch decoding.
        """
        if self._as_rows is None:
            self._build_artin_schreier()
        rows = self._as_rows
        y = 0
        for pivot_bit, image, preimage in rows:
            if u & pivot_bit:
                u ^= image
                y ^= preimage
        return y if u == 0 else None

    _as_rows: Optional[List[Tuple[int, int, int]]] = None

    def _build_artin_schreier(self) -> None:
        """Row-reduce the basis images of ``y -> y^2 + y`` over GF(2)."""
        pairs = []
        for bit in range(self.m):
            basis = 1 << bit
            pairs.append((self.sqr(basis) ^ basis, basis))
        rows: List[Tuple[int, int, int]] = []
        for image, preimage in pairs:
            for pivot_bit, row_image, row_pre in rows:
                if image & pivot_bit:
                    image ^= row_image
                    preimage ^= row_pre
            if image:
                pivot = 1 << (image.bit_length() - 1)
                rows.append((pivot, image, preimage))
        rows.sort(key=lambda r: -r[0])
        self._as_rows = rows

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        return self.mul(a, self.inv(b))

    # ------------------------------------------------------- polynomial layer

    @staticmethod
    def poly_trim(p: List[int]) -> List[int]:
        """Drop trailing zero coefficients in place and return the list."""
        while p and p[-1] == 0:
            p.pop()
        return p

    def poly_add(self, p: Sequence[int], q: Sequence[int]) -> List[int]:
        """Polynomial addition (coefficient-wise XOR)."""
        if len(p) < len(q):
            p, q = q, p
        out = list(p)
        for i, coeff in enumerate(q):
            out[i] ^= coeff
        return self.poly_trim(out)

    def poly_mul(self, p: Sequence[int], q: Sequence[int]) -> List[int]:
        """Polynomial multiplication (schoolbook)."""
        if not p or not q:
            return []
        out = [0] * (len(p) + len(q) - 1)
        mul = self.mul
        for i, a in enumerate(p):
            if a == 0:
                continue
            for j, b in enumerate(q):
                if b:
                    out[i + j] ^= mul(a, b)
        return self.poly_trim(out)

    def poly_mod(self, p: Sequence[int], q: Sequence[int]) -> List[int]:
        """Polynomial remainder ``p mod q``; ``q`` must be nonzero."""
        if not q:
            raise ZeroDivisionError("polynomial mod by zero")
        rem = list(p)
        self.poly_trim(rem)
        dq = len(q) - 1
        inv_lead = self.inv(q[-1])
        mul = self.mul
        while len(rem) - 1 >= dq and rem:
            shift = len(rem) - 1 - dq
            factor = mul(rem[-1], inv_lead)
            for i, coeff in enumerate(q):
                if coeff:
                    rem[i + shift] ^= mul(factor, coeff)
            self.poly_trim(rem)
        return rem

    def poly_gcd(self, p: Sequence[int], q: Sequence[int]) -> List[int]:
        """Monic polynomial greatest common divisor."""
        a, b = list(p), list(q)
        self.poly_trim(a)
        self.poly_trim(b)
        while b:
            a, b = b, self.poly_mod(a, b)
        if a and a[-1] != 1:
            inv_lead = self.inv(a[-1])
            a = [self.mul(c, inv_lead) for c in a]
        return a

    def poly_monic(self, p: Sequence[int]) -> List[int]:
        """Return the monic scalar multiple of ``p``."""
        p = self.poly_trim(list(p))
        if not p or p[-1] == 1:
            return p
        inv_lead = self.inv(p[-1])
        return [self.mul(c, inv_lead) for c in p]

    def poly_eval(self, p: Sequence[int], x: int) -> int:
        """Evaluate ``p`` at ``x`` with Horner's rule."""
        acc = 0
        mul = self.mul
        for coeff in reversed(p):
            acc = mul(acc, x) ^ coeff
        return acc

    def poly_sqr_mod(self, p: Sequence[int], q: Sequence[int]) -> List[int]:
        """Square a polynomial modulo ``q`` (cheap in characteristic 2)."""
        if not p:
            return []
        out = [0] * (2 * len(p) - 1)
        sqr = self.sqr
        for i, coeff in enumerate(p):
            if coeff:
                out[2 * i] = sqr(coeff)
        return self.poly_mod(out, q)

    def poly_frobenius_mod(self, q: Sequence[int]) -> List[int]:
        """Compute ``x^(2^m) mod q`` by m modular squarings."""
        result: List[int] = [0, 1]  # the polynomial x
        result = self.poly_mod(result, q)
        for _ in range(self.m):
            result = self.poly_sqr_mod(result, q)
        return result


class GF2Tower32(GF2m):
    """GF(2^32) as the tower GF((2^16)^2): fast pure-Python arithmetic.

    Elements are 32-bit ints ``(hi << 16) | lo`` representing ``hi*y + lo``
    in GF(2^16)[y] / (y^2 + y + c), with ``c`` chosen so the quadratic is
    irreducible (trace of c over GF(2) equals 1).  Multiplication becomes
    three-and-a-bit GF(2^16) table multiplications (Karatsuba), roughly an
    order of magnitude faster than windowed carry-less multiplication --
    the same trick libminisketch uses with CPU-specific field backends.

    The tower field is isomorphic to, but not identical with, the
    polynomial-basis GF(2^32); sketches must be built and decoded with the
    same representation on both sides, which holds process-wide via
    :func:`default_field`.
    """

    def __init__(self):
        # Intentionally no super().__init__: the base attributes are set up
        # manually around the GF(2^16) subfield.
        self.m = 32
        self.order = 1 << 32
        self.mask = self.order - 1
        self.modulus = 0  # not meaningful in tower representation
        self.sub = GF2m(16)
        if self.sub._log is None:  # pragma: no cover - defensive
            raise RuntimeError("GF(2^16) tables unavailable")
        self._log = None
        self._exp = None
        # y^2 + y + c must be irreducible over GF(2^16), which holds exactly
        # when the GF(2)-trace of c is 1; pick the smallest such c.
        self.QUAD_C = next(
            c for c in range(1, 1 << 16) if self._subfield_trace(c) == 1
        )

    def _subfield_trace(self, value: int) -> int:
        """Trace of a GF(2^16) element down to GF(2)."""
        total = 0
        term = value
        for _ in range(16):
            total ^= term
            term = self.sub.sqr(term)
        return total

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        sub = self.sub
        exp, log = sub._exp, sub._log
        a1, a0 = a >> 16, a & 0xFFFF
        b1, b0 = b >> 16, b & 0xFFFF
        m1 = exp[log[a1] + log[b1]] if a1 and b1 else 0
        m0 = exp[log[a0] + log[b0]] if a0 and b0 else 0
        sa, sb = a1 ^ a0, b1 ^ b0
        mx = exp[log[sa] + log[sb]] if sa and sb else 0
        hi = mx ^ m0                     # (a1b0 + a0b1) + a1b1
        lo = m0 ^ (exp[log[m1] + log[self.QUAD_C]] if m1 else 0)
        return (hi << 16) | lo

    def sqr(self, a: int) -> int:
        if a == 0:
            return 0
        sub = self.sub
        a1, a0 = a >> 16, a & 0xFFFF
        s1 = sub.sqr(a1)
        s0 = sub.sqr(a0)
        lo = s0 ^ (sub.mul(s1, self.QUAD_C) if s1 else 0)
        return (s1 << 16) | lo

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in GF(2^32)")
        sub = self.sub
        a1, a0 = a >> 16, a & 0xFFFF
        # Norm over GF(2^16): a0^2 + a0*a1 + c*a1^2 (never zero for a != 0).
        norm = sub.sqr(a0) ^ sub.mul(a0, a1) ^ sub.mul(self.QUAD_C, sub.sqr(a1))
        inv_norm = sub.inv(norm)
        # inverse = conjugate(a) / norm, conj(a) = a1*y + (a0 + a1).
        hi = sub.mul(a1, inv_norm)
        lo = sub.mul(a0 ^ a1, inv_norm)
        return (hi << 16) | lo


_FIELDS: Dict[int, GF2m] = {}


def default_field(m: int = 32) -> GF2m:
    """Shared per-process field instances (table construction is amortised).

    ``m == 32`` returns the fast tower-field implementation; other sizes use
    the generic polynomial-basis field.
    """
    if m not in _FIELDS:
        _FIELDS[m] = GF2Tower32() if m == 32 else GF2m(m)
    return _FIELDS[m]
