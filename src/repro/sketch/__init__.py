"""From-scratch PinSketch/Minisketch set reconciliation (paper section 4.2).

The paper leverages Minisketch [Naumenko et al. 2019], which implements the
PinSketch algorithm [Dodis et al. 2008]: a set of nonzero elements of
GF(2^m) is represented by its odd power sums ("syndromes"); two sketches
XOR-combine into a sketch of the symmetric difference, which is decoded with
Berlekamp--Massey plus root finding, exactly like a BCH decoder.

Submodules:

* :mod:`repro.sketch.gf` -- carry-less GF(2^m) arithmetic and polynomials.
* :mod:`repro.sketch.pinsketch` -- sketch create/add/merge/decode.
* :mod:`repro.sketch.partition` -- the recursive hash-partitioning fallback
  the paper introduces in section 6.5 to bound decode cost.
"""

from repro.sketch.gf import GF2m, default_field
from repro.sketch.pinsketch import (
    PinSketch,
    SketchDecodeError,
    pack_syndromes,
    sketch_syndromes,
    sketch_syndromes_packed,
    unpack_syndromes,
)
from repro.sketch.partition import PartitionedReconciler, ReconcileStats

__all__ = [
    "GF2m",
    "PartitionedReconciler",
    "PinSketch",
    "ReconcileStats",
    "SketchDecodeError",
    "default_field",
    "pack_syndromes",
    "sketch_syndromes",
    "sketch_syndromes_packed",
    "unpack_syndromes",
]
