"""PinSketch: sketches of sets decodable to the symmetric difference.

A sketch of capacity ``t`` over GF(2^m) stores the odd power sums
``s_k = sum(x^k for x in S)`` for ``k = 1, 3, ..., 2t-1``.  Sketches are
linear: XOR-ing two sketches yields the sketch of the symmetric difference
of the underlying sets (paper section 4.2).  Decoding reconstructs up to
``t`` elements via Berlekamp--Massey and root finding, the same pipeline as
a BCH decoder and as libminisketch.

Performance layers (docs/architecture.md has the full map):

* **Syndrome cache** -- per-``(element, m)`` odd power sums are computed
  once, *incrementally extended* when a larger capacity is requested, and
  LRU-bounded; every node in a simulation re-uses one vector per
  transaction id across all rounds (:class:`_SyndromeCache`).
* **Batched kernels** -- bulk ``add_all`` computes syndromes for all new
  elements with one vectorised sweep per power; the Berlekamp--Massey
  discrepancy and the root search run through the numpy fast path of
  :mod:`repro.sketch.gf` when available (pure-Python fallbacks decode
  bit-identically).
* **Decode memoisation** -- an LRU keyed by syndrome content, with
  hit/miss/eviction counters exported via :func:`repro.metrics.cache_stats`.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from functools import lru_cache
from operator import xor as _xor
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.metrics.caches import register_cache
from repro.sketch.gf import GF2m, default_field, fast_path_active


class SketchDecodeError(ValueError):
    """Decoding failed: the set difference exceeds the sketch capacity."""


# ---------------------------------------------------------------------------
# Syndrome cache: element -> odd power sums, shared process-wide.
# ---------------------------------------------------------------------------


class _SyndromeCache:
    """Incremental, LRU-bounded cache of per-element syndrome vectors.

    Keyed by ``(element, m)`` -- *not* by capacity: one growable power list
    serves every capacity, and asking for a larger sketch merely extends
    the stored list from its last entry (each extension step is one field
    multiplication by ``element^2``).  ``views`` memoises the per-capacity
    tuples so repeated lookups return the identical object (cheap, and it
    keeps ``sketch_syndromes`` referentially stable for callers).
    """

    def __init__(self, max_entries: int = 262144):
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[int, int], dict]" = OrderedDict()
        self.stats = register_cache(
            "sketch.syndromes", size_probe=lambda: len(self._entries)
        )

    def clear(self) -> None:
        """Drop every cached vector (counters are preserved)."""
        self._entries.clear()

    @staticmethod
    def _validate(element: int, field: GF2m, m: int) -> None:
        if element == 0 or element > field.mask:
            raise ValueError(f"element {element} out of range for GF(2^{m})")

    def _fresh_entry(self, element: int, field: GF2m) -> dict:
        return {"x2": field.sqr(element), "powers": [element], "views": {}}

    def _insert(self, key: Tuple[int, int], entry: dict) -> None:
        if len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = entry

    def get(self, element: int, m: int, capacity: int) -> Tuple[int, ...]:
        """The first ``capacity`` odd power sums of ``element`` over GF(2^m)."""
        key = (element, m)
        entry = self._entries.get(key)
        field = default_field(m)
        if entry is None:
            self.stats.misses += 1
            self._validate(element, field, m)
            entry = self._fresh_entry(element, field)
            self._insert(key, entry)
        else:
            self.stats.hits += 1
            self._entries.move_to_end(key)
        powers = entry["powers"]
        if len(powers) < capacity:
            mul = field.mul
            x2 = entry["x2"]
            current = powers[-1]
            while len(powers) < capacity:
                current = mul(current, x2)
                powers.append(current)
        view = entry["views"].get(capacity)
        if view is None:
            view = tuple(powers[:capacity])
            entry["views"][capacity] = view
        return view

    def get_many(
        self, elements: Sequence[int], m: int, capacity: int
    ) -> List[Tuple[int, ...]]:
        """Syndrome vectors for many elements, batch-computing the misses.

        Cached entries are served individually; all missing (or too-short)
        entries are computed together with one vectorised field sweep per
        power -- ``capacity - 1`` batched multiplications for the whole
        group instead of per element.
        """
        field = default_field(m)
        out: List[Optional[Tuple[int, ...]]] = [None] * len(elements)
        missing: List[int] = []
        missing_at: List[int] = []
        for idx, element in enumerate(elements):
            key = (element, m)
            entry = self._entries.get(key)
            if entry is not None and len(entry["powers"]) >= capacity:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                view = entry["views"].get(capacity)
                if view is None:
                    view = tuple(entry["powers"][:capacity])
                    entry["views"][capacity] = view
                out[idx] = view
            else:
                self._validate(element, field, m)
                missing.append(element)
                missing_at.append(idx)
        if not missing:
            return out  # type: ignore[return-value]
        if not fast_path_active() or len(missing) < 4:
            for element, idx in zip(missing, missing_at):
                out[idx] = self.get(element, m, capacity)
            return out  # type: ignore[return-value]
        # Column-wise batch: columns[k][j] = missing[j] ^ (2k+1).
        x2 = field.sqr_batch(missing)
        current = list(missing)
        columns = [current]
        for _ in range(capacity - 1):
            current = field.mul_batch(current, x2)
            columns.append(current)
        for j, (element, idx) in enumerate(zip(missing, missing_at)):
            powers = [columns[k][j] for k in range(capacity)]
            key = (element, m)
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                entry = {"x2": x2[j], "powers": powers, "views": {}}
                self._insert(key, entry)
            else:
                # Existed but was shorter than requested: count as a hit
                # (the prefix was reused conceptually) and replace.
                self.stats.hits += 1
                self._entries.move_to_end(key)
                entry["powers"] = powers
                entry["views"] = {}
            view = tuple(powers)
            entry["views"][capacity] = view
            out[idx] = view
        return out  # type: ignore[return-value]


_SYNDROMES = _SyndromeCache()


# ---------------------------------------------------------------------------
# Packed syndrome vectors: one big integer, m bits per slot.
#
# XOR over GF(2^m) vectors is slot-independent (no carries), so XOR-ing the
# packed integers is *exactly* the element-wise XOR of the vectors -- one
# C-level operation regardless of capacity.  The append-only transaction log
# maintains its per-cell and whole-log sketches in this form and unpacks
# only when a PinSketch object must be materialised for the wire.
# ---------------------------------------------------------------------------

_STRUCT_CODES = {8: "B", 16: "H", 32: "I", 64: "Q"}


@lru_cache(maxsize=64)
def _slot_struct(capacity: int, m: int) -> Optional[struct.Struct]:
    code = _STRUCT_CODES.get(m)
    return struct.Struct(f"<{capacity}{code}") if code else None


def pack_syndromes(vector: Sequence[int], m: int) -> int:
    """Pack a syndrome vector into one integer (slot ``i`` at bits ``m*i``)."""
    packer = _slot_struct(len(vector), m)
    if packer is not None:
        return int.from_bytes(packer.pack(*vector), "little")
    packed = 0
    for value in reversed(vector):
        packed = (packed << m) | value
    return packed


def unpack_syndromes(packed: int, capacity: int, m: int) -> List[int]:
    """First ``capacity`` slots of a packed vector (inverse of pack).

    Extra high slots are ignored, so truncating a packed sketch to a lower
    capacity is implicit -- the same semantics as :meth:`PinSketch.truncated`.
    """
    packer = _slot_struct(capacity, m)
    if packer is not None:
        mask = (1 << (m * capacity)) - 1
        return list(packer.unpack((packed & mask).to_bytes(packer.size, "little")))
    mask = (1 << m) - 1
    return [(packed >> (m * i)) & mask for i in range(capacity)]


def sketch_syndromes_packed(element: int, capacity: int, m: int) -> int:
    """Packed form of :func:`sketch_syndromes`, cached alongside it."""
    view = _SYNDROMES.get(element, m, capacity)
    entry = _SYNDROMES._entries[(element, m)]
    packed_views = entry.setdefault("packed", {})
    packed = packed_views.get(capacity)
    if packed is None:
        packed = pack_syndromes(view, m)
        packed_views[capacity] = packed
    return packed


def sketch_syndromes(element: int, capacity: int, m: int) -> Tuple[int, ...]:
    """Odd power sums ``element^1, element^3, ..., element^(2t-1)``.

    Cached process-wide and *incrementally*: the cache is keyed by
    ``(element, m)`` only, so a later request at a higher capacity extends
    the stored power list instead of recomputing it, and every node in a
    simulation re-uses each transaction id's vector as a cheap XOR (see
    docs/architecture.md).  Repeated calls with identical arguments return
    the identical tuple object.

    >>> sketch_syndromes(3, 3, 8)
    (3, 15, 51)
    >>> sketch_syndromes(3, 5, 8)[:3]
    (3, 15, 51)
    """
    return _SYNDROMES.get(element, m, capacity)


def clear_syndrome_cache() -> None:
    """Drop all cached syndrome vectors (used by benchmarks)."""
    _SYNDROMES.clear()


# ---------------------------------------------------------------------------
# Decode memoisation: syndrome content -> frozenset | failure, LRU-bounded.
# ---------------------------------------------------------------------------

_DECODE_CACHE: "OrderedDict[tuple, object]" = OrderedDict()
_DECODE_CACHE_LIMIT = 131072
_DECODE_STATS = register_cache(
    "sketch.decode", size_probe=lambda: len(_DECODE_CACHE)
)


def _cache_store(key, value) -> None:
    if key not in _DECODE_CACHE and len(_DECODE_CACHE) >= _DECODE_CACHE_LIMIT:
        _DECODE_CACHE.popitem(last=False)
        _DECODE_STATS.evictions += 1
    _DECODE_CACHE[key] = value


def clear_decode_cache() -> None:
    """Drop all memoised decode results (used by CPU benchmarks)."""
    _DECODE_CACHE.clear()


class PinSketch:
    """A fixed-capacity set sketch.

    >>> a = PinSketch(capacity=8, m=16)
    >>> b = PinSketch(capacity=8, m=16)
    >>> for x in (10, 20, 30):
    ...     a.add(x)
    >>> for x in (20, 30, 40):
    ...     b.add(x)
    >>> sorted((a ^ b).decode())
    [10, 40]
    """

    __slots__ = ("capacity", "m", "field", "_syndromes")

    def __init__(self, capacity: int, m: int = 32, field: Optional[GF2m] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.m = m
        self.field = field if field is not None else default_field(m)
        self._syndromes: List[int] = [0] * capacity

    # ------------------------------------------------------------- mutation

    def add(self, element: int) -> None:
        """Toggle ``element`` in the sketched set (add == remove over GF(2)).

        The element-wise XOR runs as one C-level ``map`` sweep over the
        syndrome vector (the cached view is exactly ``capacity`` long), the
        dominant per-transaction cost in large simulations.
        """
        vector = _SYNDROMES.get(element, self.m, self.capacity)
        self._syndromes = list(map(_xor, self._syndromes, vector))

    def add_all(self, elements: Iterable[int]) -> None:
        """Toggle every element of ``elements``.

        Bulk inserts batch the syndrome generation of uncached elements
        through the vectorised field kernels (one sweep per power instead
        of one scalar chain per element).
        """
        batch = list(elements)
        if not batch:
            return
        if len(batch) < 4:
            for element in batch:
                self.add(element)
            return
        vectors = _SYNDROMES.get_many(batch, self.m, self.capacity)
        syndromes = self._syndromes
        for vector in vectors:
            syndromes = list(map(_xor, syndromes, vector))
        self._syndromes = syndromes

    def xor_syndromes(self, vector: Sequence[int]) -> None:
        """XOR a precomputed syndrome vector (at least this capacity) in."""
        if len(vector) < self.capacity:
            raise ValueError("syndrome vector shorter than sketch capacity")
        # map stops at the shorter operand, i.e. exactly self.capacity.
        self._syndromes = list(map(_xor, self._syndromes, vector))

    # ------------------------------------------------------------ combining

    def copy(self) -> "PinSketch":
        """Deep copy of this sketch."""
        clone = PinSketch(self.capacity, self.m, self.field)
        clone._syndromes = list(self._syndromes)
        return clone

    def truncated(self, capacity: int) -> "PinSketch":
        """A lower-capacity view: the first ``capacity`` odd syndromes."""
        if capacity > self.capacity:
            raise ValueError(
                f"cannot extend capacity {self.capacity} to {capacity}"
            )
        clone = PinSketch(capacity, self.m, self.field)
        clone._syndromes = self._syndromes[:capacity]
        return clone

    def xor_accumulate_many(self, sketches: Iterable["PinSketch"]) -> None:
        """XOR a batch of (>=capacity) sketches into this one in place.

        One call covers a whole cell-subset combine (``TxLog.
        sketch_for_cells``), replacing per-cell :meth:`xor_accumulate`
        method dispatch with a single loop over C-level ``map`` sweeps.
        """
        m = self.m
        capacity = self.capacity
        syndromes = self._syndromes
        for other in sketches:
            if other.m != m:
                raise ValueError(
                    "cannot combine sketches over different fields"
                )
            if other.capacity < capacity:
                raise ValueError(
                    f"cannot accumulate capacity {other.capacity} "
                    f"into capacity {capacity}"
                )
            syndromes = list(map(_xor, syndromes, other._syndromes))
        self._syndromes = syndromes

    def xor_accumulate(self, other: "PinSketch") -> None:
        """XOR ``other`` into this sketch in place (``other`` may be larger).

        Equivalent to ``self ^ other.truncated(self.capacity)`` without
        allocating the truncated view or the result sketch -- the shape of
        the per-cell combine in ``TxLog.sketch_for_cells``, which runs once
        per (cell, reconciliation round) and dominated profile output
        before this path existed.
        """
        if self.m != other.m:
            raise ValueError("cannot combine sketches over different fields")
        if other.capacity < self.capacity:
            raise ValueError(
                f"cannot accumulate capacity {other.capacity} "
                f"into capacity {self.capacity}"
            )
        # map stops at the shorter operand, i.e. exactly self.capacity.
        self._syndromes = list(map(_xor, self._syndromes, other._syndromes))

    def __xor__(self, other: "PinSketch") -> "PinSketch":
        if self.m != other.m:
            raise ValueError("cannot combine sketches over different fields")
        capacity = min(self.capacity, other.capacity)
        out = PinSketch(capacity, self.m, self.field)
        # map stops at the shorter operand; both are >= capacity.
        out._syndromes = list(map(_xor, self._syndromes, other._syndromes))
        return out

    @classmethod
    def from_packed(
        cls, packed: int, capacity: int, m: int = 32,
        field: Optional[GF2m] = None,
    ) -> "PinSketch":
        """Materialise a sketch from a packed syndrome integer.

        Extra high slots in ``packed`` are dropped, so passing a
        higher-capacity packed sketch truncates it (linearity makes the
        packed XOR of many sketches equal to the packed combined sketch).
        """
        sketch = cls(capacity, m, field)
        sketch._syndromes = unpack_syndromes(packed, capacity, m)
        return sketch

    def syndromes_view(self) -> Tuple[int, ...]:
        """Immutable snapshot of the syndrome vector (for memo layers)."""
        return tuple(self._syndromes)

    def load_syndromes(self, syndromes: Sequence[int]) -> None:
        """Overwrite the syndrome vector (inverse of :meth:`syndromes_view`)."""
        if len(syndromes) != self.capacity:
            raise ValueError(
                f"expected {self.capacity} syndromes, got {len(syndromes)}"
            )
        self._syndromes = list(syndromes)

    def is_empty(self) -> bool:
        """True when every syndrome is zero (difference is empty or aliased)."""
        return all(value == 0 for value in self._syndromes)

    # ----------------------------------------------------------- wire format

    def serialize(self) -> bytes:
        """Pack syndromes as fixed-width big-endian integers."""
        width = (self.m + 7) // 8
        return b"".join(value.to_bytes(width, "big") for value in self._syndromes)

    @classmethod
    def deserialize(cls, data: bytes, capacity: int, m: int = 32) -> "PinSketch":
        """Inverse of :meth:`serialize`."""
        width = (m + 7) // 8
        if len(data) != capacity * width:
            raise ValueError(
                f"expected {capacity * width} bytes, got {len(data)}"
            )
        sketch = cls(capacity, m)
        sketch._syndromes = [
            int.from_bytes(data[i * width : (i + 1) * width], "big")
            for i in range(capacity)
        ]
        return sketch

    def wire_size(self) -> int:
        """Serialized size in bytes."""
        return self.capacity * ((self.m + 7) // 8)

    # -------------------------------------------------------------- decoding

    def decode(self, verify: bool = True) -> Set[int]:
        """Recover the sketched set (|set| <= capacity) or raise.

        Raises :class:`SketchDecodeError` when the difference exceeds the
        capacity (detected via locator-degree and root-count checks, plus an
        optional syndrome re-verification that catches aliasing).

        Results are memoised process-wide by syndrome content in an LRU
        (hit/miss counters: ``repro.metrics.cache_stats()["sketch.decode"]``):
        in a simulated network the same difference set is decoded by many
        node pairs as a transaction floods the overlay, so cache hits are
        frequent and exact (same syndromes => same set).
        """
        if self.is_empty():
            return set()
        cache_key = (self.m, tuple(self._syndromes))
        cached = _DECODE_CACHE.get(cache_key)
        if cached is not None:
            _DECODE_STATS.hits += 1
            _DECODE_CACHE.move_to_end(cache_key)
            if isinstance(cached, SketchDecodeError):
                raise cached
            return set(cached)
        _DECODE_STATS.misses += 1
        try:
            result = self._decode_uncached(verify)
        except SketchDecodeError as exc:
            _cache_store(cache_key, exc)
            raise
        _cache_store(cache_key, frozenset(result))
        return result

    def _decode_uncached(self, verify: bool) -> Set[int]:
        full = self._full_syndromes()
        locator = _berlekamp_massey(full, self.field)
        degree = len(locator) - 1
        if degree == 0 or degree > self.capacity:
            raise SketchDecodeError(
                f"locator degree {degree} exceeds capacity {self.capacity}"
            )
        roots = _find_roots(locator, self.field)
        if len(roots) != degree:
            raise SketchDecodeError(
                f"locator of degree {degree} has only {len(roots)} roots"
            )
        elements = set(self.field.inv_batch(roots))
        if verify and not self._verify(elements):
            raise SketchDecodeError("recovered elements fail syndrome check")
        return elements

    def _full_syndromes(self) -> List[int]:
        """Expand to s_1..s_2t using s_{2k} = s_k^2 (characteristic 2)."""
        t = self.capacity
        full = [0] * (2 * t + 1)  # 1-indexed
        for i, value in enumerate(self._syndromes):
            full[2 * i + 1] = value
        sqr = self.field.sqr
        for k in range(1, t + 1):
            full[2 * k] = sqr(full[k])
        return full[1:]

    def _verify(self, elements: Set[int]) -> bool:
        check = PinSketch(self.capacity, self.m, self.field)
        check.add_all(elements)
        return check._syndromes == self._syndromes


def _berlekamp_massey(syndromes: Sequence[int], field: GF2m) -> List[int]:
    """Minimal LFSR (error locator) for the syndrome sequence.

    Returns the connection polynomial ``C`` with ``C[0] == 1``; its degree is
    the number of difference elements when decoding succeeds.  The per-step
    discrepancy is an inner product of the current connection polynomial
    with a syndrome window; it runs through :meth:`GF2m.dot`, which the
    fast path vectorises over the whole window.
    """
    current: List[int] = [1]
    previous: List[int] = [1]
    length = 0
    shift = 1
    prev_discrepancy = 1
    mul = field.mul
    inv = field.inv
    dot = field.dot
    for n, s_n in enumerate(syndromes):
        window = min(length, len(current) - 1)
        if window <= 0:
            discrepancy = s_n
        elif window < 8:
            discrepancy = s_n
            for i in range(1, window + 1):
                if current[i]:
                    discrepancy ^= mul(current[i], syndromes[n - i])
        else:
            # dot(current[1..w], syndromes[n-1], ..., syndromes[n-w])
            discrepancy = s_n ^ dot(
                current[1 : window + 1], syndromes[n - window : n][::-1]
            )
        if discrepancy == 0:
            shift += 1
            continue
        coefficient = mul(discrepancy, inv(prev_discrepancy))
        update = [0] * shift + field.mul_scalar_batch(coefficient, previous)
        if 2 * length <= n:
            saved = list(current)
            current = _xor_poly(current, update)
            previous = saved
            length = n + 1 - length
            prev_discrepancy = discrepancy
            shift = 1
        else:
            current = _xor_poly(current, update)
            shift += 1
    while current and current[-1] == 0:
        current.pop()
    return current


def _xor_poly(a: Sequence[int], b: Sequence[int]) -> List[int]:
    out = list(a) if len(a) >= len(b) else list(b)
    shorter = b if len(a) >= len(b) else a
    for i, coeff in enumerate(shorter):
        out[i] ^= coeff
    return out


def _find_roots(poly: Sequence[int], field: GF2m) -> List[int]:
    """Roots of ``poly`` in GF(2^m), distinct-roots contract.

    Two strategies:

    * **Full-field scan** (fast path, m <= 16): evaluate the polynomial at
      every field element in one vectorised Horner sweep
      (:meth:`GF2m.find_roots_scan`) -- a Chien search across the whole
      field, degree-many numpy passes.
    * **Berlekamp trace splitting** (fallback, and all m > 16): recursively
      split with gcd(poly, Tr(beta x)), with degree-1/2 factors solved in
      closed form and a Frobenius linearity check rejecting invalid
      locators early.  Tr(beta x) is computed once modulo the *top-level*
      polynomial per beta and cached; deeper recursion levels reduce the
      cached trace modulo their factor instead of re-running the m modular
      squarings.

    Both return fewer roots than the degree when the polynomial does not
    split into distinct linear factors; callers treat that as a decode
    failure, so the strategies are observationally identical.
    """
    monic = field.poly_monic(list(poly))
    if len(monic) <= 1:
        return []
    if len(monic) > 3:  # closed forms beat a full scan for degree <= 2
        scanned = field.find_roots_scan(monic)
        if scanned is not None:
            return scanned
    roots: List[int] = []
    trace_cache: dict = {}
    try:
        _trace_split(monic, monic, field, roots, trace_cache)
    except _NotFullySplittable:
        pass
    return roots


class _NotFullySplittable(Exception):
    """Internal: the locator has non-linear or repeated factors."""


def _solve_quadratic(poly: Sequence[int], field: GF2m, out: List[int]) -> None:
    """Closed-form roots of a monic quadratic x^2 + b x + c.

    ``b == 0`` means a repeated root (x + sqrt(c))^2 -- invalid for a
    PinSketch locator, whose roots are distinct.  Otherwise substituting
    x = b y reduces to the Artin-Schreier equation y^2 + y = c / b^2.
    """
    c, b = poly[0], poly[1]
    if b == 0:
        raise _NotFullySplittable
    u = field.mul(c, field.inv(field.sqr(b)))
    y = field.artin_schreier_solve(u)
    if y is None:
        raise _NotFullySplittable
    root_a = field.mul(b, y)
    out.append(root_a)
    out.append(root_a ^ b)  # the second solution is y + 1, i.e. +b after scaling


def _trace_split(
    poly: List[int],
    top: Sequence[int],
    field: GF2m,
    out: List[int],
    trace_cache: dict,
) -> None:
    """Recursively split a (presumed) product of distinct linear factors."""
    degree = len(poly) - 1
    if degree <= 0:
        return
    if degree == 1:
        out.append(poly[0])  # monic x + c has root c (addition is XOR)
        return
    if degree == 2:
        _solve_quadratic(poly, field, out)
        return
    failures = 0
    for bit in range(field.m):
        beta = 1 << bit
        top_trace = trace_cache.get(beta)
        if top_trace is None:
            top_trace = _trace_poly(beta, top, field)
            trace_cache[beta] = top_trace
        trace = field.poly_mod(top_trace, poly)
        factor = field.poly_gcd(poly, trace)
        if 0 < len(factor) - 1 < degree:
            other = _poly_divide_exact(poly, factor, field)
            _trace_split(field.poly_monic(factor), top, field, out, trace_cache)
            _trace_split(field.poly_monic(other), top, field, out, trace_cache)
            return
        failures += 1
        if failures == 4 and not _is_fully_linear(poly, field):
            raise _NotFullySplittable
    raise _NotFullySplittable


def _is_fully_linear(poly: Sequence[int], field: GF2m) -> bool:
    """Whether ``poly`` is a product of distinct linear factors.

    Checks gcd(poly, x^(2^m) - x) == poly; only invoked when trace
    splitting stalls, i.e. almost exclusively on invalid locators.
    """
    frob = field.poly_frobenius_mod(poly)           # x^(2^m) mod poly
    frob_minus_x = field.poly_add(frob, [0, 1])
    linear_part = field.poly_gcd(list(poly), frob_minus_x)
    return len(linear_part) == len(poly)


def _trace_poly(beta: int, modulus: Sequence[int], field: GF2m) -> List[int]:
    """Tr(beta * x) mod ``modulus`` = sum_{i<m} (beta x)^(2^i) mod modulus."""
    term = field.poly_mod([0, beta], modulus)
    total = list(term)
    for _ in range(field.m - 1):
        term = field.poly_sqr_mod(term, modulus)
        total = field.poly_add(total, term)
    return total


def _poly_divide_exact(
    numerator: Sequence[int], denominator: Sequence[int], field: GF2m
) -> List[int]:
    """Exact polynomial division (remainder must be zero)."""
    rem = list(numerator)
    field.poly_trim(rem)
    dd = len(denominator) - 1
    inv_lead = field.inv(denominator[-1])
    quotient = [0] * (len(rem) - dd)
    mul = field.mul
    while rem and len(rem) - 1 >= dd:
        shift = len(rem) - 1 - dd
        factor = mul(rem[-1], inv_lead)
        quotient[shift] = factor
        for i, coeff in enumerate(denominator):
            if coeff:
                rem[i + shift] ^= mul(factor, coeff)
        field.poly_trim(rem)
    if rem:
        raise ArithmeticError("polynomial division left a remainder")
    return quotient
