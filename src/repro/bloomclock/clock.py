"""Counting-Bloom-filter Bloom Clock implementation.

Cell layout follows the paper's evaluation setup: 32 cells serialized as
2-byte counters plus a 4-byte total, 68 bytes on the wire (section 6.1).
Each item hashes into exactly one cell ("placed into one of the m cells"),
so the clock is a bucketed item counter:

* comparing two clocks cell-wise yields a partial order (equal / happens-
  before / concurrent) -- a *decrease* in any cell between two commitments
  of the same node proves a non-append-only mutation (used for equivocation
  checks, section 5.2);
* the sum of positive cell gaps lower-bounds the set difference, sizing the
  Minisketch and flagging which cells need reconciliation at all.
"""

from __future__ import annotations

import enum
import struct
from functools import lru_cache
from operator import ge as _ge, gt as _gt, lt as _lt, sub as _sub
from typing import Iterable, List, Sequence


@lru_cache(maxsize=8)
def _counter_struct(cells: int) -> struct.Struct:
    """Packer for ``cells`` 2-byte big-endian counters (the common path)."""
    return struct.Struct(f">{cells}H")


class ClockComparison(enum.Enum):
    """Outcome of a partial-order comparison between two clocks."""

    EQUAL = "equal"
    BEFORE = "before"        # self <= other cell-wise, not equal
    AFTER = "after"          # self >= other cell-wise, not equal
    CONCURRENT = "concurrent"  # cells disagree in both directions


class BloomClock:
    """A counting Bloom filter over item ids.

    >>> a, b = BloomClock(cells=8), BloomClock(cells=8)
    >>> a.add(123); a.add(456)
    >>> b.add(123)
    >>> a.compare(b)
    <ClockComparison.AFTER: 'after'>
    >>> a.estimate_difference(b) >= 1
    True
    """

    __slots__ = ("cells", "counters", "total", "_wire_cache")

    def __init__(self, cells: int = 32, counters: Sequence[int] = ()):
        self._wire_cache: tuple = ()
        if cells < 1:
            raise ValueError(f"cells must be >= 1, got {cells}")
        self.cells = cells
        if counters:
            if len(counters) != cells:
                raise ValueError(f"expected {cells} counters, got {len(counters)}")
            self.counters: List[int] = list(counters)
        else:
            self.counters = [0] * cells
        self.total = sum(self.counters)

    # ------------------------------------------------------------- mutation

    def cell_of(self, item: int) -> int:
        """Cell index an item maps to.

        Items are already hash-derived ids (32-bit truncated transaction
        hashes), so mixing the high bits in keeps cells uniform even when the
        low bits also drive sketch partitioning.
        """
        mixed = (item ^ (item >> 16)) * 0x45D9F3B & 0xFFFFFFFF
        return mixed % self.cells

    def add(self, item: int) -> None:
        """Count one item into its cell."""
        self.counters[self.cell_of(item)] += 1
        self.total += 1

    def add_all(self, items: Iterable[int]) -> None:
        """Count every item of ``items``."""
        for item in items:
            self.add(item)

    def copy(self) -> "BloomClock":
        """Deep copy."""
        return BloomClock(self.cells, self.counters)

    # ------------------------------------------------------------ comparing

    def compare(self, other: "BloomClock") -> ClockComparison:
        """Partial-order comparison; raises on mismatched cell counts."""
        self._check_compatible(other)
        # map() runs the comparisons in C; lengths match by the check above.
        some_less = any(map(_lt, self.counters, other.counters))
        some_more = any(map(_gt, self.counters, other.counters))
        if not some_less and not some_more:
            return ClockComparison.EQUAL
        if some_less and some_more:
            return ClockComparison.CONCURRENT
        return ClockComparison.BEFORE if some_less else ClockComparison.AFTER

    def dominates(self, other: "BloomClock") -> bool:
        """True when every cell of ``self`` is >= the matching cell of ``other``.

        An append-only history can only grow its clock, so a newer commitment
        whose clock fails to dominate an older one from the same signer is
        provably inconsistent (paper section 5.2, equivocation detection).
        """
        self._check_compatible(other)
        return all(map(_ge, self.counters, other.counters))

    def flagged_cells(self, other: "BloomClock") -> List[int]:
        """Cells whose counters differ -- the subsets worth sketching."""
        self._check_compatible(other)
        return [
            i for i, (a, b) in enumerate(zip(self.counters, other.counters)) if a != b
        ]

    def estimate_difference(self, other: "BloomClock") -> int:
        """Lower bound on |A xor B| from per-cell count gaps.

        With one cell per item, each cell's |a_i - b_i| items must differ;
        same-cell collisions between A-only and B-only items can cancel, so
        this is a lower bound.  The protocol multiplies in a safety factor
        when sizing sketches from it.
        """
        self._check_compatible(other)
        return sum(map(abs, map(_sub, self.counters, other.counters)))

    def _check_compatible(self, other: "BloomClock") -> None:
        if self.cells != other.cells:
            raise ValueError(
                f"cannot compare clocks with {self.cells} vs {other.cells} cells"
            )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BloomClock)
            and self.cells == other.cells
            and self.counters == other.counters
        )

    def __hash__(self) -> int:
        return hash((self.cells, tuple(self.counters)))

    # ----------------------------------------------------------- wire format

    def serialize(self) -> bytes:
        """2 bytes per cell plus a 4-byte total: 68 bytes at 32 cells.

        Memoized against ``total``: every public mutation (``add``) bumps
        the total, so an unchanged total means the cached wire form is
        current.  Header clocks are immutable snapshots and hit this cache
        on every re-serialization (commitment signing and verification).
        """
        cache = self._wire_cache
        if cache and cache[0] == self.total:
            return cache[1]
        try:
            # One C-level pack for the in-range case (counters < 2^16).
            payload = _counter_struct(self.cells).pack(*self.counters)
        except struct.error:
            chunks = bytearray()
            for counter in self.counters:
                chunks += min(counter, 0xFFFF).to_bytes(2, "big")
            payload = bytes(chunks)
        wire = payload + min(self.total, 0xFFFFFFFF).to_bytes(4, "big")
        self._wire_cache = (self.total, wire)
        return wire

    @classmethod
    def deserialize(cls, data: bytes, cells: int = 32) -> "BloomClock":
        """Inverse of :meth:`serialize`."""
        if len(data) != 2 * cells + 4:
            raise ValueError(f"expected {2 * cells + 4} bytes, got {len(data)}")
        counters = [
            int.from_bytes(data[2 * i : 2 * i + 2], "big") for i in range(cells)
        ]
        clock = cls(cells, counters)
        return clock

    def wire_size(self) -> int:
        """Serialized size in bytes (68 for the paper's 32-cell setup)."""
        return 2 * self.cells + 4

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BloomClock(cells={self.cells}, total={self.total})"
