"""Bloom Clock: probabilistic partial order and difference pre-filter.

Paper section 4.2: "The Bloom Clock is a space-efficient probabilistic data
structure used to order events in distributed systems [Ramabaja 2019].  It
is implemented as a counting Bloom filter, where each item signifies a
mempool transaction.  Items are hashed and placed into one of the m cells,
each containing an integer counter."  LO combines it with Minisketch: cells
whose counters disagree flag the subsets that actually need sketch
reconciliation, and the cell-count gap estimates the difference size.
"""

from repro.bloomclock.clock import BloomClock, ClockComparison

__all__ = ["BloomClock", "ClockComparison"]
