"""Per-peer ingress rate limiting: deterministic token buckets.

Admission is the cheapest place to mount a denial-of-service attack --
signature checks, nonce bookkeeping and fee-market updates all run
before a transaction earns its place -- so the pipeline meters each
ingress peer *first*.  One token bucket per peer: ``burst`` tokens of
headroom, refilled at ``rate_per_s`` tokens per (simulated) second; a
submission spends one token or is rejected ``rate_limited`` without
touching any later stage.

The bucket is a pure function of the simulation clock (no wall time, no
randomness), so same-seed runs rate-limit identically -- the limiter
determinism test holds the pipeline to that.  A full bucket carries no
information (it is indistinguishable from an absent one), so
:meth:`TokenBucketLimiter.prune` -- called by the pool on every drain
tick -- forgets refilled peers, keeping state proportional to *active*
peers rather than to every identity ever seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple


@dataclass(frozen=True)
class LimiterConfig:
    """Token-bucket parameters applied to every ingress peer."""

    #: Sustained admissions per simulated second per peer.
    rate_per_s: float = 50.0
    #: Bucket capacity: how large a burst a quiet peer may land at once.
    burst: float = 100.0

    def __post_init__(self) -> None:
        """Validate that both the rate and the burst are positive."""
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be > 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


class TokenBucketLimiter:
    """One token bucket per peer, advanced lazily on the sim clock."""

    def __init__(self, config: LimiterConfig):
        self.config = config
        #: peer -> (tokens remaining, sim time of last refill)
        self._buckets: Dict[Hashable, Tuple[float, float]] = {}

    def _refill(self, peer: Hashable, now: float) -> float:
        state = self._buckets.get(peer)
        if state is None:
            return self.config.burst
        tokens, last = state
        if now > last:
            tokens = min(self.config.burst,
                         tokens + (now - last) * self.config.rate_per_s)
        return tokens

    def allow(self, peer: Hashable, now: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens from the peer's bucket if available.

        Returns False (and spends nothing) when the bucket is short --
        the caller counts the rejection and drops the submission.
        """
        tokens = self._refill(peer, now)
        if tokens < cost:
            self._buckets[peer] = (tokens, now)
            return False
        self._buckets[peer] = (tokens - cost, now)
        return True

    def prune(self, now: float) -> int:
        """Forget every peer whose bucket has refilled to full.

        A full bucket is indistinguishable from no bucket at all, so
        dropping it changes no future verdict; returns the number of
        peers forgotten.
        """
        rate, burst = self.config.rate_per_s, self.config.burst
        stale = [
            peer for peer, (tokens, last) in self._buckets.items()
            if tokens + max(0.0, now - last) * rate >= burst
        ]
        for peer in stale:
            del self._buckets[peer]
        return len(stale)

    def tokens_of(self, peer: Hashable, now: float) -> float:
        """Current token balance of a peer (without spending)."""
        return self._refill(peer, now)

    def active_peers(self) -> int:
        """Number of peers currently holding non-default bucket state."""
        return len(self._buckets)
