"""The fee market: a dynamic admission floor plus replace-by-fee rules.

Real mempools defend themselves with prices, not queues.  Two mechanisms
live here:

* a **dynamic minimum fee rate** (the *floor*).  Admission requires
  ``effective_priority(tx) >= floor(now)``.  The floor sits at a
  configured relay minimum while the pool is comfortable; every
  pool-full eviction pushes it just above the priority of the entry
  that was evicted (plus a configured bump), and it then *decays
  exponentially* back towards the relay minimum with a configured
  half-life.  Sustained congestion therefore prices out the long tail
  instead of burning CPU admitting and re-evicting it -- the same shape
  as Bitcoin Core's ``mempoolminfee`` or an EIP-1559 base fee;
* **replace-by-fee (RBF)** rules.  A transaction replacing a pooled
  entry with the same ``(sender, nonce)`` must raise both the absolute
  fee and the fee rate by at least ``rbf_bump_fraction``.  Requiring
  both makes fee bumping *monotone* (a chain of accepted replacements
  has strictly increasing fees -- the property tests pin this down)
  and stops replacement spam that re-announces near-identical
  transactions for free.

Everything is a pure function of (config, simulation clock), so
same-seed runs produce byte-identical admission decisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mempool.transaction import Transaction
from repro.mempool.priority import effective_priority


@dataclass(frozen=True)
class FeeMarketConfig:
    """Knobs of the dynamic floor and the RBF bump rule."""

    #: Relay minimum fee rate (fee units per byte); the floor never
    #: decays below this.
    min_fee_rate: float = 0.004
    #: After a pool-full eviction the floor becomes
    #: ``evicted_priority * (1 + floor_bump_fraction)``.
    floor_bump_fraction: float = 0.10
    #: Exponential-decay half-life of an elevated floor, in (simulated)
    #: seconds.
    floor_halflife_s: float = 30.0
    #: Minimum fractional increase -- of both fee and fee rate -- that a
    #: replacement must pay over the entry it replaces.
    rbf_bump_fraction: float = 0.10

    def __post_init__(self) -> None:
        """Validate ranges (all fractions non-negative, halflife > 0)."""
        if self.min_fee_rate < 0:
            raise ValueError("min_fee_rate must be >= 0")
        if self.floor_halflife_s <= 0:
            raise ValueError("floor_halflife_s must be > 0")
        if self.floor_bump_fraction < 0 or self.rbf_bump_fraction < 0:
            raise ValueError("bump fractions must be >= 0")


class FeeMarket:
    """Tracks the dynamic admission floor and judges replacements."""

    def __init__(self, config: FeeMarketConfig):
        self.config = config
        self._elevated = 0.0     # floor component above the relay minimum
        self._elevated_at = 0.0  # sim time the elevation was last set

    def floor(self, now: float) -> float:
        """The admission floor (fee units per byte) at simulation time ``now``."""
        if self._elevated <= 0.0:
            return self.config.min_fee_rate
        age = max(0.0, now - self._elevated_at)
        decayed = self._elevated * math.pow(
            2.0, -age / self.config.floor_halflife_s
        )
        if decayed <= self.config.min_fee_rate:
            self._elevated = 0.0  # fully decayed; forget the episode
            return self.config.min_fee_rate
        return decayed

    def meets_floor(self, tx: Transaction, now: float) -> bool:
        """Does the transaction's fee rate clear the current floor?"""
        return effective_priority(tx.fee, tx.size_bytes) >= self.floor(now)

    def on_pool_full_eviction(self, evicted_priority: float,
                              now: float) -> None:
        """Raise the floor above a priority that just got priced out.

        The floor is monotone within an episode: a burst of evictions
        keeps the highest bar any of them set.
        """
        candidate = evicted_priority * (1.0 + self.config.floor_bump_fraction)
        if candidate > self.floor(now):
            self._elevated = candidate
            self._elevated_at = now

    def required_replacement_fee(self, old_fee: int) -> int:
        """Smallest absolute fee an acceptable replacement can carry.

        Integer arithmetic throughout: a 10% bump over fee 100 is exactly
        110, never ``110.00000000000001`` -- replacements at precisely the
        advertised bump must pass.
        """
        bump = math.ceil(old_fee * self.config.rbf_bump_fraction)
        return old_fee + max(1, int(bump))

    def replacement_ok(self, old: Transaction, new: Transaction) -> bool:
        """RBF acceptance: the bump must raise fee *and* fee rate.

        The rate condition is checked by exact cross-multiplication
        against the integer :meth:`required_replacement_fee`, so a
        replacement cannot smuggle in a larger transaction at the old
        price per byte.

        >>> from repro.crypto.keys import KeyPair
        >>> from repro.mempool.transaction import make_transaction
        >>> kp = KeyPair.generate(seed=b"fee-market-doc")
        >>> market = FeeMarket(FeeMarketConfig(rbf_bump_fraction=0.10))
        >>> old = make_transaction(kp, nonce=1, fee=100, created_at=0.0)
        >>> market.replacement_ok(old, make_transaction(kp, 1, 105, 1.0))
        False
        >>> market.replacement_ok(old, make_transaction(kp, 1, 110, 1.0))
        True
        """
        required = self.required_replacement_fee(old.fee)
        if new.fee < required:
            return False
        # rate(new) >= rate(required-at-old-size), exactly:
        #   new.fee / new.size >= required / old.size
        return new.fee * old.size_bytes >= required * new.size_bytes
