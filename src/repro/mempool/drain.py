"""Drain ordering: which pooled transactions commit first.

Admission decides *whether* a transaction may wait in the pool; the
drain queue decides *in what order* waiting transactions leave it.  The
node drains the pool once per sync tick (see
:meth:`repro.core.node.LONode`), committing up to ``drain_batch_size``
entries into the append-only transaction log per tick.

Ordering is the mirror image of eviction: the drain pops the
*highest* effective priority first, with ties broken by *ascending*
arrival sequence (first come, first committed -- the accountable-order
property LO's log is meant to witness).  Only entries the per-sender
nonce FIFO has marked *ready* (contiguous with the sender's next
expected nonce) are eligible; queued future nonces wait until the gap
in front of them closes.

Like :class:`repro.mempool.priority.PriorityIndex`, removal is lazy: a
ready entry that is later evicted or replaced stays in the heap as a
corpse until it surfaces, at which point the liveness check supplied by
the pool discards it.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class DrainQueue:
    """Max-priority heap over *ready* (nonce-contiguous) entries."""

    def __init__(self, is_live: Callable[[int], bool]):
        #: heap of ``(-priority, seq, item_id)`` -- max priority first,
        #: then oldest arrival first.
        self._heap: List[Tuple[float, int, int]] = []
        self._is_live = is_live

    def __len__(self) -> int:
        return len(self._heap)

    def push_ready(self, item_id: int, priority: float, seq: int) -> None:
        """Mark an entry drain-eligible (its nonce gap has closed)."""
        heapq.heappush(self._heap, (-priority, seq, item_id))

    def pop_best(self) -> Optional[int]:
        """Id of the best live ready entry, or None when drained dry.

        Corpses -- entries evicted, expired or replaced after they
        became ready -- are shed here via the pool's liveness predicate.
        """
        while self._heap:
            _neg_priority, _seq, item_id = heapq.heappop(self._heap)
            if self._is_live(item_id):
                return item_id
        return None

    def drain(self, limit: int) -> List[int]:
        """Pop up to ``limit`` live entry ids in drain order."""
        batch: List[int] = []
        while len(batch) < limit:
            item_id = self.pop_best()
            if item_id is None:
                break
            batch.append(item_id)
        return batch
