"""Transaction model and stage-I prevalidation.

A transaction "contains all the required context to be processed by miners,
such as signature, wallet address, execution commands, transaction fee,
etc." (paper section 2.3, stage I).  Prevalidation checks the signature,
fee and size; the paper's system is agnostic to richer validity rules, and
so is ours -- extra predicates can be passed to :func:`prevalidate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.crypto.hashing import sha256, txid_from_bytes
from repro.crypto.keys import KeyPair, PublicKey, verify

# Default size from the evaluation setup: "each transaction being 250 bytes
# in size" (section 6.1).
DEFAULT_TX_SIZE = 250


class TransactionError(ValueError):
    """Raised when constructing or validating a malformed transaction."""


@dataclass(frozen=True)
class Transaction:
    """An immutable signed transaction.

    ``txid`` is the SHA-256 of the serialized content; ``sketch_id`` is its
    32-bit truncation, "the 32-bit integer representation of transaction
    hashes" Minisketch operates on (section 4.2).
    """

    sender: PublicKey
    nonce: int
    fee: int
    size_bytes: int
    created_at: float
    payload: bytes
    signature: bytes
    txid: bytes = field(compare=False, default=b"")
    sketch_id: int = field(compare=False, default=0)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise TransactionError(f"non-positive size: {self.size_bytes}")
        if self.fee < 0:
            raise TransactionError(f"negative fee: {self.fee}")
        digest = sha256(self.signing_bytes())
        object.__setattr__(self, "txid", digest)
        object.__setattr__(self, "sketch_id", txid_from_bytes(digest))

    def signing_bytes(self) -> bytes:
        """Canonical byte string the client signs (and that ``txid`` hashes)."""
        return b"|".join(
            (
                self.sender.raw,
                str(self.nonce).encode(),
                str(self.fee).encode(),
                str(self.size_bytes).encode(),
                repr(self.created_at).encode(),
                self.payload,
            )
        )

    def signature_valid(self) -> bool:
        """Verify the client signature (memoized per instance).

        Transactions are frozen, so the verdict is fixed at construction;
        the same object is prevalidated once per receiving node, and the
        repeat verifications were pure overhead.
        """
        cached = self.__dict__.get("_sig_ok")
        if cached is None:
            cached = verify(self.sender, self.signing_bytes(), self.signature)
            object.__setattr__(self, "_sig_ok", cached)
        return cached

    def wire_size(self) -> int:
        """On-wire size in bytes (the declared transaction size)."""
        return self.size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction({self.txid.hex()[:8]}, fee={self.fee},"
            f" from={self.sender.short()}, n={self.nonce})"
        )


def make_transaction(
    keypair: KeyPair,
    nonce: int,
    fee: int,
    created_at: float,
    size_bytes: int = DEFAULT_TX_SIZE,
    payload: bytes = b"",
) -> Transaction:
    """Create and sign a transaction (stage I, client side)."""
    unsigned = Transaction(
        sender=keypair.public_key,
        nonce=nonce,
        fee=fee,
        size_bytes=size_bytes,
        created_at=created_at,
        payload=payload,
        signature=b"",
    )
    signature = keypair.sign(unsigned.signing_bytes())
    return Transaction(
        sender=keypair.public_key,
        nonce=nonce,
        fee=fee,
        size_bytes=size_bytes,
        created_at=created_at,
        payload=payload,
        signature=signature,
    )


ValidityPredicate = Callable[[Transaction], bool]


def prevalidate(
    tx: Transaction,
    min_fee: int = 0,
    max_size: int = 1 << 20,
    extra_checks: Optional[Sequence[ValidityPredicate]] = None,
) -> bool:
    """Stage-I/II prevalidation: signature, fee floor, size cap, extras.

    "Successful prevalidation of a transaction may require: a valid
    signature from a client, sufficient amount of funds ... and the
    inclusion of a sufficient transaction processing fee" (section 2.3).
    """
    if not tx.signature_valid():
        return False
    if tx.fee < min_fee:
        return False
    if tx.size_bytes > max_size:
        return False
    for check in extra_checks or ():
        if not check(tx):
            return False
    return True
